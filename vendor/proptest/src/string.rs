//! String generation from simple patterns.
//!
//! Upstream proptest interprets a `&str` strategy as a full regex. This
//! stand-in supports the shape this workspace actually uses — an
//! optional character class with ranges followed by a `{min,max}`
//! repetition, e.g. `"[ -~]{0,60}"` — and treats anything else as a
//! literal string.

use crate::test_runner::TestRng;
use rand::Rng as _;

/// Parsed `[class]{m,n}` pattern.
struct ClassRepeat {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Option<ClassRepeat> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range (a `-` at either end is a literal dash).
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            chars.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let reps = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let min: usize = reps.0.trim().parse().ok()?;
    let max: usize = reps.1.trim().parse().ok()?;
    (min <= max).then_some(ClassRepeat { chars, min, max })
}

/// Generates a string matching `pattern` (see module docs for the
/// supported shapes).
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    match parse(pattern) {
        Some(p) => {
            let len = rng.gen_range(p.min..=p.max);
            (0..len)
                .map(|_| p.chars[rng.gen_range(0..p.chars.len())])
                .collect()
        }
        None => pattern.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng as _;

    #[test]
    fn printable_ascii_class() {
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = generate("[ -~]{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literal_fallback() {
        let mut rng = TestRng::seed_from_u64(5);
        assert_eq!(generate("hello", &mut rng), "hello");
    }

    #[test]
    fn digit_class() {
        let mut rng = TestRng::seed_from_u64(5);
        let s = generate("[0-9a]{3,3}", &mut rng);
        assert_eq!(s.len(), 3);
        assert!(s.chars().all(|c| c.is_ascii_digit() || c == 'a'));
    }
}
