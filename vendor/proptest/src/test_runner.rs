//! Deterministic case runner behind the [`crate::proptest!`] macro.

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration (the subset of upstream's this workspace
/// uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
    /// Attempt ceiling as a multiple of `cases`; generation rejections
    /// and `prop_assume!` discards consume attempts.
    pub max_rejects_factor: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_rejects_factor: 64,
        }
    }
}

impl ProptestConfig {
    /// Default configuration with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

/// Why a case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// `prop_assume!` discarded the case: draw another.
    Reject(String),
}

/// What a case body returns (via the macro-inserted `Ok(())`).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives one property test: deterministic per-case seeds, a case
/// counter, and an attempt ceiling guarding against over-eager filters.
pub struct Runner {
    name: &'static str,
    cases_target: u32,
    completed: u32,
    attempts: u64,
    max_attempts: u64,
    current_seed: u64,
}

impl Runner {
    /// A runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let max_attempts = config.cases as u64 * config.max_rejects_factor.max(2) as u64;
        Runner {
            name,
            cases_target: config.cases,
            completed: 0,
            attempts: 0,
            max_attempts,
            current_seed: 0,
        }
    }

    fn name_hash(&self) -> u64 {
        // FNV-1a over the test path: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The RNG for the next attempt, or `None` once the case target is
    /// met.
    ///
    /// # Panics
    /// Panics when the attempt ceiling is hit before enough cases pass
    /// (a filter or `prop_assume!` rejects nearly everything).
    pub fn next_attempt(&mut self) -> Option<TestRng> {
        if self.completed >= self.cases_target {
            return None;
        }
        assert!(
            self.attempts < self.max_attempts,
            "{}: gave up after {} attempts with only {}/{} cases accepted \
             (filters/assumptions reject too much)",
            self.name,
            self.attempts,
            self.completed,
            self.cases_target,
        );
        self.current_seed = self
            .name_hash()
            .wrapping_add(self.attempts.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        self.attempts += 1;
        Some(<TestRng as rand::SeedableRng>::seed_from_u64(
            self.current_seed,
        ))
    }

    /// Records a finished case body.
    ///
    /// # Panics
    /// Panics (failing the enclosing `#[test]`) when the case failed.
    pub fn finish_case(&mut self, outcome: TestCaseResult) {
        match outcome {
            Ok(()) => self.completed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "{}: property failed at case {} (seed {:#x}): {}",
                self.name, self.completed, self.current_seed, msg
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_exactly_the_requested_cases() {
        let mut runner = Runner::new(ProptestConfig::with_cases(10), "t");
        let mut n = 0;
        while runner.next_attempt().is_some() {
            runner.finish_case(Ok(()));
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn rejections_do_not_count() {
        let mut runner = Runner::new(ProptestConfig::with_cases(5), "t");
        let mut accepted = 0;
        let mut i = 0;
        while runner.next_attempt().is_some() {
            i += 1;
            if i % 2 == 0 {
                runner.finish_case(Err(TestCaseError::Reject("skip".into())));
            } else {
                runner.finish_case(Ok(()));
                accepted += 1;
            }
        }
        assert_eq!(accepted, 5);
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn hopeless_filters_abort() {
        let mut runner = Runner::new(ProptestConfig::with_cases(1), "t");
        while runner.next_attempt().is_some() {
            runner.finish_case(Err(TestCaseError::Reject("never".into())));
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        let seeds = |name| {
            let mut r = Runner::new(ProptestConfig::with_cases(3), name);
            let mut v = Vec::new();
            while r.next_attempt().is_some() {
                v.push(r.current_seed);
                r.finish_case(Ok(()));
            }
            v
        };
        assert_eq!(seeds("a"), seeds("a"));
        assert_ne!(seeds("a"), seeds("b"));
    }
}
