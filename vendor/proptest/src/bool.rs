//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore as _;

/// Strategy type behind [`ANY`].
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// Either boolean, uniformly.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn try_gen(&self, rng: &mut TestRng) -> Option<bool> {
        Some(rng.next_u64() & 1 == 1)
    }
}
