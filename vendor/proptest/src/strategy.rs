//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A recipe for generating random values of one type.
///
/// `try_gen` returns `None` when the draw was rejected (e.g. by
/// [`Strategy::prop_filter`]); the runner then redraws the whole case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value, or `None` on rejection.
    fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing the predicate (the `reason` is only
    /// diagnostic).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            _reason: reason,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn try_gen(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.try_gen(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    _reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn try_gen(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.try_gen(rng).filter(&self.f)
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn try_gen(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn try_gen(&self, rng: &mut TestRng) -> Option<T> {
        Some(rng.gen_range(self.clone()))
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn try_gen(&self, rng: &mut TestRng) -> Option<T> {
        Some(rng.gen_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                $(let $v = $s.try_gen(rng)?;)+
                Some(($($v,)+))
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);

/// Object-safe strategy view used by [`Union`].
pub trait DynStrategy<T> {
    /// Draws one value, or `None` on rejection.
    fn try_gen_dyn(&self, rng: &mut TestRng) -> Option<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn try_gen_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.try_gen(rng)
    }
}

/// Boxes a strategy for use in a heterogeneous [`Union`].
pub fn boxed<S>(s: S) -> Box<dyn DynStrategy<S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice between strategies of a common value type (the
/// expansion of [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    /// A union over the given options.
    ///
    /// # Panics
    /// Panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn DynStrategy<T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn try_gen(&self, rng: &mut TestRng) -> Option<T> {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].try_gen_dyn(rng)
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn try_gen(&self, rng: &mut TestRng) -> Option<String> {
        Some(crate::string::generate(self, rng))
    }
}
