//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::collections::BTreeSet;

/// An inclusive size range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// A vector of `size.into()` elements drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn try_gen(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = self.size.draw(rng);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.elem.try_gen(rng)?);
        }
        Some(out)
    }
}

/// Strategy for `BTreeSet<T>` with element strategy `S`.
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// A set of roughly `size.into()` distinct elements drawn from `elem`.
///
/// As in upstream proptest, a small element domain may not supply
/// enough distinct values; generation retries a bounded number of draws
/// and rejects the case if the minimum size is unreachable.
pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        elem,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn try_gen(&self, rng: &mut TestRng) -> Option<BTreeSet<S::Value>> {
        let target = self.size.draw(rng);
        let mut out = BTreeSet::new();
        let mut budget = target * 10 + 20;
        while out.len() < target && budget > 0 {
            budget -= 1;
            out.insert(self.elem.try_gen(rng)?);
        }
        (out.len() >= self.size.lo).then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng as _;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(42)
    }

    #[test]
    fn vec_respects_sizes() {
        let s = vec(0u32..10, 3..=5);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.try_gen(&mut r).unwrap();
            assert!((3..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn vec_exact_size() {
        let s = vec(0u32..10, 3);
        assert_eq!(s.try_gen(&mut rng()).unwrap().len(), 3);
    }

    #[test]
    fn btree_set_distinct_and_sized() {
        let s = btree_set(0u32..100, 8..36);
        let mut r = rng();
        for _ in 0..50 {
            let set = s.try_gen(&mut r).unwrap();
            assert!(set.len() >= 8 && set.len() <= 35);
        }
    }
}
