//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! reimplements the subset of proptest this workspace's property tests
//! use: the [`proptest!`] macro, strategies over integer ranges, tuples,
//! collections and simple string patterns, the `prop_map` /
//! `prop_filter` combinators, [`prop_oneof!`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * **No shrinking** — a failing case reports its deterministic seed
//!   and input debug string instead of a minimized counterexample.
//! * **Deterministic seeds** — each test derives its case seeds from a
//!   stable hash of the test's module path and name, so failures
//!   reproduce across runs and machines.
//! * **String strategies** support only literal text and the
//!   `[class]{m,n}` pattern shape (which is all this workspace uses).

#![forbid(unsafe_code)]

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror of upstream's `prop` re-export module.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob-import surface of `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests.
///
/// Supported grammar (a subset of upstream's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(0u64..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::Runner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            while let Some(mut rng) = runner.next_attempt() {
                $(
                    let $arg = match $crate::strategy::Strategy::try_gen(&($strat), &mut rng) {
                        Some(v) => v,
                        None => continue, // strategy-level rejection: redraw
                    };
                )*
                let outcome = (|| -> $crate::test_runner::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                runner.finish_case(outcome);
            }
        }
    )*};
}

/// Fails the current case (returns `Err` from the case closure) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// [`prop_assert!`] for equality, with `{:?}` rendering of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// [`prop_assert!`] for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: both sides are {:?}", l);
    }};
}

/// Discards the current case without counting it toward the case target.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// A strategy choosing uniformly between the listed strategies (all of
/// the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
