//! Offline stand-in for [loom](https://github.com/tokio-rs/loom).
//!
//! The real loom crate is unavailable in this build environment (no registry
//! access), so this crate reimplements the subset of loom's API that the
//! workspace uses, backed by a bounded-exhaustive **stateless model checker**:
//!
//! - [`model`] runs a closure repeatedly, exploring every distinct thread
//!   interleaving of its *schedule points* via depth-first search over
//!   scheduling choices, up to a preemption bound.
//! - Threads are real OS threads, but a token-passing scheduler ensures only
//!   one runs at a time, so each execution is deterministic and replayable.
//! - Schedule points are inserted before every atomic operation, at every
//!   lock acquire/release, condvar wait/notify, spawn, join, and
//!   [`thread::yield_now`].
//! - The memory model explored is **sequential consistency** (every atomic
//!   op runs as `SeqCst` regardless of the ordering argument). This is the
//!   shuttle-style tradeoff: weaker-memory bugs are out of scope, but lock
//!   and protocol bugs (lost wakeups, double dispatch, ack-before-durable,
//!   atomicity violations, deadlocks) are found exhaustively within the
//!   preemption bound.
//! - If an execution reaches a state where no thread is runnable but some
//!   are blocked, the checker panics with a deadlock report listing every
//!   thread's state.
//! - A panic on any model thread fails the whole model and is propagated
//!   out of [`model`], after abandoning (cleanly unwinding) the remaining
//!   threads of that execution.
//!
//! Exploration is bounded two ways, both env-tunable:
//!
//! - `LOOM_MAX_PREEMPTIONS` (default 2): maximum number of *involuntary*
//!   context switches per execution — switches taken while the current
//!   thread was still runnable. Voluntary switches (blocking, finishing)
//!   are free. This is the classic CHESS-style bound: almost all real
//!   concurrency bugs manifest within 2 preemptions.
//! - `LOOM_MAX_ITERATIONS` (default 200000): hard cap on explored
//!   executions; exceeding it panics, so a state-space explosion is a loud
//!   failure instead of a silent multi-hour hang.
//!
//! Set `LOOM_LOG=1` to print the number of executions explored per model.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex};

// ---------------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------------

/// One-shot binary semaphore used to hand the run token between threads.
struct Parker {
    granted: StdMutex<bool>,
    cv: StdCondvar,
}

impl Parker {
    fn new() -> Self {
        Parker {
            granted: StdMutex::new(false),
            cv: StdCondvar::new(),
        }
    }

    fn park(&self) {
        let mut g = self.granted.lock().unwrap_or_else(|e| e.into_inner());
        while !*g {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        *g = false;
    }

    fn unpark(&self) {
        let mut g = self.granted.lock().unwrap_or_else(|e| e.into_inner());
        *g = true;
        self.cv.notify_one();
    }
}

/// Why a model thread is not currently runnable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    /// Waiting for the mutex with this object id to be released.
    MutexWait(usize),
    /// Waiting for the rwlock with this object id to allow a reader in.
    RwReadWait(usize),
    /// Waiting for the rwlock with this object id to allow the writer in.
    RwWriteWait(usize),
    /// Parked on the condvar with this object id until notified.
    CondWait(usize),
    /// Waiting for the thread with this id to finish.
    Join(usize),
    /// Thread 0 waiting for every spawned thread to finish.
    JoinAll,
    Finished,
}

/// Logical state of one synchronization object (the data itself lives in an
/// uncontended `std` primitive inside the user-facing wrapper).
#[derive(Default)]
struct ObjState {
    /// Mutex owner, if locked.
    locked_by: Option<usize>,
    /// RwLock reader set.
    readers: Vec<usize>,
    /// RwLock writer, if held exclusively.
    writer: Option<usize>,
}

struct ThreadSlot {
    state: TState,
    parker: StdArc<Parker>,
    /// Value returned by the thread closure, boxed for `JoinHandle::join`.
    result: Option<Box<dyn Any + Send>>,
    /// Panic payload if the closure unwound; consumed by `join`, otherwise
    /// re-raised when the execution ends.
    panic: Option<Box<dyn Any + Send>>,
}

/// One recorded scheduling decision: which thread got the token, out of
/// which candidates, and whether the previously running thread was still
/// runnable (so alternatives count as preemptions).
#[derive(Clone, Debug)]
struct Choice {
    picked: usize,
    /// Runnable thread ids at this point, continuation-first then ascending.
    candidates: Vec<usize>,
    /// The running thread, iff it was itself still runnable here.
    cont: Option<usize>,
}

struct Sched {
    threads: Vec<ThreadSlot>,
    objects: Vec<ObjState>,
    current: usize,
    /// Replay prefix followed by freshly recorded choices.
    path: Vec<Choice>,
    /// Cursor into `path`: below this, decisions are replayed.
    pos: usize,
    /// Set when the execution is being torn down after a failure; every
    /// scheduler entry point then unwinds instead of parking.
    abandoned: bool,
}

struct Exec {
    sched: StdMutex<Sched>,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: RefCell<Option<(StdArc<Exec>, usize)>> = const { RefCell::new(None) };
}

fn cur_ctx() -> (StdArc<Exec>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitives may only be used inside loom::model")
    })
}

impl Exec {
    fn new(prefix: Vec<Choice>) -> Self {
        Exec {
            sched: StdMutex::new(Sched {
                threads: vec![ThreadSlot {
                    state: TState::Runnable,
                    parker: StdArc::new(Parker::new()),
                    result: None,
                    panic: None,
                }],
                objects: Vec::new(),
                current: 0,
                path: prefix,
                pos: 0,
                abandoned: false,
            }),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock_sched(&self) -> std::sync::MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn new_object(&self) -> usize {
        let mut s = self.lock_sched();
        s.objects.push(ObjState::default());
        s.objects.len() - 1
    }

    fn register_thread(&self) -> usize {
        let mut s = self.lock_sched();
        s.threads.push(ThreadSlot {
            state: TState::Runnable,
            parker: StdArc::new(Parker::new()),
            result: None,
            panic: None,
        });
        s.threads.len() - 1
    }

    /// Unpark every non-finished thread so it can observe `abandoned` and
    /// unwind. Idempotent.
    fn abandon(s: &mut Sched) {
        s.abandoned = true;
        for t in &s.threads {
            if t.state != TState::Finished {
                t.parker.unpark();
            }
        }
    }

    /// The scheduler entry point: optionally record `me` as blocked, pick
    /// the next thread to run (replaying or recording the decision), hand
    /// over the token, and return once `me` is scheduled again.
    ///
    /// During panic unwinding this is a no-op (state updates made by the
    /// caller still stand); the token is handed over when the unwinding
    /// thread finishes.
    fn yield_point(&self, me: usize, block: Option<TState>) {
        if std::thread::panicking() {
            return;
        }
        let mut s = self.lock_sched();
        if s.abandoned {
            drop(s);
            panic!("loom: execution abandoned after failure on another thread");
        }
        s.threads[me].state = block.unwrap_or(TState::Runnable);
        let next = Self::pick_next(&mut s, me);
        let Some(next) = next else {
            // No runnable thread anywhere, and `me` just blocked (a finished
            // thread goes through `finish_thread`, not here): deadlock.
            let report = Self::deadlock_report(&s);
            Self::abandon(&mut s);
            drop(s);
            panic!("loom: deadlock detected — no runnable thread\n{report}");
        };
        s.current = next;
        if next == me {
            return;
        }
        let grant = s.threads[next].parker.clone();
        let mine = s.threads[me].parker.clone();
        drop(s);
        grant.unpark();
        mine.park();
        let s = self.lock_sched();
        if s.abandoned {
            drop(s);
            panic!("loom: execution abandoned after failure on another thread");
        }
    }

    /// Choose the next thread to run. Returns `None` when nothing is
    /// runnable. Decisions below `pos` replay the recorded path; fresh
    /// decisions default to the continuation (no preemption) and are
    /// recorded with their full candidate set for later backtracking.
    fn pick_next(s: &mut Sched, me: usize) -> Option<usize> {
        let mut candidates: Vec<usize> = Vec::new();
        if s.threads[me].state == TState::Runnable {
            candidates.push(me);
        }
        for (tid, t) in s.threads.iter().enumerate() {
            if tid != me && t.state == TState::Runnable {
                candidates.push(tid);
            }
        }
        if candidates.is_empty() {
            return None;
        }
        if candidates.len() == 1 {
            // No decision to make; do not record a choice point.
            return Some(candidates[0]);
        }
        let cont = (s.threads[me].state == TState::Runnable).then_some(me);
        let picked = if s.pos < s.path.len() {
            let c = &s.path[s.pos];
            debug_assert_eq!(
                c.candidates, candidates,
                "loom: nondeterministic model — replay diverged at step {}",
                s.pos
            );
            c.picked
        } else {
            let picked = candidates[0];
            s.path.push(Choice {
                picked,
                candidates,
                cont,
            });
            picked
        };
        s.pos += 1;
        Some(picked)
    }

    fn deadlock_report(s: &Sched) -> String {
        let mut out = String::new();
        for (tid, t) in s.threads.iter().enumerate() {
            out.push_str(&format!("  thread {tid}: {:?}\n", t.state));
        }
        out
    }

    /// Mark `me` finished, wake joiners, and hand the token to the next
    /// runnable thread without parking (the OS thread is about to exit).
    fn finish_thread(
        &self,
        me: usize,
        result: Option<Box<dyn Any + Send>>,
        panic: Option<Box<dyn Any + Send>>,
    ) {
        let mut s = self.lock_sched();
        s.threads[me].state = TState::Finished;
        s.threads[me].result = result;
        s.threads[me].panic = panic;
        if s.abandoned {
            return;
        }
        for t in &mut s.threads {
            if t.state == TState::Join(me) || t.state == TState::JoinAll {
                t.state = TState::Runnable;
            }
        }
        match Self::pick_next(&mut s, me) {
            Some(next) => {
                s.current = next;
                let grant = s.threads[next].parker.clone();
                drop(s);
                grant.unpark();
            }
            None => {
                if s.threads.iter().any(|t| t.state != TState::Finished) {
                    // Someone is still blocked with no thread left to wake
                    // them: deadlock discovered at thread exit.
                    Self::abandon(&mut s);
                }
            }
        }
    }

    // -- mutex ----------------------------------------------------------

    fn acquire_mutex(&self, me: usize, oid: usize) {
        self.yield_point(me, None);
        loop {
            let mut s = self.lock_sched();
            if s.abandoned {
                drop(s);
                if std::thread::panicking() {
                    return;
                }
                panic!("loom: execution abandoned after failure on another thread");
            }
            if s.objects[oid].locked_by.is_none() {
                s.objects[oid].locked_by = Some(me);
                return;
            }
            drop(s);
            self.yield_point(me, Some(TState::MutexWait(oid)));
        }
    }

    fn release_mutex(&self, me: usize, oid: usize) {
        {
            let mut s = self.lock_sched();
            debug_assert_eq!(s.objects[oid].locked_by, Some(me));
            s.objects[oid].locked_by = None;
            for t in &mut s.threads {
                if t.state == TState::MutexWait(oid) {
                    t.state = TState::Runnable;
                }
            }
        }
        self.yield_point(me, None);
    }

    // -- rwlock ---------------------------------------------------------

    fn acquire_read(&self, me: usize, oid: usize) {
        self.yield_point(me, None);
        loop {
            let mut s = self.lock_sched();
            if s.abandoned {
                drop(s);
                panic!("loom: execution abandoned after failure on another thread");
            }
            if s.objects[oid].writer.is_none() {
                s.objects[oid].readers.push(me);
                return;
            }
            drop(s);
            self.yield_point(me, Some(TState::RwReadWait(oid)));
        }
    }

    fn acquire_write(&self, me: usize, oid: usize) {
        self.yield_point(me, None);
        loop {
            let mut s = self.lock_sched();
            if s.abandoned {
                drop(s);
                panic!("loom: execution abandoned after failure on another thread");
            }
            let o = &mut s.objects[oid];
            if o.writer.is_none() && o.readers.is_empty() {
                o.writer = Some(me);
                return;
            }
            drop(s);
            self.yield_point(me, Some(TState::RwWriteWait(oid)));
        }
    }

    fn release_rw(&self, me: usize, oid: usize, write: bool) {
        {
            let mut s = self.lock_sched();
            let o = &mut s.objects[oid];
            if write {
                debug_assert_eq!(o.writer, Some(me));
                o.writer = None;
            } else {
                let i = o
                    .readers
                    .iter()
                    .position(|&t| t == me)
                    .expect("reader not registered");
                o.readers.swap_remove(i);
            }
            for t in &mut s.threads {
                if t.state == TState::RwReadWait(oid) || t.state == TState::RwWriteWait(oid) {
                    t.state = TState::Runnable;
                }
            }
        }
        self.yield_point(me, None);
    }

    // -- condvar --------------------------------------------------------

    /// Atomically release the mutex `moid` and park on condvar `coid`.
    /// Returns after a notification; the caller reacquires the mutex.
    fn condvar_wait(&self, me: usize, coid: usize, moid: usize) {
        {
            let mut s = self.lock_sched();
            debug_assert_eq!(s.objects[moid].locked_by, Some(me));
            s.objects[moid].locked_by = None;
            for t in &mut s.threads {
                if t.state == TState::MutexWait(moid) {
                    t.state = TState::Runnable;
                }
            }
        }
        self.yield_point(me, Some(TState::CondWait(coid)));
    }

    fn notify(&self, me: usize, coid: usize, all: bool) {
        {
            let mut s = self.lock_sched();
            for t in &mut s.threads {
                if t.state == TState::CondWait(coid) {
                    t.state = TState::Runnable;
                    if !all {
                        break;
                    }
                }
            }
        }
        self.yield_point(me, None);
    }

    // -- join -----------------------------------------------------------

    fn join_thread(
        &self,
        me: usize,
        target: usize,
    ) -> Result<Box<dyn Any + Send>, Box<dyn Any + Send>> {
        self.yield_point(me, None);
        loop {
            let mut s = self.lock_sched();
            if s.abandoned {
                drop(s);
                panic!("loom: execution abandoned after failure on another thread");
            }
            if s.threads[target].state == TState::Finished {
                if let Some(p) = s.threads[target].panic.take() {
                    return Err(p);
                }
                return Ok(s.threads[target]
                    .result
                    .take()
                    .expect("thread result already taken"));
            }
            drop(s);
            self.yield_point(me, Some(TState::Join(target)));
        }
    }

    /// Thread 0 only: run the scheduler until every spawned thread finished.
    fn wait_all(&self) {
        loop {
            {
                let s = self.lock_sched();
                if s.abandoned {
                    return;
                }
                if s.threads[1..].iter().all(|t| t.state == TState::Finished) {
                    return;
                }
            }
            self.yield_point(0, Some(TState::JoinAll));
        }
    }
}

// ---------------------------------------------------------------------------
// DFS driver
// ---------------------------------------------------------------------------

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Compute the next unexplored schedule prefix, or `None` when the bounded
/// state space is exhausted. Alternatives that would exceed the preemption
/// bound are skipped.
fn next_prefix(path: &[Choice], bound: usize) -> Option<Vec<Choice>> {
    // preempts[i] = number of preemptions strictly before choice i.
    let mut preempts = Vec::with_capacity(path.len() + 1);
    let mut acc = 0usize;
    for c in path {
        preempts.push(acc);
        if c.cont.is_some() && Some(c.picked) != c.cont {
            acc += 1;
        }
    }
    preempts.push(acc);
    for i in (0..path.len()).rev() {
        let c = &path[i];
        let cur = c
            .candidates
            .iter()
            .position(|&t| t == c.picked)
            .expect("picked thread not in candidate set");
        for j in cur + 1..c.candidates.len() {
            let extra = usize::from(c.cont.is_some() && Some(c.candidates[j]) != c.cont);
            if preempts[i] + extra <= bound {
                let mut p = path[..=i].to_vec();
                p[i].picked = c.candidates[j];
                return Some(p);
            }
        }
    }
    None
}

/// Exhaustively explore every interleaving of `f`'s schedule points, up to
/// the preemption bound. Panics (propagating the model's own panic) on the
/// first failing execution; returns normally iff every explored execution
/// passes.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    CTX.with(|c| {
        assert!(c.borrow().is_none(), "loom::model may not be nested");
    });
    let bound = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iters = env_usize("LOOM_MAX_ITERATIONS", 200_000);
    let mut prefix: Vec<Choice> = Vec::new();
    let mut iters = 0usize;
    loop {
        iters += 1;
        assert!(
            iters <= max_iters,
            "loom: exceeded LOOM_MAX_ITERATIONS={max_iters} executions; \
             simplify the model or raise the cap"
        );
        let exec = StdArc::new(Exec::new(prefix.clone()));
        CTX.with(|c| *c.borrow_mut() = Some((exec.clone(), 0)));
        let run = catch_unwind(AssertUnwindSafe(|| {
            f();
            exec.wait_all();
        }));
        let failure = match run {
            Ok(()) => {
                // The closure completed; fail if any spawned thread
                // panicked and nobody harvested it via join().
                let mut s = exec.lock_sched();
                let panicked = s.threads.iter_mut().find_map(|t| t.panic.take());
                if panicked.is_some() {
                    Exec::abandon(&mut s);
                }
                drop(s);
                panicked
            }
            Err(p) => {
                let mut s = exec.lock_sched();
                Exec::abandon(&mut s);
                drop(s);
                Some(p)
            }
        };
        // Reap every OS thread of this execution before deciding anything;
        // abandoned threads unwind on their own once unparked.
        let handles =
            std::mem::take(&mut *exec.os_handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        CTX.with(|c| *c.borrow_mut() = None);
        if let Some(p) = failure {
            eprintln!(
                "loom: model failed on execution {iters} (schedule length {})",
                exec.lock_sched().path.len()
            );
            resume_unwind(p);
        }
        let path = std::mem::take(&mut exec.lock_sched().path);
        match next_prefix(&path, bound) {
            Some(p) => prefix = p,
            None => break,
        }
    }
    if std::env::var("LOOM_LOG").is_ok() {
        eprintln!("loom: explored {iters} executions (preemption bound {bound})");
    }
}

/// Model-building entry point mirroring `loom::model::Builder`.
pub mod builder {
    /// Configures and runs a model (subset of loom's `Builder`).
    #[derive(Default)]
    pub struct Builder {
        /// Maximum involuntary context switches per execution; `None` uses
        /// the `LOOM_MAX_PREEMPTIONS` env default.
        pub preemption_bound: Option<usize>,
    }

    impl Builder {
        /// New builder with default bounds.
        pub fn new() -> Self {
            Self::default()
        }

        /// Run `f` under the checker with this configuration.
        pub fn check<F>(&self, f: F)
        where
            F: Fn() + Send + Sync + 'static,
        {
            if let Some(b) = self.preemption_bound {
                std::env::set_var("LOOM_MAX_PREEMPTIONS", b.to_string());
            }
            super::model(f);
        }
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

/// Model-aware replacement for `std::thread` (spawn / yield_now / JoinHandle).
pub mod thread {
    use super::*;
    use std::marker::PhantomData;

    /// Handle to a model thread; `join` returns the closure's value.
    pub struct JoinHandle<T> {
        exec: StdArc<Exec>,
        tid: usize,
        _t: PhantomData<T>,
    }

    impl<T: 'static> JoinHandle<T> {
        /// Wait for the thread to finish and return its result, exploring
        /// schedules where it has and has not finished yet.
        pub fn join(self) -> std::thread::Result<T> {
            let (_, me) = cur_ctx();
            match self.exec.join_thread(me, self.tid) {
                Ok(b) => Ok(*b.downcast::<T>().expect("join result type mismatch")),
                Err(p) => Err(p),
            }
        }
    }

    /// Spawn a model thread. The OS thread parks until the scheduler grants
    /// it the token; panics inside `f` fail the whole model unless harvested
    /// by `join`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, me) = cur_ctx();
        let tid = exec.register_thread();
        let texec = exec.clone();
        let os = std::thread::Builder::new()
            .name(format!("loom-{tid}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((texec.clone(), tid)));
                // Bind the parker before parking: a `lock_sched().…park()`
                // chain would hold the scheduler mutex across the park.
                let parker = texec.lock_sched().threads[tid].parker.clone();
                parker.park();
                {
                    let s = texec.lock_sched();
                    if s.abandoned {
                        drop(s);
                        texec.finish_thread(tid, None, None);
                        return;
                    }
                }
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => texec.finish_thread(tid, Some(Box::new(v)), None),
                    Err(p) => {
                        // Distinguish "this thread hit the model's own
                        // assertion" from "this thread was unwound because
                        // the model was already being torn down".
                        let abandoned = texec.lock_sched().abandoned;
                        texec.finish_thread(tid, None, (!abandoned).then_some(p));
                    }
                }
            })
            .expect("failed to spawn loom thread");
        exec.os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(os);
        exec.yield_point(me, None);
        JoinHandle {
            exec,
            tid,
            _t: PhantomData,
        }
    }

    /// Voluntary schedule point.
    pub fn yield_now() {
        let (exec, me) = cur_ctx();
        exec.yield_point(me, None);
    }
}

// ---------------------------------------------------------------------------
// sync
// ---------------------------------------------------------------------------

/// Model-aware replacements for `std::sync` primitives.
pub mod sync {
    use super::*;

    pub use std::sync::Arc;
    pub use std::sync::{LockResult, PoisonError};

    /// Model-aware mutex: logical ownership is decided by the scheduler
    /// (exploring contention orders); the data itself sits in an inner,
    /// never-contended `std::sync::Mutex`.
    pub struct Mutex<T> {
        exec: StdArc<Exec>,
        oid: usize,
        inner: StdMutex<T>,
    }

    impl<T> Mutex<T> {
        /// Create a mutex registered with the current model execution.
        pub fn new(value: T) -> Self {
            let (exec, _) = cur_ctx();
            let oid = exec.new_object();
            Mutex {
                exec,
                oid,
                inner: StdMutex::new(value),
            }
        }

        /// Acquire, exploring every contention interleaving.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let (_, me) = cur_ctx();
            self.exec.acquire_mutex(me, self.oid);
            let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            Ok(MutexGuard {
                lock: self,
                inner: Some(g),
            })
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    /// Guard for [`Mutex`]; releasing is a schedule point.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard invalidated")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard invalidated")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.take().is_some() {
                let (_, me) = cur_ctx();
                self.lock.exec.release_mutex(me, self.lock.oid);
            }
        }
    }

    /// Model-aware condition variable with real lost-wakeup semantics:
    /// a notify with no waiter is dropped, so missing-notify bugs surface
    /// as model deadlocks.
    pub struct Condvar {
        exec: StdArc<Exec>,
        oid: usize,
    }

    impl Condvar {
        /// Create a condvar registered with the current model execution.
        pub fn new() -> Self {
            let (exec, _) = cur_ctx();
            let oid = exec.new_object();
            Condvar { exec, oid }
        }

        /// Atomically release the guard's mutex and wait for a notify, then
        /// reacquire (exploring every wake/reacquire interleaving).
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let (_, me) = cur_ctx();
            let lock = guard.lock;
            // Drop the inner std guard first so the next logical owner can
            // take it; the logical release happens inside condvar_wait.
            drop(guard.inner.take());
            self.exec.condvar_wait(me, self.oid, lock.oid);
            self.exec.acquire_mutex(me, lock.oid);
            let g = lock.inner.lock().unwrap_or_else(|e| e.into_inner());
            Ok(MutexGuard {
                lock,
                inner: Some(g),
            })
        }

        /// Wake one waiter (lowest thread id first — deterministic).
        pub fn notify_one(&self) {
            let (_, me) = cur_ctx();
            self.exec.notify(me, self.oid, false);
        }

        /// Wake every current waiter.
        pub fn notify_all(&self) {
            let (_, me) = cur_ctx();
            self.exec.notify(me, self.oid, true);
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    /// Model-aware reader-writer lock.
    pub struct RwLock<T> {
        exec: StdArc<Exec>,
        oid: usize,
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// Create an rwlock registered with the current model execution.
        pub fn new(value: T) -> Self {
            let (exec, _) = cur_ctx();
            let oid = exec.new_object();
            RwLock {
                exec,
                oid,
                inner: std::sync::RwLock::new(value),
            }
        }

        /// Shared acquire.
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            let (_, me) = cur_ctx();
            self.exec.acquire_read(me, self.oid);
            let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
            Ok(RwLockReadGuard {
                lock: self,
                inner: Some(g),
            })
        }

        /// Exclusive acquire.
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            let (_, me) = cur_ctx();
            self.exec.acquire_write(me, self.oid);
            let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
            Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(g),
            })
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("RwLock").finish_non_exhaustive()
        }
    }

    /// Shared guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T> {
        lock: &'a RwLock<T>,
        inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    }

    impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard invalidated")
        }
    }

    impl<T> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.take().is_some() {
                let (_, me) = cur_ctx();
                self.lock.exec.release_rw(me, self.lock.oid, false);
            }
        }
    }

    /// Exclusive guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T> {
        lock: &'a RwLock<T>,
        inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    }

    impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard invalidated")
        }
    }

    impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard invalidated")
        }
    }

    impl<T> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.take().is_some() {
                let (_, me) = cur_ctx();
                self.lock.exec.release_rw(me, self.lock.oid, true);
            }
        }
    }

    /// Model-aware atomics. Every operation is a schedule point and runs
    /// sequentially consistent regardless of the requested ordering (the
    /// checker explores interleavings, not weak-memory reorderings).
    pub mod atomic {
        use super::super::cur_ctx;
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_type {
            ($name:ident, $std:ty, $prim:ty) => {
                /// Model-aware atomic; every op is a schedule point, run SeqCst.
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    /// New atomic with the given initial value.
                    pub fn new(v: $prim) -> Self {
                        Self {
                            inner: <$std>::new(v),
                        }
                    }

                    /// Load (schedule point; SeqCst).
                    pub fn load(&self, _o: Ordering) -> $prim {
                        let (exec, me) = cur_ctx();
                        exec.yield_point(me, None);
                        self.inner.load(Ordering::SeqCst)
                    }

                    /// Store (schedule point; SeqCst).
                    pub fn store(&self, v: $prim, _o: Ordering) {
                        let (exec, me) = cur_ctx();
                        exec.yield_point(me, None);
                        self.inner.store(v, Ordering::SeqCst)
                    }

                    /// Swap (schedule point; SeqCst).
                    pub fn swap(&self, v: $prim, _o: Ordering) -> $prim {
                        let (exec, me) = cur_ctx();
                        exec.yield_point(me, None);
                        self.inner.swap(v, Ordering::SeqCst)
                    }

                    /// Compare-exchange (schedule point; SeqCst).
                    pub fn compare_exchange(
                        &self,
                        cur: $prim,
                        new: $prim,
                        _s: Ordering,
                        _f: Ordering,
                    ) -> Result<$prim, $prim> {
                        let (exec, me) = cur_ctx();
                        exec.yield_point(me, None);
                        self.inner
                            .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                    }
                }
            };
        }

        atomic_type!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        atomic_type!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        atomic_type!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        macro_rules! atomic_arith {
            ($name:ident, $prim:ty) => {
                impl $name {
                    /// Fetch-add (schedule point; SeqCst).
                    pub fn fetch_add(&self, v: $prim, _o: Ordering) -> $prim {
                        let (exec, me) = cur_ctx();
                        exec.yield_point(me, None);
                        self.inner.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Fetch-sub (schedule point; SeqCst).
                    pub fn fetch_sub(&self, v: $prim, _o: Ordering) -> $prim {
                        let (exec, me) = cur_ctx();
                        exec.yield_point(me, None);
                        self.inner.fetch_sub(v, Ordering::SeqCst)
                    }

                    /// Fetch-max (schedule point; SeqCst).
                    pub fn fetch_max(&self, v: $prim, _o: Ordering) -> $prim {
                        let (exec, me) = cur_ctx();
                        exec.yield_point(me, None);
                        self.inner.fetch_max(v, Ordering::SeqCst)
                    }
                }
            };
        }

        atomic_arith!(AtomicU64, u64);
        atomic_arith!(AtomicUsize, usize);

        impl AtomicBool {
            /// Fetch-or (schedule point; SeqCst).
            pub fn fetch_or(&self, v: bool, _o: Ordering) -> bool {
                let (exec, me) = cur_ctx();
                exec.yield_point(me, None);
                self.inner.fetch_or(v, Ordering::SeqCst)
            }
        }
    }
}

// Keep the unused import warning away when the HashMap-based object table is
// not used (objects live in a Vec); HashMap stays available for future use.
#[allow(unused)]
type _Unused = HashMap<usize, usize>;
#[allow(unused)]
type _Unused2 = StdOrdering;

// ---------------------------------------------------------------------------
// Self-tests: the checker must both pass correct code and catch seeded bugs.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use super::*;

    fn catches<F: Fn() + Send + Sync + 'static>(f: F) -> bool {
        catch_unwind(AssertUnwindSafe(|| model(f))).is_err()
    }

    #[test]
    fn mutex_counter_passes() {
        model(|| {
            let c = Arc::new(Mutex::new(0u64));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let c = c.clone();
                hs.push(thread::spawn(move || {
                    *c.lock().unwrap() += 1;
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*c.lock().unwrap(), 2);
        });
    }

    #[test]
    fn lost_update_is_caught() {
        // load-modify-store without a lock: the checker must find the
        // interleaving where one increment is lost.
        assert!(catches(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let c = c.clone();
                hs.push(thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2);
        }));
    }

    #[test]
    fn ab_ba_deadlock_is_caught() {
        assert!(catches(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let h = thread::spawn(move || {
                let _g1 = b2.lock().unwrap();
                let _g2 = a2.lock().unwrap();
            });
            {
                let _g1 = a.lock().unwrap();
                let _g2 = b.lock().unwrap();
            }
            let _ = h.join();
        }));
    }

    #[test]
    fn missing_notify_is_caught_as_deadlock() {
        assert!(catches(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = pair.clone();
            let h = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut ready = m.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            });
            {
                let (m, _cv) = &*pair;
                // Seeded bug: flag set but no notify — the schedule where
                // the consumer waits first deadlocks.
                *m.lock().unwrap() = true;
            }
            let _ = h.join();
        }));
    }

    #[test]
    fn correct_condvar_passes() {
        model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = pair.clone();
            let h = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut ready = m.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            });
            {
                let (m, cv) = &*pair;
                *m.lock().unwrap() = true;
                cv.notify_one();
            }
            h.join().unwrap();
        });
    }

    #[test]
    fn rwlock_readers_exclude_writer() {
        model(|| {
            let l = Arc::new(sync::RwLock::new(0u64));
            let l2 = l.clone();
            let h = thread::spawn(move || {
                *l2.write().unwrap() += 1;
            });
            {
                let r = l.read().unwrap();
                // A reader never observes a torn intermediate state: the
                // value is 0 or 1, and stable while held.
                let v = *r;
                assert!(v <= 1);
                assert_eq!(*r, v);
            }
            h.join().unwrap();
        });
    }

    #[test]
    fn join_returns_value() {
        model(|| {
            let h = thread::spawn(|| 42u32);
            assert_eq!(h.join().unwrap(), 42);
        });
    }
}
