//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use —
//! [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`] — over a simple adaptive wall-clock timer: each
//! benchmark is warmed up, then timed in growing batches until the
//! measurement window is filled, and the mean per-iteration time is
//! printed in a criterion-like format.
//!
//! No statistics, plots, or baselines; the point is that `cargo bench`
//! runs offline and reports honest relative timings.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    /// Measurement window; tuned by `sample_size` at the group level.
    window: Duration,
    /// Result of the last `iter` call, for reporting.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `f`, storing the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow the batch until it
        // fills ~1/8 of the window, then measure full batches.
        black_box(f());
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = start.elapsed();
            if took * 8 >= self.window || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.window {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    window: Duration,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes sample counts; here it scales the measurement
    /// window (smaller samples → shorter window for slow benches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let n = n.clamp(2, 200) as u32;
        self.window = Criterion::DEFAULT_WINDOW * n / 100;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            window: self.window,
            mean_ns: f64::NAN,
            iters: 0,
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id);
        println!(
            "{full:<56} time: [{}]  ({} iterations)",
            human(bencher.mean_ns),
            bencher.iters
        );
        self.criterion.results.push((full, bencher.mean_ns));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    window: Duration,
    /// `(benchmark id, mean ns)` for every finished benchmark.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    const DEFAULT_WINDOW: Duration = Duration::from_millis(300);

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let window = self.window;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            window,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, &mut f);
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            window: Self::DEFAULT_WINDOW,
            results: Vec::new(),
        }
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches`
            // passes `--test`, where running full measurements would be
            // wastefully slow, so only smoke-run in that mode.
            let test_mode = std::env::args().any(|a| a == "--test");
            if test_mode {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            window: Duration::from_millis(5),
            results: Vec::new(),
        };
        let mut g = c.benchmark_group("g");
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1 >= 0.0);
    }

    #[test]
    fn human_units() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("µs"));
        assert!(human(12_000_000.0).ends_with("ms"));
    }
}
