//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the surface the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded via
//! SplitMix64), integer `gen_range` over `Range`/`RangeInclusive`, and
//! slice `shuffle`/`choose`. The streams are *not* value-compatible
//! with upstream `rand` — seeds produce different sequences — but every
//! consumer in this workspace only needs determinism, not upstream
//! parity.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling helpers over an [`RngCore`] (the user-facing trait).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive integer range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A random `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types `gen_range` can produce.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `u128` (shifting signed values into unsigned order).
    fn to_u128(self) -> u128;
    /// Inverse of [`SampleUniform::to_u128`].
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 {
                (self as $u ^ (1 << (<$u>::BITS - 1))) as u128
            }
            fn from_u128(v: u128) -> Self {
                (v as $u ^ (1 << (<$u>::BITS - 1))) as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn draw_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Rejection-free multiply-shift would need 128x128; a simple modulo
    // is fine here (spans are tiny next to 2^64 in every caller).
    if span <= u64::MAX as u128 {
        (rng.next_u64() % span as u64) as u128
    } else {
        let hi = (rng.next_u64() as u128) << 64;
        (hi | rng.next_u64() as u128) % span
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u128();
        let hi = self.end.to_u128();
        assert!(lo < hi, "cannot sample empty range");
        T::from_u128(lo + draw_below(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u128();
        let hi = self.end().to_u128();
        assert!(lo <= hi, "cannot sample empty range");
        T::from_u128(lo + draw_below(rng, hi - lo + 1))
    }
}

/// Seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding recipe.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
