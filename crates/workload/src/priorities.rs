//! Priority-assignment policies.
//!
//! The paper draws priorities uniformly at random; the companion
//! literature it cites (Mutka) brings *rate-monotonic* assignment from
//! processor scheduling: shorter period = higher priority. These
//! helpers re-assign the priorities of an existing spec list so the two
//! policies can be compared on identical traffic.

use rtwc_core::StreamSpec;

/// Re-assigns priorities rate-monotonically: the stream with the
/// shortest period gets the highest priority (ties keep their original
/// relative order). With `levels` available priority levels, the sorted
/// streams are split into equally-sized bands.
pub fn assign_rate_monotonic(specs: &[StreamSpec], levels: u32) -> Vec<StreamSpec> {
    assert!(levels >= 1, "need at least one priority level");
    let n = specs.len();
    // Rank streams by period ascending (stable: ties keep input order).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| specs[i].period);
    let mut out = specs.to_vec();
    for (rank, &i) in order.iter().enumerate() {
        // rank 0 = shortest period = highest priority level.
        let band = (rank as u64 * levels as u64 / n.max(1) as u64) as u32;
        out[i].priority = levels - band;
    }
    out
}

/// Re-assigns priorities deadline-monotonically (shortest deadline =
/// highest priority), the generalization used when `D < T`.
pub fn assign_deadline_monotonic(specs: &[StreamSpec], levels: u32) -> Vec<StreamSpec> {
    assert!(levels >= 1, "need at least one priority level");
    let n = specs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| specs[i].deadline);
    let mut out = specs.to_vec();
    for (rank, &i) in order.iter().enumerate() {
        let band = (rank as u64 * levels as u64 / n.max(1) as u64) as u32;
        out[i].priority = levels - band;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormnet_topology::NodeId;

    fn spec(t: u64, d: u64) -> StreamSpec {
        StreamSpec::new(NodeId(0), NodeId(1), 1, t, 2, d)
    }

    #[test]
    fn rm_orders_by_period() {
        let specs = vec![spec(300, 300), spec(100, 100), spec(200, 200)];
        let rm = assign_rate_monotonic(&specs, 3);
        assert_eq!(rm[1].priority, 3, "shortest period = top priority");
        assert_eq!(rm[2].priority, 2);
        assert_eq!(rm[0].priority, 1);
        // Everything else untouched.
        assert_eq!(rm[0].period, 300);
    }

    #[test]
    fn rm_bands_with_fewer_levels() {
        let specs: Vec<StreamSpec> = (1..=6).map(|i| spec(i * 10, i * 10)).collect();
        let rm = assign_rate_monotonic(&specs, 2);
        let prios: Vec<u32> = rm.iter().map(|s| s.priority).collect();
        assert_eq!(prios, vec![2, 2, 2, 1, 1, 1]);
    }

    #[test]
    fn dm_orders_by_deadline() {
        let specs = vec![spec(100, 90), spec(100, 30), spec(100, 60)];
        let dm = assign_deadline_monotonic(&specs, 3);
        assert_eq!(dm[1].priority, 3);
        assert_eq!(dm[2].priority, 2);
        assert_eq!(dm[0].priority, 1);
    }

    #[test]
    fn ties_are_stable() {
        let specs = vec![spec(100, 100), spec(100, 100)];
        let rm = assign_rate_monotonic(&specs, 2);
        assert_eq!(rm[0].priority, 2, "first input wins the tie");
        assert_eq!(rm[1].priority, 1);
    }

    #[test]
    fn single_level_flattens() {
        let specs = vec![spec(10, 10), spec(20, 20)];
        let rm = assign_rate_monotonic(&specs, 1);
        assert!(rm.iter().all(|s| s.priority == 1));
    }
}
