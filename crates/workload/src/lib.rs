//! # rtwc-workload
//!
//! Workload generators for real-time wormhole-network experiments.
//!
//! * [`paper`] — the ICPP'98 evaluation workload: uniformly random
//!   periodic streams on a 10x10 mesh (at most one per node), with the
//!   paper's period-inflation rule `T_i := max(T_i, U_i)`.
//! * [`scenarios`] — structured patterns (transpose, hotspot,
//!   nearest-neighbor, pipeline) for the example applications.
//! * [`builder`] — a fluent [`ScenarioBuilder`] for hand-written sets.
//!
//! All generators are deterministic functions of their seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod paper;
pub mod priorities;
pub mod scenarios;

pub use builder::ScenarioBuilder;
pub use paper::{generate, GeneratedWorkload, PaperWorkloadConfig};
pub use priorities::{assign_deadline_monotonic, assign_rate_monotonic};
pub use scenarios::{
    bit_reversal, hotspot, nearest_neighbor, pipeline, random_permutation, random_phases,
    transpose, zero_phases,
};
