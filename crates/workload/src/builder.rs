//! Fluent builder for hand-crafted stream sets on a mesh.

use rtwc_core::{AnalysisError, StreamSet, StreamSpec};
use wormnet_topology::{Mesh, Topology, XyRouting};

/// Builds a [`StreamSet`] on a 2-D mesh with X-Y routing, one stream at
/// a time, using mesh coordinates directly (the way the paper writes its
/// examples).
///
/// ```
/// use rtwc_workload::ScenarioBuilder;
///
/// let set = ScenarioBuilder::mesh2d(10, 10)
///     .stream((7, 3), (7, 7), 5, 150, 4)
///     .stream((1, 1), (5, 4), 4, 100, 2)
///     .build()
///     .unwrap();
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    mesh: Mesh,
    specs: Vec<StreamSpec>,
}

impl ScenarioBuilder {
    /// Starts a scenario on a `width x height` mesh.
    pub fn mesh2d(width: u32, height: u32) -> Self {
        ScenarioBuilder {
            mesh: Mesh::mesh2d(width, height),
            specs: Vec::new(),
        }
    }

    /// Adds a stream with deadline equal to its period.
    ///
    /// # Panics
    /// Panics if either coordinate is outside the mesh.
    pub fn stream(
        mut self,
        source: (u32, u32),
        dest: (u32, u32),
        priority: u32,
        period: u64,
        length: u64,
    ) -> Self {
        self = self.stream_with_deadline(source, dest, priority, period, length, period);
        self
    }

    /// Adds a stream with an explicit deadline.
    pub fn stream_with_deadline(
        mut self,
        source: (u32, u32),
        dest: (u32, u32),
        priority: u32,
        period: u64,
        length: u64,
        deadline: u64,
    ) -> Self {
        let s = self
            .mesh
            .node_at(&[source.0, source.1])
            .unwrap_or_else(|| panic!("source {source:?} outside mesh"));
        let d = self
            .mesh
            .node_at(&[dest.0, dest.1])
            .unwrap_or_else(|| panic!("dest {dest:?} outside mesh"));
        self.specs
            .push(StreamSpec::new(s, d, priority, period, length, deadline));
        self
    }

    /// Appends pre-built specs (e.g. from `scenarios`).
    pub fn extend(mut self, specs: impl IntoIterator<Item = StreamSpec>) -> Self {
        self.specs.extend(specs);
        self
    }

    /// The mesh under construction.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Number of streams added so far.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when no streams were added.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Resolves the scenario into a routed, validated stream set (and
    /// the mesh it lives on).
    pub fn build(self) -> Result<StreamSet, AnalysisError> {
        StreamSet::resolve(&self.mesh, &XyRouting, &self.specs)
    }

    /// Like [`ScenarioBuilder::build`] but also hands back the mesh.
    pub fn build_with_mesh(self) -> Result<(Mesh, StreamSet), AnalysisError> {
        let set = StreamSet::resolve(&self.mesh, &XyRouting, &self.specs)?;
        Ok((self.mesh, set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtwc_core::StreamId;

    #[test]
    fn builds_paper_example_geometry() {
        let set = ScenarioBuilder::mesh2d(10, 10)
            .stream((7, 3), (7, 7), 5, 15, 4)
            .stream((1, 1), (5, 4), 4, 10, 2)
            .stream((2, 1), (7, 5), 3, 40, 4)
            .build()
            .unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.get(StreamId(0)).latency, 7);
        assert_eq!(set.get(StreamId(1)).latency, 8);
        assert_eq!(set.get(StreamId(2)).latency, 12);
    }

    #[test]
    fn explicit_deadline() {
        let set = ScenarioBuilder::mesh2d(4, 4)
            .stream_with_deadline((0, 0), (3, 0), 1, 100, 2, 55)
            .build()
            .unwrap();
        assert_eq!(set.get(StreamId(0)).deadline(), 55);
        assert_eq!(set.get(StreamId(0)).period(), 100);
    }

    #[test]
    fn extend_with_scenario() {
        let b = ScenarioBuilder::mesh2d(4, 4);
        let specs = crate::scenarios::nearest_neighbor(b.mesh(), 1, 100, 2);
        let b = b.extend(specs);
        assert!(!b.is_empty());
        assert_eq!(b.len(), 3 * 4);
        b.build().unwrap();
    }

    #[test]
    fn empty_build_errors() {
        assert!(ScenarioBuilder::mesh2d(3, 3).build().is_err());
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn bad_coordinate_panics() {
        ScenarioBuilder::mesh2d(3, 3).stream((5, 0), (0, 0), 1, 10, 2);
    }
}
