//! The paper's §5 evaluation workload: random periodic streams on a
//! 10x10 mesh, with the period-inflation rule.
//!
//! From the paper: "PNs are interconnected in a 10x10 two dimensional
//! mesh and X-Y routing is used. Each PN is a source of at most one
//! message stream and the corresponding destination node is selected
//! using a spatial uniform distribution. [...] The maximum message size
//! C_i is uniformly distributed between 1 and 40. All message streams
//! are periodic. Minimum message inter-generation time T_i is uniformly
//! distributed between 40 and 90. If the calculated U_i is larger
//! than T_i, we increased T_i to accommodate all generated traffics.
//! [...] Each message stream has a priority value P_i with probability
//! 1 / (the number of priority levels)." (Numeric ranges restore the
//! trailing zeros the scanned text drops; this reading reproduces the
//! published ratio shapes — see DESIGN.md §2 and EXPERIMENTS.md.)

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rtwc_core::{generate_hp, AnalysisScratch, DelayBound, StreamId, StreamSet, StreamSpec};
use wormnet_topology::{Mesh, NodeId, Topology, XyRouting};

/// Parameters of the paper workload generator.
#[derive(Clone, Debug)]
pub struct PaperWorkloadConfig {
    /// Mesh width (paper: 10).
    pub width: u32,
    /// Mesh height (paper: 10).
    pub height: u32,
    /// Number of message streams (paper: 20 or 60; at most one per
    /// node).
    pub num_streams: usize,
    /// Number of priority levels; priorities are drawn uniformly from
    /// `1..=priority_levels`.
    pub priority_levels: u32,
    /// Inclusive range of maximum message sizes `C_i` in flits.
    pub c_range: (u64, u64),
    /// Inclusive range of periods `T_i` in flit times.
    pub t_range: (u64, u64),
    /// Largest horizon tried when searching for `U_i` during period
    /// inflation; a stream whose bound is not found below this keeps
    /// `T_i = horizon_cap` and is flagged unbounded.
    pub horizon_cap: u64,
    /// Apply the paper's period-inflation rule `T_i := max(T_i, U_i)`.
    /// Disable for pure simulation studies that want the raw (possibly
    /// overloaded) traffic mix; bounds are still reported.
    pub inflate_periods: bool,
    /// RNG seed; the whole workload is a pure function of the config.
    pub seed: u64,
}

impl Default for PaperWorkloadConfig {
    fn default() -> Self {
        PaperWorkloadConfig {
            width: 10,
            height: 10,
            num_streams: 20,
            priority_levels: 1,
            c_range: (1, 40),
            t_range: (40, 90),
            horizon_cap: 200_000,
            inflate_periods: true,
            seed: 0x1c99_1998,
        }
    }
}

/// A generated evaluation workload: the resolved stream set (after
/// period inflation) and the delay upper bound of every stream.
#[derive(Clone, Debug)]
pub struct GeneratedWorkload {
    /// The mesh the streams live on.
    pub mesh: Mesh,
    /// The stream set, periods already inflated to `max(T_i, U_i)`.
    pub set: StreamSet,
    /// `U_i` per stream (over the capped horizon).
    pub bounds: Vec<DelayBound>,
    /// The generating configuration.
    pub config: PaperWorkloadConfig,
}

impl GeneratedWorkload {
    /// Streams whose bound was not found within the horizon cap.
    pub fn unbounded_streams(&self) -> Vec<StreamId> {
        self.set
            .ids()
            .filter(|&id| !self.bounds[id.index()].is_bounded())
            .collect()
    }
}

/// Draws the raw stream specs (before period inflation).
fn draw_specs(cfg: &PaperWorkloadConfig, mesh: &Mesh, rng: &mut StdRng) -> Vec<StreamSpec> {
    let num_nodes = mesh.num_nodes();
    assert!(
        cfg.num_streams <= num_nodes,
        "at most one stream per node: {} streams on {} nodes",
        cfg.num_streams,
        num_nodes
    );
    assert!(cfg.priority_levels >= 1, "need at least one priority level");
    assert!(cfg.c_range.0 >= 1 && cfg.c_range.0 <= cfg.c_range.1);
    assert!(cfg.t_range.0 >= 1 && cfg.t_range.0 <= cfg.t_range.1);

    // Each PN sources at most one stream: sample sources without
    // replacement.
    let mut nodes: Vec<NodeId> = mesh.nodes();
    nodes.shuffle(rng);
    let sources = &nodes[..cfg.num_streams];

    sources
        .iter()
        .map(|&src| {
            // Spatially uniform destination, distinct from the source.
            let dest = loop {
                let d = NodeId(rng.gen_range(0..num_nodes as u32));
                if d != src {
                    break d;
                }
            };
            let priority = rng.gen_range(1..=cfg.priority_levels);
            let c = rng.gen_range(cfg.c_range.0..=cfg.c_range.1);
            let t = rng.gen_range(cfg.t_range.0..=cfg.t_range.1);
            StreamSpec::new(src, dest, priority, t, c, t)
        })
        .collect()
}

/// Finds `U` for one stream, doubling the horizon from the stream's
/// period until the bound is found or the cap is passed. The HP set
/// depends only on routes and priorities, never the horizon, so it is
/// built once for the whole doubling loop; the caller's scratch arena
/// is reused across every probe.
fn bound_with_escalating_horizon(
    scratch: &mut AnalysisScratch,
    set: &StreamSet,
    id: StreamId,
    cap: u64,
) -> DelayBound {
    let hp = generate_hp(set, id);
    let mut horizon = set.get(id).period().max(1);
    loop {
        match scratch.delay_bound(set, &hp, horizon) {
            DelayBound::Bounded(u) => return DelayBound::Bounded(u),
            DelayBound::Exceeded if horizon >= cap => return DelayBound::Exceeded,
            DelayBound::Exceeded => horizon = (horizon * 2).min(cap),
        }
    }
}

/// Generates the paper's workload: draw streams, then apply the
/// period-inflation rule in decreasing priority order (each `U_i`
/// depends only on streams of priority >= `P_i`, whose periods are
/// final by the time `M_i` is processed; inflating a later period never
/// increases an earlier bound).
///
/// # Examples
///
/// ```
/// use rtwc_workload::{generate, PaperWorkloadConfig};
///
/// let w = generate(PaperWorkloadConfig {
///     num_streams: 20,
///     priority_levels: 5,
///     seed: 42,
///     ..PaperWorkloadConfig::default()
/// });
/// assert_eq!(w.set.len(), 20);
/// // Every bounded stream satisfies the inflation guarantee U <= T.
/// for id in w.set.ids() {
///     if let Some(u) = w.bounds[id.index()].value() {
///         assert!(u <= w.set.get(id).period());
///     }
/// }
/// ```
pub fn generate(cfg: PaperWorkloadConfig) -> GeneratedWorkload {
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let specs = draw_specs(&cfg, &mesh, &mut rng);
    let mut set = StreamSet::resolve(&mesh, &XyRouting, &specs).expect("generated specs are valid");

    let mut scratch = AnalysisScratch::new();

    // Period inflation, highest priority first.
    if cfg.inflate_periods {
        for id in set.by_decreasing_priority() {
            let bound = bound_with_escalating_horizon(&mut scratch, &set, id, cfg.horizon_cap);
            let t = set.get(id).period();
            let new_t = match bound {
                DelayBound::Bounded(u) if u > t => u,
                DelayBound::Bounded(_) => t,
                DelayBound::Exceeded => cfg.horizon_cap,
            };
            if new_t != t {
                set = set.with_period(id, new_t, new_t);
            }
        }
    }

    // Final bounds against the inflated set.
    let bounds: Vec<DelayBound> = set
        .ids()
        .map(|id| bound_with_escalating_horizon(&mut scratch, &set, id, cfg.horizon_cap))
        .collect();

    GeneratedWorkload {
        mesh,
        set,
        bounds,
        config: cfg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64, streams: usize, plevels: u32) -> PaperWorkloadConfig {
        PaperWorkloadConfig {
            num_streams: streams,
            priority_levels: plevels,
            seed,
            ..PaperWorkloadConfig::default()
        }
    }

    #[test]
    fn generates_requested_stream_count() {
        let w = generate(small(1, 20, 4));
        assert_eq!(w.set.len(), 20);
        assert_eq!(w.bounds.len(), 20);
    }

    #[test]
    fn sources_are_distinct() {
        let w = generate(small(2, 60, 5));
        let mut sources: Vec<_> = w.set.iter().map(|s| s.spec.source).collect();
        sources.sort();
        sources.dedup();
        assert_eq!(sources.len(), 60, "each PN sources at most one stream");
    }

    #[test]
    fn parameters_within_ranges() {
        let w = generate(small(3, 30, 3));
        for s in w.set.iter() {
            assert!(s.max_length() >= 1 && s.max_length() <= 40);
            assert!((1..=3).contains(&s.priority()));
            // Period may exceed 90 after inflation but never shrinks
            // below the drawn minimum.
            assert!(s.period() >= 40);
            assert_eq!(s.deadline(), s.period());
        }
    }

    #[test]
    fn inflation_guarantees_u_le_t() {
        let w = generate(small(4, 20, 4));
        for id in w.set.ids() {
            if let DelayBound::Bounded(u) = w.bounds[id.index()] {
                assert!(
                    u <= w.set.get(id).period(),
                    "{id:?}: U={u} > T={}",
                    w.set.get(id).period()
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate(small(7, 20, 4));
        let b = generate(small(7, 20, 4));
        for (x, y) in a.set.iter().zip(b.set.iter()) {
            assert_eq!(x.spec, y.spec);
        }
        assert_eq!(a.bounds, b.bounds);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(small(8, 20, 4));
        let b = generate(small(9, 20, 4));
        let same = a
            .set
            .iter()
            .zip(b.set.iter())
            .all(|(x, y)| x.spec == y.spec);
        assert!(!same);
    }

    #[test]
    #[should_panic(expected = "at most one stream per node")]
    fn too_many_streams_panics() {
        generate(small(1, 101, 1));
    }
}
