//! Domain-flavored workload scenarios beyond the paper's random
//! evaluation mix: the communication patterns the paper's introduction
//! motivates (cooperating periodic jobs spread over a multicomputer).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtwc_core::StreamSpec;
use wormnet_topology::{Mesh, NodeId, Topology};

/// Matrix-transpose pattern: node `(x, y)` streams to `(y, x)` for every
/// `x != y` on a square mesh — the classic adversarial pattern for
/// dimension-order routing (all traffic funnels through the diagonal).
///
/// Priorities cycle `1..=priority_levels` deterministically by source
/// index.
pub fn transpose(mesh: &Mesh, priority_levels: u32, period: u64, length: u64) -> Vec<StreamSpec> {
    assert_eq!(mesh.dims().len(), 2, "transpose needs a 2-D mesh");
    assert_eq!(
        mesh.dims()[0],
        mesh.dims()[1],
        "transpose needs a square mesh"
    );
    let k = mesh.dims()[0];
    let mut specs = Vec::new();
    for x in 0..k {
        for y in 0..k {
            if x == y {
                continue;
            }
            let src = mesh.node_at(&[x, y]).unwrap();
            let dst = mesh.node_at(&[y, x]).unwrap();
            let priority = (specs.len() as u32 % priority_levels) + 1;
            specs.push(StreamSpec::new(src, dst, priority, period, length, period));
        }
    }
    specs
}

/// Hotspot pattern: `num_sources` random distinct nodes all stream to
/// one hot node (e.g. a shared I/O or monitoring node). Priorities are
/// drawn uniformly.
pub fn hotspot(
    mesh: &Mesh,
    hot: NodeId,
    num_sources: usize,
    priority_levels: u32,
    period: u64,
    length: u64,
    seed: u64,
) -> Vec<StreamSpec> {
    assert!(num_sources < mesh.num_nodes(), "too many sources");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = Vec::new();
    while chosen.len() < num_sources {
        let n = NodeId(rng.gen_range(0..mesh.num_nodes() as u32));
        if n != hot && !chosen.contains(&n) {
            chosen.push(n);
        }
    }
    chosen
        .into_iter()
        .map(|src| {
            let priority = rng.gen_range(1..=priority_levels);
            StreamSpec::new(src, hot, priority, period, length, period)
        })
        .collect()
}

/// Nearest-neighbor pattern: every node streams to its east neighbor
/// (wrapping rows to the next row's west end is *not* done — border
/// columns simply do not source). Models stencil exchanges.
pub fn nearest_neighbor(mesh: &Mesh, priority: u32, period: u64, length: u64) -> Vec<StreamSpec> {
    assert_eq!(mesh.dims().len(), 2, "nearest-neighbor needs a 2-D mesh");
    let (w, h) = (mesh.dims()[0], mesh.dims()[1]);
    let mut specs = Vec::new();
    for y in 0..h {
        for x in 0..w.saturating_sub(1) {
            let src = mesh.node_at(&[x, y]).unwrap();
            let dst = mesh.node_at(&[x + 1, y]).unwrap();
            specs.push(StreamSpec::new(src, dst, priority, period, length, period));
        }
    }
    specs
}

/// A processing pipeline: stage `i` (at `stages[i]`) streams to stage
/// `i + 1`. Earlier stages get *lower* priority than later ones
/// (downstream stages must drain first), mirroring a sensor -> filter ->
/// fusion -> actuator flow.
pub fn pipeline(stages: &[NodeId], period: u64, length: u64) -> Vec<StreamSpec> {
    assert!(stages.len() >= 2, "pipeline needs at least two stages");
    stages
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let priority = i as u32 + 1;
            StreamSpec::new(w[0], w[1], priority, period, length, period)
        })
        .collect()
}

/// Bit-reversal pattern on a square power-of-two mesh: node with linear
/// index `i` streams to the node whose index is `i` bit-reversed —
/// another classic adversarial permutation for dimension-order routing.
/// Priorities cycle `1..=priority_levels` by source index.
///
/// # Panics
/// Panics unless the mesh is square with a power-of-two side.
pub fn bit_reversal(
    mesh: &Mesh,
    priority_levels: u32,
    period: u64,
    length: u64,
) -> Vec<StreamSpec> {
    assert_eq!(mesh.dims().len(), 2, "bit reversal needs a 2-D mesh");
    let k = mesh.dims()[0];
    assert_eq!(k, mesh.dims()[1], "bit reversal needs a square mesh");
    assert!(
        k.is_power_of_two(),
        "bit reversal needs a power-of-two side"
    );
    let n = mesh.num_nodes() as u32;
    let bits = n.trailing_zeros();
    let mut specs = Vec::new();
    for i in 0..n {
        let rev = i.reverse_bits() >> (32 - bits);
        if rev == i {
            continue;
        }
        let priority = (specs.len() as u32 % priority_levels) + 1;
        specs.push(StreamSpec::new(
            NodeId(i),
            NodeId(rev),
            priority,
            period,
            length,
            period,
        ));
    }
    specs
}

/// A random permutation: each selected node streams to a distinct
/// partner (no node receives twice, no self-loops). `num_streams`
/// source/destination pairs are drawn from a shuffled node list.
pub fn random_permutation(
    mesh: &Mesh,
    num_streams: usize,
    priority_levels: u32,
    period: u64,
    length: u64,
    seed: u64,
) -> Vec<StreamSpec> {
    assert!(
        2 * num_streams <= mesh.num_nodes(),
        "need 2 nodes per stream for a disjoint permutation"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<NodeId> = (0..mesh.num_nodes() as u32).map(NodeId).collect();
    use rand::seq::SliceRandom;
    nodes.shuffle(&mut rng);
    (0..num_streams)
        .map(|i| {
            let src = nodes[2 * i];
            let dst = nodes[2 * i + 1];
            let priority = rng.gen_range(1..=priority_levels);
            StreamSpec::new(src, dst, priority, period, length, period)
        })
        .collect()
}

/// Zero phases (all streams release together at t = 0; the paper's
/// implicit choice and the critical-instant-style alignment).
pub fn zero_phases(n: usize) -> Vec<u64> {
    vec![0; n]
}

/// Random release phases in `0..max_phase`, for phase-sensitivity
/// studies.
pub fn random_phases(n: usize, max_phase: u64, seed: u64) -> Vec<u64> {
    assert!(max_phase > 0, "max_phase must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..max_phase)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtwc_core::StreamSet;
    use wormnet_topology::XyRouting;

    #[test]
    fn transpose_counts_and_symmetry() {
        let mesh = Mesh::mesh2d(4, 4);
        let specs = transpose(&mesh, 3, 500, 8);
        assert_eq!(specs.len(), 12); // 16 - 4 diagonal
        for s in &specs {
            let sc = mesh.coord(s.source);
            let dc = mesh.coord(s.dest);
            assert_eq!(sc.get(0), dc.get(1));
            assert_eq!(sc.get(1), dc.get(0));
            assert!((1..=3).contains(&s.priority));
        }
        StreamSet::resolve(&mesh, &XyRouting, &specs).unwrap();
    }

    #[test]
    fn hotspot_all_target_hot_node() {
        let mesh = Mesh::mesh2d(6, 6);
        let hot = mesh.node_at(&[3, 3]).unwrap();
        let specs = hotspot(&mesh, hot, 10, 4, 600, 12, 42);
        assert_eq!(specs.len(), 10);
        let mut sources: Vec<_> = specs.iter().map(|s| s.source).collect();
        sources.sort();
        sources.dedup();
        assert_eq!(sources.len(), 10, "distinct sources");
        assert!(specs.iter().all(|s| s.dest == hot && s.source != hot));
    }

    #[test]
    fn hotspot_deterministic() {
        let mesh = Mesh::mesh2d(6, 6);
        let hot = mesh.node_at(&[0, 0]).unwrap();
        let a = hotspot(&mesh, hot, 8, 2, 100, 4, 7);
        let b = hotspot(&mesh, hot, 8, 2, 100, 4, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn nearest_neighbor_covers_interior() {
        let mesh = Mesh::mesh2d(5, 3);
        let specs = nearest_neighbor(&mesh, 1, 200, 4);
        assert_eq!(specs.len(), 4 * 3);
        for s in &specs {
            assert_eq!(mesh.distance(s.source, s.dest), 1);
        }
    }

    #[test]
    fn pipeline_priorities_increase_downstream() {
        let mesh = Mesh::mesh2d(8, 1);
        let stages: Vec<NodeId> = (0..4).map(|x| mesh.node_at(&[x * 2, 0]).unwrap()).collect();
        let specs = pipeline(&stages, 300, 6);
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].priority, 1);
        assert_eq!(specs[2].priority, 3);
    }

    #[test]
    #[should_panic(expected = "at least two stages")]
    fn short_pipeline_panics() {
        pipeline(&[NodeId(0)], 100, 2);
    }

    #[test]
    fn bit_reversal_is_a_partial_permutation() {
        let mesh = Mesh::mesh2d(4, 4);
        let specs = bit_reversal(&mesh, 2, 100, 4);
        // Fixed points (palindromic indices) are skipped: 0b0000,
        // 0b0110, 0b1001, 0b1111.
        assert_eq!(specs.len(), 12);
        let mut dests: Vec<_> = specs.iter().map(|s| s.dest).collect();
        dests.sort();
        dests.dedup();
        assert_eq!(dests.len(), 12, "no destination repeats");
        for s in &specs {
            assert_ne!(s.source, s.dest);
            // Involution: reversing the destination gives the source.
            let rev = |n: NodeId| NodeId(n.0.reverse_bits() >> 28);
            assert_eq!(rev(s.dest), s.source);
        }
        StreamSet::resolve(&mesh, &XyRouting, &specs).unwrap();
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bit_reversal_rejects_odd_mesh() {
        bit_reversal(&Mesh::mesh2d(6, 6), 1, 100, 4);
    }

    #[test]
    fn random_permutation_is_disjoint() {
        let mesh = Mesh::mesh2d(8, 8);
        let specs = random_permutation(&mesh, 20, 4, 100, 4, 11);
        assert_eq!(specs.len(), 20);
        let mut endpoints: Vec<NodeId> = specs.iter().flat_map(|s| [s.source, s.dest]).collect();
        endpoints.sort();
        endpoints.dedup();
        assert_eq!(endpoints.len(), 40, "sources and dests all distinct");
        let again = random_permutation(&mesh, 20, 4, 100, 4, 11);
        assert_eq!(specs, again, "deterministic per seed");
    }

    #[test]
    fn phase_helpers() {
        assert_eq!(zero_phases(3), vec![0, 0, 0]);
        let p = random_phases(10, 50, 3);
        assert_eq!(p.len(), 10);
        assert!(p.iter().all(|&x| x < 50));
        assert_eq!(p, random_phases(10, 50, 3));
        assert_ne!(p, random_phases(10, 50, 4));
    }
}
