//! Property-based tests of the flit-level simulator: conservation,
//! determinism, latency floors, and the preemption contract, over
//! randomized stream sets and policies.

use proptest::prelude::*;
use rtwc_core::{generate_hp, StreamSet, StreamSpec};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::{Mesh, NodeId, Topology, XyRouting};

const PLEVELS: u32 = 4;

fn mesh() -> Mesh {
    Mesh::mesh2d(8, 8)
}

/// Light-to-moderate random workloads (periods comfortably above
/// message lengths so drains terminate).
fn stream_sets() -> impl Strategy<Value = StreamSet> {
    let spec = (0u32..64, 0u32..64, 1..=PLEVELS, 40u64..120, 1u64..10)
        .prop_filter("distinct endpoints", |(s, d, ..)| s != d);
    prop::collection::vec(spec, 1..=8).prop_map(|raw| {
        let mesh = mesh();
        let specs: Vec<StreamSpec> = raw
            .into_iter()
            .map(|(s, d, p, t, c)| StreamSpec::new(NodeId(s), NodeId(d), p, t, c, t))
            .collect();
        StreamSet::resolve(&mesh, &XyRouting, &specs).unwrap()
    })
}

fn policies() -> impl Strategy<Value = SimConfig> {
    prop_oneof![
        Just(SimConfig::paper(PLEVELS as usize)),
        Just(SimConfig::li(PLEVELS as usize)),
        Just(SimConfig::classic()),
        Just(SimConfig::shared_pool(2)),
        Just(SimConfig::shared_pool(PLEVELS as usize)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn latency_never_below_network_latency(set in stream_sets(), cfg in policies()) {
        let mesh = mesh();
        let mut sim =
            Simulator::new(mesh.num_links(), &set, cfg.with_cycles(2_000, 0)).unwrap();
        sim.run();
        for id in set.ids() {
            let l = set.get(id).latency;
            for lat in sim.stats().latencies(id, 0) {
                prop_assert!(lat >= l, "{:?}: latency {} < L {}", id, lat, l);
            }
        }
    }

    #[test]
    fn flit_conservation_after_drain(set in stream_sets(), cfg in policies()) {
        let mesh = mesh();
        let mut sim =
            Simulator::new(mesh.num_links(), &set, cfg.with_cycles(1_000, 0)).unwrap();
        sim.run();
        sim.drain(200_000);
        prop_assert_eq!(sim.in_flight(), 0, "drain left worms in flight");
        prop_assert!(sim.stats().stalled_at.is_none(), "watchdog fired");
        let expected: u64 = sim
            .stats()
            .records
            .iter()
            .map(|r| {
                prop_assert!(r.completed.is_some(), "undrained message");
                let s = set.get(r.stream);
                Ok(s.max_length() * s.path.hops() as u64)
            })
            .collect::<Result<Vec<u64>, TestCaseError>>()?
            .iter()
            .sum();
        prop_assert_eq!(sim.stats().flit_hops, expected);
    }

    #[test]
    fn simulation_is_deterministic(set in stream_sets(), cfg in policies()) {
        let mesh = mesh();
        let run = || {
            let mut sim = Simulator::new(
                mesh.num_links(),
                &set,
                cfg.clone().with_cycles(1_500, 0),
            )
            .unwrap();
            sim.run();
            (sim.stats().flit_hops, sim.stats().records.clone())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    #[test]
    fn unblocked_streams_ride_at_latency_under_preemption(set in stream_sets()) {
        let mesh = mesh();
        let cfg = SimConfig::paper(PLEVELS as usize).with_cycles(2_000, 0);
        let mut sim = Simulator::new(mesh.num_links(), &set, cfg).unwrap();
        sim.run();
        for id in set.ids() {
            if generate_hp(&set, id).is_empty() {
                // Nothing can block it analytically; under flit-level
                // preemption it must see pure pipeline latency.
                let l = set.get(id).latency;
                for lat in sim.stats().latencies(id, 0) {
                    prop_assert_eq!(lat, l, "unblocked {:?} delayed", id);
                }
            }
        }
    }

    #[test]
    fn classic_never_beats_message_count_of_preemptive_for_top_class(
        set in stream_sets()
    ) {
        // Not a latency claim (classic can reorder arbitrarily) but a
        // liveness one: with FCFS the network still delivers the same
        // total released messages eventually on these light loads.
        let mesh = mesh();
        let total = |cfg: SimConfig| {
            let mut sim =
                Simulator::new(mesh.num_links(), &set, cfg.with_cycles(1_000, 0)).unwrap();
            sim.run();
            sim.drain(200_000);
            sim.stats().total_completed()
        };
        let a = total(SimConfig::paper(PLEVELS as usize));
        let b = total(SimConfig::classic());
        prop_assert_eq!(a, b, "same releases must eventually complete");
    }
}
