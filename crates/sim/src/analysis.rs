//! Trace analysis: reconstruct per-packet timing from an event trace
//! and check simulator invariants that are awkward to assert from
//! aggregate statistics.
//!
//! Enable tracing with `SimConfig::with_trace()`; then feed
//! `Simulator::trace()` to [`PacketTimeline::from_trace`] or
//! [`check_trace_invariants`].

use crate::trace::Event;
use crate::worm::PacketId;
use std::collections::HashMap;
use wormnet_topology::LinkId;

/// The reconstructed lifecycle of one packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketTimeline {
    /// The packet.
    pub packet: PacketId,
    /// Cycle the source released it.
    pub released: u64,
    /// Per hop: (channel, VC index, grant cycle), in acquisition order.
    pub grants: Vec<(LinkId, usize, u64)>,
    /// Per channel: cycles at which flits crossed it, ascending.
    pub crossings: HashMap<LinkId, Vec<u64>>,
    /// Completion cycle, if the tail arrived.
    pub completed: Option<u64>,
}

impl PacketTimeline {
    /// Builds timelines for every packet appearing in `trace`.
    pub fn from_trace(trace: &[Event]) -> Vec<PacketTimeline> {
        let mut by_packet: HashMap<PacketId, PacketTimeline> = HashMap::new();
        for e in trace {
            let entry = by_packet
                .entry(e.packet())
                .or_insert_with(|| PacketTimeline {
                    packet: e.packet(),
                    released: 0,
                    grants: Vec::new(),
                    crossings: HashMap::new(),
                    completed: None,
                });
            match *e {
                Event::Released { time, .. } => entry.released = time,
                Event::VcGranted { time, link, vc, .. } => entry.grants.push((link, vc, time)),
                Event::FlitCrossed { time, link, .. } => {
                    entry.crossings.entry(link).or_default().push(time)
                }
                Event::Completed { time, .. } => entry.completed = Some(time),
            }
        }
        let mut out: Vec<PacketTimeline> = by_packet.into_values().collect();
        out.sort_by_key(|t| t.packet);
        out
    }

    /// Cycles between the release *event* (the first cycle the packet
    /// participates in) and its first VC grant — source-side blocking.
    /// Zero means the head was admitted the moment it arrived.
    pub fn admission_delay(&self) -> Option<u64> {
        self.grants.first().map(|&(_, _, t)| t - self.released)
    }

    /// Total flits this packet moved (all channels).
    pub fn total_crossings(&self) -> usize {
        self.crossings.values().map(Vec::len).sum()
    }

    /// Stall cycles on a channel: gaps between consecutive crossings
    /// beyond the 1-flit-per-cycle pipeline ideal.
    pub fn stall_cycles(&self, link: LinkId) -> u64 {
        match self.crossings.get(&link) {
            Some(times) if times.len() >= 2 => times.windows(2).map(|w| w[1] - w[0] - 1).sum(),
            _ => 0,
        }
    }
}

/// A violated trace invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceViolation {
    /// A channel carried more than one flit in one cycle.
    ChannelOverdriven {
        /// The channel.
        link: LinkId,
        /// The cycle.
        time: u64,
    },
    /// A packet's flits crossed a channel before its VC was granted.
    CrossedBeforeGrant {
        /// The packet.
        packet: PacketId,
        /// The channel.
        link: LinkId,
    },
    /// A completed packet moved a number of flits inconsistent with
    /// `length * hops`.
    WrongFlitCount {
        /// The packet.
        packet: PacketId,
        /// Flits observed in the trace.
        got: usize,
        /// Flits expected.
        expected: usize,
    },
}

/// Checks physical-consistency invariants over a trace. `expected_flits`
/// maps each *completed* packet to `length * hops` (pass an empty map to
/// skip the count check).
pub fn check_trace_invariants(
    trace: &[Event],
    expected_flits: &HashMap<PacketId, usize>,
) -> Vec<TraceViolation> {
    let mut violations = Vec::new();

    // One flit per channel per cycle.
    let mut per_link_cycle: HashMap<(LinkId, u64), u32> = HashMap::new();
    for e in trace {
        if let Event::FlitCrossed { time, link, .. } = *e {
            let c = per_link_cycle.entry((link, time)).or_insert(0);
            *c += 1;
            if *c == 2 {
                violations.push(TraceViolation::ChannelOverdriven { link, time });
            }
        }
    }

    for t in PacketTimeline::from_trace(trace) {
        // Crossings only after the grant of that channel.
        for (link, times) in &t.crossings {
            let grant = t.grants.iter().find(|&&(l, _, _)| l == *link);
            match grant {
                Some(&(_, _, gt)) => {
                    if times.first().is_some_and(|&ft| ft < gt) {
                        violations.push(TraceViolation::CrossedBeforeGrant {
                            packet: t.packet,
                            link: *link,
                        });
                    }
                }
                None => violations.push(TraceViolation::CrossedBeforeGrant {
                    packet: t.packet,
                    link: *link,
                }),
            }
        }
        // Completed packets moved exactly length * hops flits.
        if t.completed.is_some() {
            if let Some(&expected) = expected_flits.get(&t.packet) {
                let got = t.total_crossings();
                if got != expected {
                    violations.push(TraceViolation::WrongFlitCount {
                        packet: t.packet,
                        got,
                        expected,
                    });
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Simulator;
    use rtwc_core::{StreamSet, StreamSpec};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn traced_run() -> (StreamSet, Vec<Event>, HashMap<PacketId, usize>) {
        let m = Mesh::mesh2d(8, 8);
        let specs = vec![
            StreamSpec::new(
                m.node_at(&[0, 0]).unwrap(),
                m.node_at(&[5, 0]).unwrap(),
                2,
                50,
                4,
                50,
            ),
            StreamSpec::new(
                m.node_at(&[1, 0]).unwrap(),
                m.node_at(&[6, 0]).unwrap(),
                1,
                70,
                6,
                70,
            ),
        ];
        let set = StreamSet::resolve(&m, &XyRouting, &specs).unwrap();
        let cfg = SimConfig::paper(2).with_cycles(500, 0).with_trace();
        let mut sim = Simulator::new(m.num_links(), &set, cfg).unwrap();
        sim.run();
        let trace = sim.trace().to_vec();
        let expected: HashMap<PacketId, usize> = PacketTimeline::from_trace(&trace)
            .iter()
            .filter(|t| t.completed.is_some())
            .map(|t| {
                let stream = &set.get(sim.worm(t.packet).stream);
                (
                    t.packet,
                    (stream.max_length() * stream.path.hops() as u64) as usize,
                )
            })
            .collect();
        (set, trace, expected)
    }

    #[test]
    fn timelines_reconstruct() {
        let (set, trace, _) = traced_run();
        let timelines = PacketTimeline::from_trace(&trace);
        assert!(!timelines.is_empty());
        for t in &timelines {
            if t.completed.is_none() {
                continue;
            }
            // Grants happen in route order with nondecreasing times.
            assert!(t.grants.windows(2).all(|w| w[0].2 <= w[1].2));
            // Crossings per channel are strictly increasing.
            for times in t.crossings.values() {
                assert!(times.windows(2).all(|w| w[0] < w[1]));
            }
        }
        let _ = set;
    }

    #[test]
    fn real_trace_has_no_violations() {
        let (_, trace, expected) = traced_run();
        let violations = check_trace_invariants(&trace, &expected);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn unblocked_head_admits_immediately() {
        let (_, trace, _) = traced_run();
        let timelines = PacketTimeline::from_trace(&trace);
        // The top-priority stream's first packet admits the same cycle
        // it starts participating.
        let t0 = &timelines[0];
        assert_eq!(t0.admission_delay(), Some(0));
        assert_eq!(t0.stall_cycles(t0.grants[0].0), 0);
    }

    #[test]
    fn detects_fabricated_violations() {
        let fake = vec![
            Event::Released {
                time: 1,
                packet: PacketId(0),
            },
            // Crossing with no grant.
            Event::FlitCrossed {
                time: 2,
                packet: PacketId(0),
                link: LinkId(5),
            },
            // Double crossing in one cycle on one channel.
            Event::FlitCrossed {
                time: 3,
                packet: PacketId(1),
                link: LinkId(9),
            },
            Event::FlitCrossed {
                time: 3,
                packet: PacketId(2),
                link: LinkId(9),
            },
            Event::Completed {
                time: 4,
                packet: PacketId(0),
            },
        ];
        let mut expected = HashMap::new();
        expected.insert(PacketId(0), 7);
        let violations = check_trace_invariants(&fake, &expected);
        assert!(violations
            .iter()
            .any(|v| matches!(v, TraceViolation::ChannelOverdriven { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, TraceViolation::CrossedBeforeGrant { .. })));
        assert!(violations.iter().any(|v| matches!(
            v,
            TraceViolation::WrongFlitCount {
                got: 1,
                expected: 7,
                ..
            }
        )));
    }
}
