//! Simulator configuration.

use crate::arbiter::Policy;

/// Configuration of a flit-level wormhole simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Virtual channels per directed physical channel *per layer*. For
    /// [`Policy::PreemptivePriority`] this must equal the number of
    /// priority levels (the paper assumes "as many virtual channels as
    /// priority levels"); for [`Policy::ClassicFifo`] it is forced to 1.
    pub num_vcs: usize,
    /// Dateline layers per priority class. Meshes and hypercubes need 1
    /// (the default). Tori need 2 with per-hop layers from
    /// `Torus::dateline_layers` to keep dimension-order routing
    /// deadlock-free; the total VC count per channel is then
    /// `num_vcs * num_layers`.
    pub num_layers: usize,
    /// Flit-buffer capacity of each virtual channel at the downstream
    /// router, in flits. The paper does not publish its router's buffer
    /// depth; 4 flits is a conventional wormhole choice and the headline
    /// ratios are insensitive to it (see EXPERIMENTS.md).
    pub buffer_depth: usize,
    /// Channel arbitration / VC allocation policy.
    pub policy: Policy,
    /// Cycles to simulate after warm-up.
    pub cycles: u64,
    /// Warm-up cycles: messages *released* during warm-up are simulated
    /// but excluded from statistics (the paper omits 2000 start-up flit
    /// times from its 30000).
    pub warmup: u64,
    /// Record a detailed event trace (for debugging and the
    /// priority-inversion walkthrough); costs memory.
    pub trace: bool,
    /// Abort and report if no flit moves for this many consecutive
    /// cycles while packets are in flight — a deadlock/livelock
    /// watchdog. Deterministic X-Y routing should never trip it.
    pub stall_limit: u64,
}

impl SimConfig {
    /// The paper's evaluation configuration: preemptive priorities,
    /// one VC per priority level, 30000 cycles with 2000 warm-up.
    pub fn paper(priority_levels: usize) -> Self {
        SimConfig {
            num_vcs: priority_levels,
            num_layers: 1,
            buffer_depth: 4,
            policy: Policy::PreemptivePriority,
            cycles: 30_000,
            warmup: 2_000,
            trace: false,
            stall_limit: 100_000,
        }
    }

    /// Classic non-prioritized wormhole switching (single VC, FCFS) —
    /// the baseline in which priority inversion is possible.
    pub fn classic() -> Self {
        SimConfig {
            num_vcs: 1,
            num_layers: 1,
            buffer_depth: 4,
            policy: Policy::ClassicFifo,
            cycles: 30_000,
            warmup: 2_000,
            trace: false,
            stall_limit: 100_000,
        }
    }

    /// Li & Mutka's scheme: a packet of priority `p` may use any VC
    /// numbered `<= p`, with fair (round-robin) channel bandwidth.
    pub fn li(num_vcs: usize) -> Self {
        SimConfig {
            num_vcs,
            num_layers: 1,
            buffer_depth: 4,
            policy: Policy::LiPriorityVc,
            cycles: 30_000,
            warmup: 2_000,
            trace: false,
            stall_limit: 100_000,
        }
    }

    /// Priority-preemptive bandwidth over a shared pool of `num_vcs`
    /// VCs (possibly fewer than the priority levels) — the
    /// VC-scarcity regime the paper's one-VC-per-priority assumption
    /// avoids.
    pub fn shared_pool(num_vcs: usize) -> Self {
        SimConfig {
            num_vcs,
            num_layers: 1,
            buffer_depth: 4,
            policy: Policy::SharedPoolPriority,
            cycles: 30_000,
            warmup: 2_000,
            trace: false,
            stall_limit: 100_000,
        }
    }

    /// Builder-style override of the simulated horizon.
    pub fn with_cycles(mut self, cycles: u64, warmup: u64) -> Self {
        self.cycles = cycles;
        self.warmup = warmup;
        self
    }

    /// Builder-style override of the VC buffer depth.
    pub fn with_buffer_depth(mut self, depth: usize) -> Self {
        self.buffer_depth = depth;
        self
    }

    /// Builder-style trace enable.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Builder-style dateline layer count (2 for torus dimension-order
    /// routing).
    pub fn with_layers(mut self, num_layers: usize) -> Self {
        self.num_layers = num_layers;
        self
    }

    /// Validates internal consistency.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.num_vcs == 0 {
            return Err("num_vcs must be positive".into());
        }
        if self.num_layers == 0 {
            return Err("num_layers must be positive".into());
        }
        if self.buffer_depth == 0 {
            return Err("buffer_depth must be positive".into());
        }
        if self.policy == Policy::ClassicFifo && self.num_vcs != 1 {
            return Err("ClassicFifo uses exactly one VC class".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_evaluation() {
        let c = SimConfig::paper(5);
        assert_eq!(c.num_vcs, 5);
        assert_eq!(c.cycles, 30_000);
        assert_eq!(c.warmup, 2_000);
        assert_eq!(c.policy, Policy::PreemptivePriority);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn classic_is_single_vc() {
        let c = SimConfig::classic();
        assert_eq!(c.num_vcs, 1);
        assert!(c.validate().is_ok());
        let mut bad = c;
        bad.num_vcs = 3;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::li(4)
            .with_cycles(100, 10)
            .with_buffer_depth(2)
            .with_trace();
        assert_eq!(c.cycles, 100);
        assert_eq!(c.warmup, 10);
        assert_eq!(c.buffer_depth, 2);
        assert!(c.trace);
    }

    #[test]
    fn zero_vcs_invalid() {
        let mut c = SimConfig::paper(1);
        c.num_vcs = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper(1);
        c.buffer_depth = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper(1);
        c.num_layers = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn layer_builder() {
        let c = SimConfig::paper(3).with_layers(2);
        assert_eq!(c.num_layers, 2);
        assert!(c.validate().is_ok());
    }
}
