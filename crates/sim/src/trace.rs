//! Optional event trace for debugging and walkthrough examples.

use crate::worm::PacketId;
use wormnet_topology::LinkId;

/// One simulator event. Traces are only recorded when
/// `SimConfig::trace` is set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A message was released by its source.
    Released {
        /// Cycle of the event.
        time: u64,
        /// The packet involved.
        packet: PacketId,
    },
    /// A packet acquired a virtual channel on a physical channel.
    VcGranted {
        /// Cycle of the event.
        time: u64,
        /// The packet involved.
        packet: PacketId,
        /// The physical channel.
        link: LinkId,
        /// The granted virtual-channel index.
        vc: usize,
    },
    /// One flit of `packet` crossed `link`.
    FlitCrossed {
        /// Cycle of the event.
        time: u64,
        /// The packet involved.
        packet: PacketId,
        /// The physical channel.
        link: LinkId,
    },
    /// The tail flit reached the destination.
    Completed {
        /// Cycle of the event.
        time: u64,
        /// The packet involved.
        packet: PacketId,
    },
}

impl Event {
    /// The event's timestamp.
    pub fn time(&self) -> u64 {
        match *self {
            Event::Released { time, .. }
            | Event::VcGranted { time, .. }
            | Event::FlitCrossed { time, .. }
            | Event::Completed { time, .. } => time,
        }
    }

    /// The packet involved.
    pub fn packet(&self) -> PacketId {
        match *self {
            Event::Released { packet, .. }
            | Event::VcGranted { packet, .. }
            | Event::FlitCrossed { packet, .. }
            | Event::Completed { packet, .. } => packet,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = Event::FlitCrossed {
            time: 9,
            packet: PacketId(3),
            link: LinkId(7),
        };
        assert_eq!(e.time(), 9);
        assert_eq!(e.packet(), PacketId(3));
        let r = Event::Released {
            time: 1,
            packet: PacketId(0),
        };
        assert_eq!(r.time(), 1);
    }
}
