//! In-flight wormhole packets ("worms") and their per-link progress.

use rtwc_core::StreamId;
use wormnet_topology::LinkId;

/// Dense simulator index of a packet (one message instance).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PacketId(pub u32);

impl PacketId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One message instance worming through the network.
///
/// Rather than materializing individual flits, a worm tracks how many
/// flits have crossed each channel of its route; buffer occupancies and
/// flit positions are all derivable from those counters:
///
/// * flits resident in the VC buffer at the downstream end of channel
///   `i` = `crossed[i] - drained(i+1)`;
/// * the head has reached channel `i`'s downstream router iff
///   `crossed[i] > 0`.
#[derive(Clone, Debug)]
pub struct Worm {
    /// Simulator packet index.
    pub id: PacketId,
    /// The stream this message belongs to.
    pub stream: StreamId,
    /// Priority class (0-based, larger = more urgent).
    pub class: u32,
    /// Message length in flits (`C_i` of the stream).
    pub length: u64,
    /// The deterministic route, from the stream's path.
    pub route: Vec<LinkId>,
    /// Dateline layer per hop (all zero except on tori; see
    /// `Torus::dateline_layers`).
    pub layers: Vec<u8>,
    /// Release (generation) time.
    pub released: u64,
    /// Channels `route[0..acquired]` hold a VC owned by this worm.
    pub acquired: usize,
    /// The VC index held on each acquired channel.
    pub vcs: Vec<usize>,
    /// Flits that have crossed each channel (current state).
    pub crossed: Vec<u64>,
    /// Snapshot of `crossed` at the start of the current cycle; all
    /// movement decisions read this so that a flit advances at most one
    /// hop per cycle.
    pub crossed_prev: Vec<u64>,
    /// Cycle the tail flit crossed the final channel, once done.
    pub completed: Option<u64>,
    /// When the worm started waiting for its next VC (FCFS tie-break).
    pub requesting_since: Option<u64>,
}

impl Worm {
    /// A freshly released message: nothing acquired, nothing crossed.
    pub fn new(
        id: PacketId,
        stream: StreamId,
        class: u32,
        length: u64,
        route: Vec<LinkId>,
        layers: Vec<u8>,
        released: u64,
    ) -> Self {
        assert!(!route.is_empty(), "worm route must cross a channel");
        assert!(length > 0, "worm must carry at least one flit");
        assert_eq!(route.len(), layers.len(), "one layer per hop");
        let hops = route.len();
        Worm {
            id,
            stream,
            class,
            length,
            route,
            layers,
            released,
            acquired: 0,
            vcs: Vec::with_capacity(hops),
            crossed: vec![0; hops],
            crossed_prev: vec![0; hops],
            completed: None,
            requesting_since: None,
        }
    }

    /// Number of channels in the route.
    #[inline]
    pub fn hops(&self) -> usize {
        self.route.len()
    }

    /// The next channel whose VC the head must acquire, if any.
    pub fn next_link(&self) -> Option<LinkId> {
        (self.acquired < self.route.len() && self.completed.is_none())
            .then(|| self.route[self.acquired])
    }

    /// True when the head flit is positioned to request the VC of
    /// `route[self.acquired]`: either the worm has not entered the
    /// network yet (source injection) or the head sits in the buffer at
    /// the downstream end of the previously acquired channel.
    pub fn head_ready(&self) -> bool {
        match self.acquired {
            0 => true,
            i => self.crossed_prev[i - 1] > 0,
        }
    }

    /// Flits available (as of the cycle-start snapshot) to cross channel
    /// `i` of the route: uninjected flits for `i == 0`, otherwise flits
    /// resident upstream of channel `i`.
    pub fn available_upstream(&self, i: usize) -> u64 {
        if i == 0 {
            self.length - self.crossed_prev[0]
        } else {
            self.crossed_prev[i - 1] - self.crossed_prev[i]
        }
    }

    /// True when this worm wants (and is internally able) to cross a
    /// flit over channel `i` this cycle: the channel's VC is held, the
    /// message is not yet fully across it, and a flit is available
    /// upstream. The engine additionally checks downstream buffer
    /// credit (which is per-VC state shared with previous owners, so it
    /// lives in the engine, not here).
    pub fn wants_cross(&self, i: usize) -> bool {
        i < self.acquired && self.crossed[i] < self.length && self.available_upstream(i) > 0
    }

    /// True when crossing channel `i` deposits the flit into the VC
    /// buffer at the channel's downstream end (false at the final hop,
    /// where the destination ejects immediately).
    pub fn enters_buffer(&self, i: usize) -> bool {
        i + 1 != self.route.len()
    }

    /// Records a flit crossing channel `i` (applied after all decisions).
    pub fn apply_cross(&mut self, i: usize) {
        debug_assert!(self.crossed[i] < self.length);
        self.crossed[i] += 1;
    }

    /// True when the VC held on channel `i` can be released: the tail
    /// flit has been transmitted across the channel. (Residual flits
    /// still draining from the downstream buffer are accounted by the
    /// engine's per-VC occupancy counters, exactly like credit-based
    /// flow control in a real VC router — a successor packet may own
    /// the VC while the predecessor's tail is still buffered, it just
    /// cannot overfill the buffer.)
    pub fn vc_releasable(&self, i: usize) -> bool {
        i < self.acquired && self.crossed[i] == self.length
    }

    /// True when the tail has crossed the final channel.
    pub fn is_done(&self) -> bool {
        *self.crossed.last().unwrap() == self.length
    }

    /// Copies current progress into the cycle-start snapshot.
    pub fn snapshot(&mut self) {
        self.crossed_prev.copy_from_slice(&self.crossed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worm(hops: usize, len: u64) -> Worm {
        let route: Vec<LinkId> = (0..hops as u32).map(LinkId).collect();
        Worm::new(PacketId(0), StreamId(0), 1, len, route, vec![0; hops], 0)
    }

    #[test]
    fn fresh_worm_requests_first_link() {
        let w = worm(3, 4);
        assert_eq!(w.next_link(), Some(LinkId(0)));
        assert!(w.head_ready());
        assert_eq!(w.available_upstream(0), 4);
        assert!(!w.is_done());
    }

    #[test]
    fn cannot_cross_unacquired_link() {
        let w = worm(3, 4);
        assert!(!w.wants_cross(0), "no VC held yet");
    }

    #[test]
    fn pipeline_counters() {
        let mut w = worm(3, 4);
        w.acquired = 2;
        w.vcs = vec![0, 0];
        // Simulate: 3 flits crossed link 0, 1 crossed link 1.
        w.crossed = vec![3, 1, 0];
        w.snapshot();
        assert_eq!(w.available_upstream(1), 2);
        assert!(w.wants_cross(0));
        assert!(w.wants_cross(1));
        assert!(!w.wants_cross(2), "link 2 not acquired");
        assert!(w.enters_buffer(0));
        assert!(w.enters_buffer(1));
        assert!(!w.enters_buffer(2), "final hop ejects");
    }

    #[test]
    fn head_ready_after_crossing_previous() {
        let mut w = worm(3, 4);
        w.acquired = 1;
        w.vcs = vec![0];
        assert_eq!(w.next_link(), Some(LinkId(1)));
        assert!(!w.head_ready(), "head not yet across link 0");
        w.crossed = vec![1, 0, 0];
        w.snapshot();
        assert!(w.head_ready());
    }

    #[test]
    fn release_and_completion() {
        let mut w = worm(2, 3);
        w.acquired = 2;
        w.vcs = vec![0, 0];
        w.crossed = vec![2, 1];
        assert!(!w.vc_releasable(0), "tail not yet across link 0");
        w.crossed = vec![3, 2];
        assert!(w.vc_releasable(0), "tail transmitted across link 0");
        assert!(!w.vc_releasable(1));
        w.crossed = vec![3, 3];
        assert!(w.vc_releasable(1), "tail ejected at destination");
        assert!(w.is_done());
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_rejected() {
        worm(2, 0);
    }
}
