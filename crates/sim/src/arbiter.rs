//! Virtual-channel allocation and physical-channel arbitration policies.
//!
//! The paper's priority handling (§3) assigns one virtual channel per
//! priority level and arbitrates the physical channel strictly by
//! priority, so a higher-priority message preempts link bandwidth at
//! flit granularity. Two reference policies bracket it: classic
//! non-prioritized wormhole switching (priority inversion possible) and
//! Li & Mutka's scheme (priority-favoring VC allocation with fair
//! bandwidth).

use rtwc_core::Priority;

/// The three switching disciplines the evaluation compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// The paper's scheme: VC index = priority class; the physical
    /// channel always serves the highest-priority VC with a ready flit
    /// (flit-level preemption). Arbitration within one VC class is
    /// first-come-first-served (same-priority messages share the VC and
    /// are non-preemptive among themselves).
    PreemptivePriority,
    /// Li & Mutka: a packet of priority class `p` may acquire any VC
    /// with index `<= p` (highest free index preferred; higher-priority
    /// packets pick first). Physical-channel bandwidth is shared
    /// round-robin among active VCs — priorities shape *allocation*,
    /// not bandwidth.
    LiPriorityVc,
    /// Classic wormhole switching: a single VC per channel, allocated
    /// first-come-first-served with no regard to priority.
    ClassicFifo,
    /// Priority-arbitrated bandwidth over a *shared* VC pool: any free
    /// VC may be allocated (highest-priority requester picks first),
    /// and the physical channel is preemptive by priority — but with
    /// fewer VCs than priority levels, a high-priority packet can find
    /// every VC held by lower-priority worms and block (allocation
    /// inversion). This isolates the role of the paper's
    /// one-VC-per-priority assumption; cf. Song's throttle-and-preempt,
    /// which attacks the same scarcity with router support.
    SharedPoolPriority,
}

/// A pending VC request at one physical channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcRequest {
    /// Requesting packet (dense simulator index).
    pub packet: u32,
    /// The packet's priority class (0-based; larger = more urgent).
    pub class: u32,
    /// Cycle at which the request was first made (FCFS tie-break).
    pub since: u64,
}

impl Policy {
    /// Priority class of a packet with stream priority `priority` under
    /// `num_vcs` virtual channels. Stream priorities are 1-based (the
    /// paper's convention); classes are 0-based and clamped to the VC
    /// count so oversubscribed priority spaces degrade gracefully.
    pub fn class_of(self, priority: Priority, num_vcs: usize) -> u32 {
        match self {
            Policy::ClassicFifo => 0,
            // Classes index VCs: clamp to the VC count.
            Policy::PreemptivePriority | Policy::LiPriorityVc => {
                let class = priority.saturating_sub(1);
                class.min(num_vcs as u32 - 1)
            }
            // Classes only order arbitration: keep full resolution.
            Policy::SharedPoolPriority => priority.saturating_sub(1),
        }
    }

    /// Orders pending requests for service: most urgent first, then
    /// earliest request, then lowest packet index (fully deterministic).
    /// Classic FIFO ignores urgency.
    pub fn sort_requests(self, requests: &mut [VcRequest]) {
        match self {
            Policy::ClassicFifo => {
                requests.sort_by_key(|r| (r.since, r.packet));
            }
            _ => {
                requests.sort_by_key(|r| (std::cmp::Reverse(r.class), r.since, r.packet));
            }
        }
    }

    /// The VC a granted request occupies, given the free VCs of the
    /// channel (`free[vc] == true` when unowned). Returns `None` when
    /// the request cannot be served this cycle.
    pub fn pick_vc(self, class: u32, free: &[bool]) -> Option<usize> {
        match self {
            Policy::PreemptivePriority => {
                let vc = class as usize;
                free[vc].then_some(vc)
            }
            Policy::LiPriorityVc => {
                // Highest free index <= class (indices above the class
                // are reserved for more urgent traffic).
                let cap = (class as usize).min(free.len() - 1);
                (0..=cap).rev().find(|&vc| free[vc])
            }
            Policy::ClassicFifo => free[0].then_some(0),
            Policy::SharedPoolPriority => {
                // Any free VC; highest index first (mirrors Li's order
                // without the priority cap).
                (0..free.len()).rev().find(|&vc| free[vc])
            }
        }
    }

    /// Chooses which VC transmits on the physical channel this cycle.
    /// `ready` lists `(vc, class)` pairs with a flit ready to cross;
    /// `rr_pointer` is the channel's round-robin cursor (used by
    /// [`Policy::LiPriorityVc`] and advanced by the caller).
    pub fn pick_winner(self, ready: &[(usize, u32)], rr_pointer: usize) -> Option<usize> {
        if ready.is_empty() {
            return None;
        }
        match self {
            Policy::PreemptivePriority | Policy::SharedPoolPriority => {
                // Highest class wins; ties (impossible when VC = class,
                // real for the shared pool) break toward the lower VC
                // index.
                ready
                    .iter()
                    .max_by_key(|&&(vc, class)| (class, std::cmp::Reverse(vc)))
                    .map(|&(vc, _)| vc)
            }
            Policy::LiPriorityVc => {
                // Round-robin: the ready VC closest after the cursor on
                // a ring of VC indices (the ring size only has to exceed
                // any real VC count).
                const RING: usize = 1 << 16;
                ready
                    .iter()
                    .min_by_key(|&&(vc, _)| (vc + RING - (rr_pointer + 1) % RING) % RING)
                    .map(|&(vc, _)| vc)
            }
            Policy::ClassicFifo => ready.first().map(|&(vc, _)| vc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping_clamps() {
        let p = Policy::PreemptivePriority;
        assert_eq!(p.class_of(1, 4), 0);
        assert_eq!(p.class_of(4, 4), 3);
        assert_eq!(p.class_of(9, 4), 3, "clamped to top class");
        assert_eq!(Policy::ClassicFifo.class_of(7, 1), 0);
    }

    #[test]
    fn preemptive_picks_own_class_vc() {
        let p = Policy::PreemptivePriority;
        assert_eq!(p.pick_vc(2, &[true, true, true, true]), Some(2));
        assert_eq!(p.pick_vc(2, &[true, true, false, true]), None);
    }

    #[test]
    fn li_picks_highest_free_at_or_below() {
        let p = Policy::LiPriorityVc;
        assert_eq!(p.pick_vc(2, &[true, true, true, true]), Some(2));
        assert_eq!(p.pick_vc(2, &[true, true, false, true]), Some(1));
        assert_eq!(p.pick_vc(0, &[false, true, true, true]), None);
        assert_eq!(p.pick_vc(3, &[false, false, false, true]), Some(3));
    }

    #[test]
    fn shared_pool_takes_any_free_vc() {
        let p = Policy::SharedPoolPriority;
        assert_eq!(
            p.pick_vc(0, &[true, true, true]),
            Some(2),
            "any VC, even above class"
        );
        assert_eq!(p.pick_vc(5, &[true, false, false]), Some(0));
        assert_eq!(p.pick_vc(5, &[false, false, false]), None);
        // Classes keep full resolution (not clamped to the VC count).
        assert_eq!(p.class_of(9, 2), 8);
        // Bandwidth arbitration is preemptive by class.
        assert_eq!(p.pick_winner(&[(0, 3), (1, 7)], 0), Some(1));
    }

    #[test]
    fn classic_uses_vc_zero_only() {
        let p = Policy::ClassicFifo;
        assert_eq!(p.pick_vc(5, &[true]), Some(0));
        assert_eq!(p.pick_vc(5, &[false]), None);
    }

    #[test]
    fn request_order_priority_then_fcfs() {
        let p = Policy::PreemptivePriority;
        let mut reqs = vec![
            VcRequest {
                packet: 1,
                class: 0,
                since: 5,
            },
            VcRequest {
                packet: 2,
                class: 3,
                since: 9,
            },
            VcRequest {
                packet: 3,
                class: 3,
                since: 7,
            },
        ];
        p.sort_requests(&mut reqs);
        let order: Vec<u32> = reqs.iter().map(|r| r.packet).collect();
        assert_eq!(order, vec![3, 2, 1]);
    }

    #[test]
    fn classic_order_is_pure_fcfs() {
        let p = Policy::ClassicFifo;
        let mut reqs = vec![
            VcRequest {
                packet: 1,
                class: 0,
                since: 5,
            },
            VcRequest {
                packet: 2,
                class: 9,
                since: 9,
            },
            VcRequest {
                packet: 3,
                class: 1,
                since: 7,
            },
        ];
        p.sort_requests(&mut reqs);
        let order: Vec<u32> = reqs.iter().map(|r| r.packet).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn preemptive_winner_is_highest_class() {
        let p = Policy::PreemptivePriority;
        assert_eq!(p.pick_winner(&[(0, 0), (2, 2), (1, 1)], 0), Some(2));
        assert_eq!(p.pick_winner(&[], 0), None);
    }

    #[test]
    fn li_winner_round_robins() {
        let p = Policy::LiPriorityVc;
        let ready = [(0usize, 0u32), (1, 1), (3, 3)];
        assert_eq!(p.pick_winner(&ready, 0), Some(1));
        assert_eq!(p.pick_winner(&ready, 1), Some(3));
        assert_eq!(p.pick_winner(&ready, 3), Some(0));
    }
}
