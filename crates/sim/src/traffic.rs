//! Periodic traffic sources: one per message stream.

use rtwc_core::{MessageStream, StreamId};

/// Release schedule of one stream: messages at `phase + k * T` for
/// `k = 0, 1, 2, ...` (the paper's periodic model; `T` is the *minimum*
/// inter-generation time and the evaluation releases exactly at it).
#[derive(Clone, Debug)]
pub struct Source {
    /// The stream this source feeds.
    pub stream: StreamId,
    period: u64,
    phase: u64,
    /// Index of the next message to release.
    next_k: u64,
}

impl Source {
    /// Builds the source of `stream` with the given phase offset.
    pub fn new(stream: &MessageStream, phase: u64) -> Self {
        Source {
            stream: stream.id,
            period: stream.period(),
            phase,
            next_k: 0,
        }
    }

    /// The release time of the next message.
    pub fn next_release(&self) -> u64 {
        self.phase + self.next_k * self.period
    }

    /// Pops every release time `<= now`, in order.
    pub fn releases_through(&mut self, now: u64) -> Vec<u64> {
        let mut out = Vec::new();
        while self.next_release() <= now {
            out.push(self.next_release());
            self.next_k += 1;
        }
        out
    }

    /// Messages released so far.
    pub fn released_count(&self) -> u64 {
        self.next_k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtwc_core::{StreamSet, StreamSpec};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn one_stream(period: u64) -> StreamSet {
        let m = Mesh::mesh2d(4, 4);
        StreamSet::resolve(
            &m,
            &XyRouting,
            &[StreamSpec::new(
                m.node_at(&[0, 0]).unwrap(),
                m.node_at(&[3, 0]).unwrap(),
                1,
                period,
                2,
                period,
            )],
        )
        .unwrap()
    }

    #[test]
    fn releases_at_multiples_of_period() {
        let set = one_stream(10);
        let mut src = Source::new(set.get(StreamId(0)), 0);
        assert_eq!(src.next_release(), 0);
        assert_eq!(src.releases_through(25), vec![0, 10, 20]);
        assert_eq!(src.next_release(), 30);
        assert_eq!(src.released_count(), 3);
    }

    #[test]
    fn phase_shifts_schedule() {
        let set = one_stream(10);
        let mut src = Source::new(set.get(StreamId(0)), 7);
        assert_eq!(src.releases_through(25), vec![7, 17]);
    }

    #[test]
    fn no_releases_before_phase() {
        let set = one_stream(10);
        let mut src = Source::new(set.get(StreamId(0)), 50);
        assert!(src.releases_through(49).is_empty());
        assert_eq!(src.releases_through(50), vec![50]);
    }
}
