//! # wormnet-sim
//!
//! A deterministic, cycle-driven, flit-level wormhole network simulator
//! — the evaluation substrate of the ICPP'98 reproduction.
//!
//! The paper validates its delay upper bounds by simulating a 10x10
//! 2-D mesh with X-Y routing under **flit-level preemptive wormhole
//! switching**: every physical channel carries one virtual channel per
//! priority level, a message may only use the VC of its own priority,
//! and channel bandwidth always goes to the highest-priority VC with a
//! flit ready. This crate implements that router model plus the two
//! reference disciplines the paper positions itself against:
//!
//! * [`Policy::PreemptivePriority`] — the paper's scheme (§3);
//! * [`Policy::LiPriorityVc`] — Li & Mutka's priority-favoring VC
//!   allocation with fair bandwidth;
//! * [`Policy::ClassicFifo`] — classic single-VC wormhole switching, in
//!   which priority inversion (paper Fig. 2) arises naturally.
//!
//! Messages, routes, and priorities come from `rtwc-core`'s
//! [`StreamSet`](rtwc_core::StreamSet), so the simulated network and the
//! analytical bound agree exactly on channel usage — which is what makes
//! the paper's `actual / U` ratio tables meaningful.
//!
//! ## Example
//!
//! ```
//! use rtwc_core::{StreamSet, StreamSpec, StreamId};
//! use wormnet_sim::{SimConfig, Simulator};
//! use wormnet_topology::{Mesh, Topology, XyRouting};
//!
//! let mesh = Mesh::mesh2d(10, 10);
//! let node = |x, y| mesh.node_at(&[x, y]).unwrap();
//! let set = StreamSet::resolve(
//!     &mesh,
//!     &XyRouting,
//!     &[StreamSpec::new(node(1, 1), node(5, 4), 1, 500, 4, 500)],
//! )
//! .unwrap();
//! let mut sim = Simulator::new(
//!     mesh.num_links(),
//!     &set,
//!     SimConfig::paper(1).with_cycles(400, 0),
//! )
//! .unwrap();
//! sim.run();
//! // Alone in the network, the stream sees exactly its network latency.
//! assert_eq!(
//!     sim.stats().latencies(StreamId(0), 0),
//!     vec![set.get(StreamId(0)).latency]
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod arbiter;
pub mod config;
pub mod engine;
pub mod stats;
pub mod trace;
pub mod traffic;
pub mod worm;

pub use analysis::{check_trace_invariants, PacketTimeline, TraceViolation};
pub use arbiter::{Policy, VcRequest};
pub use config::SimConfig;
pub use engine::Simulator;
pub use stats::{MessageRecord, SimStats};
pub use trace::Event;
pub use traffic::Source;
pub use worm::{PacketId, Worm};
