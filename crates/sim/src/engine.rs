//! The cycle-driven flit-level wormhole simulation engine.
//!
//! Each cycle has four phases, all decided against the cycle-start
//! snapshot so that a flit advances at most one hop per cycle (giving
//! exactly the paper's network latency `L = hops + C - 1` on an idle
//! network):
//!
//! 1. **Release** — sources inject messages whose release time has
//!    passed; a message released at `r` first participates in cycle
//!    `r + 1`.
//! 2. **VC allocation** — head flits request the virtual channel of
//!    their next channel; grants follow the configured [`Policy`]
//!    (priority class then FCFS for the prioritized schemes, pure FCFS
//!    for classic wormhole).
//! 3. **Channel arbitration & transmission** — every physical channel
//!    independently picks one ready VC ([`Policy::pick_winner`]) and
//!    moves one flit. Under `PreemptivePriority` the highest-priority
//!    ready VC always wins: this *is* the paper's flit-level preemption.
//! 4. **Finalize** — drained VCs are released (a VC is held from head
//!    allocation until the tail has left its downstream buffer),
//!    completions are recorded, and the stall watchdog advances.

use crate::arbiter::{Policy, VcRequest};
use crate::config::SimConfig;
use crate::stats::{MessageRecord, SimStats};
use crate::trace::Event;
use crate::traffic::Source;
use crate::worm::{PacketId, Worm};
use rtwc_core::StreamSet;
use wormnet_topology::LinkId;

/// One virtual channel of a physical channel: at most one owning packet
/// (plus the index of the channel within the owner's route), and the
/// occupancy of its downstream flit buffer. Occupancy is shared state —
/// flits of a previous owner may still be draining while a successor
/// owns the VC, exactly as with credit-based flow control.
#[derive(Clone, Copy, Debug, Default)]
struct Vc {
    owner: Option<(PacketId, usize)>,
    occupancy: u64,
}

/// Per-physical-channel state.
#[derive(Clone, Debug)]
struct LinkState {
    vcs: Vec<Vc>,
    /// Round-robin cursor for [`Policy::LiPriorityVc`].
    rr: usize,
    /// VCs currently owned — arbitration skips channels with none
    /// (most channels are idle most cycles; this is the engine's main
    /// hot-path filter).
    owned: u32,
}

/// A flit-level wormhole network simulator bound to a stream set.
///
/// The simulator is fully deterministic: given the same stream set,
/// configuration, and phases, it produces identical statistics. All
/// randomness lives in workload generation.
#[derive(Debug)]
pub struct Simulator<'a> {
    set: &'a StreamSet,
    cfg: SimConfig,
    time: u64,
    links: Vec<LinkState>,
    worms: Vec<Worm>,
    active: Vec<PacketId>,
    sources: Vec<Source>,
    /// Per-stream dateline layers (one entry per hop; all zero off-torus).
    stream_layers: Vec<Vec<u8>>,
    releases_frozen: bool,
    idle_cycles: u64,
    stats: SimStats,
    trace: Vec<Event>,
    /// Scratch: request lists per link touched this cycle.
    pending: Vec<(LinkId, Vec<VcRequest>)>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over `num_links` directed channels (from
    /// `Topology::num_links`) with all stream phases zero.
    pub fn new(num_links: usize, set: &'a StreamSet, cfg: SimConfig) -> Result<Self, String> {
        let phases = vec![0u64; set.len()];
        Self::with_phases(num_links, set, cfg, &phases)
    }

    /// Creates a simulator with per-stream release phases (dateline
    /// layers all zero).
    pub fn with_phases(
        num_links: usize,
        set: &'a StreamSet,
        cfg: SimConfig,
        phases: &[u64],
    ) -> Result<Self, String> {
        let layers: Vec<Vec<u8>> = set
            .iter()
            .map(|s| vec![0u8; s.path.hops() as usize])
            .collect();
        Self::with_phases_and_layers(num_links, set, cfg, phases, &layers)
    }

    /// Creates a simulator with per-stream release phases and per-hop
    /// dateline VC layers (from `Torus::dateline_layers`; required for
    /// deadlock-free torus simulation with `num_layers = 2`).
    pub fn with_phases_and_layers(
        num_links: usize,
        set: &'a StreamSet,
        cfg: SimConfig,
        phases: &[u64],
        layers: &[Vec<u8>],
    ) -> Result<Self, String> {
        cfg.validate()?;
        if layers.len() != set.len() {
            return Err(format!(
                "need one layer vector per stream: got {}, want {}",
                layers.len(),
                set.len()
            ));
        }
        for (s, ls) in set.iter().zip(layers) {
            if ls.len() != s.path.hops() as usize {
                return Err(format!(
                    "{}: layer vector length {} != {} hops",
                    s.id,
                    ls.len(),
                    s.path.hops()
                ));
            }
            if ls.iter().any(|&l| l as usize >= cfg.num_layers) {
                return Err(format!(
                    "{}: layer out of range (num_layers = {})",
                    s.id, cfg.num_layers
                ));
            }
        }
        if phases.len() != set.len() {
            return Err(format!(
                "need one phase per stream: got {}, want {}",
                phases.len(),
                set.len()
            ));
        }
        for s in set.iter() {
            if s.priority() == 0 {
                return Err(format!("{}: priorities are 1-based", s.id));
            }
            if cfg.policy == Policy::PreemptivePriority && s.priority() as usize > cfg.num_vcs {
                return Err(format!(
                    "{}: priority {} exceeds the {} priority-level virtual channels",
                    s.id,
                    s.priority(),
                    cfg.num_vcs
                ));
            }
            for l in s.path.links() {
                if l.index() >= num_links {
                    return Err(format!("{}: path uses unknown channel {l:?}", s.id));
                }
            }
        }
        let sources = set
            .iter()
            .zip(phases)
            .map(|(s, &p)| Source::new(s, p))
            .collect();
        let stats = SimStats {
            link_flits: vec![0; num_links],
            vc_wait_cycles: vec![0; set.len()],
            ..SimStats::default()
        };
        Ok(Simulator {
            set,
            cfg: cfg.clone(),
            time: 0,
            links: vec![
                LinkState {
                    vcs: vec![Vc::default(); cfg.num_vcs * cfg.num_layers],
                    rr: 0,
                    owned: 0,
                };
                num_links
            ],
            worms: Vec::new(),
            active: Vec::new(),
            sources,
            stream_layers: layers.to_vec(),
            releases_frozen: false,
            idle_cycles: 0,
            stats,
            trace: Vec::new(),
            pending: Vec::new(),
        })
    }

    /// The current simulation time (cycles elapsed).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Collected statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The event trace (empty unless `SimConfig::trace`).
    pub fn trace(&self) -> &[Event] {
        &self.trace
    }

    /// Runs the configured horizon (`cfg.cycles` cycles), stopping early
    /// only if the stall watchdog fires. Returns the statistics.
    pub fn run(&mut self) -> &SimStats {
        for _ in 0..self.cfg.cycles {
            self.step();
            if self.stats.stalled_at.is_some() {
                break;
            }
        }
        self.stats.cycles_run = self.time;
        &self.stats
    }

    /// Stops releasing new messages and runs until every in-flight
    /// message completes (or `max_extra` cycles pass). Useful for
    /// examples that want every latency recorded.
    pub fn drain(&mut self, max_extra: u64) -> &SimStats {
        self.releases_frozen = true;
        for _ in 0..max_extra {
            if self.active.is_empty() || self.stats.stalled_at.is_some() {
                break;
            }
            self.step();
        }
        self.stats.cycles_run = self.time;
        &self.stats
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        self.time += 1;
        let now = self.time;

        // Phase 1: releases (messages released at r participate from
        // cycle r + 1).
        if !self.releases_frozen {
            for si in 0..self.sources.len() {
                for r in self.sources[si].releases_through(now - 1) {
                    let stream = self.set.get(self.sources[si].stream);
                    let id = PacketId(self.worms.len() as u32);
                    let class = self
                        .cfg
                        .policy
                        .class_of(stream.priority(), self.cfg.num_vcs);
                    self.worms.push(Worm::new(
                        id,
                        stream.id,
                        class,
                        stream.max_length(),
                        stream.path.links().to_vec(),
                        self.stream_layers[stream.id.index()].clone(),
                        r,
                    ));
                    self.active.push(id);
                    self.stats.records.push(MessageRecord {
                        stream: stream.id,
                        released: r,
                        completed: None,
                    });
                    if self.cfg.trace {
                        self.trace.push(Event::Released {
                            time: now,
                            packet: id,
                        });
                    }
                }
            }
        }

        // Phase 2: snapshot, then VC allocation.
        for &id in &self.active {
            self.worms[id.index()].snapshot();
        }
        self.pending.clear();
        for &id in &self.active {
            let w = &mut self.worms[id.index()];
            if w.completed.is_some() || w.next_link().is_none() || !w.head_ready() {
                continue;
            }
            let link = w.next_link().unwrap();
            let since = *w.requesting_since.get_or_insert(now);
            match self.pending.iter_mut().find(|(l, _)| *l == link) {
                Some((_, reqs)) => reqs.push(VcRequest {
                    packet: id.0,
                    class: w.class,
                    since,
                }),
                None => self.pending.push((
                    link,
                    vec![VcRequest {
                        packet: id.0,
                        class: w.class,
                        since,
                    }],
                )),
            }
        }
        // Deterministic link processing order.
        self.pending.sort_by_key(|(l, _)| *l);
        let mut pending = std::mem::take(&mut self.pending);
        for (link, reqs) in &mut pending {
            self.cfg.policy.sort_requests(reqs);
            let state = &mut self.links[link.index()];
            let nl = self.cfg.num_layers;
            let mut free: Vec<bool> = state.vcs.iter().map(|vc| vc.owner.is_none()).collect();
            for req in reqs.iter() {
                let pid = PacketId(req.packet);
                // Policies see only the requester's dateline layer: one
                // free slot per priority class.
                let layer =
                    self.worms[pid.index()].layers[self.worms[pid.index()].acquired] as usize;
                let projected: Vec<bool> = (0..self.cfg.num_vcs)
                    .map(|c| free[c * nl + layer])
                    .collect();
                if let Some(class_vc) = self.cfg.policy.pick_vc(req.class, &projected) {
                    let vc = class_vc * nl + layer;
                    free[vc] = false;
                    let w = &mut self.worms[pid.index()];
                    state.vcs[vc].owner = Some((pid, w.acquired));
                    state.owned += 1;
                    w.vcs.push(vc);
                    w.acquired += 1;
                    w.requesting_since = None;
                    if self.cfg.trace {
                        self.trace.push(Event::VcGranted {
                            time: now,
                            packet: pid,
                            link: *link,
                            vc,
                        });
                    }
                }
            }
        }
        self.pending = pending;

        // Unserved requesters accumulate VC-wait time (the blocking the
        // priority-inversion analysis cares about).
        for &id in &self.active {
            let w = &self.worms[id.index()];
            if w.requesting_since.is_some() {
                self.stats.vc_wait_cycles[w.stream.index()] += 1;
            }
        }

        // Phase 3: channel arbitration (decisions on pre-move state),
        // then apply all moves. `Vc::occupancy` is only mutated in the
        // apply loop, so reads during arbitration see cycle-start
        // credit state.
        let mut moves: Vec<(PacketId, usize, LinkId)> = Vec::new();
        let depth = self.cfg.buffer_depth as u64;
        for (li, link) in self.links.iter().enumerate() {
            if link.owned == 0 {
                continue;
            }
            let mut ready: Vec<(usize, u32)> = Vec::new();
            for (vi, vc) in link.vcs.iter().enumerate() {
                if let Some((pid, ri)) = vc.owner {
                    let w = &self.worms[pid.index()];
                    // Downstream credit: the flit needs a buffer slot
                    // unless this is the worm's final hop (ejection).
                    let has_credit = !w.enters_buffer(ri) || vc.occupancy < depth;
                    if w.wants_cross(ri) && has_credit {
                        ready.push((vi, w.class));
                    }
                }
            }
            if let Some(win) = self.cfg.policy.pick_winner(&ready, link.rr) {
                let (pid, ri) = link.vcs[win].owner.expect("winner has owner");
                moves.push((pid, ri, LinkId(li as u32)));
            }
        }
        let moved = !moves.is_empty();
        for (pid, ri, link) in moves {
            // Advance the round-robin cursor of the serving channel.
            let vc_here = self.worms[pid.index()].vcs[ri];
            self.links[link.index()].rr = vc_here;
            // Credit bookkeeping: the flit leaves the buffer of the
            // previous channel and (unless ejected) enters this one's.
            if ri > 0 {
                let prev_link = self.worms[pid.index()].route[ri - 1];
                let prev_vc = self.worms[pid.index()].vcs[ri - 1];
                let occ = &mut self.links[prev_link.index()].vcs[prev_vc].occupancy;
                debug_assert!(*occ > 0, "flit departed an empty buffer");
                *occ -= 1;
            }
            if self.worms[pid.index()].enters_buffer(ri) {
                self.links[link.index()].vcs[vc_here].occupancy += 1;
            }
            self.worms[pid.index()].apply_cross(ri);
            self.stats.flit_hops += 1;
            self.stats.link_flits[link.index()] += 1;
            if self.cfg.trace {
                self.trace.push(Event::FlitCrossed {
                    time: now,
                    packet: pid,
                    link,
                });
            }
        }

        // Phase 4: VC release, completion, watchdog.
        let mut still_active = Vec::with_capacity(self.active.len());
        for &id in &self.active {
            let w = &mut self.worms[id.index()];
            for i in 0..w.acquired {
                if w.vc_releasable(i) {
                    let link = w.route[i];
                    let vc = w.vcs[i];
                    let state = &mut self.links[link.index()];
                    if state.vcs[vc].owner == Some((id, i)) {
                        state.vcs[vc].owner = None;
                        state.owned -= 1;
                    }
                }
            }
            if w.completed.is_none() && w.is_done() {
                w.completed = Some(now);
                self.stats.records[id.index()].completed = Some(now);
                if self.cfg.trace {
                    self.trace.push(Event::Completed {
                        time: now,
                        packet: id,
                    });
                }
            }
            if w.completed.is_none() {
                still_active.push(id);
            }
        }
        self.active = still_active;

        if moved || self.active.is_empty() {
            self.idle_cycles = 0;
        } else {
            self.idle_cycles += 1;
            if self.idle_cycles >= self.cfg.stall_limit {
                self.stats.stalled_at = Some(now);
            }
        }
    }

    /// Packets currently in flight (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Renders a measured Gantt chart over cycles `from..=to` — the
    /// empirical counterpart of the analysis timing diagrams. One row
    /// per stream: `#` a flit of the stream crossed a channel that
    /// cycle, `w` a message was in flight but completely stalled, `.`
    /// nothing in flight. Requires `SimConfig::trace`.
    ///
    /// # Panics
    /// Panics when tracing was not enabled or `from > to`.
    pub fn render_gantt(&self, from: u64, to: u64) -> String {
        assert!(self.cfg.trace, "render_gantt requires SimConfig::trace");
        assert!(from <= to, "empty window");
        use std::fmt::Write as _;
        let width = (to - from + 1) as usize;
        // Per stream, per cycle: did any flit move?
        let mut moved = vec![vec![false; width]; self.set.len()];
        for e in &self.trace {
            if let Event::FlitCrossed { time, packet, .. } = *e {
                if time >= from && time <= to {
                    let stream = self.worms[packet.index()].stream;
                    moved[stream.index()][(time - from) as usize] = true;
                }
            }
        }
        // Per stream, per cycle: was some message in flight?
        let mut in_flight = vec![vec![false; width]; self.set.len()];
        for w in &self.worms {
            let start = (w.released + 1).max(from);
            let end = w.completed.unwrap_or(u64::MAX).min(to);
            for t in start..=end.min(to) {
                if t >= from {
                    in_flight[w.stream.index()][(t - from) as usize] = true;
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "cycles {from}..={to}:");
        for s in self.set.iter() {
            let _ = write!(out, "{:<6}", s.id.to_string());
            for i in 0..width {
                out.push(if moved[s.id.index()][i] {
                    '#'
                } else if in_flight[s.id.index()][i] {
                    'w'
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }

    /// Read access to a worm (diagnostics, tests).
    pub fn worm(&self, id: PacketId) -> &Worm {
        &self.worms[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtwc_core::{StreamId, StreamSpec};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn mesh() -> Mesh {
        Mesh::mesh2d(10, 10)
    }

    fn resolve(m: &Mesh, specs: &[StreamSpec]) -> StreamSet {
        StreamSet::resolve(m, &XyRouting, specs).unwrap()
    }

    fn spec(m: &Mesh, s: [u32; 2], d: [u32; 2], p: u32, t: u64, c: u64) -> StreamSpec {
        StreamSpec::new(m.node_at(&s).unwrap(), m.node_at(&d).unwrap(), p, t, c, t)
    }

    #[test]
    fn idle_network_latency_equals_l() {
        let m = mesh();
        let set = resolve(&m, &[spec(&m, [1, 1], [5, 4], 1, 10_000, 4)]);
        let cfg = SimConfig::paper(1).with_cycles(200, 0);
        let mut sim = Simulator::new(m.num_links(), &set, cfg).unwrap();
        sim.run();
        let l = set.get(StreamId(0)).latency;
        assert_eq!(l, 10); // 7 hops + 4 - 1
        assert_eq!(sim.stats().latencies(StreamId(0), 0), vec![l]);
    }

    #[test]
    fn every_stream_meets_latency_when_alone() {
        let m = mesh();
        for (s, d, c) in [
            ([0, 0], [9, 9], 1),
            ([3, 2], [3, 3], 7),
            ([9, 0], [0, 0], 12),
        ] {
            let set = resolve(&m, &[spec(&m, s, d, 1, 100_000, c)]);
            let mut sim =
                Simulator::new(m.num_links(), &set, SimConfig::paper(1).with_cycles(300, 0))
                    .unwrap();
            sim.run();
            assert_eq!(
                sim.stats().latencies(StreamId(0), 0),
                vec![set.get(StreamId(0)).latency],
                "{s:?}->{d:?} C={c}"
            );
        }
    }

    #[test]
    fn periodic_stream_completes_every_period() {
        let m = mesh();
        let set = resolve(&m, &[spec(&m, [0, 0], [4, 0], 1, 50, 3)]);
        let mut sim =
            Simulator::new(m.num_links(), &set, SimConfig::paper(1).with_cycles(500, 0)).unwrap();
        sim.run();
        let ls = sim.stats().latencies(StreamId(0), 0);
        assert_eq!(ls.len(), 10);
        assert!(ls.iter().all(|&l| l == 6), "{ls:?}");
    }

    #[test]
    fn high_priority_unaffected_by_low() {
        // Two streams sharing a row; the high-priority one must see pure
        // network latency under preemption despite saturating low
        // traffic.
        let m = mesh();
        let set = resolve(
            &m,
            &[
                spec(&m, [0, 0], [6, 0], 2, 40, 4),
                spec(&m, [1, 0], [7, 0], 1, 12, 10), // nearly saturating
            ],
        );
        let mut sim = Simulator::new(
            m.num_links(),
            &set,
            SimConfig::paper(2).with_cycles(2_000, 0),
        )
        .unwrap();
        sim.run();
        let hi = set.get(StreamId(0)).latency;
        let ls = sim.stats().latencies(StreamId(0), 0);
        assert!(!ls.is_empty());
        // Preemption is flit-level: the only residual interference is a
        // same-cycle tie that priority arbitration resolves in the high
        // stream's favor, so every latency equals L exactly.
        assert!(
            ls.iter().all(|&l| l == hi),
            "high-priority latencies {ls:?} != {hi}"
        );
    }

    #[test]
    fn low_priority_blocked_by_high() {
        let m = mesh();
        let set = resolve(
            &m,
            &[
                spec(&m, [0, 0], [6, 0], 2, 20, 8),
                spec(&m, [1, 0], [7, 0], 1, 100, 4),
            ],
        );
        let mut sim = Simulator::new(
            m.num_links(),
            &set,
            SimConfig::paper(2).with_cycles(1_000, 0),
        )
        .unwrap();
        sim.run();
        let low = set.get(StreamId(1));
        let ls = sim.stats().latencies(StreamId(1), 0);
        assert!(!ls.is_empty());
        assert!(
            ls.iter().any(|&l| l > low.latency),
            "low priority must see interference: {ls:?}"
        );
    }

    #[test]
    fn vc_wait_shows_same_class_blocking() {
        // VC-allocation waiting only occurs *within* a priority class
        // (each class has its own VC): two equal-priority streams
        // sharing a row must queue for the shared VC, while a
        // higher-priority stream on its own VC never does.
        let m = mesh();
        let set = resolve(
            &m,
            &[
                spec(&m, [0, 0], [6, 0], 2, 200, 4),
                spec(&m, [0, 1], [6, 1], 1, 20, 8), // same class, shared row
                spec(&m, [1, 1], [7, 1], 1, 20, 8),
            ],
        );
        let mut sim = Simulator::new(
            m.num_links(),
            &set,
            SimConfig::paper(2).with_cycles(1_000, 0),
        )
        .unwrap();
        sim.run();
        assert_eq!(sim.stats().vc_wait(StreamId(0)), 0, "own VC, no wait");
        assert!(
            sim.stats().vc_wait(StreamId(1)) + sim.stats().vc_wait(StreamId(2)) > 0,
            "equal-priority streams queue for the shared VC"
        );
    }

    #[test]
    fn link_flits_sum_to_flit_hops() {
        let m = mesh();
        let set = resolve(
            &m,
            &[
                spec(&m, [0, 0], [5, 5], 2, 37, 5),
                spec(&m, [2, 1], [7, 3], 1, 53, 7),
            ],
        );
        let mut sim = Simulator::new(
            m.num_links(),
            &set,
            SimConfig::paper(2).with_cycles(1_000, 0),
        )
        .unwrap();
        sim.run();
        let total: u64 = sim.stats().link_flits.iter().sum();
        assert_eq!(total, sim.stats().flit_hops);
        let (_, util) = sim.stats().hottest_link().unwrap();
        assert!(util > 0.0 && util <= 1.0, "utilization {util}");
    }

    #[test]
    fn flit_conservation() {
        let m = mesh();
        let set = resolve(
            &m,
            &[
                spec(&m, [0, 0], [5, 5], 2, 37, 5),
                spec(&m, [2, 1], [7, 3], 1, 53, 7),
            ],
        );
        let mut sim = Simulator::new(
            m.num_links(),
            &set,
            SimConfig::paper(2).with_cycles(1_000, 0),
        )
        .unwrap();
        sim.run();
        sim.drain(1_000);
        // Every completed message moved exactly C * hops flit-hops.
        let expected: u64 = sim
            .stats()
            .records
            .iter()
            .filter(|r| r.completed.is_some())
            .map(|r| {
                let s = set.get(r.stream);
                s.max_length() * s.path.hops() as u64
            })
            .sum();
        assert_eq!(sim.stats().flit_hops, expected);
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn determinism() {
        let m = mesh();
        let set = resolve(
            &m,
            &[
                spec(&m, [0, 0], [5, 5], 3, 37, 5),
                spec(&m, [2, 1], [7, 3], 2, 53, 7),
                spec(&m, [5, 5], [0, 2], 1, 41, 3),
            ],
        );
        let run = || {
            let mut sim = Simulator::new(
                m.num_links(),
                &set,
                SimConfig::paper(3).with_cycles(3_000, 0),
            )
            .unwrap();
            sim.run();
            (sim.stats().flit_hops, sim.stats().records.clone())
        };
        let (h1, r1) = run();
        let (h2, r2) = run();
        assert_eq!(h1, h2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn priority_out_of_range_rejected() {
        let m = mesh();
        let set = resolve(&m, &[spec(&m, [0, 0], [4, 0], 5, 50, 3)]);
        let err = Simulator::new(m.num_links(), &set, SimConfig::paper(2)).unwrap_err();
        assert!(err.contains("priority"), "{err}");
    }

    #[test]
    fn phases_must_match_stream_count() {
        let m = mesh();
        let set = resolve(&m, &[spec(&m, [0, 0], [4, 0], 1, 50, 3)]);
        let err =
            Simulator::with_phases(m.num_links(), &set, SimConfig::paper(1), &[0, 0]).unwrap_err();
        assert!(err.contains("phase"), "{err}");
    }

    #[test]
    fn trace_records_lifecycle() {
        let m = mesh();
        let set = resolve(&m, &[spec(&m, [0, 0], [2, 0], 1, 10_000, 2)]);
        let cfg = SimConfig::paper(1).with_cycles(50, 0).with_trace();
        let mut sim = Simulator::new(m.num_links(), &set, cfg).unwrap();
        sim.run();
        let trace = sim.trace();
        assert!(trace.iter().any(|e| matches!(e, Event::Released { .. })));
        let grants = trace
            .iter()
            .filter(|e| matches!(e, Event::VcGranted { .. }))
            .count();
        assert_eq!(grants, 2, "one grant per hop");
        let crossings = trace
            .iter()
            .filter(|e| matches!(e, Event::FlitCrossed { .. }))
            .count();
        assert_eq!(crossings, 4, "C * hops flit crossings");
        assert!(trace.iter().any(|e| matches!(e, Event::Completed { .. })));
    }

    #[test]
    fn shared_pool_exposes_allocation_inversion() {
        // Two low-priority worms hold both shared VCs of the row; a
        // high-priority message must wait for a VC (allocation
        // inversion) — under the paper's scheme its own VC is always
        // free and it never waits.
        let m = mesh();
        let set = resolve(
            &m,
            &[
                spec(&m, [0, 0], [7, 0], 1, 60, 40),
                spec(&m, [1, 0], [8, 0], 1, 60, 40),
                spec(&m, [2, 0], [9, 0], 3, 300, 6),
            ],
        );
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(m.num_links(), &set, cfg.with_cycles(2_000, 0)).unwrap();
            sim.run();
            sim.stats().vc_wait(StreamId(2))
        };
        let shared = run(SimConfig::shared_pool(2));
        let paper = run(SimConfig::paper(3));
        assert!(shared > 0, "scarce shared VCs must make the top class wait");
        assert_eq!(paper, 0, "a dedicated VC per priority never waits");
    }

    #[test]
    fn gantt_shows_transmission_and_stalls() {
        let m = mesh();
        let set = resolve(
            &m,
            &[
                spec(&m, [0, 0], [6, 0], 2, 40, 8),
                spec(&m, [1, 0], [7, 0], 1, 1_000, 4),
            ],
        );
        let cfg = SimConfig::paper(2).with_cycles(60, 0).with_trace();
        let mut sim = Simulator::new(m.num_links(), &set, cfg).unwrap();
        sim.run();
        let g = sim.render_gantt(1, 40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3, "{g}");
        let m0 = lines[1];
        let m1 = lines[2];
        assert!(m0.starts_with("M0"));
        // The top stream transmits from cycle 1; the low one is
        // preempted at some point (a 'w' appears) but transmits too.
        assert!(m0.contains('#'));
        assert!(m1.contains('#'));
        assert!(m1.contains('w'), "low stream should stall: {m1}");
        assert!(!m0.contains('w'), "top stream never stalls: {m0}");
    }

    #[test]
    #[should_panic(expected = "requires SimConfig::trace")]
    fn gantt_requires_trace() {
        let m = mesh();
        let set = resolve(&m, &[spec(&m, [0, 0], [2, 0], 1, 100, 2)]);
        let sim =
            Simulator::new(m.num_links(), &set, SimConfig::paper(1).with_cycles(10, 0)).unwrap();
        let _ = sim.render_gantt(1, 5);
    }

    #[test]
    fn classic_fifo_runs_and_finishes() {
        let m = mesh();
        let set = resolve(
            &m,
            &[
                spec(&m, [0, 0], [6, 0], 3, 40, 4),
                spec(&m, [1, 0], [7, 0], 1, 40, 4),
            ],
        );
        let mut sim = Simulator::new(
            m.num_links(),
            &set,
            SimConfig::classic().with_cycles(500, 0),
        )
        .unwrap();
        sim.run();
        assert!(sim.stats().total_completed() > 0);
        assert!(sim.stats().stalled_at.is_none());
    }
}
