//! Per-message latency records and aggregate statistics.

use rtwc_core::{Priority, StreamId, StreamSet};

/// One simulated message's lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageRecord {
    /// Owning stream.
    pub stream: StreamId,
    /// Release (generation) time.
    pub released: u64,
    /// Completion time (tail ejected), if it finished in the horizon.
    pub completed: Option<u64>,
}

impl MessageRecord {
    /// Transmission latency, if completed.
    pub fn latency(&self) -> Option<u64> {
        self.completed.map(|c| c - self.released)
    }
}

/// All measurements of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Every message, in release order.
    pub records: Vec<MessageRecord>,
    /// Cycles actually simulated.
    pub cycles_run: u64,
    /// Set when the stall watchdog fired (cycle of detection).
    pub stalled_at: Option<u64>,
    /// Total flit-hops transmitted (one flit crossing one channel).
    pub flit_hops: u64,
    /// Flits transmitted per directed channel (channel load).
    pub link_flits: Vec<u64>,
    /// Per stream: total cycles its packets spent waiting for a virtual
    /// channel (head blocked in VC allocation). The classic-wormhole
    /// priority-inversion pathology shows up here.
    pub vc_wait_cycles: Vec<u64>,
}

impl SimStats {
    /// Completed latencies of `stream` for messages released at or after
    /// `warmup`.
    pub fn latencies(&self, stream: StreamId, warmup: u64) -> Vec<u64> {
        self.records
            .iter()
            .filter(|r| r.stream == stream && r.released >= warmup)
            .filter_map(|r| r.latency())
            .collect()
    }

    /// Mean completed latency of `stream` past warm-up, if any message
    /// completed.
    pub fn mean_latency(&self, stream: StreamId, warmup: u64) -> Option<f64> {
        let ls = self.latencies(stream, warmup);
        if ls.is_empty() {
            return None;
        }
        Some(ls.iter().sum::<u64>() as f64 / ls.len() as f64)
    }

    /// Maximum completed latency of `stream` past warm-up.
    pub fn max_latency(&self, stream: StreamId, warmup: u64) -> Option<u64> {
        self.latencies(stream, warmup).into_iter().max()
    }

    /// Latency percentile of `stream` past warm-up (nearest-rank
    /// method; `q` in 0..=100). `q = 50` is the median, `q = 100` the
    /// maximum.
    pub fn percentile_latency(&self, stream: StreamId, warmup: u64, q: u8) -> Option<u64> {
        assert!(q <= 100, "percentile must be 0..=100");
        let mut ls = self.latencies(stream, warmup);
        if ls.is_empty() {
            return None;
        }
        ls.sort_unstable();
        let rank = ((q as usize * ls.len()).div_ceil(100)).clamp(1, ls.len());
        Some(ls[rank - 1])
    }

    /// Messages of `stream` still unfinished at the end of the run
    /// (released any time).
    pub fn unfinished(&self, stream: StreamId) -> usize {
        self.records
            .iter()
            .filter(|r| r.stream == stream && r.completed.is_none())
            .count()
    }

    /// Total messages released (all streams).
    pub fn total_released(&self) -> usize {
        self.records.len()
    }

    /// Total messages completed (all streams).
    pub fn total_completed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.completed.is_some())
            .count()
    }

    /// Utilization of a directed channel: flits transmitted per cycle.
    pub fn link_utilization(&self, link: wormnet_topology::LinkId) -> f64 {
        if self.cycles_run == 0 {
            return 0.0;
        }
        self.link_flits[link.index()] as f64 / self.cycles_run as f64
    }

    /// The busiest channel and its utilization, if any flit moved.
    pub fn hottest_link(&self) -> Option<(wormnet_topology::LinkId, f64)> {
        let (i, &max) = self
            .link_flits
            .iter()
            .enumerate()
            .max_by_key(|&(_, &f)| f)?;
        if max == 0 || self.cycles_run == 0 {
            return None;
        }
        Some((
            wormnet_topology::LinkId(i as u32),
            max as f64 / self.cycles_run as f64,
        ))
    }

    /// Cycles the packets of `stream` spent blocked in VC allocation.
    pub fn vc_wait(&self, stream: StreamId) -> u64 {
        self.vc_wait_cycles[stream.index()]
    }

    /// Mean completed latency over all streams of a given priority,
    /// averaging per message (the paper's per-priority-level rows).
    pub fn mean_latency_by_priority(
        &self,
        set: &StreamSet,
        priority: Priority,
        warmup: u64,
    ) -> Option<f64> {
        let mut sum = 0u64;
        let mut n = 0usize;
        for r in &self.records {
            if r.released < warmup || set.get(r.stream).priority() != priority {
                continue;
            }
            if let Some(l) = r.latency() {
                sum += l;
                n += 1;
            }
        }
        (n > 0).then(|| sum as f64 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtwc_core::StreamSpec;
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn rec(stream: u32, released: u64, completed: Option<u64>) -> MessageRecord {
        MessageRecord {
            stream: StreamId(stream),
            released,
            completed,
        }
    }

    fn stats() -> SimStats {
        SimStats {
            records: vec![
                rec(0, 0, Some(10)),
                rec(0, 100, Some(115)),
                rec(0, 200, None),
                rec(1, 50, Some(80)),
            ],
            cycles_run: 300,
            link_flits: vec![30, 0, 60],
            vc_wait_cycles: vec![5, 0],
            ..SimStats::default()
        }
    }

    #[test]
    fn latency_math() {
        let s = stats();
        assert_eq!(s.latencies(StreamId(0), 0), vec![10, 15]);
        assert_eq!(s.mean_latency(StreamId(0), 0), Some(12.5));
        assert_eq!(s.max_latency(StreamId(0), 0), Some(15));
        assert_eq!(s.unfinished(StreamId(0)), 1);
        assert_eq!(s.total_released(), 4);
        assert_eq!(s.total_completed(), 3);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = SimStats {
            records: (1..=10).map(|i| rec(0, 0, Some(i * 10))).collect(),
            ..SimStats::default()
        };
        // Latencies 10, 20, ..., 100.
        assert_eq!(s.percentile_latency(StreamId(0), 0, 50), Some(50));
        assert_eq!(s.percentile_latency(StreamId(0), 0, 90), Some(90));
        assert_eq!(s.percentile_latency(StreamId(0), 0, 100), Some(100));
        assert_eq!(s.percentile_latency(StreamId(0), 0, 0), Some(10));
        assert_eq!(s.percentile_latency(StreamId(1), 0, 50), None);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_out_of_range_panics() {
        stats().percentile_latency(StreamId(0), 0, 101);
    }

    #[test]
    fn warmup_excludes_early_messages() {
        let s = stats();
        assert_eq!(s.latencies(StreamId(0), 50), vec![15]);
        assert_eq!(s.mean_latency(StreamId(0), 50), Some(15.0));
        assert_eq!(s.mean_latency(StreamId(1), 90), None);
    }

    #[test]
    fn link_and_wait_accessors() {
        let s = stats();
        assert_eq!(s.link_utilization(wormnet_topology::LinkId(0)), 0.1);
        assert_eq!(s.link_utilization(wormnet_topology::LinkId(1)), 0.0);
        let (hot, util) = s.hottest_link().unwrap();
        assert_eq!(hot, wormnet_topology::LinkId(2));
        assert!((util - 0.2).abs() < 1e-12);
        assert_eq!(s.vc_wait(StreamId(0)), 5);
        assert_eq!(s.vc_wait(StreamId(1)), 0);
    }

    #[test]
    fn hottest_link_none_when_idle() {
        let s = SimStats {
            link_flits: vec![0, 0],
            cycles_run: 10,
            ..SimStats::default()
        };
        assert!(s.hottest_link().is_none());
    }

    #[test]
    fn per_priority_mean() {
        let m = Mesh::mesh2d(4, 4);
        let mk = |p: u32| {
            StreamSpec::new(
                m.node_at(&[0, p]).unwrap(),
                m.node_at(&[3, p]).unwrap(),
                p + 1,
                100,
                2,
                100,
            )
        };
        let set = StreamSet::resolve(&m, &XyRouting, &[mk(0), mk(1)]).unwrap();
        let s = stats();
        // Stream 0 has priority 1, stream 1 priority 2.
        assert_eq!(s.mean_latency_by_priority(&set, 1, 0), Some(12.5));
        assert_eq!(s.mean_latency_by_priority(&set, 2, 0), Some(30.0));
        assert_eq!(s.mean_latency_by_priority(&set, 3, 0), None);
    }
}
