//! Blocking dependency graphs (paper Fig. 5/8) and the order in which
//! `Modify_Diagram` must process indirect HP elements.

use crate::hpset::HpSet;
use crate::interference::InterferenceIndex;
use crate::stream::{StreamId, StreamSet};
use std::collections::VecDeque;

/// The blocking dependency graph of one HP set: nodes are the HP
/// elements plus the target; there is an edge `a -> b` whenever `a`
/// directly affects `b` (higher-or-equal priority and a shared directed
/// channel). The paper stores it as an adjacency matrix; so do we.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockingDependencyGraph {
    /// Node order: HP elements in row order, then the target last.
    nodes: Vec<StreamId>,
    /// `adj[a][b]` == true iff `nodes[a]` directly affects `nodes[b]`.
    adj: Vec<Vec<bool>>,
}

impl BlockingDependencyGraph {
    /// Builds the BDG for `hp` over `set` by pairwise directly-affects
    /// tests (sorted-merge channel overlap per pair). Identical to
    /// [`BlockingDependencyGraph::build_indexed`]; callers holding an
    /// [`InterferenceIndex`] should prefer that, which reads each edge
    /// as one bit test.
    pub fn build(set: &StreamSet, hp: &HpSet) -> Self {
        Self::build_with(hp, |a, b| set.get(a).directly_affects(set.get(b)))
    }

    /// Builds the BDG off an interference index: every edge is a single
    /// bit probe of the directly-affects adjacency instead of a path
    /// comparison.
    pub fn build_indexed(index: &InterferenceIndex, hp: &HpSet) -> Self {
        Self::build_with(hp, |a, b| index.directly_affects(a, b))
    }

    fn build_with(hp: &HpSet, edge: impl Fn(StreamId, StreamId) -> bool) -> Self {
        let mut nodes: Vec<StreamId> = hp.elements().iter().map(|e| e.stream).collect();
        nodes.push(hp.target);
        let n = nodes.len();
        let mut adj = vec![vec![false; n]; n];
        for (i, &a) in nodes.iter().enumerate() {
            for (j, &b) in nodes.iter().enumerate() {
                if i != j && edge(a, b) {
                    adj[i][j] = true;
                }
            }
        }
        BlockingDependencyGraph { nodes, adj }
    }

    /// Node ids in internal order (target last).
    pub fn nodes(&self) -> &[StreamId] {
        &self.nodes
    }

    /// True when `a` directly affects `b`.
    pub fn edge(&self, a: StreamId, b: StreamId) -> bool {
        let (ia, ib) = (self.pos(a), self.pos(b));
        self.adj[ia][ib]
    }

    fn pos(&self, s: StreamId) -> usize {
        self.nodes
            .iter()
            .position(|&n| n == s)
            .expect("stream not in BDG")
    }

    /// BFS distance of every node from the target, following edges
    /// *backwards* (the paper transposes the matrix and searches from
    /// `M_j`). Direct blockers are at distance 1.
    pub fn distance_from_target(&self) -> Vec<Option<u32>> {
        let n = self.nodes.len();
        let target = n - 1;
        let mut dist = vec![None; n];
        dist[target] = Some(0);
        let mut queue = VecDeque::from([target]);
        while let Some(b) = queue.pop_front() {
            let db = dist[b].unwrap();
            for (a, d) in dist.iter_mut().enumerate() {
                if self.adj[a][b] && d.is_none() {
                    *d = Some(db + 1);
                    queue.push_back(a);
                }
            }
        }
        dist
    }

    /// The order in which `Modify_Diagram` processes *indirect* HP
    /// elements: an element is handled only after every one of its
    /// intermediates that is itself indirect has been handled (the
    /// paper's `vc[ni] == indegree` bookkeeping). Among ready elements,
    /// nearer-to-target (smaller BFS distance) first, ties by id, which
    /// keeps the procedure deterministic; any leftover elements that a
    /// mutual-blocking cycle makes permanently "unready" are appended in
    /// BFS-distance order so the pass always terminates.
    pub fn indirect_processing_order(&self, hp: &HpSet) -> Vec<StreamId> {
        let indirect: Vec<StreamId> = hp
            .elements()
            .iter()
            .filter(|e| !e.is_direct())
            .map(|e| e.stream)
            .collect();
        if indirect.is_empty() {
            return Vec::new();
        }
        let dist = self.distance_from_target();
        let dist_of = |s: StreamId| -> u32 { dist[self.pos(s)].unwrap_or(u32::MAX) };
        let mut pending: Vec<StreamId> = indirect.clone();
        pending.sort_by_key(|&s| (dist_of(s), s));
        let mut done: Vec<StreamId> = Vec::new();
        while !pending.is_empty() {
            let ready_pos = pending.iter().position(|&s| {
                let elem = hp.element(s).expect("indirect element in HP");
                elem.intermediates.iter().all(|&im| {
                    // Intermediates that are direct need no processing.
                    hp.element(im).is_none_or(|e| e.is_direct()) || done.contains(&im)
                })
            });
            // Cycle fallback: take the nearest pending element.
            let pos = ready_pos.unwrap_or(0);
            let s = pending.remove(pos);
            done.push(s);
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpset::generate_hp;
    use crate::stream::{StreamSet, StreamSpec};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn build(specs: &[([u32; 2], [u32; 2], u32)]) -> StreamSet {
        let m = Mesh::mesh2d(10, 10);
        let specs: Vec<StreamSpec> = specs
            .iter()
            .map(|&(s, d, p)| {
                StreamSpec::new(
                    m.node_at(&s).unwrap(),
                    m.node_at(&d).unwrap(),
                    p,
                    100,
                    4,
                    100,
                )
            })
            .collect();
        StreamSet::resolve(&m, &XyRouting, &specs).unwrap()
    }

    /// W -> X -> Y -> T chain.
    fn chain() -> StreamSet {
        build(&[
            ([0, 0], [2, 0], 1), // T
            ([1, 0], [4, 0], 2), // Y direct
            ([3, 0], [6, 0], 3), // X indirect via Y
            ([5, 0], [8, 0], 4), // W indirect via X
        ])
    }

    #[test]
    fn edges_follow_directly_affects() {
        let set = chain();
        let hp = generate_hp(&set, StreamId(0));
        let g = BlockingDependencyGraph::build(&set, &hp);
        assert!(g.edge(StreamId(1), StreamId(0)));
        assert!(g.edge(StreamId(2), StreamId(1)));
        assert!(g.edge(StreamId(3), StreamId(2)));
        assert!(!g.edge(StreamId(3), StreamId(0)));
        assert!(!g.edge(StreamId(0), StreamId(1)), "low cannot block high");
        assert_eq!(g.nodes().last(), Some(&StreamId(0)), "target is last");
    }

    #[test]
    fn distances_from_target() {
        let set = chain();
        let hp = generate_hp(&set, StreamId(0));
        let g = BlockingDependencyGraph::build(&set, &hp);
        let dist = g.distance_from_target();
        // Node order: HP rows sorted by decreasing priority (W, X, Y),
        // then target.
        let labeled: Vec<(StreamId, Option<u32>)> = g.nodes().iter().copied().zip(dist).collect();
        for (s, d) in labeled {
            let expect = match s.0 {
                0 => 0,
                1 => 1,
                2 => 2,
                3 => 3,
                _ => unreachable!(),
            };
            assert_eq!(d, Some(expect), "{s:?}");
        }
    }

    #[test]
    fn processing_order_respects_intermediates() {
        let set = chain();
        let hp = generate_hp(&set, StreamId(0));
        let g = BlockingDependencyGraph::build(&set, &hp);
        let order = g.indirect_processing_order(&hp);
        // X (via direct Y) first, then W (via X).
        assert_eq!(order, vec![StreamId(2), StreamId(3)]);
    }

    #[test]
    fn indexed_build_matches_pairwise() {
        let set = chain();
        let index = InterferenceIndex::build(&set);
        for id in set.ids() {
            let hp = generate_hp(&set, id);
            assert_eq!(
                BlockingDependencyGraph::build(&set, &hp),
                BlockingDependencyGraph::build_indexed(&index, &hp),
                "{id}"
            );
        }
    }

    #[test]
    fn no_indirect_elements_is_empty_order() {
        let set = build(&[
            ([0, 0], [4, 0], 1), // T
            ([1, 0], [5, 0], 2), // direct only
        ]);
        let hp = generate_hp(&set, StreamId(0));
        let g = BlockingDependencyGraph::build(&set, &hp);
        assert!(g.indirect_processing_order(&hp).is_empty());
    }

    #[test]
    fn paper_example_bdg_shape() {
        // Figure 8: M0 -> M2 -> M4, M1 -> {M2, M3} -> M4.
        let m = Mesh::mesh2d(10, 10);
        let mk = |s: [u32; 2], d: [u32; 2], p, t, c| {
            StreamSpec::new(m.node_at(&s).unwrap(), m.node_at(&d).unwrap(), p, t, c, t)
        };
        let set = StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                mk([7, 3], [7, 7], 5, 150, 4),
                mk([1, 1], [5, 4], 4, 100, 2),
                mk([2, 1], [7, 5], 3, 400, 4),
                mk([4, 1], [8, 5], 2, 450, 9),
                mk([6, 1], [9, 3], 1, 500, 6),
            ],
        )
        .unwrap();
        let hp4 = generate_hp(&set, StreamId(4));
        let g = BlockingDependencyGraph::build(&set, &hp4);
        assert!(g.edge(StreamId(0), StreamId(2)));
        assert!(g.edge(StreamId(1), StreamId(2)));
        assert!(g.edge(StreamId(2), StreamId(4)));
        assert!(g.edge(StreamId(3), StreamId(4)));
        assert!(!g.edge(StreamId(0), StreamId(4)));
        assert!(!g.edge(StreamId(1), StreamId(4)));
        let order = g.indirect_processing_order(&hp4);
        assert_eq!(order.len(), 2);
        assert!(order.contains(&StreamId(0)) && order.contains(&StreamId(1)));
    }
}
