//! `Determine-Feasibility`: the paper's top-level message-stream
//! feasibility test (§4.3).

use crate::calu::{cal_u_with_hp, CalUAnalysis, DelayBound};
use crate::diagram::AnalysisScratch;
use crate::interference::InterferenceIndex;
use crate::stream::{StreamId, StreamSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Outcome of message-stream feasibility testing: one delay bound per
/// stream and the overall verdict (`success` iff `U_i <= D_i` for all
/// streams).
#[derive(Clone, Debug)]
pub struct FeasibilityReport {
    /// Delay upper bound per stream, indexed by stream id. Each bound is
    /// computed over the stream's own deadline horizon, so
    /// `DelayBound::Exceeded` means "not within `D_i`".
    pub bounds: Vec<DelayBound>,
    /// Streams whose bound misses (or exceeds) their deadline.
    pub infeasible: Vec<StreamId>,
}

impl FeasibilityReport {
    /// The paper's `success`/`fail` verdict.
    pub fn is_feasible(&self) -> bool {
        self.infeasible.is_empty()
    }

    /// The bound of one stream.
    pub fn bound(&self, id: StreamId) -> DelayBound {
        self.bounds[id.index()]
    }
}

/// Runs `Determine-Feasibility` over the whole stream set: builds HP
/// sets from the highest priority level downwards, computes every
/// `U_i` with horizon `D_i`, and reports which streams cannot be
/// guaranteed.
pub fn determine_feasibility(set: &StreamSet) -> FeasibilityReport {
    determine_feasibility_indexed(set, &InterferenceIndex::build(set))
}

/// [`determine_feasibility`] over a caller-supplied interference index
/// (the admission controller passes its incrementally maintained one;
/// the parallel driver builds one and shares it read-only).
pub fn determine_feasibility_indexed(
    set: &StreamSet,
    index: &InterferenceIndex,
) -> FeasibilityReport {
    let mut bounds = vec![DelayBound::Exceeded; set.len()];
    let mut infeasible = Vec::new();
    // One bound-only arena reused across the whole loop: the analysis
    // allocates once and the per-stream cost is pure bit work.
    let mut scratch = AnalysisScratch::new();
    // GList order: decreasing priority, ties by id. The order does not
    // change any U (each analysis reads only stream parameters), but it
    // mirrors the paper's loop and keeps reports deterministic.
    for id in set.by_decreasing_priority() {
        let stream = set.get(id);
        let hp = index.hp_set(set, id);
        let bound = scratch.delay_bound_indexed(set, index, &hp, stream.deadline());
        bounds[id.index()] = bound;
        if !bound.meets(stream.deadline()) {
            infeasible.push(id);
        }
    }
    infeasible.sort_unstable();
    FeasibilityReport { bounds, infeasible }
}

/// [`determine_feasibility`] across `threads` worker threads.
///
/// Each stream's analysis is independent (it reads only the immutable
/// stream set), but analysis costs are wildly uneven — a stream's cost
/// scales with its deadline horizon and HP-set depth — so a static
/// partition leaves threads idle behind whichever chunk drew the
/// expensive streams. Workers instead *steal* the next stream index
/// from a shared atomic counter as they finish, each carrying its own
/// reusable [`AnalysisScratch`]. Produces bit-identical results to the
/// sequential version regardless of thread count or interleaving.
pub fn determine_feasibility_parallel(set: &StreamSet, threads: usize) -> FeasibilityReport {
    let threads = threads.max(1).min(set.len());
    if threads == 1 {
        return determine_feasibility(set);
    }
    let mut bounds = vec![DelayBound::Exceeded; set.len()];
    let ids: Vec<StreamId> = set.ids().collect();
    let next = AtomicUsize::new(0);
    // One index, built once and shared read-only across the workers:
    // HP construction inside the steal loop is pure bit work.
    let index = InterferenceIndex::build(set);
    let partials: Vec<Vec<(StreamId, DelayBound)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let ids = &ids;
                let index = &index;
                scope.spawn(move || {
                    let mut scratch = AnalysisScratch::new();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&id) = ids.get(i) else { break };
                        let hp = index.hp_set(set, id);
                        let bound =
                            scratch.delay_bound_indexed(set, index, &hp, set.get(id).deadline());
                        local.push((id, bound));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("analysis worker"))
            .collect()
    });
    for partial in partials {
        for (id, bound) in partial {
            bounds[id.index()] = bound;
        }
    }
    let mut infeasible: Vec<StreamId> = set
        .ids()
        .filter(|&id| !bounds[id.index()].meets(set.get(id).deadline()))
        .collect();
    infeasible.sort_unstable();
    FeasibilityReport { bounds, infeasible }
}

/// Like [`determine_feasibility`] but with a caller-chosen horizon per
/// stream (e.g. "large enough to find U even past the deadline", which
/// the evaluation workloads need for the paper's period-inflation rule).
pub fn delay_bounds(
    set: &StreamSet,
    horizon_of: impl Fn(&StreamSet, StreamId) -> u64,
) -> Vec<DelayBound> {
    let mut scratch = AnalysisScratch::new();
    let index = InterferenceIndex::build(set);
    set.ids()
        .map(|id| {
            let hp = index.hp_set(set, id);
            scratch.delay_bound_indexed(set, &index, &hp, horizon_of(set, id))
        })
        .collect()
}

/// Full per-stream analyses (HP sets, diagrams, bounds) with horizon
/// `D_i`, for reporting.
pub fn analyze_all(set: &StreamSet) -> Vec<CalUAnalysis> {
    let index = InterferenceIndex::build(set);
    set.ids()
        .map(|id| {
            let hp = index.hp_set(set, id);
            cal_u_with_hp(set, hp, set.get(id).deadline())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamSpec;
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn set_with_deadlines(d0: u64, d1: u64) -> StreamSet {
        let m = Mesh::mesh2d(10, 2);
        let mk = |x0: u32, x1: u32, p: u32, t: u64, c: u64, d: u64| {
            StreamSpec::new(
                m.node_at(&[x0, 0]).unwrap(),
                m.node_at(&[x1, 0]).unwrap(),
                p,
                t,
                c,
                d,
            )
        };
        StreamSet::resolve(
            &m,
            &XyRouting,
            &[mk(0, 5, 2, 20, 3, d0), mk(1, 6, 1, 100, 4, d1)],
        )
        .unwrap()
    }

    #[test]
    fn feasible_set() {
        // Stream 0: U = L = 7; stream 1: U = 11 (see calu tests).
        let set = set_with_deadlines(20, 20);
        let report = determine_feasibility(&set);
        assert!(report.is_feasible());
        assert_eq!(report.bound(StreamId(0)), DelayBound::Bounded(7));
        assert_eq!(report.bound(StreamId(1)), DelayBound::Bounded(11));
    }

    #[test]
    fn tight_deadline_fails() {
        let set = set_with_deadlines(20, 10);
        let report = determine_feasibility(&set);
        assert!(!report.is_feasible());
        assert_eq!(report.infeasible, vec![StreamId(1)]);
        // The bound search stops at the deadline horizon.
        assert_eq!(report.bound(StreamId(1)), DelayBound::Exceeded);
    }

    #[test]
    fn deadline_equal_to_bound_is_feasible() {
        let set = set_with_deadlines(7, 11);
        let report = determine_feasibility(&set);
        assert!(report.is_feasible(), "U <= D is the paper's condition");
    }

    #[test]
    fn delay_bounds_with_custom_horizon() {
        // Even with a 10-slot deadline, a 100-slot horizon finds U = 11.
        let set = set_with_deadlines(20, 10);
        let bounds = delay_bounds(&set, |_, _| 100);
        assert_eq!(bounds[1], DelayBound::Bounded(11));
    }

    #[test]
    fn parallel_matches_sequential() {
        let m = Mesh::mesh2d(10, 2);
        let mk = |x0: u32, x1: u32, p: u32, t: u64, c: u64| {
            StreamSpec::new(
                m.node_at(&[x0, 0]).unwrap(),
                m.node_at(&[x1, 0]).unwrap(),
                p,
                t,
                c,
                t,
            )
        };
        let set = StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                mk(0, 5, 3, 40, 4),
                mk(1, 6, 2, 60, 6),
                mk(2, 7, 1, 90, 8),
                mk(0, 3, 1, 120, 5),
                mk(4, 9, 2, 80, 7),
            ],
        )
        .unwrap();
        let seq = determine_feasibility(&set);
        for threads in [1usize, 2, 3, 8, 64] {
            let par = determine_feasibility_parallel(&set, threads);
            assert_eq!(par.bounds, seq.bounds, "{threads} threads");
            assert_eq!(par.infeasible, seq.infeasible);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_skewed_costs() {
        // A work-stealing stress shape: one stream with a huge deadline
        // horizon and a deep HP set next to many cheap streams, so a
        // static partition would be badly imbalanced and any
        // scratch-reuse bug across uneven work items would surface.
        let m = Mesh::mesh2d(16, 2);
        let mk = |x0: u32, x1: u32, p: u32, t: u64, c: u64, d: u64| {
            StreamSpec::new(
                m.node_at(&[x0, 0]).unwrap(),
                m.node_at(&[x1, 0]).unwrap(),
                p,
                t,
                c,
                d,
            )
        };
        let set = StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                mk(0, 8, 9, 25, 3, 25),
                mk(1, 9, 8, 40, 5, 40),
                mk(2, 10, 7, 55, 4, 55),
                mk(3, 11, 6, 70, 6, 70),
                mk(4, 12, 5, 85, 2, 85),
                mk(5, 13, 4, 100, 7, 100),
                mk(6, 14, 3, 30, 2, 30),
                mk(7, 15, 2, 45, 3, 45),
                // The expensive tail: everything above blocks it, and its
                // horizon is ~100x the cheap streams'.
                mk(0, 15, 1, 9000, 8, 9000),
            ],
        )
        .unwrap();
        let seq = determine_feasibility(&set);
        for threads in [2usize, 3, 4, 9, 32] {
            let par = determine_feasibility_parallel(&set, threads);
            assert_eq!(par.bounds, seq.bounds, "{threads} threads");
            assert_eq!(par.infeasible, seq.infeasible);
        }
    }

    #[test]
    fn analyze_all_covers_every_stream() {
        let set = set_with_deadlines(20, 20);
        let analyses = analyze_all(&set);
        assert_eq!(analyses.len(), 2);
        assert_eq!(analyses[0].target, StreamId(0));
        assert_eq!(analyses[1].target, StreamId(1));
    }
}
