//! Errors raised while building or analyzing stream sets.

use std::fmt;

/// Why a stream set could not be built or analyzed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// A feasibility instance needs at least one stream.
    EmptySet,
    /// A stream's source equals its destination; wormhole delivery is
    /// only defined across the network.
    SelfDelivery {
        /// Index of the offending spec.
        stream: usize,
    },
    /// A stream's period `T_i` is zero.
    ZeroPeriod {
        /// Index of the offending spec.
        stream: usize,
    },
    /// A stream's maximum message length `C_i` is zero flits.
    ZeroLength {
        /// Index of the offending spec.
        stream: usize,
    },
    /// A stream's deadline `D_i` is zero.
    ZeroDeadline {
        /// Index of the offending spec.
        stream: usize,
    },
    /// The deterministic routing algorithm failed for a stream.
    RouteFailed {
        /// Index of the offending spec.
        stream: usize,
        /// The routing error's description.
        reason: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::EmptySet => write!(f, "stream set is empty"),
            AnalysisError::SelfDelivery { stream } => {
                write!(f, "stream {stream}: source equals destination")
            }
            AnalysisError::ZeroPeriod { stream } => {
                write!(f, "stream {stream}: period T must be positive")
            }
            AnalysisError::ZeroLength { stream } => {
                write!(f, "stream {stream}: message length C must be positive")
            }
            AnalysisError::ZeroDeadline { stream } => {
                write!(f, "stream {stream}: deadline D must be positive")
            }
            AnalysisError::RouteFailed { stream, reason } => {
                write!(f, "stream {stream}: routing failed: {reason}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AnalysisError::ZeroPeriod { stream: 3 };
        assert!(e.to_string().contains("stream 3"));
        assert!(e.to_string().contains("period"));
        let e = AnalysisError::RouteFailed {
            stream: 1,
            reason: "no channel".into(),
        };
        assert!(e.to_string().contains("no channel"));
    }
}
