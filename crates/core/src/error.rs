//! Errors raised while building or analyzing stream sets.

use std::fmt;
use wormnet_topology::NodeId;

/// Why a stream set could not be built or analyzed.
///
/// Every variant that concerns a single stream carries the stream's
/// index (see [`AnalysisError::stream`]) so callers — the CLI in
/// particular — can point at the offending spec line instead of
/// reporting a context-free string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// A feasibility instance needs at least one stream.
    EmptySet,
    /// A stream's source equals its destination; wormhole delivery is
    /// only defined across the network.
    SelfDelivery {
        /// Index of the offending spec.
        stream: usize,
    },
    /// A stream's period `T_i` is zero.
    ZeroPeriod {
        /// Index of the offending spec.
        stream: usize,
    },
    /// A stream's maximum message length `C_i` is zero flits.
    ZeroLength {
        /// Index of the offending spec.
        stream: usize,
    },
    /// A stream's deadline `D_i` is zero.
    ZeroDeadline {
        /// Index of the offending spec.
        stream: usize,
    },
    /// The deterministic routing algorithm failed for a stream.
    RouteFailed {
        /// Index of the offending spec.
        stream: usize,
        /// The unroutable source node.
        source: NodeId,
        /// The unroutable destination node.
        dest: NodeId,
        /// The routing error's description.
        reason: String,
    },
}

impl AnalysisError {
    /// Index of the stream spec the error concerns, when there is one
    /// ([`AnalysisError::EmptySet`] concerns the whole set).
    pub fn stream(&self) -> Option<usize> {
        match self {
            AnalysisError::EmptySet => None,
            AnalysisError::SelfDelivery { stream }
            | AnalysisError::ZeroPeriod { stream }
            | AnalysisError::ZeroLength { stream }
            | AnalysisError::ZeroDeadline { stream }
            | AnalysisError::RouteFailed { stream, .. } => Some(*stream),
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::EmptySet => write!(f, "stream set is empty"),
            AnalysisError::SelfDelivery { stream } => {
                write!(f, "stream {stream}: source equals destination")
            }
            AnalysisError::ZeroPeriod { stream } => {
                write!(f, "stream {stream}: period T must be positive")
            }
            AnalysisError::ZeroLength { stream } => {
                write!(f, "stream {stream}: message length C must be positive")
            }
            AnalysisError::ZeroDeadline { stream } => {
                write!(f, "stream {stream}: deadline D must be positive")
            }
            AnalysisError::RouteFailed {
                stream,
                source,
                dest,
                reason,
            } => {
                write!(
                    f,
                    "stream {stream}: routing {source} -> {dest} failed: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AnalysisError::ZeroPeriod { stream: 3 };
        assert!(e.to_string().contains("stream 3"));
        assert!(e.to_string().contains("period"));
        let e = AnalysisError::RouteFailed {
            stream: 1,
            source: NodeId(0),
            dest: NodeId(9),
            reason: "no channel".into(),
        };
        assert!(e.to_string().contains("no channel"));
        assert!(e.to_string().contains("n0 -> n9") || e.to_string().contains("0"));
    }

    #[test]
    fn stream_index_is_exposed() {
        assert_eq!(AnalysisError::EmptySet.stream(), None);
        assert_eq!(AnalysisError::SelfDelivery { stream: 2 }.stream(), Some(2));
        let e = AnalysisError::RouteFailed {
            stream: 4,
            source: NodeId(1),
            dest: NodeId(2),
            reason: "x".into(),
        };
        assert_eq!(e.stream(), Some(4));
    }
}
