//! Real-time message streams — the seven-tuple of the paper's problem
//! instance — and validated stream sets.

use crate::error::AnalysisError;
use crate::latency::network_latency;
use std::fmt;
use wormnet_topology::{NodeId, Path, Routing, Topology};

/// Stream priority. **Larger values are more urgent**, following the
/// paper (its worked example gives the most urgent stream `P = 5`).
pub type Priority = u32;

/// Index of a message stream within a [`StreamSet`], dense in
/// `0..StreamSet::len()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// The user-supplied part of a message stream: everything except the
/// routed path and the derived network latency.
///
/// Mirrors the paper's seven-tuple
/// `M_i = (S_id, R_id, P_i, T_i, C_i, D_i, L_i)` with `L_i` derived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamSpec {
    /// Source node `S_id`.
    pub source: NodeId,
    /// Destination node `R_id`.
    pub dest: NodeId,
    /// Priority `P_i` (larger = more urgent).
    pub priority: Priority,
    /// Minimum message inter-generation time `T_i`, in flit times.
    pub period: u64,
    /// Maximum message length `C_i`, in flits.
    pub max_length: u64,
    /// Relative deadline `D_i`, in flit times.
    pub deadline: u64,
}

impl StreamSpec {
    /// Convenience constructor.
    pub fn new(
        source: NodeId,
        dest: NodeId,
        priority: Priority,
        period: u64,
        max_length: u64,
        deadline: u64,
    ) -> Self {
        StreamSpec {
            source,
            dest,
            priority,
            period,
            max_length,
            deadline,
        }
    }

    fn validate(&self, index: usize) -> Result<(), AnalysisError> {
        if self.source == self.dest {
            return Err(AnalysisError::SelfDelivery { stream: index });
        }
        if self.period == 0 {
            return Err(AnalysisError::ZeroPeriod { stream: index });
        }
        if self.max_length == 0 {
            return Err(AnalysisError::ZeroLength { stream: index });
        }
        if self.deadline == 0 {
            return Err(AnalysisError::ZeroDeadline { stream: index });
        }
        Ok(())
    }

    /// Size of the fixed-width wire encoding, in bytes: two `u32` node
    /// ids, the `u32` priority, and the three `u64` timing parameters,
    /// all little-endian.
    pub const WIRE_BYTES: usize = 4 + 4 + 4 + 8 + 8 + 8;

    /// Appends the fixed-width little-endian wire encoding to `out`.
    ///
    /// This is the persistence format of the admission service's
    /// write-ahead log and snapshot files, so the layout is frozen:
    /// `source, dest, priority` as `u32`, then `period, max_length,
    /// deadline` as `u64`, all little-endian, [`Self::WIRE_BYTES`]
    /// total.
    pub fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.source.0.to_le_bytes());
        out.extend_from_slice(&self.dest.0.to_le_bytes());
        out.extend_from_slice(&self.priority.to_le_bytes());
        out.extend_from_slice(&self.period.to_le_bytes());
        out.extend_from_slice(&self.max_length.to_le_bytes());
        out.extend_from_slice(&self.deadline.to_le_bytes());
    }

    /// Decodes a spec from the first [`Self::WIRE_BYTES`] bytes of
    /// `buf`, the inverse of [`Self::encode_to`]. Returns `None` when
    /// `buf` is too short; the decoded spec is *not* validated (a
    /// corrupted record can decode to a structurally invalid spec —
    /// callers that persist untrusted bytes must re-validate).
    pub fn decode(buf: &[u8]) -> Option<StreamSpec> {
        if buf.len() < Self::WIRE_BYTES {
            return None;
        }
        let u32_at = |i: usize| u32::from_le_bytes(buf[i..i + 4].try_into().expect("4 bytes"));
        let u64_at = |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().expect("8 bytes"));
        Some(StreamSpec {
            source: NodeId(u32_at(0)),
            dest: NodeId(u32_at(4)),
            priority: u32_at(8),
            period: u64_at(12),
            max_length: u64_at(20),
            deadline: u64_at(28),
        })
    }
}

/// A fully-resolved message stream: spec + deterministic route + network
/// latency `L_i = hops + C_i - 1`.
#[derive(Clone, Debug)]
pub struct MessageStream {
    /// Dense id within the owning [`StreamSet`].
    pub id: StreamId,
    /// The user-supplied parameters.
    pub spec: StreamSpec,
    /// The deterministic route the header flit acquires.
    pub path: Path,
    /// Network latency `L_i`: delivery time with no contention.
    pub latency: u64,
}

impl MessageStream {
    /// Priority `P_i`.
    #[inline]
    pub fn priority(&self) -> Priority {
        self.spec.priority
    }

    /// Period `T_i`.
    #[inline]
    pub fn period(&self) -> u64 {
        self.spec.period
    }

    /// Maximum message length `C_i` in flits.
    #[inline]
    pub fn max_length(&self) -> u64 {
        self.spec.max_length
    }

    /// Relative deadline `D_i`.
    #[inline]
    pub fn deadline(&self) -> u64 {
        self.spec.deadline
    }

    /// True when this stream can *directly block* `other`: it has
    /// higher-or-equal priority, is a different stream, and the two
    /// routed paths share a directed channel (paper §4.1).
    ///
    /// Equal priorities block each other because they share the same
    /// virtual channel and arbitration between them is non-preemptive.
    pub fn directly_affects(&self, other: &MessageStream) -> bool {
        self.id != other.id
            && self.priority() >= other.priority()
            && self.path.shares_link(&other.path)
    }
}

/// A validated, immutable set of message streams with dense ids — the
/// problem instance of message-stream feasibility testing.
#[derive(Clone, Debug)]
pub struct StreamSet {
    streams: Vec<MessageStream>,
}

impl StreamSet {
    /// Resolves `specs` against a topology and a deterministic routing
    /// algorithm, computing each stream's path and network latency.
    pub fn resolve<T, R>(topo: &T, routing: &R, specs: &[StreamSpec]) -> Result<Self, AnalysisError>
    where
        T: Topology,
        R: Routing<T>,
    {
        if specs.is_empty() {
            return Err(AnalysisError::EmptySet);
        }
        let mut streams = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            spec.validate(i)?;
            let path = routing.route(topo, spec.source, spec.dest).map_err(|e| {
                AnalysisError::RouteFailed {
                    stream: i,
                    source: spec.source,
                    dest: spec.dest,
                    reason: e.to_string(),
                }
            })?;
            let latency = network_latency(path.hops(), spec.max_length);
            streams.push(MessageStream {
                id: StreamId(i as u32),
                spec: spec.clone(),
                path,
                latency,
            });
        }
        Ok(StreamSet { streams })
    }

    /// Builds a set from pre-routed streams (used by tests and by
    /// callers with custom routing). Ids are reassigned densely in
    /// order.
    pub fn from_parts(parts: Vec<(StreamSpec, Path)>) -> Result<Self, AnalysisError> {
        if parts.is_empty() {
            return Err(AnalysisError::EmptySet);
        }
        let mut streams = Vec::with_capacity(parts.len());
        for (i, (spec, path)) in parts.into_iter().enumerate() {
            spec.validate(i)?;
            let latency = network_latency(path.hops(), spec.max_length);
            streams.push(MessageStream {
                id: StreamId(i as u32),
                spec,
                path,
                latency,
            });
        }
        Ok(StreamSet { streams })
    }

    /// Number of streams.
    #[inline]
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when the set holds no streams (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The stream with the given id.
    #[inline]
    pub fn get(&self, id: StreamId) -> &MessageStream {
        &self.streams[id.index()]
    }

    /// All streams in id order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &MessageStream> {
        self.streams.iter()
    }

    /// All stream ids.
    pub fn ids(&self) -> impl Iterator<Item = StreamId> {
        (0..self.streams.len() as u32).map(StreamId)
    }

    /// The number of distinct priority values in use.
    pub fn priority_level_count(&self) -> usize {
        let mut prios: Vec<Priority> = self.streams.iter().map(|s| s.priority()).collect();
        prios.sort_unstable();
        prios.dedup();
        prios.len()
    }

    /// Stream ids sorted by decreasing priority, ties broken by id —
    /// the canonical processing order of the analysis.
    pub fn by_decreasing_priority(&self) -> Vec<StreamId> {
        let mut ids: Vec<StreamId> = self.ids().collect();
        ids.sort_by(|&a, &b| {
            self.get(b)
                .priority()
                .cmp(&self.get(a).priority())
                .then(a.cmp(&b))
        });
        ids
    }

    /// Appends a stream with the next dense id — the admission
    /// controller's trial-admit step, which must not clone the whole
    /// set. Validates the spec before mutating, so a failed push leaves
    /// the set untouched. Crate-internal: the public surface keeps
    /// stream sets immutable.
    pub(crate) fn push(&mut self, spec: StreamSpec, path: Path) -> Result<StreamId, AnalysisError> {
        let i = self.streams.len();
        spec.validate(i)?;
        let latency = network_latency(path.hops(), spec.max_length);
        self.streams.push(MessageStream {
            id: StreamId(i as u32),
            spec,
            path,
            latency,
        });
        Ok(StreamId(i as u32))
    }

    /// Drops the highest-id stream — the admission controller's
    /// rollback after a rejected trial.
    pub(crate) fn pop(&mut self) {
        self.streams.pop();
    }

    /// Removes stream `id`, shifting every id above it down by one to
    /// keep ids dense (mirrored by `InterferenceIndex::remove`).
    pub(crate) fn remove(&mut self, id: StreamId) {
        self.streams.remove(id.index());
        for (i, s) in self.streams.iter_mut().enumerate().skip(id.index()) {
            s.id = StreamId(i as u32);
        }
    }

    /// Returns a copy of the set with stream `id`'s period and deadline
    /// replaced (used by the paper's "inflate `T_i` to accommodate all
    /// generated traffic" rule).
    pub fn with_period(&self, id: StreamId, period: u64, deadline: u64) -> StreamSet {
        let mut streams = self.streams.clone();
        streams[id.index()].spec.period = period;
        streams[id.index()].spec.deadline = deadline;
        StreamSet { streams }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormnet_topology::{Mesh, XyRouting};

    fn mesh() -> Mesh {
        Mesh::mesh2d(10, 10)
    }

    fn spec(mesh: &Mesh, s: [u32; 2], d: [u32; 2], p: Priority, t: u64, c: u64) -> StreamSpec {
        StreamSpec::new(
            mesh.node_at(&s).unwrap(),
            mesh.node_at(&d).unwrap(),
            p,
            t,
            c,
            t,
        )
    }

    #[test]
    fn wire_encoding_round_trips() {
        let m = mesh();
        let s = StreamSpec::new(
            m.node_at(&[7, 3]).unwrap(),
            m.node_at(&[7, 7]).unwrap(),
            5,
            0x0123_4567_89ab_cdef,
            4,
            u64::MAX - 1,
        );
        let mut buf = vec![0xAA; 3]; // encode appends after a prefix
        s.encode_to(&mut buf);
        assert_eq!(buf.len(), 3 + StreamSpec::WIRE_BYTES);
        assert_eq!(StreamSpec::decode(&buf[3..]), Some(s.clone()));
        // Trailing bytes after the fixed width are ignored.
        buf.push(0xFF);
        assert_eq!(StreamSpec::decode(&buf[3..]), Some(s));
        // Short buffers decode to None, never panic.
        for n in 0..StreamSpec::WIRE_BYTES {
            assert_eq!(StreamSpec::decode(&buf[3..3 + n]), None, "len {n}");
        }
    }

    #[test]
    fn resolve_computes_latency() {
        let m = mesh();
        let set =
            StreamSet::resolve(&m, &XyRouting, &[spec(&m, [7, 3], [7, 7], 5, 150, 4)]).unwrap();
        assert_eq!(set.len(), 1);
        let s = set.get(StreamId(0));
        assert_eq!(s.path.hops(), 4);
        assert_eq!(s.latency, 7); // hops + C - 1
    }

    #[test]
    fn empty_set_rejected() {
        let m = mesh();
        let err = StreamSet::resolve(&m, &XyRouting, &[]).unwrap_err();
        assert_eq!(err, AnalysisError::EmptySet);
    }

    #[test]
    fn invalid_specs_rejected() {
        let m = mesh();
        let good = spec(&m, [0, 0], [1, 0], 1, 10, 2);
        let mut self_loop = good.clone();
        self_loop.dest = self_loop.source;
        let mut zero_t = good.clone();
        zero_t.period = 0;
        let mut zero_c = good.clone();
        zero_c.max_length = 0;
        let mut zero_d = good.clone();
        zero_d.deadline = 0;
        for (bad, name) in [
            (self_loop, "self"),
            (zero_t, "period"),
            (zero_c, "length"),
            (zero_d, "deadline"),
        ] {
            assert!(
                StreamSet::resolve(&m, &XyRouting, &[good.clone(), bad]).is_err(),
                "{name} should be rejected"
            );
        }
    }

    #[test]
    fn directly_affects_needs_priority_and_overlap() {
        let m = mesh();
        let set = StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                spec(&m, [0, 0], [5, 0], 3, 100, 4), // high prio, row 0
                spec(&m, [2, 0], [7, 0], 1, 100, 4), // low prio, overlaps
                spec(&m, [0, 5], [5, 5], 1, 100, 4), // low prio, disjoint
            ],
        )
        .unwrap();
        let (a, b, c) = (
            set.get(StreamId(0)),
            set.get(StreamId(1)),
            set.get(StreamId(2)),
        );
        assert!(a.directly_affects(b));
        assert!(!b.directly_affects(a), "lower priority cannot block higher");
        assert!(!a.directly_affects(c), "no overlap, no blocking");
        assert!(!a.directly_affects(a), "a stream does not block itself");
    }

    #[test]
    fn equal_priority_blocks_both_ways() {
        let m = mesh();
        let set = StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                spec(&m, [0, 0], [5, 0], 2, 100, 4),
                spec(&m, [2, 0], [7, 0], 2, 100, 4),
            ],
        )
        .unwrap();
        let (a, b) = (set.get(StreamId(0)), set.get(StreamId(1)));
        assert!(a.directly_affects(b));
        assert!(b.directly_affects(a));
    }

    #[test]
    fn priority_order_is_decreasing_with_id_ties() {
        let m = mesh();
        let set = StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                spec(&m, [0, 0], [1, 0], 1, 10, 2),
                spec(&m, [0, 1], [1, 1], 5, 10, 2),
                spec(&m, [0, 2], [1, 2], 5, 10, 2),
                spec(&m, [0, 3], [1, 3], 3, 10, 2),
            ],
        )
        .unwrap();
        let order = set.by_decreasing_priority();
        assert_eq!(
            order,
            vec![StreamId(1), StreamId(2), StreamId(3), StreamId(0)]
        );
        assert_eq!(set.priority_level_count(), 3);
    }

    #[test]
    fn with_period_replaces_only_target() {
        let m = mesh();
        let set = StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                spec(&m, [0, 0], [1, 0], 1, 10, 2),
                spec(&m, [0, 1], [1, 1], 2, 20, 2),
            ],
        )
        .unwrap();
        let set2 = set.with_period(StreamId(0), 99, 99);
        assert_eq!(set2.get(StreamId(0)).period(), 99);
        assert_eq!(set2.get(StreamId(0)).deadline(), 99);
        assert_eq!(set2.get(StreamId(1)).period(), 20);
    }
}
