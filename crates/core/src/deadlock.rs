//! Channel-dependency-graph deadlock checking (the Dally-Seitz
//! condition).
//!
//! The paper *assumes* deadlock freedom ("deadlock can be avoided by
//! some deterministic path selection schemes, such as X-Y routing")
//! and so does the delay analysis. That assumption becomes a proof
//! obligation the moment routes are not turn-restricted — e.g. after
//! failure-aware BFS re-routing, or on tori. This module discharges it:
//! a set of wormhole streams is deadlock-free iff the directed graph of
//! *virtual-channel resources* (a worm holds VC `a` while requesting VC
//! `b` on its next hop) is acyclic.
//!
//! Resources are modelled per the reproduction's switching scheme: a
//! stream of priority `p` on dateline layer `l` uses resource
//! `(channel, p, l)` — streams of *different* priorities never wait on
//! each other's VCs (each priority class has its own), while
//! same-priority streams share. [`single_vc_cycle`] collapses
//! priorities for classic wormhole switching.

use crate::stream::StreamSet;
use std::collections::HashMap;
use wormnet_topology::LinkId;

/// One virtual-channel resource: a directed channel under a priority
/// class and dateline layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VcResource {
    /// The physical channel.
    pub link: LinkId,
    /// Priority class (0 when priorities are collapsed).
    pub class: u32,
    /// Dateline layer.
    pub layer: u8,
}

/// Detects a cycle in the VC dependency graph of `set` under the
/// paper's per-priority VC scheme. `layers` optionally gives each
/// stream's per-hop dateline layers (as `Torus::dateline_layers`); pass
/// `None` for single-layer networks. Returns a witness cycle of
/// resources, or `None` when the set is deadlock-free.
pub fn per_priority_cycle(set: &StreamSet, layers: Option<&[Vec<u8>]>) -> Option<Vec<VcResource>> {
    dependency_cycle(set, layers, false)
}

/// Like [`per_priority_cycle`] but for classic single-VC wormhole
/// switching: every stream shares the same VC per channel, so
/// priorities are collapsed into one class.
pub fn single_vc_cycle(set: &StreamSet, layers: Option<&[Vec<u8>]>) -> Option<Vec<VcResource>> {
    dependency_cycle(set, layers, true)
}

/// True when the set is deadlock-free under the per-priority scheme.
pub fn is_deadlock_free(set: &StreamSet, layers: Option<&[Vec<u8>]>) -> bool {
    per_priority_cycle(set, layers).is_none()
}

fn dependency_cycle(
    set: &StreamSet,
    layers: Option<&[Vec<u8>]>,
    collapse_priorities: bool,
) -> Option<Vec<VcResource>> {
    if let Some(ls) = layers {
        assert_eq!(ls.len(), set.len(), "one layer vector per stream");
    }
    // Build the dependency edges: held resource -> requested resource
    // for every consecutive hop pair of every stream.
    let mut index: HashMap<VcResource, usize> = HashMap::new();
    let mut nodes: Vec<VcResource> = Vec::new();
    let mut edges: Vec<Vec<usize>> = Vec::new();
    let mut intern = |r: VcResource, nodes: &mut Vec<VcResource>, edges: &mut Vec<Vec<usize>>| {
        *index.entry(r).or_insert_with(|| {
            nodes.push(r);
            edges.push(Vec::new());
            nodes.len() - 1
        })
    };
    for s in set.iter() {
        let class = if collapse_priorities { 0 } else { s.priority() };
        let hop_layer = |i: usize| -> u8 {
            layers
                .map(|ls| {
                    let v = &ls[s.id.index()];
                    assert_eq!(v.len(), s.path.hops() as usize, "{}: layer length", s.id);
                    v[i]
                })
                .unwrap_or(0)
        };
        let links = s.path.links();
        for i in 0..links.len().saturating_sub(1) {
            let from = VcResource {
                link: links[i],
                class,
                layer: hop_layer(i),
            };
            let to = VcResource {
                link: links[i + 1],
                class,
                layer: hop_layer(i + 1),
            };
            let fi = intern(from, &mut nodes, &mut edges);
            let ti = intern(to, &mut nodes, &mut edges);
            if !edges[fi].contains(&ti) {
                edges[fi].push(ti);
            }
        }
    }

    // Iterative DFS cycle detection with path reconstruction.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = nodes.len();
    let mut mark = vec![Mark::White; n];
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    for start in 0..n {
        if mark[start] != Mark::White {
            continue;
        }
        // (node, next edge index) stack.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        mark[start] = Mark::Grey;
        while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
            if *ei < edges[u].len() {
                let v = edges[u][*ei];
                *ei += 1;
                match mark[v] {
                    Mark::White => {
                        mark[v] = Mark::Grey;
                        parent[v] = u;
                        stack.push((v, 0));
                    }
                    Mark::Grey => {
                        // Found a cycle: walk parents from u back to v.
                        let mut cycle = vec![nodes[v]];
                        let mut w = u;
                        while w != v {
                            cycle.push(nodes[w]);
                            w = parent[w];
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Mark::Black => {}
                }
            } else {
                mark[u] = Mark::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamSet, StreamSpec};
    use wormnet_topology::{DimensionOrderRouting, Mesh, NodeId, Path, Topology, Torus, XyRouting};

    fn mesh_set(specs: &[([u32; 2], [u32; 2], u32)]) -> StreamSet {
        let m = Mesh::mesh2d(6, 6);
        let specs: Vec<StreamSpec> = specs
            .iter()
            .map(|&(s, d, p)| {
                StreamSpec::new(
                    m.node_at(&s).unwrap(),
                    m.node_at(&d).unwrap(),
                    p,
                    100,
                    4,
                    100,
                )
            })
            .collect();
        StreamSet::resolve(&m, &XyRouting, &specs).unwrap()
    }

    #[test]
    fn xy_routed_sets_are_always_free() {
        let set = mesh_set(&[
            ([0, 0], [5, 5], 1),
            ([5, 5], [0, 0], 2),
            ([0, 5], [5, 0], 1),
            ([5, 0], [0, 5], 3),
            ([2, 2], [4, 4], 2),
        ]);
        assert!(is_deadlock_free(&set, None));
        assert!(single_vc_cycle(&set, None).is_none(), "even with one VC");
    }

    /// Hand-built turn cycle on a 2x2 block: four streams each turning
    /// a corner of the square — classic wormhole deadlock.
    fn turn_cycle_set(same_priority: bool) -> StreamSet {
        let m = Mesh::mesh2d(3, 3);
        let n = |x: u32, y: u32| m.node_at(&[x, y]).unwrap();
        let path = |pts: &[(u32, u32)]| {
            let nodes: Vec<NodeId> = pts.iter().map(|&(x, y)| n(x, y)).collect();
            let links = nodes
                .windows(2)
                .map(|w| m.link_between(w[0], w[1]).unwrap())
                .collect();
            Path::new(nodes, links)
        };
        let mk = |pts: &[(u32, u32)], p: u32| {
            let path = path(pts);
            (
                StreamSpec::new(path.source(), path.dest(), p, 100, 8, 100),
                path,
            )
        };
        let parts = vec![
            mk(&[(0, 0), (1, 0), (1, 1)], 1),
            mk(&[(1, 0), (1, 1), (0, 1)], if same_priority { 1 } else { 2 }),
            mk(&[(1, 1), (0, 1), (0, 0)], 1),
            mk(&[(0, 1), (0, 0), (1, 0)], if same_priority { 1 } else { 3 }),
        ];
        StreamSet::from_parts(parts).unwrap()
    }

    #[test]
    fn turn_cycle_detected() {
        let set = turn_cycle_set(true);
        let cycle = per_priority_cycle(&set, None).expect("cycle expected");
        assert!(cycle.len() >= 2);
        // Every consecutive pair in the witness is a real dependency:
        // all resources are class 1, layer 0.
        assert!(cycle.iter().all(|r| r.class == 1 && r.layer == 0));
    }

    #[test]
    fn priority_split_breaks_the_cycle() {
        // With distinct priorities, the four streams hold *different*
        // VCs: no shared-resource cycle under the per-priority scheme —
        // but collapsing to a single VC still deadlocks.
        let set = turn_cycle_set(false);
        assert!(is_deadlock_free(&set, None));
        assert!(single_vc_cycle(&set, None).is_some());
    }

    #[test]
    fn torus_ring_cycle_and_dateline_cure() {
        let t = Torus::new(&[4]);
        let mk = |s: u32, d: u32| StreamSpec::new(NodeId(s), NodeId(d), 1, 100, 8, 100);
        let set = StreamSet::resolve(
            &t,
            &DimensionOrderRouting,
            &[mk(0, 2), mk(1, 3), mk(2, 0), mk(3, 1)],
        )
        .unwrap();
        assert!(
            per_priority_cycle(&set, None).is_some(),
            "wraparound ring must cycle without datelines"
        );
        let layers: Vec<Vec<u8>> = set.iter().map(|s| t.dateline_layers(&s.path)).collect();
        assert!(
            is_deadlock_free(&set, Some(&layers)),
            "datelines break the ring cycle"
        );
    }

    #[test]
    fn single_hop_streams_never_cycle() {
        let set = mesh_set(&[([0, 0], [1, 0], 1), ([1, 0], [0, 0], 1)]);
        assert!(is_deadlock_free(&set, None));
    }
}
