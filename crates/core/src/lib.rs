//! # rtwc-core
//!
//! The primary contribution of *"A Real-Time Communication Method for
//! Wormhole Switching Networks"* (Kim, Kim, Hong, Lee — ICPP 1998):
//! **message-stream feasibility testing** for wormhole-switched
//! multicomputers that use flit-level preemptive, priority-based virtual
//! channels.
//!
//! Given a set of periodic real-time message streams
//! `M_i = (S_id, R_id, P_i, T_i, C_i, D_i, L_i)` routed deterministically
//! over a direct network, this crate computes a **transmission delay
//! upper bound `U_i`** for every stream, and declares the set feasible
//! iff `U_i <= D_i` for all streams. The pipeline is exactly the
//! paper's:
//!
//! 1. [`hpset::generate_hp`] — which higher-priority streams can block
//!    each stream, **directly** (shared directed channel) or
//!    **indirectly** (through a blocking chain of intermediate streams);
//! 2. [`bdg::BlockingDependencyGraph`] — the dependency structure that
//!    orders indirect-blocking analysis;
//! 3. [`diagram::TimingDiagram`] — the worst-case schedule of
//!    higher-priority instances (`Generate_Init_Diagram`);
//! 4. [`modify::modify_diagram`] — removal of indirect instances whose
//!    blocking chains are broken (`Modify_Diagram`);
//! 5. [`calu::cal_u`] — accumulate free slots until the stream's network
//!    latency is covered: that time is `U_i`;
//! 6. [`feasibility::determine_feasibility`] — the overall verdict.
//!
//! The implementation reproduces the paper's worked example exactly
//! (`U = (7, 8, 26, 20, 33)` for the five-stream set of §4.4) and its
//! Figure 4/Figure 6 calculations (`U = 26` direct, `U = 22` after
//! indirect removal); these are enforced by this workspace's test suite.
//!
//! ## Quick start
//!
//! ```
//! use rtwc_core::prelude::*;
//! use wormnet_topology::{Mesh, Topology, XyRouting};
//!
//! let mesh = Mesh::mesh2d(10, 10);
//! let node = |x, y| mesh.node_at(&[x, y]).unwrap();
//! let specs = vec![
//!     // source, dest, priority (larger = more urgent), T, C, D
//!     StreamSpec::new(node(7, 3), node(7, 7), 5, 150, 4, 150),
//!     StreamSpec::new(node(1, 1), node(5, 4), 4, 100, 2, 100),
//! ];
//! let set = StreamSet::resolve(&mesh, &XyRouting, &specs).unwrap();
//! let report = determine_feasibility(&set);
//! assert!(report.is_feasible());
//! assert_eq!(report.bound(StreamId(0)), DelayBound::Bounded(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod bdg;
pub mod bounds;
pub mod calu;
pub mod deadlock;
pub mod diagram;
pub mod error;
pub mod explain;
pub mod feasibility;
pub mod hpset;
pub mod interference;
pub mod latency;
pub mod load;
pub mod modify;
pub mod report;
pub mod shard;
pub mod stream;

pub use admission::{AdmissionController, AdmissionError, ValidatedAdmission};
pub use bdg::BlockingDependencyGraph;
pub use bounds::{busy_window_bound, direct_only_bound};
pub use calu::{cal_u, cal_u_detailed, cal_u_with_hp, CalUAnalysis, DelayBound};
pub use deadlock::{is_deadlock_free, per_priority_cycle, single_vc_cycle, VcResource};
pub use diagram::{
    AnalysisScratch, DiagramKernel, Instance, RemovedInstances, Slot, TimingDiagram,
};
pub use error::AnalysisError;
pub use explain::{explain, render_explanation, BoundExplanation, Contribution};
pub use feasibility::{
    analyze_all, delay_bounds, determine_feasibility, determine_feasibility_indexed,
    determine_feasibility_parallel, FeasibilityReport,
};
pub use hpset::{
    generate_hp, generate_hp_oracle, generate_hp_sets, generate_hp_sets_oracle, BlockingMode,
    HpElement, HpSet,
};
pub use interference::InterferenceIndex;
pub use latency::network_latency;
pub use load::{channel_loads, hottest_channel, oversubscribed_channels};
pub use modify::{
    modify_diagram, modify_diagram_with, modify_diagram_with_kernel, RemovalStrategy,
};
pub use report::{render_analysis, render_diagram};
pub use shard::{
    plan_admit, plan_remove, scan_neighborhood, AdmitPlan, KeyedRejection, NeighborMember,
    Neighborhood, RegionShard, RemovePlan, ShardGauges, ShardId, ShardMap, ShardedAdmit,
    ShardedController,
};
pub use stream::{MessageStream, Priority, StreamId, StreamSet, StreamSpec};

/// Common imports for users of the analysis.
pub mod prelude {
    pub use crate::calu::{cal_u, cal_u_detailed, DelayBound};
    pub use crate::feasibility::{determine_feasibility, FeasibilityReport};
    pub use crate::hpset::{generate_hp, BlockingMode, HpSet};
    pub use crate::stream::{MessageStream, Priority, StreamId, StreamSet, StreamSpec};
}
