//! Timing diagrams: the worst-case schedule of higher-priority traffic
//! from which the delay upper bound is read off (paper §4.2-4.3,
//! `Generate_Init_Diagram`).
//!
//! # The worst-case model
//!
//! The diagram abstracts the whole network, from the analyzed stream's
//! point of view, as **one shared timeline**: while any HP-set member
//! transmits anywhere on (or upstream of) the target's path, the target
//! makes no progress; every column in which no member transmits
//! contributes one flit time of progress, and the target completes once
//! it has accumulated `L = hops + C - 1` such columns. The worst case
//! is constructed, critical-instant style, by releasing an instance of
//! every HP element at the start of each of its period windows and
//! letting strictly-higher rows preempt lower ones — exactly what
//! flit-level preemptive switching does on a single contended channel.
//!
//! This is *pessimistic* in two ways (interference on disjoint channels
//! is serialized even when it could overlap the target's pipeline, and
//! every instance is assumed maximal and maximally aligned) and
//! *optimistic* in none that we could exhibit: across 200 random
//! workloads and an exhaustive small-scale phase search, no simulated
//! latency ever exceeded the bound (EXPERIMENTS.md, "End-to-end
//! soundness" and "Tightness search"). The one modelling precondition
//! is that the router sustains one flit per cycle per channel — with
//! credit-based VC buffers this requires depth >= 2 (see the
//! sensitivity study; at depth 1 the bound is genuinely violated
//! because `L` itself is wrong).
//!
//! Within one row, same-priority instances serialize FIFO; rows are
//! sorted by decreasing priority so a `Busy` mark only ever flows
//! downward. `Waiting` marks record preemption and matter to
//! `Modify_Diagram`: an indirect element's instance whose active span
//! sees no intermediate-stream activity cannot reach the target and is
//! discounted.

use crate::hpset::HpSet;
use crate::stream::{StreamId, StreamSet};
use std::collections::HashSet;

/// State of one (row, time-slot) cell, exactly the paper's four values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Usable by lower-priority traffic (and ultimately the target).
    Free,
    /// A higher-priority row transmits here; unusable.
    Busy,
    /// This row's message is preempted here (it wants the slot but a
    /// higher-priority row holds it).
    Waiting,
    /// This row's message transmits here.
    Allocated,
}

/// One periodic instance of an HP element inside the diagram horizon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Zero-based instance number `k` (release at `k * T`).
    pub index: usize,
    /// First slot of the period window (1-based, inclusive).
    pub window_start: u64,
    /// Last slot of the period window (inclusive, clipped to horizon).
    pub window_end: u64,
    /// Slots this instance transmits in, ascending.
    pub slots: Vec<u64>,
    /// True when the instance obtained all `C` slots inside its window.
    /// `false` means the window (or horizon) ended first — the network
    /// is overloaded at this priority and the bound is reported
    /// infeasible by the caller.
    pub complete: bool,
    /// True when `Modify_Diagram` removed this instance (its indirect
    /// blocking cannot propagate to the target).
    pub removed: bool,
}

impl Instance {
    /// Last slot at which this instance is present in the network
    /// (transmitting or preempted). The greedy allocation marks every
    /// slot from the window start up to the completion slot as either
    /// `Allocated` or `Waiting`, so the instance's *active span* is
    /// `[window_start, active_end()]`; an incomplete instance stays
    /// active through its whole window.
    pub fn active_end(&self) -> u64 {
        if self.complete {
            *self.slots.last().expect("complete instance has slots")
        } else {
            self.window_end
        }
    }
}

/// One row of the diagram: an HP element and its instances.
#[derive(Clone, Debug)]
pub struct Row {
    /// The HP element occupying this row.
    pub stream: StreamId,
    /// Instances in window order.
    pub instances: Vec<Instance>,
}

/// Instances deleted by `Modify_Diagram`, keyed by (stream, instance
/// number).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RemovedInstances(HashSet<(StreamId, usize)>);

impl RemovedInstances {
    /// No removals (the initial diagram).
    pub fn none() -> Self {
        RemovedInstances(HashSet::new())
    }

    /// Marks instance `index` of `stream` as removed.
    pub fn insert(&mut self, stream: StreamId, index: usize) {
        self.0.insert((stream, index));
    }

    /// True when instance `index` of `stream` is removed.
    pub fn contains(&self, stream: StreamId, index: usize) -> bool {
        self.0.contains(&(stream, index))
    }

    /// Number of removed instances.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing was removed.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// All removed (stream, instance) pairs, sorted.
    pub fn entries(&self) -> Vec<(StreamId, usize)> {
        let mut v: Vec<_> = self.0.iter().copied().collect();
        v.sort();
        v
    }
}

/// The worst-case timing diagram of one target stream's HP set over
/// slots `1..=horizon`.
///
/// Rows are the HP elements in decreasing-priority order; the target's
/// own row is implicit (a slot is usable by the target iff no HP row is
/// `Allocated` in it).
#[derive(Clone, Debug)]
pub struct TimingDiagram {
    target: StreamId,
    horizon: u64,
    rows: Vec<Row>,
    /// Flat row-major cell matrix, `rows.len() * horizon` entries.
    cells: Vec<Slot>,
    /// Per-column: true when some row transmits there (column busy for
    /// the target).
    column_taken: Vec<bool>,
}

impl TimingDiagram {
    /// Runs `Generate_Init_Diagram`: greedily schedules every HP
    /// element's periodic instances over `1..=horizon`, honoring
    /// `removed` (pass [`RemovedInstances::none`] for the initial
    /// diagram).
    ///
    /// Every instance of an element with period `T` and length `C`
    /// claims the first `C` free slots in its window
    /// `[kT+1, (k+1)T]`; slots already taken by higher rows are marked
    /// [`Slot::Waiting`] (the element is preempted there) until the
    /// instance completes, and claimed slots mark every lower row
    /// [`Slot::Busy`].
    ///
    /// # Panics
    /// Panics if `horizon == 0`.
    pub fn generate(
        set: &StreamSet,
        hp: &HpSet,
        horizon: u64,
        removed: &RemovedInstances,
    ) -> Self {
        assert!(horizon > 0, "diagram horizon must be positive");
        let n_rows = hp.len();
        let h = horizon as usize;
        let mut cells = vec![Slot::Free; n_rows * h];
        let mut column_taken = vec![false; h];
        let mut rows = Vec::with_capacity(n_rows);

        // Cell addressing: row-major, slot t (1-based) at column t-1.
        let idx = |r: usize, t: u64| -> usize { r * h + (t as usize - 1) };

        for (r, elem) in hp.elements().iter().enumerate() {
            let stream = set.get(elem.stream);
            let period = stream.period();
            let length = stream.max_length();
            let n_instances = horizon.div_ceil(period) as usize;
            let mut instances = Vec::with_capacity(n_instances);
            for k in 0..n_instances {
                let window_start = k as u64 * period + 1;
                let window_end = ((k as u64 + 1) * period).min(horizon);
                if removed.contains(elem.stream, k) {
                    instances.push(Instance {
                        index: k,
                        window_start,
                        window_end,
                        slots: Vec::new(),
                        complete: false,
                        removed: true,
                    });
                    continue;
                }
                let mut slots = Vec::with_capacity(length as usize);
                for t in window_start..=window_end {
                    match cells[idx(r, t)] {
                        Slot::Free => {
                            cells[idx(r, t)] = Slot::Allocated;
                            column_taken[t as usize - 1] = true;
                            for lower in (r + 1)..n_rows {
                                if cells[idx(lower, t)] == Slot::Free {
                                    cells[idx(lower, t)] = Slot::Busy;
                                }
                            }
                            slots.push(t);
                        }
                        Slot::Busy => cells[idx(r, t)] = Slot::Waiting,
                        Slot::Allocated | Slot::Waiting => {
                            unreachable!("row cell visited twice")
                        }
                    }
                    if slots.len() as u64 == length {
                        break;
                    }
                }
                let complete = slots.len() as u64 == length;
                instances.push(Instance {
                    index: k,
                    window_start,
                    window_end,
                    slots,
                    complete,
                    removed: false,
                });
            }
            rows.push(Row {
                stream: elem.stream,
                instances,
            });
        }

        TimingDiagram {
            target: hp.target,
            horizon,
            rows,
            cells,
            column_taken,
        }
    }

    /// The analyzed stream.
    pub fn target(&self) -> StreamId {
        self.target
    }

    /// Number of time slots.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The rows in decreasing-priority order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Cell state of `row` at 1-based slot `t`.
    pub fn slot(&self, row: usize, t: u64) -> Slot {
        assert!(t >= 1 && t <= self.horizon, "slot {t} out of range");
        self.cells[row * self.horizon as usize + (t as usize - 1)]
    }

    /// True when slot `t` is usable by the target (no HP row transmits).
    pub fn free_for_target(&self, t: u64) -> bool {
        assert!(t >= 1 && t <= self.horizon, "slot {t} out of range");
        !self.column_taken[t as usize - 1]
    }

    /// True when `row`'s message is present (transmitting or preempted)
    /// anywhere in slots `from..=to` — the `Modify_Diagram` activity
    /// test for intermediate streams.
    pub fn row_active_in(&self, row: usize, from: u64, to: u64) -> bool {
        let to = to.min(self.horizon);
        (from..=to).any(|t| matches!(self.slot(row, t), Slot::Allocated | Slot::Waiting))
    }

    /// Slots usable by the target, ascending.
    pub fn free_slots(&self) -> impl Iterator<Item = u64> + '_ {
        (1..=self.horizon).filter(move |&t| self.free_for_target(t))
    }

    /// The time at which the target has accumulated `needed` free slots,
    /// or `None` if the horizon is exhausted first. This is the delay
    /// upper bound when `needed` is the target's network latency.
    pub fn accumulate_free(&self, needed: u64) -> Option<u64> {
        if needed == 0 {
            return Some(0);
        }
        let mut got = 0u64;
        for t in self.free_slots() {
            got += 1;
            if got == needed {
                return Some(t);
            }
        }
        None
    }

    /// True when some non-removed instance failed to complete within its
    /// window — the schedule is saturated at this priority level and
    /// bounds read from the diagram would be unsound.
    pub fn saturated(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.instances.iter().any(|i| !i.removed && !i.complete))
    }

    /// Row index of `stream`, if it is an HP element.
    pub fn row_of(&self, stream: StreamId) -> Option<usize> {
        self.rows.iter().position(|r| r.stream == stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpset::generate_hp;
    use crate::stream::{StreamSpec, StreamSet};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    /// Figure 4's abstract streams, realized on one mesh row so that all
    /// HP elements are direct: M1 (T=10, C=2), M2 (T=15, C=3),
    /// M3 (T=13, C=4), target M4.
    fn figure4() -> StreamSet {
        let m = Mesh::mesh2d(20, 2);
        let mk = |x0: u32, x1: u32, p: u32, t: u64, c: u64| {
            StreamSpec::new(
                m.node_at(&[x0, 0]).unwrap(),
                m.node_at(&[x1, 0]).unwrap(),
                p,
                t,
                c,
                200,
            )
        };
        StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                mk(0, 6, 4, 10, 2),  // M1
                mk(1, 7, 3, 15, 3),  // M2
                mk(2, 8, 2, 13, 4),  // M3
                mk(3, 9, 1, 50, 6),  // M4 (target)
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure4_initial_diagram() {
        // Reproduces the shape of paper Figure 4: with M1, M2, M3 all
        // direct, the free slots accumulate so that a network latency of
        // 6 is reached at slot 26.
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        assert_eq!(hp.len(), 3);
        assert!(!hp.has_indirect());
        let d = TimingDiagram::generate(&set, &hp, 50, &RemovedInstances::none());

        // M1 (row 0): slots 1-2, 11-12, 21-22, 31-32, 41-42.
        assert_eq!(d.rows()[0].instances[0].slots, vec![1, 2]);
        assert_eq!(d.rows()[0].instances[1].slots, vec![11, 12]);
        // M2 (row 1): first instance blocked at 1-2, takes 3-5.
        assert_eq!(d.rows()[1].instances[0].slots, vec![3, 4, 5]);
        assert_eq!(d.slot(1, 1), Slot::Waiting);
        assert_eq!(d.slot(1, 2), Slot::Waiting);
        // M3 (row 2): blocked 1-5, takes 6-9.
        assert_eq!(d.rows()[2].instances[0].slots, vec![6, 7, 8, 9]);

        // Paper: "if the network latency of M4 is 6, then time 26 is the
        // delay upper bound of M4".
        assert_eq!(d.accumulate_free(6), Some(26));
    }

    #[test]
    fn columns_taken_match_allocations() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let d = TimingDiagram::generate(&set, &hp, 50, &RemovedInstances::none());
        for t in 1..=50u64 {
            let any_alloc =
                (0..3).any(|r| d.slot(r, t) == Slot::Allocated);
            assert_eq!(!d.free_for_target(t), any_alloc, "slot {t}");
        }
    }

    #[test]
    fn removal_leaves_window_free() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let mut removed = RemovedInstances::none();
        removed.insert(StreamId(0), 1); // drop M1's second instance
        let d = TimingDiagram::generate(&set, &hp, 50, &removed);
        let inst = &d.rows()[0].instances[1];
        assert!(inst.removed);
        assert!(inst.slots.is_empty());
        // M2's second instance may now start at 16 instead of 18... M2's
        // window [16,30] was previously cut by M1 at 21-22; verify M1's
        // slots 11-12 are gone and the column is reusable.
        assert_eq!(d.slot(0, 11), Slot::Free);
        assert!(d.free_for_target(11) || d.slot(1, 11) == Slot::Allocated || d.slot(2, 11) == Slot::Allocated);
    }

    #[test]
    fn saturation_detected() {
        // A stream whose window cannot hold its own length after
        // interference: M-high takes 8 of every 10 slots, M-low needs 5
        // of every 10 -> incomplete.
        let m = Mesh::mesh2d(10, 2);
        let mk = |x0: u32, x1: u32, p: u32, t: u64, c: u64| {
            StreamSpec::new(
                m.node_at(&[x0, 0]).unwrap(),
                m.node_at(&[x1, 0]).unwrap(),
                p,
                t,
                c,
                100,
            )
        };
        let set = StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                mk(0, 6, 3, 10, 8),
                mk(1, 7, 2, 10, 5),
                mk(2, 8, 1, 100, 2), // target
            ],
        )
        .unwrap();
        let hp = generate_hp(&set, StreamId(2));
        let d = TimingDiagram::generate(&set, &hp, 100, &RemovedInstances::none());
        assert!(d.saturated());
        assert_eq!(d.accumulate_free(2), None);
    }

    #[test]
    fn window_clipped_to_horizon() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let d = TimingDiagram::generate(&set, &hp, 25, &RemovedInstances::none());
        // M1 period 10: instances [1,10], [11,20], [21,25] (clipped).
        let insts = &d.rows()[0].instances;
        assert_eq!(insts.len(), 3);
        assert_eq!(insts[2].window_start, 21);
        assert_eq!(insts[2].window_end, 25);
    }

    #[test]
    fn accumulate_zero_is_immediate() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let d = TimingDiagram::generate(&set, &hp, 10, &RemovedInstances::none());
        assert_eq!(d.accumulate_free(0), Some(0));
    }

    #[test]
    fn row_active_covers_waiting() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let d = TimingDiagram::generate(&set, &hp, 50, &RemovedInstances::none());
        // M2 waits at 1-2 and transmits 3-5: active through [1,5].
        assert!(d.row_active_in(1, 1, 2));
        assert!(d.row_active_in(1, 3, 5));
        // M2's first instance is done by 5; inactive in [6,10].
        assert!(!d.row_active_in(1, 6, 10));
    }
}
