//! The interference index: a materialized, word-packed form of the
//! *directly-affects* relation that every stage of the analysis keys
//! off.
//!
//! The paper's `Generate_HP` discovers blockers by re-testing
//! channel overlap per stream pair, which costs O(n² · L) per target
//! and O(n³ · L) for a whole set. This index computes the relation
//! once — a per-link occupancy table built in one O(total path length)
//! pass, then one bit per ordered pair set while walking each link's
//! (typically short) occupant list — and answers every downstream
//! query with word-parallel bit operations:
//!
//! * HP-set construction ([`InterferenceIndex::hp_set`]) runs the
//!   backward BFS as row unions and extracts intermediate sets as row
//!   intersections, bit-identical to the legacy
//!   [`crate::hpset::generate_hp_oracle`];
//! * blocking-dependency graphs read edges straight off the adjacency
//!   rows ([`crate::bdg::BlockingDependencyGraph::build_indexed`]);
//! * the admission controller maintains the index *incrementally*
//!   ([`InterferenceIndex::insert_last`], [`InterferenceIndex::remove`],
//!   [`InterferenceIndex::remove_last`]), so one ADMIT touches only the
//!   candidate's interference neighborhood instead of rebuilding the
//!   relation from scratch.
//!
//! Layout: two flat `u64` matrices with a shared row stride, one for
//! each direction of the relation (`affects`: row *i* holds everyone
//! *i* can directly block; `affected_by`: row *j* holds everyone that
//! can directly block *j*). Both are kept because the HP BFS walks
//! edges backwards while intermediate-set extraction and the admission
//! controller's damage analysis walk them forwards, and transposing a
//! packed matrix on the fly would cost the O(n²) the index exists to
//! avoid.

use crate::hpset::{BlockingMode, HpElement, HpSet};
use crate::stream::{MessageStream, Priority, StreamId, StreamSet};
use wormnet_topology::LinkId;

/// Materialized directly-affects relation over one stream set. See the
/// module docs for layout and complexity.
#[derive(Clone, Debug, Default)]
pub struct InterferenceIndex {
    /// Number of streams indexed (rows in both matrices).
    n: usize,
    /// Row stride in `u64` words; at least `ceil(n / 64)`, grown
    /// geometrically so incremental inserts re-stride rarely.
    stride: usize,
    /// Cached priorities, indexed by stream id.
    priorities: Vec<Priority>,
    /// Each stream's channel set in increasing link-id order.
    stream_links: Vec<Vec<LinkId>>,
    /// LinkId -> streams whose path uses that channel, in increasing
    /// id order (ids are appended in order, which keeps it sorted).
    link_streams: Vec<Vec<StreamId>>,
    /// `affects[i * stride ..][j]` == 1 iff stream `i` directly affects
    /// stream `j` (higher-or-equal priority and a shared channel).
    affects: Vec<u64>,
    /// The transpose: `affected_by[j * stride ..][i]` == 1 iff `i`
    /// directly affects `j`.
    affected_by: Vec<u64>,
}

/// Iterates the set bits of `row` in increasing position order, calling
/// `f` with each bit index.
#[inline]
fn for_each_set_bit(row: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &w) in row.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let b = w.trailing_zeros() as usize;
            f(wi * 64 + b);
            w &= w - 1;
        }
    }
}

impl InterferenceIndex {
    /// An empty index (the admission controller's starting state).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the index over a whole set: one occupancy pass, then one
    /// insert per stream in id order — identical to what the admission
    /// controller's incremental maintenance would have produced.
    pub fn build(set: &StreamSet) -> Self {
        let mut index = Self::new();
        for s in set.iter() {
            index.insert_last(s);
        }
        index
    }

    /// Number of streams indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when nothing is indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The adjacency row of `a`: everyone `a` directly affects, packed
    /// 64 streams per word.
    #[inline]
    pub fn affects_row(&self, a: StreamId) -> &[u64] {
        let s = a.index() * self.stride;
        &self.affects[s..s + self.stride]
    }

    /// The transposed row of `b`: everyone that directly affects `b`.
    #[inline]
    pub fn affected_by_row(&self, b: StreamId) -> &[u64] {
        let s = b.index() * self.stride;
        &self.affected_by[s..s + self.stride]
    }

    /// True when `a` directly affects `b` — one bit test.
    #[inline]
    pub fn directly_affects(&self, a: StreamId, b: StreamId) -> bool {
        self.affects_row(a)[b.index() >> 6] >> (b.index() & 63) & 1 == 1
    }

    /// Resident heap footprint in bytes: both bit matrices plus the
    /// occupancy tables, counted by *capacity* (what the allocator
    /// actually holds), not length. This is the gauge the sharded
    /// admission plane reports per shard.
    pub fn memory_bytes(&self) -> usize {
        let word = std::mem::size_of::<u64>();
        let matrices = (self.affects.capacity() + self.affected_by.capacity()) * word;
        let occupancy = self.link_streams.capacity() * std::mem::size_of::<Vec<StreamId>>()
            + self
                .link_streams
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<StreamId>())
                .sum::<usize>();
        let links = self.stream_links.capacity() * std::mem::size_of::<Vec<LinkId>>()
            + self
                .stream_links
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<LinkId>())
                .sum::<usize>();
        matrices + occupancy + links + self.priorities.capacity() * std::mem::size_of::<Priority>()
    }

    /// Matrix bytes a stride compaction could release right now: the
    /// difference between what the two matrices hold and the minimal
    /// `n * ceil(n/64)`-word layout. Removals shrink the stride with
    /// hysteresis (see [`InterferenceIndex::remove`]), so this stays a
    /// bounded slack rather than a ratchet; it is surfaced in STATS so
    /// long-lived serve processes can watch it.
    pub fn reclaimable_bytes(&self) -> usize {
        let word = std::mem::size_of::<u64>();
        let held = (self.affects.capacity() + self.affected_by.capacity()) * word;
        let minimal = 2 * self.n * self.n.div_ceil(64) * word;
        held.saturating_sub(minimal)
    }

    /// Streams whose path uses channel `l`, in increasing id order.
    /// Channels beyond every indexed path are empty.
    pub fn link_streams(&self, l: LinkId) -> &[StreamId] {
        self.link_streams
            .get(l.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The connected component of the symmetric *shares-a-channel*
    /// relation reachable from `seed_links`: every indexed stream whose
    /// path transitively shares a channel with a stream occupying one of
    /// the seed channels, in increasing id order.
    ///
    /// Because directly-affects edges only ever connect link-sharing
    /// streams, this component is closed under both HP-set construction
    /// (backward closure) and downstream damage analysis (forward
    /// closure): an admission restricted to the candidate's component
    /// computes bit-identical bounds to one run over the full set. The
    /// admission controller's optimistic concurrent path keys on this.
    pub fn link_component(&self, seed_links: &[LinkId]) -> Vec<StreamId> {
        let mut member = vec![false; self.n];
        let mut link_seen = vec![false; self.link_streams.len()];
        let mut frontier: Vec<LinkId> = Vec::new();
        for &l in seed_links {
            if l.index() < link_seen.len() && !link_seen[l.index()] {
                link_seen[l.index()] = true;
                frontier.push(l);
            }
        }
        let mut out: Vec<StreamId> = Vec::new();
        while let Some(l) = frontier.pop() {
            for &s in &self.link_streams[l.index()] {
                if member[s.index()] {
                    continue;
                }
                member[s.index()] = true;
                out.push(s);
                for &l2 in &self.stream_links[s.index()] {
                    if !link_seen[l2.index()] {
                        link_seen[l2.index()] = true;
                        frontier.push(l2);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Appends the stream with the next dense id (`stream.id` must equal
    /// [`InterferenceIndex::len`]): pushes its channels into the
    /// occupancy table and sets its adjacency row and column by walking
    /// only its channels' occupant lists — O(interference neighborhood),
    /// not O(n).
    pub fn insert_last(&mut self, stream: &MessageStream) {
        let id = self.n;
        assert_eq!(stream.id.index(), id, "insert_last requires the next id");
        let needed = (id + 1).div_ceil(64);
        if needed > self.stride {
            self.restride(needed.max(self.stride * 2));
        }
        self.n += 1;
        self.priorities.push(stream.priority());
        self.affects.resize(self.n * self.stride, 0);
        self.affected_by.resize(self.n * self.stride, 0);

        let p_new = stream.priority();
        let links = stream.path.sorted_links().to_vec();
        for &l in &links {
            if l.index() >= self.link_streams.len() {
                self.link_streams.resize_with(l.index() + 1, Vec::new);
            }
            // Occupants all have smaller ids; bit-sets are idempotent,
            // so streams met on several shared channels cost no extra.
            for k in 0..self.link_streams[l.index()].len() {
                let o = self.link_streams[l.index()][k];
                let p_old = self.priorities[o.index()];
                if p_new >= p_old {
                    self.set_edge(StreamId(id as u32), o);
                }
                if p_old >= p_new {
                    self.set_edge(o, StreamId(id as u32));
                }
            }
            self.link_streams[l.index()].push(StreamId(id as u32));
        }
        self.stream_links.push(links);
    }

    /// Undoes the most recent [`InterferenceIndex::insert_last`] — the
    /// admission controller's rollback after a rejected trial. Touches
    /// only the rolled-back stream's neighborhood.
    pub fn remove_last(&mut self) {
        assert!(self.n > 0, "remove_last on an empty index");
        let id = StreamId(self.n as u32 - 1);
        // Clear the column bits in every neighbor's rows. The neighbors
        // are exactly the set bits of the removed stream's two rows.
        let (wi, mask) = (id.index() >> 6, !(1u64 << (id.index() & 63)));
        let mut clear_col = Vec::new();
        for_each_set_bit(self.affects_row(id), |b| clear_col.push(b));
        for b in clear_col.drain(..) {
            self.affected_by[b * self.stride + wi] &= mask;
        }
        for_each_set_bit(self.affected_by_row(id), |b| clear_col.push(b));
        for b in clear_col {
            self.affects[b * self.stride + wi] &= mask;
        }
        for &l in &self.stream_links[id.index()] {
            let popped = self.link_streams[l.index()].pop();
            debug_assert_eq!(popped, Some(id), "last id tops every occupant list");
        }
        self.stream_links.pop();
        self.priorities.pop();
        self.n -= 1;
        self.affects.truncate(self.n * self.stride);
        self.affected_by.truncate(self.n * self.stride);
        self.maybe_shrink();
    }

    /// Removes stream `id`, shifting every id above it down by one —
    /// the mirror of `StreamSet`'s dense-id compaction on removal.
    /// Costs O(total occupancy + n · stride): each remaining row has
    /// one bit deleted by word-level shifts.
    pub fn remove(&mut self, id: StreamId) {
        assert!(id.index() < self.n, "unknown stream {id}");
        if id.index() == self.n - 1 {
            return self.remove_last();
        }
        let i = id.index();
        self.priorities.remove(i);
        self.stream_links.remove(i);
        for occupants in &mut self.link_streams {
            occupants.retain(|&s| s != id);
            for s in occupants.iter_mut() {
                if s.index() > i {
                    *s = StreamId(s.0 - 1);
                }
            }
        }
        let stride = self.stride;
        for matrix in [&mut self.affects, &mut self.affected_by] {
            matrix.drain(i * stride..(i + 1) * stride);
            for row in matrix.chunks_exact_mut(stride) {
                delete_bit(row, i);
            }
        }
        self.n -= 1;
        self.maybe_shrink();
    }

    /// Builds the HP set of `target` off the adjacency rows: backward
    /// BFS by row unions, then direct/indirect classification and
    /// intermediate extraction by row intersection. Bit-identical to
    /// [`crate::hpset::generate_hp_oracle`] (enforced by the randomized
    /// equivalence suite).
    pub fn hp_set(&self, set: &StreamSet, target: StreamId) -> HpSet {
        debug_assert_eq!(set.len(), self.n, "index and set out of sync");
        let stride = self.stride.max(1);
        let target_row = self.affected_by_row(target);
        // member := transitive closure of affected-by from the target.
        // The target is never a member (mirroring the oracle, which
        // skips it during expansion), so its bit is masked out of every
        // union round.
        let (twi, tmask) = (target.index() >> 6, !(1u64 << (target.index() & 63)));
        let mut member = target_row.to_vec();
        member[twi] &= tmask;
        let mut frontier = member.clone();
        let mut next = vec![0u64; stride];
        loop {
            next.fill(0);
            for_each_set_bit(&frontier, |x| {
                for (acc, &w) in next
                    .iter_mut()
                    .zip(self.affected_by_row(StreamId(x as u32)))
                {
                    *acc |= w;
                }
            });
            next[twi] &= tmask;
            let mut grew = false;
            for (f, (m, &nw)) in frontier.iter_mut().zip(member.iter_mut().zip(next.iter())) {
                *f = nw & !*m;
                *m |= nw;
                grew |= *f != 0;
            }
            if !grew {
                break;
            }
        }

        let mut elements = Vec::new();
        for_each_set_bit(&member, |k| {
            let k_id = StreamId(k as u32);
            let direct = target_row[k >> 6] >> (k & 63) & 1 == 1;
            let (mode, intermediates) = if direct {
                (BlockingMode::Direct, Vec::new())
            } else {
                // Successors one chain-step closer to the target:
                // everyone k affects that is itself a member. Bit order
                // is id order, which is the oracle's sort order.
                let mut inter = Vec::new();
                let row = self.affects_row(k_id);
                for (wi, (&a, &m)) in row.iter().zip(member.iter()).enumerate() {
                    let mut w = a & m;
                    while w != 0 {
                        inter.push(StreamId((wi * 64 + w.trailing_zeros() as usize) as u32));
                        w &= w - 1;
                    }
                }
                (BlockingMode::Indirect, inter)
            };
            elements.push(HpElement {
                stream: k_id,
                mode,
                intermediates,
            });
        });
        elements.sort_by(|a, b| {
            self.priorities[b.stream.index()]
                .cmp(&self.priorities[a.stream.index()])
                .then(a.stream.cmp(&b.stream))
        });
        HpSet::from_elements(target, elements)
    }

    /// HP sets for every stream, indexed by stream id — the indexed
    /// form of the paper's outer `Generate_HP` loop.
    pub fn hp_sets(&self, set: &StreamSet) -> Vec<HpSet> {
        set.ids().map(|id| self.hp_set(set, id)).collect()
    }

    /// Streams whose delay bound can change when `changed` is admitted
    /// or removed: `changed` itself plus its transitive closure under
    /// forward directly-affects edges, in increasing id order.
    pub fn downstream(&self, changed: StreamId) -> Vec<StreamId> {
        let stride = self.stride.max(1);
        let mut member = vec![0u64; stride];
        member[changed.index() >> 6] |= 1u64 << (changed.index() & 63);
        let mut frontier = member.clone();
        let mut next = vec![0u64; stride];
        loop {
            next.fill(0);
            for_each_set_bit(&frontier, |x| {
                for (acc, &w) in next.iter_mut().zip(self.affects_row(StreamId(x as u32))) {
                    *acc |= w;
                }
            });
            let mut grew = false;
            for (f, (m, &nw)) in frontier.iter_mut().zip(member.iter_mut().zip(next.iter())) {
                *f = nw & !*m;
                *m |= nw;
                grew |= *f != 0;
            }
            if !grew {
                break;
            }
        }
        let mut out = Vec::new();
        for_each_set_bit(&member, |b| out.push(StreamId(b as u32)));
        out
    }

    #[inline]
    fn set_edge(&mut self, a: StreamId, b: StreamId) {
        self.affects[a.index() * self.stride + (b.index() >> 6)] |= 1u64 << (b.index() & 63);
        self.affected_by[b.index() * self.stride + (a.index() >> 6)] |= 1u64 << (a.index() & 63);
    }

    /// Re-lays both matrices out with a different row stride. Growing
    /// copies old words and zero-fills the rest (amortized: called every
    /// 64th, and with geometric growth ever rarer, insert). Shrinking
    /// copies the still-populated prefix of each row — callers only
    /// shrink below the high-water mark of set bits, which
    /// [`InterferenceIndex::maybe_shrink`] guarantees by never going
    /// under `ceil(n / 64)` words. The fresh allocation also releases
    /// capacity slack left behind by `truncate`/`drain`.
    fn restride(&mut self, new_stride: usize) {
        let old = self.stride;
        if new_stride == old {
            return;
        }
        let copy = old.min(new_stride);
        for matrix in [&mut self.affects, &mut self.affected_by] {
            debug_assert!(
                matrix
                    .chunks_exact(old.max(1))
                    .all(|row| row[copy..].iter().all(|&w| w == 0)),
                "shrink would drop set bits"
            );
            let mut fresh = vec![0u64; self.n * new_stride];
            if copy > 0 {
                for (r, row) in matrix.chunks_exact(old).enumerate() {
                    fresh[r * new_stride..r * new_stride + copy].copy_from_slice(&row[..copy]);
                }
            }
            *matrix = fresh;
        }
        self.stride = new_stride;
    }

    /// Releases matrix memory after removals. `delete_bit` compacts ids
    /// within rows but never narrows them, so without this a serve
    /// process that churned up to n streams and back down would hold
    /// O(n²) bits forever. Policy, with hysteresis so the admit path's
    /// trial-insert/rollback never thrashes:
    ///
    /// * empty index → reset to the pristine zero-capacity state;
    /// * stride ≥ 4 × `ceil(n / 64)` → restride down to 2 ×, mirroring
    ///   the doubling growth (grow again only after n doubles, shrink
    ///   again only after it halves);
    /// * otherwise, if the vectors hold ≥ 4 × their length in capacity
    ///   (truncate/drain never release), give the slack back.
    fn maybe_shrink(&mut self) {
        if self.n == 0 {
            *self = Self::default();
            return;
        }
        let needed = self.n.div_ceil(64);
        if self.stride >= needed * 4 {
            self.restride(needed * 2);
        } else if self.affects.capacity() >= 4 * self.n * self.stride {
            self.affects.shrink_to_fit();
            self.affected_by.shrink_to_fit();
        }
    }

    /// Matrix capacity alone (the part removals used to ratchet).
    #[cfg(test)]
    fn matrix_bytes(&self) -> usize {
        (self.affects.capacity() + self.affected_by.capacity()) * std::mem::size_of::<u64>()
    }
}

/// Logical equality: same relation over the same streams, regardless of
/// stride slack or occupancy-table capacity. This is what the
/// incremental-vs-fresh property tests compare.
impl PartialEq for InterferenceIndex {
    fn eq(&self, other: &Self) -> bool {
        if self.n != other.n
            || self.priorities != other.priorities
            || self.stream_links != other.stream_links
        {
            return false;
        }
        let max_links = self.link_streams.len().max(other.link_streams.len());
        for l in 0..max_links {
            if self.link_streams(LinkId(l as u32)) != other.link_streams(LinkId(l as u32)) {
                return false;
            }
        }
        let words = self.n.div_ceil(64);
        (0..self.n).all(|i| {
            let id = StreamId(i as u32);
            self.affects_row(id)[..words] == other.affects_row(id)[..words]
                && self.affected_by_row(id)[..words] == other.affected_by_row(id)[..words]
        })
    }
}

impl Eq for InterferenceIndex {}

/// Deletes bit `bit` from a packed row, shifting every higher bit down
/// by one (the id compaction of [`InterferenceIndex::remove`]).
fn delete_bit(row: &mut [u64], bit: usize) {
    let (w, b) = (bit >> 6, bit & 63);
    let low = (1u64 << b) - 1;
    row[w] = (row[w] & low) | ((row[w] >> 1) & !low);
    for i in w + 1..row.len() {
        row[i - 1] |= (row[i] & 1) << 63;
        row[i] >>= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpset::{generate_hp_oracle, generate_hp_sets_oracle};
    use crate::stream::StreamSpec;
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn build_set(specs: &[([u32; 2], [u32; 2], u32)]) -> StreamSet {
        let m = Mesh::mesh2d(10, 10);
        let specs: Vec<StreamSpec> = specs
            .iter()
            .map(|&(s, d, p)| {
                StreamSpec::new(
                    m.node_at(&s).unwrap(),
                    m.node_at(&d).unwrap(),
                    p,
                    100,
                    4,
                    100,
                )
            })
            .collect();
        StreamSet::resolve(&m, &XyRouting, &specs).unwrap()
    }

    fn chain() -> StreamSet {
        build_set(&[
            ([0, 0], [2, 0], 1), // T
            ([1, 0], [4, 0], 2), // Y direct
            ([3, 0], [6, 0], 3), // X indirect via Y
            ([5, 0], [8, 0], 4), // W indirect via X
        ])
    }

    #[test]
    fn relation_matches_pairwise_tests() {
        let set = chain();
        let index = InterferenceIndex::build(&set);
        for a in set.ids() {
            for b in set.ids() {
                assert_eq!(
                    index.directly_affects(a, b),
                    set.get(a).directly_affects(set.get(b)),
                    "{a} -> {b}"
                );
            }
        }
    }

    #[test]
    fn hp_sets_match_oracle() {
        let set = chain();
        let index = InterferenceIndex::build(&set);
        assert_eq!(index.hp_sets(&set), generate_hp_sets_oracle(&set));
    }

    #[test]
    fn occupancy_lists_are_sorted_and_complete() {
        let set = chain();
        let index = InterferenceIndex::build(&set);
        for s in set.iter() {
            for &l in s.path.links() {
                let occ = index.link_streams(l);
                assert!(occ.windows(2).all(|w| w[0] < w[1]), "sorted {l:?}");
                assert!(occ.contains(&s.id), "{l:?} lists {}", s.id);
            }
        }
        assert!(index.link_streams(LinkId(9999)).is_empty());
    }

    #[test]
    fn downstream_includes_self_and_blockees() {
        let set = chain();
        let index = InterferenceIndex::build(&set);
        // W (id 3, top priority) transitively blocks everyone below.
        assert_eq!(
            index.downstream(StreamId(3)),
            vec![StreamId(0), StreamId(1), StreamId(2), StreamId(3)]
        );
        // T (id 0, bottom) blocks nobody.
        assert_eq!(index.downstream(StreamId(0)), vec![StreamId(0)]);
    }

    #[test]
    fn insert_then_remove_last_restores_the_index() {
        let set = chain();
        let mut index = InterferenceIndex::new();
        for s in set.iter().take(3) {
            index.insert_last(s);
        }
        let before = index.clone();
        index.insert_last(set.get(StreamId(3)));
        assert_eq!(index.len(), 4);
        index.remove_last();
        assert_eq!(index, before);
    }

    #[test]
    fn remove_matches_fresh_build_of_the_smaller_set() {
        let set = build_set(&[
            ([0, 0], [4, 0], 1),
            ([2, 0], [6, 0], 2),
            ([3, 0], [7, 0], 2),
            ([5, 0], [9, 0], 3),
            ([0, 2], [5, 2], 1),
        ]);
        for victim in set.ids() {
            let mut index = InterferenceIndex::build(&set);
            index.remove(victim);
            let parts: Vec<_> = set
                .iter()
                .filter(|s| s.id != victim)
                .map(|s| (s.spec.clone(), s.path.clone()))
                .collect();
            let smaller = StreamSet::from_parts(parts).unwrap();
            assert_eq!(index, InterferenceIndex::build(&smaller), "victim {victim}");
            assert_eq!(index.hp_sets(&smaller), generate_hp_sets_oracle(&smaller));
        }
    }

    #[test]
    fn stride_growth_across_word_boundary() {
        // 70 disjoint streams on a big mesh cross the 64-bit boundary.
        let m = Mesh::mesh2d(12, 12);
        let mut specs = Vec::new();
        for i in 0..70u32 {
            let (x, y) = (i % 11, i % 12);
            specs.push(StreamSpec::new(
                m.node_at(&[x, y]).unwrap(),
                m.node_at(&[x + 1, y]).unwrap(),
                1 + i % 5,
                100,
                2,
                100,
            ));
        }
        let set = StreamSet::resolve(&m, &XyRouting, &specs).unwrap();
        let index = InterferenceIndex::build(&set);
        for id in set.ids() {
            assert_eq!(index.hp_set(&set, id), generate_hp_oracle(&set, id), "{id}");
        }
        // Removing a low id exercises cross-word bit deletion.
        let mut pruned = index.clone();
        pruned.remove(StreamId(3));
        let parts: Vec<_> = set
            .iter()
            .filter(|s| s.id != StreamId(3))
            .map(|s| (s.spec.clone(), s.path.clone()))
            .collect();
        let smaller = StreamSet::from_parts(parts).unwrap();
        assert_eq!(pruned, InterferenceIndex::build(&smaller));
    }

    /// 300+ pairwise-disjoint single-hop streams on a 20x20 mesh: each
    /// occupies one distinct horizontal channel, so inserts/removals in
    /// bulk exercise stride growth past several word boundaries.
    fn disjoint_set() -> StreamSet {
        let m = Mesh::mesh2d(20, 20);
        let mut specs = Vec::new();
        for y in 0..16u32 {
            for x in 0..19u32 {
                specs.push(StreamSpec::new(
                    m.node_at(&[x, y]).unwrap(),
                    m.node_at(&[x + 1, y]).unwrap(),
                    1 + (x + y) % 5,
                    100,
                    2,
                    100,
                ));
            }
        }
        StreamSet::resolve(&m, &XyRouting, &specs).unwrap()
    }

    #[test]
    fn removal_shrinks_matrix_memory() {
        let set = disjoint_set();
        let mut index = InterferenceIndex::build(&set);
        let full = index.matrix_bytes();
        let full_total = index.memory_bytes();
        // Remove from the front (worst case: every removal shifts bits)
        // until 10 streams remain. The stride needed drops from 5 words
        // to 1; the shrink hysteresis must have fired along the way.
        while index.len() > 10 {
            index.remove(StreamId(0));
        }
        let small = index.matrix_bytes();
        assert!(
            small * 4 < full,
            "matrix memory did not shrink: {full} -> {small} bytes"
        );
        assert!(
            index.memory_bytes() < full_total,
            "total footprint must drop too"
        );
        // Remaining slack is bounded (stride headroom + allocator
        // capacity headroom, each at most one doubling) — before the
        // shrink this was tens of kilobytes.
        assert!(
            index.reclaimable_bytes() < 1024,
            "reclaimable slack ratcheted: {} bytes over {} streams",
            index.reclaimable_bytes(),
            index.len()
        );
        // Shrinking preserved the relation: identical to a fresh build.
        let parts: Vec<_> = set
            .iter()
            .skip(set.len() - 10)
            .map(|s| (s.spec.clone(), s.path.clone()))
            .collect();
        let survivors = StreamSet::from_parts(parts).unwrap();
        assert_eq!(index, InterferenceIndex::build(&survivors));
        assert_eq!(
            index.hp_sets(&survivors),
            generate_hp_sets_oracle(&survivors)
        );
    }

    #[test]
    fn draining_to_empty_releases_everything() {
        let set = disjoint_set();
        let mut index = InterferenceIndex::build(&set);
        assert!(index.memory_bytes() > 0);
        for _ in 0..set.len() {
            index.remove_last();
        }
        assert!(index.is_empty());
        assert_eq!(index.memory_bytes(), 0, "empty index must hold no heap");
        assert_eq!(index.reclaimable_bytes(), 0);
    }

    #[test]
    fn rollback_churn_does_not_thrash_or_leak() {
        // The admit path's trial insert + rollback at a word boundary
        // must neither restride up-and-down per cycle nor accumulate
        // capacity. 64 resident streams, churn the 65th.
        let set = disjoint_set();
        let mut index = InterferenceIndex::new();
        for s in set.iter().take(64) {
            index.insert_last(s);
        }
        let churn = set.get(StreamId(64));
        index.insert_last(churn);
        index.remove_last();
        let settled = index.memory_bytes();
        for _ in 0..100 {
            index.insert_last(churn);
            index.remove_last();
        }
        assert_eq!(index.memory_bytes(), settled, "churn ratcheted memory");
    }

    #[test]
    fn delete_bit_shifts_across_words() {
        let mut row = vec![0u64; 2];
        row[0] = 1 << 10 | 1 << 63;
        row[1] = 1 << 0 | 1 << 5;
        // Delete bit 10: 63 -> 62, 64 -> 63, 69 -> 68.
        delete_bit(&mut row, 10);
        assert_eq!(row[0], 1 << 62 | 1 << 63);
        assert_eq!(row[1], 1 << 4);
    }
}
