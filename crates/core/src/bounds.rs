//! Comparator bounds: ablations and baselines against which the paper's
//! full analysis is evaluated.
//!
//! * [`direct_only_bound`] — the paper's algorithm with `Modify_Diagram`
//!   disabled (every HP element treated as direct). Quantifies how much
//!   of the bound's tightness comes from indirect-blocking removal.
//! * [`busy_window_bound`] — a classical response-time-analysis style
//!   bound in the spirit of Mutka's rate-monotonic treatment of
//!   wormhole traffic: the smallest `t` with
//!   `t >= L + sum_k ceil(t / T_k) * C_k` over the whole HP set. It
//!   ignores the window structure the timing diagram captures, so it is
//!   never tighter than the paper's bound on direct-only HP sets.

use crate::calu::DelayBound;
use crate::diagram::{RemovedInstances, TimingDiagram};
use crate::hpset::generate_hp;
use crate::stream::{StreamId, StreamSet};

/// The paper's bound *without* `Modify_Diagram`: the initial all-direct
/// timing diagram read directly. Always >= the full `cal_u` bound.
pub fn direct_only_bound(set: &StreamSet, target: StreamId, horizon: u64) -> DelayBound {
    let hp = generate_hp(set, target);
    let diagram = TimingDiagram::generate(set, &hp, horizon, &RemovedInstances::none());
    match diagram.accumulate_free(set.get(target).latency) {
        Some(u) => DelayBound::Bounded(u),
        None => DelayBound::Exceeded,
    }
}

/// Iterative busy-window (response-time) bound over the HP set:
/// fixpoint of `t = L + sum_{k in HP} ceil(t / T_k) * C_k`, capped at
/// `horizon`.
pub fn busy_window_bound(set: &StreamSet, target: StreamId, horizon: u64) -> DelayBound {
    let hp = generate_hp(set, target);
    let l = set.get(target).latency;
    let mut t = l;
    loop {
        let interference: u64 = hp
            .elements()
            .iter()
            .map(|e| {
                let s = set.get(e.stream);
                t.div_ceil(s.period()) * s.max_length()
            })
            .sum();
        let next = l + interference;
        if next > horizon {
            return DelayBound::Exceeded;
        }
        if next == t {
            return DelayBound::Bounded(t);
        }
        t = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calu::cal_u;
    use crate::stream::StreamSpec;
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn line_set(specs: &[(u32, u32, u32, u64, u64)]) -> StreamSet {
        let m = Mesh::mesh2d(20, 2);
        let specs: Vec<StreamSpec> = specs
            .iter()
            .map(|&(x0, x1, p, t, c)| {
                StreamSpec::new(
                    m.node_at(&[x0, 0]).unwrap(),
                    m.node_at(&[x1, 0]).unwrap(),
                    p,
                    t,
                    c,
                    1000,
                )
            })
            .collect();
        StreamSet::resolve(&m, &XyRouting, &specs).unwrap()
    }

    /// Chain where indirect removal matters: T <- M3 <- M2 <- M1.
    fn indirect_chain() -> StreamSet {
        line_set(&[
            (6, 9, 4, 10, 2),
            (4, 7, 3, 15, 3),
            (2, 5, 2, 13, 4),
            (0, 3, 1, 50, 6),
        ])
    }

    #[test]
    fn direct_only_never_tighter_than_full() {
        let set = indirect_chain();
        for id in set.ids() {
            let full = cal_u(&set, id, 1000);
            let direct = direct_only_bound(&set, id, 1000);
            match (full, direct) {
                (DelayBound::Bounded(f), DelayBound::Bounded(d)) => {
                    assert!(d >= f, "{id:?}: direct {d} < full {f}")
                }
                (DelayBound::Exceeded, DelayBound::Bounded(_)) => {
                    panic!("{id:?}: ablation bounded where full analysis is not")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn direct_only_gap_on_indirect_chain() {
        // The chain target's latency is L = 3 + 6 - 1 = 8. Hand-run of
        // the diagrams: the all-direct schedule reaches the 8th free
        // slot at 37, while indirect removal (M1 instances 2, 3, 5 see
        // no M2 activity) pulls it down to 24.
        let set = indirect_chain();
        assert_eq!(
            direct_only_bound(&set, StreamId(3), 50),
            DelayBound::Bounded(37)
        );
        assert_eq!(cal_u(&set, StreamId(3), 50), DelayBound::Bounded(24));
    }

    #[test]
    fn busy_window_unblocked_is_latency() {
        let set = line_set(&[(0, 5, 2, 20, 3)]);
        let l = set.get(StreamId(0)).latency;
        assert_eq!(
            busy_window_bound(&set, StreamId(0), 100),
            DelayBound::Bounded(l)
        );
    }

    #[test]
    fn busy_window_at_least_diagram_bound_on_direct_sets() {
        // Direct-only HP sets: the busy-window bound is coarser or equal
        // because it releases every HP instance at t=0 instead of at its
        // window start.
        let set = line_set(&[
            (0, 6, 4, 10, 2),
            (1, 7, 3, 15, 3),
            (2, 8, 2, 13, 4),
            (3, 9, 1, 50, 6),
        ]);
        for id in set.ids() {
            let diagram = direct_only_bound(&set, id, 1000);
            let busy = busy_window_bound(&set, id, 1000);
            match (diagram, busy) {
                (DelayBound::Bounded(d), DelayBound::Bounded(b)) => {
                    assert!(b >= d, "{id:?}: busy {b} < diagram {d}")
                }
                (DelayBound::Bounded(_), DelayBound::Exceeded) => {}
                (DelayBound::Exceeded, DelayBound::Bounded(_)) => {
                    panic!("{id:?}: busy-window bounded where diagram is not")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn busy_window_diverges_on_overload() {
        // HP utilization > 1 for the lowest-priority stream: no
        // fixpoint, the iteration blows past any horizon.
        let set = line_set(&[(0, 5, 3, 4, 3), (1, 6, 2, 4, 3), (2, 7, 1, 100, 2)]);
        assert_eq!(
            busy_window_bound(&set, StreamId(2), 10_000),
            DelayBound::Exceeded
        );
    }
}
