//! Incremental admission control — the host processor's run-time use of
//! the feasibility test.
//!
//! The paper's host processor re-runs `Determine-Feasibility` whenever a
//! job asks for a new real-time channel. A naive re-run recomputes every
//! `U_i`; but admitting a stream of priority `p` can only change the
//! bounds of streams it can (transitively) block — its *downstream* in
//! the directly-affects graph — so the controller recomputes exactly
//! those and keeps every other cached bound.
//!
//! The controller maintains an [`InterferenceIndex`] incrementally:
//! every trial admit extends the live stream set and index in place
//! (O(interference neighborhood), not O(n) path comparisons), and a
//! rejection rolls back exactly what the trial added. The downstream
//! closure, every HP set, and every BDG of the recomputation are read
//! off the index as word-parallel bit operations.

use crate::calu::DelayBound;
use crate::diagram::AnalysisScratch;
use crate::interference::InterferenceIndex;
use crate::stream::{StreamId, StreamSet, StreamSpec};
use wormnet_topology::{NodeId, Path};

/// Why a stream was refused admission.
///
/// Rejections carry the candidate's endpoints and the ids of the
/// admitted streams involved (the blockers that push the candidate past
/// its deadline, or the victims it would push past theirs), so a
/// caller serving admission decisions can report *why* an admit failed
/// instead of just that it did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The candidate itself cannot meet its deadline.
    CandidateInfeasible {
        /// The candidate's bound within its deadline horizon.
        bound: DelayBound,
        /// The candidate's source node.
        source: NodeId,
        /// The candidate's destination node.
        dest: NodeId,
        /// Admitted streams (by current id) that directly block the
        /// candidate. Empty when the candidate fails alone (its
        /// deadline is below its contention-free network latency).
        blocked_by: Vec<StreamId>,
    },
    /// Admitting the candidate would break already-admitted streams.
    BreaksExisting {
        /// The candidate's source node.
        source: NodeId,
        /// The candidate's destination node.
        dest: NodeId,
        /// The admitted streams (by their current ids) that would miss
        /// their deadlines.
        victims: Vec<StreamId>,
    },
    /// The stream spec is invalid (zero period, self delivery, ...).
    Invalid(String),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::CandidateInfeasible {
                bound,
                source,
                dest,
                blocked_by,
            } => {
                write!(
                    f,
                    "candidate {source} -> {dest} cannot meet its deadline (U = {bound})"
                )?;
                if !blocked_by.is_empty() {
                    let ids: Vec<String> = blocked_by.iter().map(|s| s.to_string()).collect();
                    write!(f, ", blocked by {}", ids.join(", "))?;
                }
                Ok(())
            }
            AdmissionError::BreaksExisting {
                source,
                dest,
                victims,
            } => {
                let ids: Vec<String> = victims.iter().map(|s| s.to_string()).collect();
                write!(
                    f,
                    "admitting {source} -> {dest} would break {} existing stream(s): {}",
                    victims.len(),
                    ids.join(", ")
                )
            }
            AdmissionError::Invalid(e) => write!(f, "invalid stream: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// An accepted admission analyzed by [`AdmissionController::validate`]
/// against a read-only snapshot, ready for
/// [`AdmissionController::commit_validated`].
///
/// Holds everything the commit needs: the candidate, the link-sharing
/// component it was validated against (ids and parts, for the
/// commit-time staleness check), the candidate's bound, and the
/// refreshed bounds of every affected component member.
#[derive(Clone, Debug)]
pub struct ValidatedAdmission {
    spec: StreamSpec,
    path: Path,
    /// Dense ids (at validation time) of the candidate's link-sharing
    /// component, in increasing order.
    component: Vec<StreamId>,
    /// The members' `(spec, path)` parts, parallel to `component`.
    component_parts: Vec<(StreamSpec, Path)>,
    /// The candidate's accepted bound (it met its deadline).
    candidate_bound: u64,
    /// Refreshed bounds for the affected members, by dense id.
    updates: Vec<(StreamId, DelayBound)>,
    /// `Cal_U` invocations the validation performed.
    recomputed: u64,
}

impl ValidatedAdmission {
    /// Number of streams in the candidate's link-sharing component.
    pub fn component_len(&self) -> usize {
        self.component.len()
    }

    /// The candidate's accepted delay bound.
    pub fn candidate_bound(&self) -> u64 {
        self.candidate_bound
    }
}

/// An incremental feasibility-preserving admission controller.
///
/// Invariant: after every successful [`AdmissionController::admit`] (and
/// after construction), every admitted stream's cached bound satisfies
/// `U_i <= D_i`.
///
/// # Examples
///
/// ```
/// use rtwc_core::{AdmissionController, StreamSpec};
/// use wormnet_topology::{Mesh, Routing, Topology, XyRouting};
///
/// let mesh = Mesh::mesh2d(10, 10);
/// let node = |x, y| mesh.node_at(&[x, y]).unwrap();
/// let mut ctl = AdmissionController::new();
///
/// let (src, dst) = (node(0, 0), node(5, 0));
/// let path = XyRouting.route(&mesh, src, dst).unwrap();
/// let id = ctl
///     .admit(StreamSpec::new(src, dst, 2, 50, 4, 50), path)
///     .expect("lone stream is always admissible");
/// assert!(ctl.bound(id).meets(50));
/// ```
#[derive(Clone, Debug, Default)]
pub struct AdmissionController {
    parts: Vec<(StreamSpec, Path)>,
    set: Option<StreamSet>,
    /// Incrementally maintained interference index over `set`. Always
    /// equal to `InterferenceIndex::build` of the admitted set (the
    /// equivalence property tests enforce this).
    index: InterferenceIndex,
    bounds: Vec<DelayBound>,
    /// Bound recomputations performed over the controller's lifetime
    /// (instrumentation: shows the saving vs full re-analysis).
    recomputations: u64,
}

impl AdmissionController {
    /// An empty controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admitted streams as a stream set (`None` when empty).
    pub fn set(&self) -> Option<&StreamSet> {
        self.set.as_ref()
    }

    /// Number of admitted streams.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when nothing is admitted.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The cached bound of an admitted stream.
    pub fn bound(&self, id: StreamId) -> DelayBound {
        self.bounds[id.index()]
    }

    /// Total `Cal_U` invocations so far (instrumentation).
    pub fn recomputations(&self) -> u64 {
        self.recomputations
    }

    /// The admitted `(spec, path)` parts, in dense-id order. Together
    /// with [`AdmissionController::bounds`] this is a complete snapshot
    /// of the controller's state, sufficient to rebuild the stream set
    /// offline (`StreamSet::from_parts`) and audit every cached bound.
    pub fn parts(&self) -> &[(StreamSpec, Path)] {
        &self.parts
    }

    /// Every cached bound, indexed by dense id (parallel to
    /// [`AdmissionController::parts`]).
    pub fn bounds(&self) -> &[DelayBound] {
        &self.bounds
    }

    /// Iterates over the admitted streams: `(id, spec, path, bound)`.
    pub fn snapshot(&self) -> impl Iterator<Item = (StreamId, &StreamSpec, &Path, DelayBound)> {
        self.parts
            .iter()
            .zip(&self.bounds)
            .enumerate()
            .map(|(i, ((spec, path), &bound))| (StreamId(i as u32), spec, path, bound))
    }

    /// Lifetime statistics: `(admitted_now, recomputations)`.
    pub fn stats(&self) -> (usize, u64) {
        (self.parts.len(), self.recomputations)
    }

    /// The incrementally maintained interference index over the
    /// admitted set (exposed for auditing and equivalence testing; it
    /// always equals a from-scratch `InterferenceIndex::build`).
    pub fn index(&self) -> &InterferenceIndex {
        &self.index
    }

    /// Tries to admit `(spec, path)`; on success the stream gets the
    /// next dense id and its bound is cached. On failure the controller
    /// is unchanged.
    pub fn admit(&mut self, spec: StreamSpec, path: Path) -> Result<StreamId, AdmissionError> {
        // Structural guard, mirroring the verifier's spec lints W005 /
        // W007: a stream that oversubscribes its own period, or whose
        // deadline is below its contention-free network latency, can
        // never be admitted — refuse before building the trial set so
        // the caller gets a precise reason instead of a generic
        // infeasibility verdict.
        if spec.max_length > spec.period {
            return Err(AdmissionError::Invalid(format!(
                "length C = {} exceeds period T = {} (the stream oversubscribes its own channel)",
                spec.max_length, spec.period
            )));
        }
        let latency = crate::latency::network_latency(path.hops(), spec.max_length);
        if spec.deadline < latency {
            return Err(AdmissionError::CandidateInfeasible {
                bound: DelayBound::Bounded(latency),
                source: spec.source,
                dest: spec.dest,
                blocked_by: Vec::new(),
            });
        }

        let (cand_source, cand_dest) = (spec.source, spec.dest);
        // Mutate-then-rollback trial: extend the live stream set and
        // index in place (no cloning the admitted state), and undo
        // exactly the trial's additions on rejection.
        let created = self.set.is_none();
        let new_id = match self.set.as_mut() {
            Some(set) => set
                .push(spec.clone(), path.clone())
                .map_err(|e| AdmissionError::Invalid(e.to_string()))?,
            None => {
                self.set = Some(
                    StreamSet::from_parts(vec![(spec.clone(), path.clone())])
                        .map_err(|e| AdmissionError::Invalid(e.to_string()))?,
                );
                StreamId(0)
            }
        };
        let set = self.set.as_ref().expect("trial set just populated");
        self.index.insert_last(set.get(new_id));
        self.parts.push((spec, path));
        self.bounds.push(DelayBound::Exceeded);

        // Recompute only the candidate's downstream closure, saving the
        // overwritten bounds so a rejection can restore them.
        let mut saved: Vec<(usize, DelayBound)> = Vec::new();
        let mut victims = Vec::new();
        let mut candidate_bound = DelayBound::Exceeded;
        // The candidate's direct blockers, kept for the rejection
        // diagnostic (their ids in the trial set equal their current
        // admitted ids, since the candidate takes the last id).
        let mut blocked_by = Vec::new();
        let mut scratch = AnalysisScratch::new();
        for id in self.index.downstream(new_id) {
            let hp = self.index.hp_set(set, id);
            if id == new_id {
                blocked_by = hp
                    .elements()
                    .iter()
                    .filter(|e| e.is_direct())
                    .map(|e| e.stream)
                    .collect();
            }
            let bound = scratch.delay_bound_indexed(set, &self.index, &hp, set.get(id).deadline());
            self.recomputations += 1;
            if id != new_id {
                saved.push((id.index(), self.bounds[id.index()]));
            }
            self.bounds[id.index()] = bound;
            if !bound.meets(set.get(id).deadline()) {
                if id == new_id {
                    candidate_bound = bound;
                } else {
                    victims.push(id);
                }
            }
        }
        let rejection = if !victims.is_empty() {
            Some(AdmissionError::BreaksExisting {
                source: cand_source,
                dest: cand_dest,
                victims,
            })
        } else if !self.bounds[new_id.index()].meets(set.get(new_id).deadline()) {
            Some(AdmissionError::CandidateInfeasible {
                bound: candidate_bound,
                source: cand_source,
                dest: cand_dest,
                blocked_by,
            })
        } else {
            None
        };
        if let Some(err) = rejection {
            for (i, b) in saved {
                self.bounds[i] = b;
            }
            self.bounds.pop();
            self.parts.pop();
            self.index.remove_last();
            if created {
                self.set = None;
            } else {
                self.set.as_mut().expect("trial set present").pop();
            }
            return Err(err);
        }
        Ok(new_id)
    }

    /// Analyzes an admission **without mutating the controller** — the
    /// read-locked half of the optimistic concurrent admission path.
    ///
    /// The analysis runs over a miniature stream set holding only the
    /// candidate's link-sharing component
    /// ([`InterferenceIndex::link_component`]) plus the candidate
    /// itself. Because interference never crosses component boundaries
    /// and the mini set preserves the members' relative dense order,
    /// every recomputed bound — and therefore the accept/reject verdict,
    /// the victim list, and the blocker list — is bit-identical to what
    /// [`AdmissionController::admit`] would produce on the full set
    /// (enforced by the equivalence tests).
    ///
    /// On acceptance the returned [`ValidatedAdmission`] carries the
    /// candidate's bound and the refreshed bounds of every affected
    /// member; [`AdmissionController::commit_validated`] applies them
    /// without re-running `Cal_U`, provided the component is unchanged.
    pub fn validate(
        &self,
        spec: StreamSpec,
        path: Path,
    ) -> Result<ValidatedAdmission, AdmissionError> {
        if spec.max_length > spec.period {
            return Err(AdmissionError::Invalid(format!(
                "length C = {} exceeds period T = {} (the stream oversubscribes its own channel)",
                spec.max_length, spec.period
            )));
        }
        let latency = crate::latency::network_latency(path.hops(), spec.max_length);
        if spec.deadline < latency {
            return Err(AdmissionError::CandidateInfeasible {
                bound: DelayBound::Bounded(latency),
                source: spec.source,
                dest: spec.dest,
                blocked_by: Vec::new(),
            });
        }

        let component = self.index.link_component(path.sorted_links());
        let component_parts: Vec<(StreamSpec, Path)> = component
            .iter()
            .map(|&id| self.parts[id.index()].clone())
            .collect();
        let mut mini_parts = component_parts.clone();
        mini_parts.push((spec.clone(), path.clone()));
        let mini_set = StreamSet::from_parts(mini_parts)
            .map_err(|e| AdmissionError::Invalid(e.to_string()))?;
        let mini_index = InterferenceIndex::build(&mini_set);
        let new_id = StreamId(component.len() as u32);

        let mut scratch = AnalysisScratch::new();
        let mut victims = Vec::new();
        let mut candidate_bound = DelayBound::Exceeded;
        let mut blocked_by = Vec::new();
        let mut updates = Vec::new();
        let mut accepted = None;
        let mut recomputed = 0u64;
        for id in mini_index.downstream(new_id) {
            let hp = mini_index.hp_set(&mini_set, id);
            if id == new_id {
                // The target is never an HP member, so every element
                // translates through `component`.
                blocked_by = hp
                    .elements()
                    .iter()
                    .filter(|e| e.is_direct())
                    .map(|e| component[e.stream.index()])
                    .collect();
            }
            let bound = scratch.delay_bound_indexed(
                &mini_set,
                &mini_index,
                &hp,
                mini_set.get(id).deadline(),
            );
            recomputed += 1;
            let meets = bound.meets(mini_set.get(id).deadline());
            if id == new_id {
                if meets {
                    accepted = bound.value();
                } else {
                    candidate_bound = bound;
                }
            } else {
                if !meets {
                    victims.push(component[id.index()]);
                }
                updates.push((component[id.index()], bound));
            }
        }
        if !victims.is_empty() {
            return Err(AdmissionError::BreaksExisting {
                source: spec.source,
                dest: spec.dest,
                victims,
            });
        }
        let Some(candidate_bound) = accepted else {
            return Err(AdmissionError::CandidateInfeasible {
                bound: candidate_bound,
                source: spec.source,
                dest: spec.dest,
                blocked_by,
            });
        };
        Ok(ValidatedAdmission {
            spec,
            path,
            component,
            component_parts,
            candidate_bound,
            updates,
            recomputed,
        })
    }

    /// Applies a [`ValidatedAdmission`] without re-running the analysis
    /// — the write-locked half of the optimistic concurrent path.
    ///
    /// Returns `None` (controller unchanged) when the validation is
    /// stale: the candidate's link-sharing component no longer holds
    /// exactly the streams it was validated against, either because ids
    /// shifted (a removal) or because a new overlapping stream was
    /// admitted. The caller falls back to the serial
    /// [`AdmissionController::admit`].
    pub fn commit_validated(&mut self, v: &ValidatedAdmission) -> Option<StreamId> {
        let component = self.index.link_component(v.path.sorted_links());
        if component != v.component
            || component
                .iter()
                .zip(&v.component_parts)
                .any(|(&id, part)| &self.parts[id.index()] != part)
        {
            return None;
        }
        let new_id = match self.set.as_mut() {
            Some(set) => set.push(v.spec.clone(), v.path.clone()).ok()?,
            None => {
                self.set =
                    Some(StreamSet::from_parts(vec![(v.spec.clone(), v.path.clone())]).ok()?);
                StreamId(0)
            }
        };
        let set = self.set.as_ref().expect("set just populated");
        self.index.insert_last(set.get(new_id));
        self.parts.push((v.spec.clone(), v.path.clone()));
        self.bounds.push(DelayBound::Bounded(v.candidate_bound));
        for &(id, b) in &v.updates {
            self.bounds[id.index()] = b;
        }
        self.recomputations += v.recomputed;
        Some(new_id)
    }

    /// Removes an admitted stream. Remaining streams keep their cached
    /// bounds except those the removed stream could block, which are
    /// refreshed (they can only improve). Ids above `id` shift down by
    /// one, mirroring `StreamSet`'s dense ids.
    pub fn remove(&mut self, id: StreamId) {
        assert!(id.index() < self.parts.len(), "unknown stream {id}");
        // Compute the affected set while the stream is still indexed.
        let affected_old: Vec<StreamId> = self
            .index
            .downstream(id)
            .into_iter()
            .filter(|&x| x != id)
            .collect();

        self.parts.remove(id.index());
        self.bounds.remove(id.index());
        self.index.remove(id);
        if self.parts.is_empty() {
            self.set = None;
            return;
        }
        self.set
            .as_mut()
            .expect("non-empty controller has a set")
            .remove(id);
        let set = self.set.as_ref().expect("set stays populated");
        // Map old ids to new ids (everything above `id` shifts down).
        let remap = |old: StreamId| -> StreamId {
            if old.index() > id.index() {
                StreamId(old.0 - 1)
            } else {
                old
            }
        };
        let mut scratch = AnalysisScratch::new();
        for old in affected_old {
            let new_id = remap(old);
            let hp = self.index.hp_set(set, new_id);
            let bound =
                scratch.delay_bound_indexed(set, &self.index, &hp, set.get(new_id).deadline());
            self.recomputations += 1;
            self.bounds[new_id.index()] = bound;
        }
    }

    // ------------------------------------------------------------------
    // Shard-plane primitives (crate::shard). The sharded admission plane
    // computes true *global* bounds over a link-sharing neighborhood and
    // replicates each member into every shard its route touches; these
    // entry points let it place pre-analyzed streams without re-running
    // (or rolling back) the serial analysis above. They preserve the
    // structural invariants (set == parts, index == build(set), bounds
    // parallel) but NOT the feasibility invariant — the caller is
    // responsible for only storing bounds produced by a real analysis.
    // ------------------------------------------------------------------

    /// Appends an already-analyzed stream with the next dense id and the
    /// caller-supplied bound. No feasibility analysis runs.
    pub(crate) fn insert_with_bound(
        &mut self,
        spec: StreamSpec,
        path: Path,
        bound: DelayBound,
    ) -> StreamId {
        let new_id = match self.set.as_mut() {
            Some(set) => set
                .push(spec.clone(), path.clone())
                .expect("plane-validated spec"),
            None => {
                self.set = Some(
                    StreamSet::from_parts(vec![(spec.clone(), path.clone())])
                        .expect("plane-validated spec"),
                );
                StreamId(0)
            }
        };
        let set = self.set.as_ref().expect("set just populated");
        self.index.insert_last(set.get(new_id));
        self.parts.push((spec, path));
        self.bounds.push(bound);
        new_id
    }

    /// Overwrites the cached bound of an admitted stream with one the
    /// plane recomputed globally.
    pub(crate) fn set_bound(&mut self, id: StreamId, bound: DelayBound) {
        self.bounds[id.index()] = bound;
    }

    /// Removes a stream *without* refreshing anyone's bound — the plane
    /// recomputes affected members globally and writes them back via
    /// [`AdmissionController::set_bound`]. Ids above `id` shift down by
    /// one, exactly as in [`AdmissionController::remove`].
    pub(crate) fn detach(&mut self, id: StreamId) {
        assert!(id.index() < self.parts.len(), "unknown stream {id}");
        self.parts.remove(id.index());
        self.bounds.remove(id.index());
        self.index.remove(id);
        if self.parts.is_empty() {
            self.set = None;
        } else {
            self.set
                .as_mut()
                .expect("non-empty controller has a set")
                .remove(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::determine_feasibility;
    use wormnet_topology::{Mesh, Routing, Topology, XyRouting};

    fn mesh() -> Mesh {
        Mesh::mesh2d(10, 10)
    }

    fn routed(
        m: &Mesh,
        s: [u32; 2],
        d: [u32; 2],
        p: u32,
        t: u64,
        c: u64,
        dl: u64,
    ) -> (StreamSpec, Path) {
        let src = m.node_at(&s).unwrap();
        let dst = m.node_at(&d).unwrap();
        let path = XyRouting.route(m, src, dst).unwrap();
        (StreamSpec::new(src, dst, p, t, c, dl), path)
    }

    #[test]
    fn admits_feasible_streams() {
        let m = mesh();
        let mut ctl = AdmissionController::new();
        let (s0, p0) = routed(&m, [0, 0], [5, 0], 2, 50, 4, 50);
        let (s1, p1) = routed(&m, [1, 0], [6, 0], 1, 80, 4, 80);
        let id0 = ctl.admit(s0, p0).unwrap();
        let id1 = ctl.admit(s1, p1).unwrap();
        assert_eq!(ctl.len(), 2);
        assert!(ctl.bound(id0).is_bounded());
        assert!(ctl.bound(id1).is_bounded());
    }

    #[test]
    fn rejects_candidate_that_cannot_meet_deadline() {
        let m = mesh();
        let mut ctl = AdmissionController::new();
        let (s0, p0) = routed(&m, [0, 0], [5, 0], 2, 20, 10, 20);
        ctl.admit(s0, p0).unwrap();
        // Candidate shares the row, low priority, impossible deadline.
        let (s1, p1) = routed(&m, [1, 0], [6, 0], 1, 100, 8, 12);
        let err = ctl.admit(s1, p1).unwrap_err();
        assert!(matches!(err, AdmissionError::CandidateInfeasible { .. }));
        assert_eq!(ctl.len(), 1, "controller unchanged on rejection");
    }

    #[test]
    fn rejects_candidate_that_breaks_existing() {
        let m = mesh();
        let mut ctl = AdmissionController::new();
        // Existing low-priority stream with a tight-ish deadline.
        let (s0, p0) = routed(&m, [0, 0], [5, 0], 1, 100, 8, 14);
        let id0 = ctl.admit(s0, p0).unwrap();
        assert!(ctl.bound(id0).meets(14));
        // High-priority heavyweight newcomer on the same row.
        let (s1, p1) = routed(&m, [1, 0], [6, 0], 2, 30, 20, 30);
        let err = ctl.admit(s1, p1).unwrap_err();
        match err {
            AdmissionError::BreaksExisting { victims, .. } => assert_eq!(victims, vec![id0]),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn cached_bounds_match_full_analysis() {
        let m = mesh();
        let mut ctl = AdmissionController::new();
        let streams = [
            ([0u32, 0u32], [5u32, 0u32], 3u32, 60u64, 4u64),
            ([1, 0], [6, 0], 2, 90, 6),
            ([0, 2], [7, 2], 3, 70, 8),
            ([2, 0], [2, 5], 1, 120, 10),
            ([1, 2], [6, 2], 1, 150, 6),
        ];
        for (s, d, p, t, c) in streams {
            let (spec, path) = routed(&m, s, d, p, t, c, t);
            ctl.admit(spec, path).unwrap();
        }
        let set = ctl.set().unwrap();
        let full = determine_feasibility(set);
        for id in set.ids() {
            assert_eq!(ctl.bound(id), full.bound(id), "{id:?}");
        }
    }

    #[test]
    fn admission_skips_unaffected_recomputation() {
        let m = mesh();
        let mut ctl = AdmissionController::new();
        // Two streams in disjoint corners.
        let (s0, p0) = routed(&m, [0, 0], [3, 0], 1, 50, 4, 50);
        ctl.admit(s0, p0).unwrap();
        let before = ctl.recomputations();
        // A new stream nowhere near stream 0: only itself is recomputed.
        let (s1, p1) = routed(&m, [6, 6], [9, 6], 1, 50, 4, 50);
        ctl.admit(s1, p1).unwrap();
        assert_eq!(ctl.recomputations() - before, 1);
    }

    #[test]
    fn rejection_rolls_back_every_structure() {
        let m = mesh();
        let mut ctl = AdmissionController::new();
        let (s0, p0) = routed(&m, [0, 0], [5, 0], 2, 20, 10, 20);
        let (s1, p1) = routed(&m, [0, 2], [7, 2], 3, 70, 8, 70);
        ctl.admit(s0, p0).unwrap();
        ctl.admit(s1, p1).unwrap();
        let before_bounds = ctl.bounds().to_vec();
        let before_index = ctl.index().clone();
        let before_set_len = ctl.set().unwrap().len();
        // Same impossible candidate as rejects_candidate_that_cannot_meet_deadline.
        let (bad, bad_p) = routed(&m, [1, 0], [6, 0], 1, 100, 8, 12);
        ctl.admit(bad, bad_p).unwrap_err();
        assert_eq!(ctl.bounds(), before_bounds.as_slice());
        assert_eq!(ctl.index(), &before_index);
        assert_eq!(ctl.set().unwrap().len(), before_set_len);
        // And the rolled-back index still equals a fresh build.
        assert_eq!(ctl.index(), &InterferenceIndex::build(ctl.set().unwrap()));
    }

    #[test]
    fn removal_refreshes_victims() {
        let m = mesh();
        let mut ctl = AdmissionController::new();
        let (hi, hi_p) = routed(&m, [0, 0], [5, 0], 2, 40, 10, 40);
        let (lo, lo_p) = routed(&m, [1, 0], [6, 0], 1, 100, 4, 100);
        let hi_id = ctl.admit(hi, hi_p).unwrap();
        let lo_id = ctl.admit(lo, lo_p).unwrap();
        let blocked = ctl.bound(lo_id).value().unwrap();
        let l = ctl.set().unwrap().get(lo_id).latency;
        assert!(blocked > l);
        ctl.remove(hi_id);
        // lo shifted down to id 0 and is now unblocked.
        let new_lo = StreamId(0);
        assert_eq!(ctl.len(), 1);
        assert_eq!(ctl.bound(new_lo).value().unwrap(), l);
    }

    #[test]
    fn structural_guard_rejects_oversubscribed_candidate() {
        let m = mesh();
        let mut ctl = AdmissionController::new();
        // C = 20 > T = 10: refused outright, no analysis run.
        let (s, p) = routed(&m, [0, 0], [5, 0], 1, 10, 20, 10);
        let err = ctl.admit(s, p).unwrap_err();
        assert!(matches!(err, AdmissionError::Invalid(_)), "{err:?}");
        assert!(err.to_string().contains("oversubscribes"));
        assert_eq!(ctl.recomputations(), 0);
    }

    #[test]
    fn structural_guard_rejects_deadline_below_latency() {
        let m = mesh();
        let mut ctl = AdmissionController::new();
        // 5 hops, C = 4 -> L = 8, but D = 5: unreachable even alone.
        let (s, p) = routed(&m, [0, 0], [5, 0], 1, 100, 4, 5);
        let err = ctl.admit(s, p).unwrap_err();
        match err {
            AdmissionError::CandidateInfeasible {
                bound, blocked_by, ..
            } => {
                assert_eq!(bound, DelayBound::Bounded(8));
                assert!(blocked_by.is_empty(), "fails alone, no blockers");
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(ctl.recomputations(), 0);
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn random_candidate(m: &Mesh, rng: &mut u64) -> (StreamSpec, Path) {
        let sx = (splitmix64(rng) % 10) as u32;
        let sy = (splitmix64(rng) % 10) as u32;
        let mut dx = (splitmix64(rng) % 10) as u32;
        let dy = (splitmix64(rng) % 10) as u32;
        if (dx, dy) == (sx, sy) {
            dx = (dx + 1) % 10;
        }
        let p = 1 + (splitmix64(rng) % 4) as u32;
        let t = 50 + splitmix64(rng) % 400;
        let c = 2 + splitmix64(rng) % 6;
        routed(m, [sx, sy], [dx, dy], p, t, c, t)
    }

    /// The optimistic validate/commit path must be bit-identical to the
    /// serial path: same verdicts, same rejection diagnostics, same
    /// bounds, same index.
    #[test]
    fn validated_commit_is_bit_identical_to_serial_admit() {
        let m = mesh();
        let mut serial = AdmissionController::new();
        let mut optimistic = AdmissionController::new();
        let mut rng = 0x51de_c0de;
        let mut admitted = 0usize;
        for _ in 0..120 {
            let (spec, path) = random_candidate(&m, &mut rng);
            let serial_out = serial.admit(spec.clone(), path.clone());
            match optimistic.validate(spec.clone(), path.clone()) {
                Ok(v) => {
                    let id = optimistic
                        .commit_validated(&v)
                        .expect("no concurrent writers: commit is never stale");
                    assert_eq!(serial_out.as_ref().ok(), Some(&id), "verdicts diverged");
                    assert_eq!(
                        optimistic.bound(id),
                        DelayBound::Bounded(v.candidate_bound()),
                        "committed bound mismatch"
                    );
                    admitted += 1;
                    // Occasionally remove to exercise id shifts.
                    if admitted.is_multiple_of(7) {
                        let victim = StreamId((splitmix64(&mut rng) % serial.len() as u64) as u32);
                        serial.remove(victim);
                        optimistic.remove(victim);
                    }
                }
                Err(e) => {
                    assert_eq!(serial_out.unwrap_err(), e, "rejection diagnostics diverged");
                }
            }
            assert_eq!(serial.bounds(), optimistic.bounds());
            assert_eq!(serial.parts(), optimistic.parts());
        }
        assert!(admitted > 10, "workload should admit a healthy number");
        assert_eq!(
            optimistic.index(),
            &InterferenceIndex::build(optimistic.set().unwrap())
        );
    }

    /// A validation goes stale when an overlapping stream lands (or a
    /// removal shifts ids) between validate and commit; commit must
    /// refuse and leave the controller untouched.
    #[test]
    fn stale_validation_is_refused_at_commit() {
        let m = mesh();
        let mut ctl = AdmissionController::new();
        let (s0, p0) = routed(&m, [0, 0], [5, 0], 2, 50, 4, 50);
        ctl.admit(s0, p0).unwrap();
        let (cand, cand_p) = routed(&m, [1, 0], [6, 0], 1, 200, 4, 200);
        let v = ctl.validate(cand.clone(), cand_p.clone()).unwrap();
        // An overlapping admit invalidates the component.
        let (mid, mid_p) = routed(&m, [2, 0], [7, 0], 3, 60, 4, 60);
        ctl.admit(mid, mid_p).unwrap();
        let before_bounds = ctl.bounds().to_vec();
        assert!(
            ctl.commit_validated(&v).is_none(),
            "stale commit must refuse"
        );
        assert_eq!(ctl.bounds(), before_bounds.as_slice());
        // Re-validated against the current state, it commits cleanly and
        // matches a serial admit on a cloned controller.
        let mut serial = ctl.clone();
        let v2 = ctl.validate(cand.clone(), cand_p.clone()).unwrap();
        let id = ctl.commit_validated(&v2).unwrap();
        assert_eq!(serial.admit(cand, cand_p).unwrap(), id);
        assert_eq!(serial.bounds(), ctl.bounds());
        // A disjoint admit elsewhere does NOT invalidate a validation.
        let (far, far_p) = routed(&m, [0, 9], [5, 9], 1, 100, 4, 100);
        let v3 = ctl.validate(far.clone(), far_p.clone()).unwrap();
        let (other, other_p) = routed(&m, [9, 0], [9, 5], 1, 100, 4, 100);
        ctl.admit(other, other_p).unwrap();
        assert!(
            ctl.commit_validated(&v3).is_some(),
            "disjoint admission must not invalidate the component"
        );
    }

    #[test]
    fn remove_to_empty() {
        let m = mesh();
        let mut ctl = AdmissionController::new();
        let (s0, p0) = routed(&m, [0, 0], [3, 0], 1, 50, 4, 50);
        let id = ctl.admit(s0, p0).unwrap();
        ctl.remove(id);
        assert!(ctl.is_empty());
        assert!(ctl.set().is_none());
    }
}
