//! Human-readable rendering of timing diagrams and analyses — the same
//! pictures as the paper's Figures 4, 6, 7 and 9.

use crate::calu::CalUAnalysis;
use crate::diagram::{Slot, TimingDiagram};
use crate::stream::StreamSet;
use std::fmt::Write as _;

/// One character per cell, matching the paper's legend:
/// `#` ALLOCATED, `.` FREE, `x` BUSY, `w` WAITING.
pub fn slot_char(s: Slot) -> char {
    match s {
        Slot::Allocated => '#',
        Slot::Free => '.',
        Slot::Busy => 'x',
        Slot::Waiting => 'w',
    }
}

/// Renders a timing diagram as fixed-width ASCII art: one row per HP
/// element (labelled with its stream id) plus the implicit target row
/// (`.` where usable, `x` where some HP row transmits), with a time
/// ruler every 10 slots.
pub fn render_diagram(set: &StreamSet, diagram: &TimingDiagram) -> String {
    let mut out = String::new();
    let horizon = diagram.horizon();

    // Ruler.
    let label_width = 6;
    let _ = write!(out, "{:label_width$}", "");
    for t in 1..=horizon {
        if t % 10 == 0 {
            let s = t.to_string();
            // Right-align the tick label at column t.
            let pad = s.len().saturating_sub(1);
            for _ in 0..pad {
                out.pop();
            }
            let _ = write!(out, "{s}");
        } else {
            out.push(' ');
        }
    }
    out.push('\n');

    for (r, row) in diagram.rows().iter().enumerate() {
        let _ = write!(out, "{:<label_width$}", format!("{}", row.stream));
        for t in 1..=horizon {
            out.push(slot_char(diagram.slot(r, t)));
        }
        out.push('\n');
    }

    // Implicit target row.
    let _ = write!(out, "{:<label_width$}", format!("{}*", diagram.target()));
    for t in 1..=horizon {
        out.push(if diagram.free_for_target(t) { '.' } else { 'x' });
    }
    out.push('\n');
    let _ = set;
    out
}

/// Renders a complete `Cal_U` analysis: HP set, initial diagram, removed
/// instances, final diagram, and the bound.
pub fn render_analysis(set: &StreamSet, analysis: &CalUAnalysis) -> String {
    let mut out = String::new();
    let target = set.get(analysis.target);
    let _ = writeln!(
        out,
        "== Cal_U for {} (P={}, T={}, C={}, D={}, L={}) over horizon {} ==",
        analysis.target,
        target.priority(),
        target.period(),
        target.max_length(),
        target.deadline(),
        target.latency,
        analysis.horizon,
    );
    let _ = writeln!(out, "HP set:");
    if analysis.hp.is_empty() {
        let _ = writeln!(out, "  (empty — nothing can block this stream)");
    }
    for e in analysis.hp.elements() {
        if e.is_direct() {
            let _ = writeln!(out, "  {} DIRECT", e.stream);
        } else {
            let ins: Vec<String> = e.intermediates.iter().map(|s| s.to_string()).collect();
            let _ = writeln!(out, "  {} INDIRECT via {{{}}}", e.stream, ins.join(", "));
        }
    }
    if !analysis.hp.is_empty() {
        let _ = writeln!(out, "\nInitial timing diagram (all elements direct):");
        out.push_str(&render_diagram(set, &analysis.initial));
        if !analysis.removed.is_empty() {
            let entries: Vec<String> = analysis
                .removed
                .entries()
                .iter()
                .map(|(s, k)| format!("{s}#{}", k + 1))
                .collect();
            let _ = writeln!(out, "\nRemoved instances: {}", entries.join(", "));
            let _ = writeln!(out, "\nFinal timing diagram:");
            out.push_str(&render_diagram(set, &analysis.finalized));
        }
    }
    let _ = writeln!(out, "\nU({}) = {}", analysis.target, analysis.bound);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calu::cal_u_detailed;
    use crate::stream::{StreamId, StreamSet, StreamSpec};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn small_set() -> StreamSet {
        let m = Mesh::mesh2d(10, 2);
        let mk = |x0: u32, x1: u32, p: u32, t: u64, c: u64| {
            StreamSpec::new(
                m.node_at(&[x0, 0]).unwrap(),
                m.node_at(&[x1, 0]).unwrap(),
                p,
                t,
                c,
                40,
            )
        };
        StreamSet::resolve(&m, &XyRouting, &[mk(0, 5, 2, 20, 3), mk(1, 6, 1, 100, 4)]).unwrap()
    }

    #[test]
    fn slot_chars_distinct() {
        let chars = [
            slot_char(Slot::Free),
            slot_char(Slot::Busy),
            slot_char(Slot::Waiting),
            slot_char(Slot::Allocated),
        ];
        let mut dedup = chars.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn render_contains_rows_and_bound() {
        let set = small_set();
        let analysis = cal_u_detailed(&set, StreamId(1), 40);
        let text = render_analysis(&set, &analysis);
        assert!(text.contains("M0 DIRECT"));
        assert!(text.contains("U(M1) = 11"));
        assert!(text.contains("Initial timing diagram"));
        // Diagram body: allocations of M0 at slots 1-3.
        assert!(text.contains("###"));
    }

    #[test]
    fn render_diagram_row_lengths_match_horizon() {
        let set = small_set();
        let analysis = cal_u_detailed(&set, StreamId(1), 40);
        let text = render_diagram(&set, &analysis.initial);
        for line in text.lines().skip(1) {
            assert_eq!(line.chars().count(), 6 + 40, "line: {line:?}");
        }
    }

    #[test]
    fn empty_hp_renders_note() {
        let set = small_set();
        let analysis = cal_u_detailed(&set, StreamId(0), 40);
        let text = render_analysis(&set, &analysis);
        assert!(text.contains("empty"));
    }
}
