//! `Cal_U`: the transmission delay upper bound of one message stream
//! (paper §4.3).

use crate::diagram::{AnalysisScratch, RemovedInstances, TimingDiagram};
use crate::hpset::{generate_hp, HpSet};
use crate::modify::modify_diagram;
use crate::stream::{StreamId, StreamSet};
use std::fmt;

/// Result of a delay-upper-bound computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DelayBound {
    /// Every message of the stream completes within this many flit
    /// times of its generation, under worst-case interference.
    Bounded(u64),
    /// The required free slots did not accumulate within the analysis
    /// horizon — the paper's `Cal_U` returns `-1` and the stream set is
    /// infeasible at this stream's deadline.
    Exceeded,
}

impl DelayBound {
    /// The bound value, if one was found.
    pub fn value(self) -> Option<u64> {
        match self {
            DelayBound::Bounded(u) => Some(u),
            DelayBound::Exceeded => None,
        }
    }

    /// True when a finite bound was found.
    pub fn is_bounded(self) -> bool {
        matches!(self, DelayBound::Bounded(_))
    }

    /// True when the bound meets the given deadline.
    pub fn meets(self, deadline: u64) -> bool {
        match self {
            DelayBound::Bounded(u) => u <= deadline,
            DelayBound::Exceeded => false,
        }
    }
}

impl fmt::Display for DelayBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayBound::Bounded(u) => write!(f, "{u}"),
            DelayBound::Exceeded => write!(f, "unbounded within horizon"),
        }
    }
}

/// The full audit trail of one `Cal_U` run, for reporting and for the
/// walkthrough example that re-draws the paper's Figures 7-9.
#[derive(Clone, Debug)]
pub struct CalUAnalysis {
    /// The analyzed stream.
    pub target: StreamId,
    /// The analysis horizon (the paper uses the stream's deadline).
    pub horizon: u64,
    /// The target's HP set.
    pub hp: HpSet,
    /// The initial all-direct timing diagram (paper Fig. 7).
    pub initial: TimingDiagram,
    /// The diagram after `Modify_Diagram` (paper Fig. 9); identical to
    /// `initial` when the HP set has no indirect elements.
    pub finalized: TimingDiagram,
    /// Instances deleted by `Modify_Diagram`.
    pub removed: RemovedInstances,
    /// The delay upper bound `U`.
    pub bound: DelayBound,
}

/// Computes the delay upper bound `U` of `target` over slots
/// `1..=horizon`, keeping the intermediate artifacts.
///
/// Steps, following the paper: build the HP set, generate the initial
/// timing diagram treating every element as direct, run
/// `Modify_Diagram` if any element is indirect, then accumulate free
/// slots in the (implicit) target row until the target's network
/// latency `L` is reached.
pub fn cal_u_detailed(set: &StreamSet, target: StreamId, horizon: u64) -> CalUAnalysis {
    let hp = generate_hp(set, target);
    cal_u_with_hp(set, hp, horizon)
}

/// [`cal_u_detailed`] with a pre-computed HP set (the outer
/// `Determine-Feasibility` loop builds all HP sets once).
pub fn cal_u_with_hp(set: &StreamSet, hp: HpSet, horizon: u64) -> CalUAnalysis {
    let target = hp.target;
    let initial = TimingDiagram::generate(set, &hp, horizon, &RemovedInstances::none());
    let (finalized, removed) = if hp.has_indirect() {
        modify_diagram(set, &hp, horizon)
    } else {
        (initial.clone(), RemovedInstances::none())
    };
    let needed = set.get(target).latency;
    let bound = match finalized.accumulate_free(needed) {
        Some(u) => DelayBound::Bounded(u),
        None => DelayBound::Exceeded,
    };
    CalUAnalysis {
        target,
        horizon,
        hp,
        initial,
        finalized,
        removed,
        bound,
    }
}

/// Computes just the delay upper bound of `target` over `1..=horizon`.
///
/// # Examples
///
/// ```
/// use rtwc_core::{cal_u, DelayBound, StreamId, StreamSet, StreamSpec};
/// use wormnet_topology::{Mesh, Topology, XyRouting};
///
/// let mesh = Mesh::mesh2d(10, 2);
/// let node = |x| mesh.node_at(&[x, 0]).unwrap();
/// let set = StreamSet::resolve(
///     &mesh,
///     &XyRouting,
///     &[
///         // A high-priority stream occupying slots 1-3 of every 20...
///         StreamSpec::new(node(0), node(5), 2, 20, 3, 20),
///         // ...delays this one (L = 5 + 4 - 1 = 8) until slot 11.
///         StreamSpec::new(node(1), node(6), 1, 100, 4, 100),
///     ],
/// )
/// .unwrap();
/// assert_eq!(cal_u(&set, StreamId(1), 100), DelayBound::Bounded(11));
/// ```
pub fn cal_u(set: &StreamSet, target: StreamId, horizon: u64) -> DelayBound {
    let hp = generate_hp(set, target);
    AnalysisScratch::new().delay_bound(set, &hp, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamSet, StreamSpec};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn two_streams() -> StreamSet {
        let m = Mesh::mesh2d(10, 2);
        let mk = |x0: u32, x1: u32, p: u32, t: u64, c: u64| {
            StreamSpec::new(
                m.node_at(&[x0, 0]).unwrap(),
                m.node_at(&[x1, 0]).unwrap(),
                p,
                t,
                c,
                100,
            )
        };
        StreamSet::resolve(&m, &XyRouting, &[mk(0, 5, 2, 20, 3), mk(1, 6, 1, 100, 4)]).unwrap()
    }

    #[test]
    fn unblocked_stream_bound_is_latency() {
        let set = two_streams();
        // Stream 0 has top priority: nothing blocks it.
        let s = set.get(StreamId(0));
        assert_eq!(
            cal_u(&set, StreamId(0), 100),
            DelayBound::Bounded(s.latency)
        );
    }

    #[test]
    fn blocked_stream_pays_interference() {
        let set = two_streams();
        // Stream 1: L = 5 hops + 4 - 1 = 8. Stream 0 takes slots 1-3 of
        // every 20. Free slots 4..: 8 accumulated at slot 11.
        assert_eq!(cal_u(&set, StreamId(1), 100), DelayBound::Bounded(11));
    }

    #[test]
    fn horizon_exhaustion_is_exceeded() {
        let set = two_streams();
        assert_eq!(cal_u(&set, StreamId(1), 10), DelayBound::Exceeded);
        assert!(!DelayBound::Exceeded.meets(10));
        assert_eq!(DelayBound::Exceeded.value(), None);
    }

    #[test]
    fn bound_meets_deadline_api() {
        let b = DelayBound::Bounded(33);
        assert!(b.meets(50));
        assert!(b.meets(33));
        assert!(!b.meets(32));
        assert_eq!(b.value(), Some(33));
        assert_eq!(b.to_string(), "33");
    }

    #[test]
    fn detailed_keeps_artifacts() {
        let set = two_streams();
        let a = cal_u_detailed(&set, StreamId(1), 100);
        assert_eq!(a.target, StreamId(1));
        assert_eq!(a.hp.len(), 1);
        assert!(a.removed.is_empty());
        assert_eq!(a.bound, DelayBound::Bounded(11));
        assert_eq!(a.initial.horizon(), 100);
    }

    #[test]
    fn bound_monotone_in_horizon() {
        let set = two_streams();
        let u100 = cal_u(&set, StreamId(1), 100);
        let u50 = cal_u(&set, StreamId(1), 50);
        assert_eq!(u100, u50, "a found bound does not depend on horizon");
    }

    #[test]
    fn scratch_fast_path_matches_detailed() {
        // `cal_u` now runs through the bound-only arena; the detailed
        // path still builds full diagrams. One scratch reused across
        // every stream and several horizons must agree exactly.
        let set = two_streams();
        let mut scratch = AnalysisScratch::new();
        for id in set.ids() {
            for horizon in [10u64, 50, 100] {
                let hp = generate_hp(&set, id);
                let fast = scratch.delay_bound(&set, &hp, horizon);
                let slow = cal_u_detailed(&set, id, horizon).bound;
                assert_eq!(fast, slow, "stream {id:?} horizon {horizon}");
                assert_eq!(fast, cal_u(&set, id, horizon));
            }
        }
    }
}
