//! `Modify_Diagram`: discounting indirect blocking that cannot actually
//! propagate (paper §4.3).
//!
//! An INDIRECT element of an HP set only delays the target *through* its
//! intermediate streams: if, while one of its instances is present in
//! the network (transmitting or preempted), no intermediate stream is
//! present at any of the same slots, the chain is broken and that
//! instance cannot block the target at all. `Modify_Diagram` removes
//! such instances and re-compacts the diagram, which both frees the
//! removed slots and lets lower-priority instances shift earlier (the
//! paper's "update T_d consistently"; its worked example notes "the
//! first instance of M3 is compacted").
//!
//! Elements are processed in the order dictated by the blocking
//! dependency graph — an element only after its intermediates — and the
//! diagram is regenerated after each element so later activity tests see
//! the compacted schedule. This instance-span interpretation of the
//! paper's loosely-specified pseudocode (free slots of an indirect row
//! where "all intermediate rows are FREE or BUSY", lifted from slots to
//! whole instances) is validated by reproducing *both* Figure 6
//! (`U = 22`) and the worked example's published bounds
//! `U = (7, 8, 26, 20, 33)` exactly (see `tests/paper_example.rs`).

use crate::bdg::BlockingDependencyGraph;
use crate::diagram::{DiagramKernel, RemovedInstances, TimingDiagram};
use crate::hpset::HpSet;
use crate::stream::StreamSet;

/// How `Modify_Diagram` decides that an indirect instance's blocking
/// chain is broken. The paper's pseudocode is ambiguous; the strategies
/// differ in which slots the intermediate streams are probed over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RemovalStrategy {
    /// Probe the instance's *active span* (window start through the
    /// slot its tail transmits). This is the reading that reproduces
    /// both Figure 6 (`U = 22`) and the worked example (`U_4 = 33`),
    /// and the crate default.
    #[default]
    InstanceSpan,
    /// Probe the instance's whole *period window*. Strictly more
    /// conservative (removes fewer instances): it reproduces the
    /// worked example but yields `U = 24` instead of 22 on Figure 6.
    InstanceWindow,
    /// Never remove anything — the direct-only ablation.
    Disabled,
}

/// Runs `Modify_Diagram` and returns the final diagram together with the
/// set of removed instances, using the default
/// [`RemovalStrategy::InstanceSpan`].
///
/// If the HP set has no indirect elements the initial diagram is
/// returned unchanged (with an empty removal set).
pub fn modify_diagram(
    set: &StreamSet,
    hp: &HpSet,
    horizon: u64,
) -> (TimingDiagram, RemovedInstances) {
    modify_diagram_with(set, hp, horizon, RemovalStrategy::InstanceSpan)
}

/// [`modify_diagram`] with an explicit removal strategy (for the
/// interpretation ablation; see EXPERIMENTS.md).
pub fn modify_diagram_with(
    set: &StreamSet,
    hp: &HpSet,
    horizon: u64,
    strategy: RemovalStrategy,
) -> (TimingDiagram, RemovedInstances) {
    modify_diagram_with_kernel(set, hp, horizon, strategy, DiagramKernel::default())
}

/// [`modify_diagram_with`] with an explicit diagram kernel (the
/// randomized kernel-equivalence suite runs the whole
/// `Modify_Diagram` loop through both kernels and compares).
pub fn modify_diagram_with_kernel(
    set: &StreamSet,
    hp: &HpSet,
    horizon: u64,
    strategy: RemovalStrategy,
    kernel: DiagramKernel,
) -> (TimingDiagram, RemovedInstances) {
    let mut removed = RemovedInstances::none();
    let mut diagram = TimingDiagram::generate_with(set, hp, horizon, &removed, kernel);
    if !hp.has_indirect() || strategy == RemovalStrategy::Disabled {
        return (diagram, removed);
    }

    let bdg = BlockingDependencyGraph::build(set, hp);
    for elem_id in bdg.indirect_processing_order(hp) {
        let elem = hp
            .element(elem_id)
            .expect("processing order yields HP members");
        let row = diagram
            .row_of(elem_id)
            .expect("HP member has a diagram row");

        // Collect this element's removable instances against the
        // *current* (already partially compacted) diagram.
        let mut new_removals = Vec::new();
        for inst in &diagram.rows()[row].instances {
            if inst.removed {
                continue;
            }
            // The instance occupies the network over its active span;
            // the chain is alive iff some intermediate is present in
            // the probed slots.
            let probe_end = match strategy {
                RemovalStrategy::InstanceSpan => inst.active_end(),
                RemovalStrategy::InstanceWindow => inst.window_end,
                RemovalStrategy::Disabled => unreachable!("returned early"),
            };
            let chain_alive = elem.intermediates.iter().any(|&im| {
                diagram
                    .row_of(im)
                    .map(|im_row| diagram.row_active_in(im_row, inst.window_start, probe_end))
                    .unwrap_or(false)
            });
            if !chain_alive {
                new_removals.push(inst.index);
            }
        }

        if !new_removals.is_empty() {
            for k in new_removals {
                removed.insert(elem_id, k);
            }
            // Re-compact: regenerate with the enlarged removal set.
            diagram = TimingDiagram::generate_with(set, hp, horizon, &removed, kernel);
        }
    }
    (diagram, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpset::generate_hp;
    use crate::stream::{StreamId, StreamSet, StreamSpec};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    /// Figures 4-6's abstract scenario with M1 and M2 made *indirect*:
    /// M1's intermediates are {M2}; M2's intermediates are {M3}; M3 is
    /// direct. Geometrically: target T on row 0; M3 overlaps T; M2
    /// overlaps M3 but not T; M1 overlaps M2 but not M3 or T.
    fn figure6() -> StreamSet {
        let m = Mesh::mesh2d(20, 2);
        let mk = |x0: u32, x1: u32, p: u32, t: u64, c: u64| {
            StreamSpec::new(
                m.node_at(&[x0, 0]).unwrap(),
                m.node_at(&[x1, 0]).unwrap(),
                p,
                t,
                c,
                200,
            )
        };
        StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                mk(6, 9, 4, 10, 2), // M1: links 6..9
                mk(4, 7, 3, 15, 3), // M2: links 4..7 (shares 6->7 with M1)
                mk(2, 5, 2, 13, 4), // M3: links 2..5 (shares 4->5 with M2)
                mk(0, 3, 1, 50, 6), // T:  links 0..3 (shares 2->3 with M3)
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure6_shape() {
        let set = figure6();
        let hp = generate_hp(&set, StreamId(3));
        assert_eq!(hp.len(), 3);
        let m1 = hp.element(StreamId(0)).unwrap();
        let m2 = hp.element(StreamId(1)).unwrap();
        let m3 = hp.element(StreamId(2)).unwrap();
        assert!(!m1.is_direct());
        assert_eq!(m1.intermediates, vec![StreamId(1)]);
        assert!(!m2.is_direct());
        assert_eq!(m2.intermediates, vec![StreamId(2)]);
        assert!(m3.is_direct());
    }

    #[test]
    fn figure6_reproduces_paper_bound() {
        // The paper's Figure 6: with M1 indirect via M2 and M2 indirect
        // via M3, "the second and the third instance of M1 are removed
        // since M2 ... does not exist in that time period. Thus the
        // delay upper bound of M4 is reduced to time 22."
        let set = figure6();
        let hp = generate_hp(&set, StreamId(3));
        let initial = TimingDiagram::generate(&set, &hp, 50, &RemovedInstances::none());
        assert_eq!(initial.accumulate_free(6), Some(26), "Figure 4 baseline");

        let (final_diag, removed) = modify_diagram(&set, &hp, 50);
        // M1's instances 2 and 3 (0-based 1 and 2) go; instance 5 (which
        // the figure truncates) also sees no M2 activity.
        assert!(removed.contains(StreamId(0), 1));
        assert!(removed.contains(StreamId(0), 2));
        assert_eq!(final_diag.accumulate_free(6), Some(22), "Figure 6 bound");
    }

    #[test]
    fn direct_only_hp_is_untouched() {
        let m = Mesh::mesh2d(10, 2);
        let mk = |x0: u32, x1: u32, p: u32, t: u64, c: u64| {
            StreamSpec::new(
                m.node_at(&[x0, 0]).unwrap(),
                m.node_at(&[x1, 0]).unwrap(),
                p,
                t,
                c,
                100,
            )
        };
        let set =
            StreamSet::resolve(&m, &XyRouting, &[mk(0, 5, 2, 20, 3), mk(1, 6, 1, 100, 4)]).unwrap();
        let hp = generate_hp(&set, StreamId(1));
        let (diag, removed) = modify_diagram(&set, &hp, 100);
        assert!(removed.is_empty());
        let plain = TimingDiagram::generate(&set, &hp, 100, &RemovedInstances::none());
        assert_eq!(diag.accumulate_free(4), plain.accumulate_free(4));
    }

    #[test]
    fn strategies_ordered_by_aggressiveness() {
        // Span probes fewer slots than the window, so it removes at
        // least as many instances; disabled removes none. Bounds order
        // accordingly: span <= window <= disabled.
        let set = figure6();
        let hp = generate_hp(&set, StreamId(3));
        let need = 6u64;
        let u_of = |s: RemovalStrategy| {
            let (d, _) = modify_diagram_with(&set, &hp, 50, s);
            d.accumulate_free(need).unwrap()
        };
        let span = u_of(RemovalStrategy::InstanceSpan);
        let window = u_of(RemovalStrategy::InstanceWindow);
        let disabled = u_of(RemovalStrategy::Disabled);
        assert_eq!(span, 22);
        assert_eq!(window, 24);
        assert_eq!(disabled, 26);
        assert!(span <= window && window <= disabled);
    }

    #[test]
    fn disabled_strategy_removes_nothing() {
        let set = figure6();
        let hp = generate_hp(&set, StreamId(3));
        let (_, removed) = modify_diagram_with(&set, &hp, 50, RemovalStrategy::Disabled);
        assert!(removed.is_empty());
    }

    #[test]
    fn removal_never_worsens_bound() {
        let set = figure6();
        let hp = generate_hp(&set, StreamId(3));
        let initial = TimingDiagram::generate(&set, &hp, 50, &RemovedInstances::none());
        let (final_diag, _) = modify_diagram(&set, &hp, 50);
        for need in 1..=10u64 {
            let a = initial.accumulate_free(need);
            let b = final_diag.accumulate_free(need);
            match (a, b) {
                (Some(ua), Some(ub)) => assert!(ub <= ua, "need={need}"),
                (None, Some(_)) | (None, None) => {}
                (Some(_), None) => panic!("modification lost feasibility (need={need})"),
            }
        }
    }
}
