//! Static channel-load accounting: how much bandwidth each directed
//! channel carries if every stream releases at its minimum period.
//!
//! A stream of length `C` and period `T` puts `C / T` flits per flit
//! time on every channel of its path. Loads above 1.0 are unsustainable
//! no matter the switching discipline; the feasibility test will
//! eventually report `Exceeded` for some stream crossing such a
//! channel. This module exists for capacity diagnostics (and is
//! cross-validated against the simulator's measured utilization in the
//! workspace tests).

use crate::stream::StreamSet;
use wormnet_topology::LinkId;

/// Offered load per directed channel, indexed by `LinkId`.
///
/// `num_links` must come from the topology the set was routed on.
pub fn channel_loads(set: &StreamSet, num_links: usize) -> Vec<f64> {
    let mut load = vec![0.0f64; num_links];
    for s in set.iter() {
        let per_channel = s.max_length() as f64 / s.period() as f64;
        for l in s.path.links() {
            load[l.index()] += per_channel;
        }
    }
    load
}

/// The most loaded channel and its offered load, if any stream exists.
pub fn hottest_channel(set: &StreamSet, num_links: usize) -> Option<(LinkId, f64)> {
    channel_loads(set, num_links)
        .into_iter()
        .enumerate()
        .filter(|&(_, l)| l > 0.0)
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(i, l)| (LinkId(i as u32), l))
}

/// Channels whose offered load exceeds capacity (1 flit per flit time).
pub fn oversubscribed_channels(set: &StreamSet, num_links: usize) -> Vec<(LinkId, f64)> {
    channel_loads(set, num_links)
        .into_iter()
        .enumerate()
        .filter(|&(_, l)| l > 1.0)
        .map(|(i, l)| (LinkId(i as u32), l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamId, StreamSpec};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn set(specs: &[(u32, u32, u64, u64)]) -> (Mesh, StreamSet) {
        let m = Mesh::mesh2d(10, 2);
        let specs: Vec<StreamSpec> = specs
            .iter()
            .map(|&(x0, x1, t, c)| {
                StreamSpec::new(
                    m.node_at(&[x0, 0]).unwrap(),
                    m.node_at(&[x1, 0]).unwrap(),
                    1,
                    t,
                    c,
                    t,
                )
            })
            .collect();
        let s = StreamSet::resolve(&m, &XyRouting, &specs).unwrap();
        (m, s)
    }

    #[test]
    fn loads_accumulate_on_shared_channels() {
        let (m, s) = set(&[(0, 4, 10, 2), (2, 6, 20, 4)]);
        let loads = channel_loads(&s, m.num_links());
        // Channel 2->3 carries both: 2/10 + 4/20 = 0.4.
        let shared = m
            .link_between(m.node_at(&[2, 0]).unwrap(), m.node_at(&[3, 0]).unwrap())
            .unwrap();
        assert!((loads[shared.index()] - 0.4).abs() < 1e-12);
        // Channel 0->1 carries only the first: 0.2.
        let solo = m
            .link_between(m.node_at(&[0, 0]).unwrap(), m.node_at(&[1, 0]).unwrap())
            .unwrap();
        assert!((loads[solo.index()] - 0.2).abs() < 1e-12);
        let _ = StreamId(0);
    }

    #[test]
    fn hottest_and_oversubscription() {
        let (m, s) = set(&[(0, 4, 10, 6), (2, 6, 10, 6)]);
        // Shared channels carry 1.2 > 1.0.
        let (hot, load) = hottest_channel(&s, m.num_links()).unwrap();
        assert!((load - 1.2).abs() < 1e-12);
        let over = oversubscribed_channels(&s, m.num_links());
        assert!(!over.is_empty());
        assert!(over.iter().any(|&(l, _)| l == hot));
    }

    #[test]
    fn empty_channels_have_zero_load() {
        let (m, s) = set(&[(0, 2, 10, 2)]);
        let loads = channel_loads(&s, m.num_links());
        let nonzero = loads.iter().filter(|&&l| l > 0.0).count();
        assert_eq!(nonzero, 2, "exactly the two routed channels are loaded");
    }
}
