//! Sharded admission plane: link-disjoint region shards.
//!
//! The paper's blocking structure is local — two streams can only ever
//! interfere, directly or transitively, when their link sets are
//! connected under the *shares-a-channel* relation. The interference
//! index made that explicit ([`InterferenceIndex::link_component`]);
//! this module exploits it for scale. The mesh is partitioned into
//! rectangular **regions**, every directed channel is owned by exactly
//! one region (by its source router's coordinates), and each region
//! gets its own [`AdmissionController`] + interference index — a
//! **shard**. A stream is *replicated into every shard its route
//! touches*, with its **full** path indexed in each, which yields the
//! connectivity invariant everything below rests on:
//!
//! > Any two streams sharing a channel `l` are both members of
//! > `shard(l)` — so the union of per-shard link components, iterated
//! > to a fixpoint, equals the global link-sharing component.
//!
//! Admission therefore never needs global state: the plane collects the
//! candidate's **neighborhood** ([`scan_neighborhood`]) from the shards
//! its links touch (growing the shard set only when a neighbor's path
//! escapes them), plans the admission over a miniature stream set
//! ([`plan_admit`], the same restricted analysis as
//! [`AdmissionController::validate`], which the equivalence suite pins
//! to the serial path bit-for-bit), and commits by writing the
//! pre-computed bounds into the owning shards. A shard-local stream
//! touches one shard and needs zero cross-shard coordination; a
//! boundary-crossing stream validates in every touched shard and then
//! commits to all of them or none (two-phase, with rejections counted
//! as cross-shard aborts).
//!
//! Member bookkeeping is keyed by a monotonically increasing `u64`
//! **key** (the server uses its stable stream handle). Keys make shard
//! membership immune to the dense-id shifts that removals cause inside
//! each controller, and because every shard keeps its members sorted by
//! key, each shard's dense order is an order-preserving subsequence of
//! the global admission order — the property that makes the mini-set
//! analysis, and every id-ordered diagnostic derived from it,
//! bit-identical to a monolithic controller
//! ([`ShardedController`] + the `shard_equivalence` proptest enforce
//! this).
//!
//! [`ShardedController`] composes the pieces single-threadedly for
//! benchmarks and equivalence tests; the server wraps the same
//! primitives in per-shard locks (acquired in canonical shard-id order
//! under the lock-order sentinel's SHARD rank) for concurrent serving.

use crate::admission::{AdmissionController, AdmissionError};
use crate::calu::DelayBound;
use crate::diagram::AnalysisScratch;
use crate::interference::InterferenceIndex;
use crate::stream::{StreamId, StreamSet, StreamSpec};
use std::collections::{BTreeMap, BTreeSet};
use wormnet_topology::{LinkId, NodeId, Path, Topology};

/// Identifies one region shard. Shard ids are dense indices in
/// `0..ShardMap::len()`, ordered row-major over the region grid; the
/// canonical cross-shard lock order is ascending `ShardId`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Precomputed channel → shard assignment over a topology.
///
/// Regions tile the first two mesh dimensions with a `gx x gy` grid as
/// close to the requested shard count (and the mesh's aspect ratio) as
/// the extents allow; a directed channel belongs to the region of its
/// **source** router. The actual shard count is [`ShardMap::len`] —
/// it can fall short of the request on tiny meshes.
#[derive(Clone, Debug)]
pub struct ShardMap {
    grid: (u32, u32),
    link_shard: Vec<u32>,
}

/// Near-square factorization of `requested` fitting inside `w x h`,
/// preferring the divisor pair whose aspect matches the mesh's.
fn grid_for(requested: u32, w: u32, h: u32) -> (u32, u32) {
    let mut best: Option<((u32, u32), i64)> = None;
    for gx in 1..=requested {
        if !requested.is_multiple_of(gx) {
            continue;
        }
        let gy = requested / gx;
        if gx > w || gy > h {
            continue;
        }
        let score = (i64::from(gx) * i64::from(h) - i64::from(gy) * i64::from(w)).abs();
        if best.is_none_or(|(_, s)| score < s) {
            best = Some(((gx, gy), score));
        }
    }
    // No divisor pair fits the extents (e.g. 7 shards on a 4x4 mesh):
    // degrade to a column split capped by the mesh width.
    best.map_or((requested.min(w).max(1), 1), |(g, _)| g)
}

impl ShardMap {
    /// Builds a map with (as close as the mesh extents allow) the
    /// requested number of region shards. `regions(topo, 1)` is the
    /// monolithic control: every channel in one shard.
    pub fn regions(topo: &impl Topology, requested: usize) -> ShardMap {
        let dims = topo.dims();
        let w = dims[0];
        let h = if dims.len() > 1 { dims[1] } else { 1 };
        let (gx, gy) = grid_for(u32::try_from(requested.max(1)).unwrap_or(u32::MAX), w, h);
        let mut link_shard = vec![0u32; topo.num_links()];
        for (id, link) in topo.links().iter() {
            let c = topo.coord(link.from);
            let x = c.get(0);
            let y = if c.dims() > 1 { c.get(1) } else { 0 };
            let rx = (u64::from(x) * u64::from(gx) / u64::from(w)) as u32;
            let ry = (u64::from(y) * u64::from(gy) / u64::from(h)) as u32;
            link_shard[id.index()] = ry * gx + rx;
        }
        ShardMap {
            grid: (gx, gy),
            link_shard,
        }
    }

    /// Auto mode: roughly one region per 16x16 tile of the mesh, so a
    /// 64x64 mesh gets 16 shards and anything 16x16 or smaller stays
    /// monolithic.
    pub fn auto(topo: &impl Topology) -> ShardMap {
        let dims = topo.dims();
        let w = dims[0];
        let h = if dims.len() > 1 { dims[1] } else { 1 };
        Self::regions(topo, (w.div_ceil(16) * h.div_ceil(16)) as usize)
    }

    /// Number of shards (always ≥ 1).
    pub fn len(&self) -> usize {
        (self.grid.0 * self.grid.1) as usize
    }

    /// A map always has at least one shard.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The region grid `(gx, gy)` tiling the first two dimensions.
    pub fn grid(&self) -> (u32, u32) {
        self.grid
    }

    /// The shard owning channel `l`.
    #[inline]
    pub fn shard_of(&self, l: LinkId) -> ShardId {
        ShardId(self.link_shard[l.index()])
    }

    /// The distinct shards owning the given channels, ascending — the
    /// canonical lock-acquisition order.
    pub fn shards_of(&self, links: impl IntoIterator<Item = LinkId>) -> Vec<ShardId> {
        let mut out: Vec<ShardId> = links.into_iter().map(|l| self.shard_of(l)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Per-shard gauges surfaced through STATS and the bench artifacts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardGauges {
    /// Streams resident in this shard (cross-shard members count in
    /// every shard they touch).
    pub streams: u64,
    /// How many of those members cross shard boundaries.
    pub cross: u64,
    /// Resident interference-index memory
    /// ([`InterferenceIndex::memory_bytes`]).
    pub index_bytes: u64,
    /// Matrix slack a compaction could release
    /// ([`InterferenceIndex::reclaimable_bytes`]).
    pub reclaimable_bytes: u64,
}

/// One region shard: an [`AdmissionController`] over the streams whose
/// routes touch the region, keyed by the caller's stable member keys
/// (kept sorted, so shard-dense order ⊂ global admission order).
#[derive(Clone, Debug, Default)]
pub struct RegionShard {
    ctl: AdmissionController,
    /// Member keys, ascending, parallel to the controller's dense ids.
    keys: Vec<u64>,
    /// Whether each member's route crosses shard boundaries.
    cross: Vec<bool>,
}

impl RegionShard {
    /// An empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident members.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no stream touches this region.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Member keys in ascending (= shard-dense) order.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// True when `key` is resident here.
    pub fn contains(&self, key: u64) -> bool {
        self.keys.binary_search(&key).is_ok()
    }

    /// A member's parts and cached bound, if resident.
    pub fn member(&self, key: u64) -> Option<(&StreamSpec, &Path, DelayBound, bool)> {
        let pos = self.keys.binary_search(&key).ok()?;
        let (spec, path) = &self.ctl.parts()[pos];
        Some((
            spec,
            path,
            self.ctl.bound(StreamId(pos as u32)),
            self.cross[pos],
        ))
    }

    /// Inserts a plane-analyzed member. Keys must arrive in increasing
    /// order (the plane allocates them monotonically and serializes
    /// conflicting admissions on the shard lock).
    ///
    /// # Panics
    /// Panics when `key` is not greater than every resident key.
    pub fn insert_member(
        &mut self,
        key: u64,
        spec: StreamSpec,
        path: Path,
        bound: DelayBound,
        cross: bool,
    ) {
        assert!(
            self.keys.last().is_none_or(|&last| last < key),
            "member keys must be inserted in increasing order"
        );
        self.ctl.insert_with_bound(spec, path, bound);
        self.keys.push(key);
        self.cross.push(cross);
    }

    /// Removes a member without recomputing anyone's bound (the plane
    /// recomputes globally and writes back via
    /// [`RegionShard::set_member_bound`]).
    ///
    /// # Panics
    /// Panics when `key` is not resident.
    pub fn remove_member(&mut self, key: u64) {
        let pos = self.keys.binary_search(&key).expect("member is resident");
        self.ctl.detach(StreamId(pos as u32));
        self.keys.remove(pos);
        self.cross.remove(pos);
    }

    /// Overwrites a resident member's cached bound with one the plane
    /// recomputed globally.
    ///
    /// # Panics
    /// Panics when `key` is not resident.
    pub fn set_member_bound(&mut self, key: u64, bound: DelayBound) {
        let pos = self.keys.binary_search(&key).expect("member is resident");
        self.ctl.set_bound(StreamId(pos as u32), bound);
    }

    /// The members transitively link-connected to `seed` *within this
    /// shard's view*: `(key, spec, path)` in ascending key order.
    pub fn component(&self, seed: &[LinkId]) -> Vec<(u64, &StreamSpec, &Path)> {
        self.ctl
            .index()
            .link_component(seed)
            .into_iter()
            .map(|id| {
                let (spec, path) = &self.ctl.parts()[id.index()];
                (self.keys[id.index()], spec, path)
            })
            .collect()
    }

    /// Gauges for STATS / bench artifacts.
    pub fn gauges(&self) -> ShardGauges {
        ShardGauges {
            streams: self.keys.len() as u64,
            cross: self.cross.iter().filter(|&&c| c).count() as u64,
            index_bytes: self.ctl.index().memory_bytes() as u64,
            reclaimable_bytes: self.ctl.index().reclaimable_bytes() as u64,
        }
    }
}

/// One member of a candidate's link-sharing neighborhood, in owned form
/// so callers can release shard borrows before planning/committing.
#[derive(Clone, Debug)]
pub struct NeighborMember {
    /// The member's stable key.
    pub key: u64,
    /// The member's spec.
    pub spec: StreamSpec,
    /// The member's route.
    pub path: Path,
}

/// Result of [`scan_neighborhood`].
#[derive(Clone, Debug)]
pub struct Neighborhood {
    /// The link-sharing closure reached from the seed links, ascending
    /// by key (= global admission order). Complete only when `missing`
    /// is empty.
    pub members: Vec<NeighborMember>,
    /// Shards (beyond those held) that the closure's links touch. The
    /// caller must re-acquire the widened shard set and rescan.
    pub missing: Vec<ShardId>,
}

/// Collects the link-sharing closure of `seed_links` across the held
/// shards, iterating until no held shard contributes a new member.
/// Returns the closure plus any shards the closure escapes into; when
/// `missing` is empty the member list equals the *global* link-sharing
/// component (by the replication invariant: both endpoints of every
/// shared channel are members of that channel's shard).
pub fn scan_neighborhood(
    map: &ShardMap,
    held: &[(ShardId, &RegionShard)],
    seed_links: &[LinkId],
) -> Neighborhood {
    let mut links: BTreeSet<LinkId> = seed_links.iter().copied().collect();
    let mut members: BTreeMap<u64, NeighborMember> = BTreeMap::new();
    let mut changed = true;
    while changed {
        changed = false;
        let frontier: Vec<LinkId> = links.iter().copied().collect();
        for &(_, shard) in held {
            for (key, spec, path) in shard.component(&frontier) {
                if let std::collections::btree_map::Entry::Vacant(e) = members.entry(key) {
                    links.extend(path.links().iter().copied());
                    e.insert(NeighborMember {
                        key,
                        spec: spec.clone(),
                        path: path.clone(),
                    });
                    changed = true;
                }
            }
        }
    }
    let missing = map
        .shards_of(links.iter().copied())
        .into_iter()
        .filter(|s| !held.iter().any(|&(h, _)| h == *s))
        .collect();
    Neighborhood {
        members: members.into_values().collect(),
        missing,
    }
}

/// A rejection from [`plan_admit`], with blockers/victims identified by
/// their stable keys (the server reports them as handles directly; the
/// single-threaded [`ShardedController`] translates them to dense ids
/// for parity with [`AdmissionError`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyedRejection {
    /// The candidate itself cannot meet its deadline.
    CandidateInfeasible {
        /// The candidate's bound within its deadline horizon.
        bound: DelayBound,
        /// The candidate's source node.
        source: NodeId,
        /// The candidate's destination node.
        dest: NodeId,
        /// Keys of the members that directly block the candidate.
        blocked_by: Vec<u64>,
    },
    /// Admitting the candidate would break already-admitted members.
    BreaksExisting {
        /// The candidate's source node.
        source: NodeId,
        /// The candidate's destination node.
        dest: NodeId,
        /// Keys of the members that would miss their deadlines.
        victims: Vec<u64>,
    },
    /// The stream spec is invalid.
    Invalid(String),
}

/// An accepted admission plan: the candidate's bound plus the refreshed
/// bounds of every affected neighborhood member, ready to commit into
/// the owning shards.
#[derive(Clone, Debug)]
pub struct AdmitPlan {
    /// The candidate's accepted delay bound.
    pub candidate_bound: u64,
    /// Refreshed bounds for affected members, by key, in global
    /// admission order.
    pub updates: Vec<(u64, DelayBound)>,
    /// `Cal_U` invocations the planning performed.
    pub recomputed: u64,
}

/// Plans admitting `(spec, path)` against a **complete** neighborhood
/// (`members` must be [`scan_neighborhood`]'s fixpoint with no missing
/// shards, ascending by key).
///
/// This is [`AdmissionController::validate`]'s restricted analysis with
/// keys in place of dense ids: structural guards first, then the
/// downstream recomputation over the mini stream set `members +
/// candidate`. Because the neighborhood equals the global link-sharing
/// component and preserves global admission order, the verdict, every
/// bound, and every diagnostic are bit-identical to what a monolithic
/// [`AdmissionController::admit`] would produce.
pub fn plan_admit(
    members: &[NeighborMember],
    spec: &StreamSpec,
    path: &Path,
) -> Result<AdmitPlan, KeyedRejection> {
    if spec.max_length > spec.period {
        return Err(KeyedRejection::Invalid(format!(
            "length C = {} exceeds period T = {} (the stream oversubscribes its own channel)",
            spec.max_length, spec.period
        )));
    }
    let latency = crate::latency::network_latency(path.hops(), spec.max_length);
    if spec.deadline < latency {
        return Err(KeyedRejection::CandidateInfeasible {
            bound: DelayBound::Bounded(latency),
            source: spec.source,
            dest: spec.dest,
            blocked_by: Vec::new(),
        });
    }

    let mut mini_parts: Vec<(StreamSpec, Path)> = members
        .iter()
        .map(|m| (m.spec.clone(), m.path.clone()))
        .collect();
    mini_parts.push((spec.clone(), path.clone()));
    let mini_set =
        StreamSet::from_parts(mini_parts).map_err(|e| KeyedRejection::Invalid(e.to_string()))?;
    let mini_index = InterferenceIndex::build(&mini_set);
    let new_id = StreamId(members.len() as u32);

    let mut scratch = AnalysisScratch::new();
    let mut victims = Vec::new();
    let mut candidate_bound = DelayBound::Exceeded;
    let mut blocked_by = Vec::new();
    let mut updates = Vec::new();
    let mut accepted = None;
    let mut recomputed = 0u64;
    for id in mini_index.downstream(new_id) {
        let hp = mini_index.hp_set(&mini_set, id);
        if id == new_id {
            blocked_by = hp
                .elements()
                .iter()
                .filter(|e| e.is_direct())
                .map(|e| members[e.stream.index()].key)
                .collect();
        }
        let bound =
            scratch.delay_bound_indexed(&mini_set, &mini_index, &hp, mini_set.get(id).deadline());
        recomputed += 1;
        let meets = bound.meets(mini_set.get(id).deadline());
        if id == new_id {
            if meets {
                accepted = bound.value();
            } else {
                candidate_bound = bound;
            }
        } else {
            if !meets {
                victims.push(members[id.index()].key);
            }
            updates.push((members[id.index()].key, bound));
        }
    }
    if !victims.is_empty() {
        return Err(KeyedRejection::BreaksExisting {
            source: spec.source,
            dest: spec.dest,
            victims,
        });
    }
    let Some(candidate_bound) = accepted else {
        return Err(KeyedRejection::CandidateInfeasible {
            bound: candidate_bound,
            source: spec.source,
            dest: spec.dest,
            blocked_by,
        });
    };
    Ok(AdmitPlan {
        candidate_bound,
        updates,
        recomputed,
    })
}

/// A removal plan: the refreshed bounds of every member the victim
/// could block.
#[derive(Clone, Debug)]
pub struct RemovePlan {
    /// Refreshed bounds for affected members, by key, in global
    /// admission order.
    pub updates: Vec<(u64, DelayBound)>,
    /// `Cal_U` invocations the planning performed.
    pub recomputed: u64,
}

/// Plans removing the member `victim` against its complete neighborhood
/// (seeded from the victim's links). Mirrors
/// [`AdmissionController::remove`]: the affected set is the victim's
/// downstream closure computed *before* removal, and each affected
/// member's bound is recomputed over the post-removal mini set.
pub fn plan_remove(members: &[NeighborMember], victim: u64) -> RemovePlan {
    let vpos = members
        .iter()
        .position(|m| m.key == victim)
        .expect("victim is in its own neighborhood");
    let pre_parts: Vec<(StreamSpec, Path)> = members
        .iter()
        .map(|m| (m.spec.clone(), m.path.clone()))
        .collect();
    let pre_set = StreamSet::from_parts(pre_parts).expect("admitted parts stay resolvable");
    let pre_index = InterferenceIndex::build(&pre_set);
    let vid = StreamId(vpos as u32);
    let affected: Vec<usize> = pre_index
        .downstream(vid)
        .into_iter()
        .filter(|&x| x != vid)
        .map(StreamId::index)
        .collect();
    if affected.is_empty() {
        return RemovePlan {
            updates: Vec::new(),
            recomputed: 0,
        };
    }
    let post_parts: Vec<(StreamSpec, Path)> = members
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != vpos)
        .map(|(_, m)| (m.spec.clone(), m.path.clone()))
        .collect();
    let post_set = StreamSet::from_parts(post_parts).expect("admitted parts stay resolvable");
    let post_index = InterferenceIndex::build(&post_set);
    let mut scratch = AnalysisScratch::new();
    let mut updates = Vec::new();
    let mut recomputed = 0u64;
    for old in affected {
        let new_pos = if old > vpos { old - 1 } else { old };
        let nid = StreamId(new_pos as u32);
        let hp = post_index.hp_set(&post_set, nid);
        let bound =
            scratch.delay_bound_indexed(&post_set, &post_index, &hp, post_set.get(nid).deadline());
        recomputed += 1;
        updates.push((members[old].key, bound));
    }
    RemovePlan {
        updates,
        recomputed,
    }
}

/// Outcome of a successful [`ShardedController::admit_detailed`].
#[derive(Clone, Copy, Debug)]
pub struct ShardedAdmit {
    /// The stream's dense id in global admission order.
    pub id: StreamId,
    /// The accepted delay bound.
    pub bound: u64,
    /// True when the route crossed shard boundaries (two-phase path).
    pub cross: bool,
    /// How many shards the analysis had to visit (≥ the shards the
    /// route touches; grows when the neighborhood escapes them).
    pub shards_visited: usize,
}

/// Single-threaded composition of the sharded admission plane — the
/// reference implementation the server's locked plane mirrors, and what
/// `rtwc bench-shard` drives.
///
/// Presents the same dense-id surface as [`AdmissionController`]
/// (admission-ordered ids, shifting down on removal) so the
/// equivalence suite can diff the two directly.
#[derive(Clone, Debug)]
pub struct ShardedController {
    map: ShardMap,
    shards: Vec<RegionShard>,
    /// Keys of live streams in admission order (ascending — keys are
    /// allocated monotonically). `live[dense id] == key`.
    live: Vec<u64>,
    next_key: u64,
    cross_admits: u64,
    cross_aborts: u64,
    recomputations: u64,
}

impl ShardedController {
    /// An empty plane over the given channel → shard map.
    pub fn new(map: ShardMap) -> Self {
        let shards = (0..map.len()).map(|_| RegionShard::new()).collect();
        ShardedController {
            map,
            shards,
            live: Vec::new(),
            next_key: 0,
            cross_admits: 0,
            cross_aborts: 0,
            recomputations: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of admitted streams.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when nothing is admitted.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The channel → shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The region shards, by shard id.
    pub fn shards(&self) -> &[RegionShard] {
        &self.shards
    }

    /// Cross-shard (two-phase) admissions committed.
    pub fn cross_admits(&self) -> u64 {
        self.cross_admits
    }

    /// Cross-shard admissions rejected by the analysis (rolled back).
    pub fn cross_aborts(&self) -> u64 {
        self.cross_aborts
    }

    /// Total `Cal_U` invocations across all planning.
    pub fn recomputations(&self) -> u64 {
        self.recomputations
    }

    /// Per-shard gauges, by shard id.
    pub fn gauges(&self) -> Vec<ShardGauges> {
        self.shards.iter().map(RegionShard::gauges).collect()
    }

    /// The cached bound of an admitted stream.
    pub fn bound(&self, id: StreamId) -> DelayBound {
        let key = self.live[id.index()];
        self.shards
            .iter()
            .find_map(|s| s.member(key))
            .expect("live key is resident somewhere")
            .2
    }

    /// Every cached bound in global admission order — directly
    /// comparable to [`AdmissionController::bounds`].
    pub fn bounds(&self) -> Vec<DelayBound> {
        self.live
            .iter()
            .map(|&key| {
                self.shards
                    .iter()
                    .find_map(|s| s.member(key))
                    .expect("live key is resident somewhere")
                    .2
            })
            .collect()
    }

    /// Every admitted `(spec, path)` in global admission order —
    /// directly comparable to [`AdmissionController::parts`].
    pub fn parts(&self) -> Vec<(StreamSpec, Path)> {
        self.live
            .iter()
            .map(|&key| {
                let (spec, path, _, _) = self
                    .shards
                    .iter()
                    .find_map(|s| s.member(key))
                    .expect("live key is resident somewhere");
                (spec.clone(), path.clone())
            })
            .collect()
    }

    fn dense_of(&self, key: u64) -> StreamId {
        StreamId(self.live.binary_search(&key).expect("member is live") as u32)
    }

    fn keyed_to_global(&self, e: KeyedRejection) -> AdmissionError {
        match e {
            KeyedRejection::CandidateInfeasible {
                bound,
                source,
                dest,
                blocked_by,
            } => AdmissionError::CandidateInfeasible {
                bound,
                source,
                dest,
                blocked_by: blocked_by.into_iter().map(|k| self.dense_of(k)).collect(),
            },
            KeyedRejection::BreaksExisting {
                source,
                dest,
                victims,
            } => AdmissionError::BreaksExisting {
                source,
                dest,
                victims: victims.into_iter().map(|k| self.dense_of(k)).collect(),
            },
            KeyedRejection::Invalid(msg) => AdmissionError::Invalid(msg),
        }
    }

    /// Scans to the neighborhood fixpoint, widening the visited shard
    /// set as the closure escapes it. Returns the complete neighborhood
    /// and the shards visited.
    fn converged_neighborhood(
        &self,
        seed: &[LinkId],
        start: Vec<ShardId>,
    ) -> (Neighborhood, Vec<ShardId>) {
        let mut touched = start;
        loop {
            let held: Vec<(ShardId, &RegionShard)> = touched
                .iter()
                .map(|&s| (s, &self.shards[s.index()]))
                .collect();
            let nb = scan_neighborhood(&self.map, &held, seed);
            if nb.missing.is_empty() {
                return (nb, touched);
            }
            touched.extend(nb.missing.iter().copied());
            touched.sort_unstable();
            touched.dedup();
        }
    }

    /// Tries to admit `(spec, path)`. Same contract and bit-identical
    /// verdicts/diagnostics as [`AdmissionController::admit`].
    pub fn admit(&mut self, spec: StreamSpec, path: Path) -> Result<StreamId, AdmissionError> {
        self.admit_detailed(spec, path).map(|a| a.id)
    }

    /// [`ShardedController::admit`] plus plane telemetry.
    pub fn admit_detailed(
        &mut self,
        spec: StreamSpec,
        path: Path,
    ) -> Result<ShardedAdmit, AdmissionError> {
        let seed = path.sorted_links().to_vec();
        let insert_shards = self.map.shards_of(seed.iter().copied());
        let cross = insert_shards.len() > 1;
        let (nb, visited) = self.converged_neighborhood(&seed, insert_shards.clone());
        match plan_admit(&nb.members, &spec, &path) {
            Err(e) => {
                if cross {
                    self.cross_aborts += 1;
                }
                Err(self.keyed_to_global(e))
            }
            Ok(plan) => {
                self.recomputations += plan.recomputed;
                let key = self.next_key;
                self.next_key += 1;
                for &sid in &insert_shards {
                    self.shards[sid.index()].insert_member(
                        key,
                        spec.clone(),
                        path.clone(),
                        DelayBound::Bounded(plan.candidate_bound),
                        cross,
                    );
                }
                for (k, b) in &plan.updates {
                    let m = nb
                        .members
                        .iter()
                        .find(|m| m.key == *k)
                        .expect("update targets a neighborhood member");
                    for sid in self.map.shards_of(m.path.links().iter().copied()) {
                        self.shards[sid.index()].set_member_bound(*k, *b);
                    }
                }
                self.live.push(key);
                if cross {
                    self.cross_admits += 1;
                }
                Ok(ShardedAdmit {
                    id: StreamId((self.live.len() - 1) as u32),
                    bound: plan.candidate_bound,
                    cross,
                    shards_visited: visited.len(),
                })
            }
        }
    }

    /// Removes an admitted stream; ids above shift down by one, exactly
    /// as in [`AdmissionController::remove`].
    pub fn remove(&mut self, id: StreamId) {
        assert!(id.index() < self.live.len(), "unknown stream {id}");
        let key = self.live[id.index()];
        let path = self
            .shards
            .iter()
            .find_map(|s| s.member(key))
            .expect("live key is resident somewhere")
            .1
            .clone();
        let seed = path.sorted_links().to_vec();
        let owners = self.map.shards_of(seed.iter().copied());
        let (nb, _) = self.converged_neighborhood(&seed, owners.clone());
        let plan = plan_remove(&nb.members, key);
        self.recomputations += plan.recomputed;
        for &sid in &owners {
            self.shards[sid.index()].remove_member(key);
        }
        for (k, b) in &plan.updates {
            let m = nb
                .members
                .iter()
                .find(|m| m.key == *k)
                .expect("update targets a neighborhood member");
            for sid in self.map.shards_of(m.path.links().iter().copied()) {
                self.shards[sid.index()].set_member_bound(*k, *b);
            }
        }
        self.live.remove(id.index());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormnet_topology::{Mesh, Routing, XyRouting};

    fn routed(
        m: &Mesh,
        s: [u32; 2],
        d: [u32; 2],
        p: u32,
        t: u64,
        c: u64,
        dl: u64,
    ) -> (StreamSpec, Path) {
        let src = m.node_at(&s).unwrap();
        let dst = m.node_at(&d).unwrap();
        let path = XyRouting.route(m, src, dst).unwrap();
        (StreamSpec::new(src, dst, p, t, c, dl), path)
    }

    #[test]
    fn map_partitions_every_link_into_requested_regions() {
        let m = Mesh::mesh2d(8, 8);
        let map = ShardMap::regions(&m, 4);
        assert_eq!(map.len(), 4);
        assert_eq!(map.grid(), (2, 2));
        let mut seen = vec![0usize; map.len()];
        for (id, link) in m.links().iter() {
            let s = map.shard_of(id);
            assert!(s.index() < map.len());
            seen[s.index()] += 1;
            // Ownership follows the source router's quadrant.
            let c = m.coord(link.from);
            let expect = (c.get(1) / 4) * 2 + c.get(0) / 4;
            assert_eq!(s.0, expect, "link {id:?} from {:?}", c.as_slice());
        }
        assert!(seen.iter().all(|&n| n > 0), "every region owns channels");
    }

    #[test]
    fn map_degrades_gracefully_on_small_meshes() {
        let m = Mesh::mesh2d(4, 4);
        // 7 has no divisor pair fitting 4x4: falls back to a column split.
        assert_eq!(ShardMap::regions(&m, 7).len(), 4);
        // Auto on a small mesh is monolithic.
        assert_eq!(ShardMap::auto(&m).len(), 1);
        assert_eq!(ShardMap::auto(&Mesh::mesh2d(64, 64)).len(), 16);
        assert_eq!(ShardMap::auto(&Mesh::mesh2d(256, 256)).len(), 256);
    }

    /// The plane must be bit-identical to a monolithic controller on a
    /// deterministic mixed workload: local + cross-shard admits,
    /// rejections of every flavor, and removals (the randomized version
    /// lives in `tests/shard_equivalence.rs`).
    #[test]
    fn sharded_matches_monolithic_on_mixed_workload() {
        let m = Mesh::mesh2d(8, 8);
        for shards in [1usize, 4] {
            let mut mono = AdmissionController::new();
            let mut plane = ShardedController::new(ShardMap::regions(&m, shards));
            let mut admitted: Vec<StreamId> = Vec::new();
            let workload: Vec<(StreamSpec, Path)> = vec![
                routed(&m, [0, 0], [3, 0], 2, 50, 4, 50),   // local, NW
                routed(&m, [4, 4], [7, 4], 2, 50, 4, 50),   // local, SE
                routed(&m, [0, 0], [7, 0], 3, 60, 4, 60),   // crosses NW->NE
                routed(&m, [1, 0], [6, 0], 1, 300, 4, 300), // rides the same row
                routed(&m, [0, 1], [7, 7], 1, 400, 4, 400), // crosses 3 regions
                routed(&m, [2, 0], [5, 0], 1, 100, 8, 12),  // infeasible deadline
                routed(&m, [0, 0], [5, 0], 1, 10, 20, 10),  // oversubscribed
                routed(&m, [3, 4], [3, 7], 2, 80, 4, 80),   // local, SW
            ];
            for (spec, path) in workload {
                let a = mono.admit(spec.clone(), path.clone());
                let b = plane.admit(spec, path);
                assert_eq!(a, b, "verdicts diverged at {shards} shards");
                if let Ok(id) = a {
                    admitted.push(id);
                }
                assert_eq!(mono.bounds(), plane.bounds(), "{shards} shards");
            }
            assert!(admitted.len() >= 5, "workload admits a healthy number");
            // Tight high-priority newcomer breaks an existing stream
            // identically in both planes.
            let (hp, hp_p) = routed(&m, [1, 0], [6, 0], 4, 30, 25, 30);
            let a = mono.admit(hp.clone(), hp_p.clone()).unwrap_err();
            let b = plane.admit(hp, hp_p).unwrap_err();
            assert_eq!(a, b, "BreaksExisting diagnostics diverged");
            assert!(matches!(a, AdmissionError::BreaksExisting { .. }));
            // Removals keep the planes in lockstep (including id shifts).
            while !mono.is_empty() {
                let victim = StreamId((mono.len() / 2) as u32);
                mono.remove(victim);
                plane.remove(victim);
                assert_eq!(mono.bounds(), plane.bounds());
                assert_eq!(mono.parts(), plane.parts());
            }
            assert!(plane.is_empty());
            assert!(plane.shards().iter().all(RegionShard::is_empty));
        }
    }

    #[test]
    fn cross_shard_admits_and_aborts_are_counted() {
        let m = Mesh::mesh2d(8, 8);
        let mut plane = ShardedController::new(ShardMap::regions(&m, 4));
        let (local, local_p) = routed(&m, [0, 0], [3, 0], 2, 50, 4, 50);
        let a = plane.admit_detailed(local, local_p).unwrap();
        assert!(!a.cross);
        assert_eq!(a.shards_visited, 1);
        assert_eq!(plane.cross_admits(), 0);
        let (span, span_p) = routed(&m, [0, 0], [7, 0], 3, 60, 4, 60);
        let b = plane.admit_detailed(span, span_p).unwrap();
        assert!(b.cross);
        assert_eq!(plane.cross_admits(), 1);
        // A spanning stream with an impossible deadline aborts two-phase.
        let (bad, bad_p) = routed(&m, [1, 0], [6, 0], 1, 100, 8, 12);
        plane.admit_detailed(bad, bad_p).unwrap_err();
        assert_eq!(plane.cross_aborts(), 1);
        let g = plane.gauges();
        assert_eq!(g.iter().map(|s| s.cross).max(), Some(1));
        assert!(g[0].index_bytes > 0);
    }

    /// A neighborhood can escape the shards the candidate touches: the
    /// scan must widen to the fixpoint and still match the monolithic
    /// verdict. Chain: candidate in NW shares with a spanner, which
    /// shares with a NE-local stream the candidate never touches.
    #[test]
    fn neighborhood_escapes_candidate_shards() {
        let m = Mesh::mesh2d(8, 8);
        let mut mono = AdmissionController::new();
        let mut plane = ShardedController::new(ShardMap::regions(&m, 4));
        for (spec, path) in [
            routed(&m, [4, 0], [7, 0], 2, 40, 6, 40), // NE-local
            routed(&m, [2, 0], [6, 0], 3, 50, 6, 50), // spans NW->NE
        ] {
            mono.admit(spec.clone(), path.clone()).unwrap();
            plane.admit(spec, path).unwrap();
        }
        // Candidate touches only NW links but its closure includes both.
        let (cand, cand_p) = routed(&m, [0, 0], [3, 0], 1, 500, 4, 500);
        let a = mono.admit(cand.clone(), cand_p.clone());
        let b = plane.admit_detailed(cand, cand_p);
        let b = b.map(|d| {
            assert!(d.shards_visited >= 2, "scan must widen past the seed shard");
            d.id
        });
        assert_eq!(a, b);
        assert_eq!(mono.bounds(), plane.bounds());
    }
}
