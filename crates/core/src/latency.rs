//! Network latency: delivery time of a message on an idle network.
//!
//! In wormhole switching the header flit takes one flit time per hop and
//! the remaining `C - 1` flits follow in pipeline, so a `C`-flit message
//! over `h` channels completes at `h + C - 1` flit times after injection.
//! Every `L_i` in the paper's worked example is consistent with this
//! formula (e.g. `M_0`: 4 hops, `C = 4`, `L = 7`), which is how we pinned
//! down the convention.

/// Network latency `L = hops + C - 1` of a `c`-flit message over `hops`
/// directed channels, in flit times.
///
/// # Panics
/// Panics if `c == 0` or `hops == 0` (a message must contain at least one
/// flit and cross at least one channel).
#[inline]
pub fn network_latency(hops: u32, c: u64) -> u64 {
    assert!(c > 0, "message length must be positive");
    assert!(hops > 0, "message must traverse at least one channel");
    hops as u64 + c - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_latencies() {
        // (hops, C, L) for the worked example's five streams.
        for (hops, c, l) in [(4, 4, 7), (7, 2, 8), (9, 4, 12), (8, 9, 16), (5, 6, 10)] {
            assert_eq!(network_latency(hops, c), l);
        }
    }

    #[test]
    fn single_flit_single_hop() {
        assert_eq!(network_latency(1, 1), 1);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_panics() {
        network_latency(3, 0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_hops_panics() {
        network_latency(0, 5);
    }
}
