//! HP sets: which higher-priority streams can block a given stream,
//! directly or through blocking chains (paper §4.1, `Generate_HP`).

use crate::interference::InterferenceIndex;
use crate::stream::{StreamId, StreamSet};
use std::collections::VecDeque;

/// How an HP-set element can block the target stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockingMode {
    /// The element's path shares a directed channel with the target's.
    Direct,
    /// The paths are disjoint, but blocking propagates through one or
    /// more intervening streams (a *blocking chain*).
    Indirect,
}

/// One element of an HP set: the paper's `(M_id, Mode, IN)` record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HpElement {
    /// The blocking stream.
    pub stream: StreamId,
    /// Direct or indirect blocking. Direct dominates: a stream that both
    /// overlaps the target and reaches it through chains is `Direct`.
    pub mode: BlockingMode,
    /// The `IN` field: for an indirect element, the intervening streams
    /// one chain-step closer to the target (its *intermediate message
    /// streams*); empty for direct elements. Sorted by id.
    pub intermediates: Vec<StreamId>,
}

impl HpElement {
    /// True for direct elements.
    pub fn is_direct(&self) -> bool {
        self.mode == BlockingMode::Direct
    }
}

/// The HP set of one target stream: every higher-or-equal-priority
/// stream whose transmission can delay the target.
///
/// Unlike the paper's presentation, the target itself is *not* a member
/// (the paper includes it and immediately removes it at the top of
/// `Cal_U`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HpSet {
    /// The stream this set was computed for.
    pub target: StreamId,
    /// Elements sorted by decreasing priority, ties broken by id — the
    /// row order of the timing diagram.
    elements: Vec<HpElement>,
}

impl HpSet {
    /// Builds an HP set directly from pre-computed elements.
    ///
    /// [`generate_hp`] is the canonical constructor; this one exists for
    /// alternative analyses and for the verifier crate, whose lint rules
    /// must accept hand-built — possibly deliberately inconsistent —
    /// sets. `elements` are taken verbatim as the timing-diagram row
    /// order; no closure or mode checking is performed here.
    pub fn from_elements(target: StreamId, elements: Vec<HpElement>) -> HpSet {
        HpSet { target, elements }
    }

    /// Elements in timing-diagram row order (decreasing priority).
    pub fn elements(&self) -> &[HpElement] {
        &self.elements
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when nothing can block the target.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The element for `stream`, if present.
    pub fn element(&self, stream: StreamId) -> Option<&HpElement> {
        self.elements.iter().find(|e| e.stream == stream)
    }

    /// True when at least one element blocks only indirectly.
    pub fn has_indirect(&self) -> bool {
        self.elements.iter().any(|e| !e.is_direct())
    }

    /// Row index of `stream` in the timing diagram, if a member.
    pub fn row_of(&self, stream: StreamId) -> Option<usize> {
        self.elements.iter().position(|e| e.stream == stream)
    }
}

/// Builds the HP set of `target`: the transitive closure of the
/// *directly-affects* relation ending at `target`.
///
/// A stream `k` is a member iff there is a chain
/// `k -> x_1 -> ... -> x_m -> target` where every arrow is direct
/// blocking (priority >= and shared directed channel). `k` is `Direct`
/// when the chain can be empty (`k -> target` itself), otherwise
/// `Indirect` with `IN` = the set of successors `x_1` over all chains.
///
/// Runs off a freshly built [`InterferenceIndex`]; callers analyzing
/// several streams of one set should build the index once and call
/// [`InterferenceIndex::hp_set`] directly (as
/// [`crate::feasibility::determine_feasibility`] does).
pub fn generate_hp(set: &StreamSet, target: StreamId) -> HpSet {
    InterferenceIndex::build(set).hp_set(set, target)
}

/// Builds HP sets for every stream, indexed by stream id — the paper's
/// outer `Generate_HP` loop over `GList`, sharing one
/// [`InterferenceIndex`] across all targets.
pub fn generate_hp_sets(set: &StreamSet) -> Vec<HpSet> {
    InterferenceIndex::build(set).hp_sets(set)
}

/// The original per-pair `Generate_HP`: an O(n² · L) scan per target
/// that re-tests channel overlap for every stream pair. Kept as the
/// **oracle** the indexed implementation is verified against (the
/// randomized equivalence suite requires [`generate_hp`] to be
/// bit-identical to this, including row order), and as the reference
/// costing for the `bench-hpset` from-scratch column.
pub fn generate_hp_oracle(set: &StreamSet, target: StreamId) -> HpSet {
    // Backward BFS from the target over directly-affects edges.
    let mut member = vec![false; set.len()];
    let mut queue = VecDeque::new();
    // Seed: direct blockers of the target.
    for s in set.iter() {
        if s.directly_affects(set.get(target)) {
            member[s.id.index()] = true;
            queue.push_back(s.id);
        }
    }
    while let Some(x) = queue.pop_front() {
        for s in set.iter() {
            if s.id != target && !member[s.id.index()] && s.directly_affects(set.get(x)) {
                member[s.id.index()] = true;
                queue.push_back(s.id);
            }
        }
    }

    let mut elements = Vec::new();
    for k in set.ids() {
        if !member[k.index()] {
            continue;
        }
        let direct = set.get(k).directly_affects(set.get(target));
        let (mode, intermediates) = if direct {
            (BlockingMode::Direct, Vec::new())
        } else {
            let mut inter: Vec<StreamId> = set
                .ids()
                .filter(|&x| member[x.index()] && set.get(k).directly_affects(set.get(x)))
                .collect();
            inter.sort_unstable();
            (BlockingMode::Indirect, inter)
        };
        elements.push(HpElement {
            stream: k,
            mode,
            intermediates,
        });
    }
    // Row order: decreasing priority, ties by id.
    elements.sort_by(|a, b| {
        set.get(b.stream)
            .priority()
            .cmp(&set.get(a.stream).priority())
            .then(a.stream.cmp(&b.stream))
    });
    HpSet { target, elements }
}

/// [`generate_hp_oracle`] over every stream — the from-scratch oracle
/// for whole-set HP construction.
pub fn generate_hp_sets_oracle(set: &StreamSet) -> Vec<HpSet> {
    set.ids().map(|id| generate_hp_oracle(set, id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamSet, StreamSpec};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn build(specs: &[([u32; 2], [u32; 2], u32)]) -> StreamSet {
        let m = Mesh::mesh2d(10, 10);
        let specs: Vec<StreamSpec> = specs
            .iter()
            .map(|&(s, d, p)| {
                StreamSpec::new(
                    m.node_at(&s).unwrap(),
                    m.node_at(&d).unwrap(),
                    p,
                    100,
                    4,
                    100,
                )
            })
            .collect();
        StreamSet::resolve(&m, &XyRouting, &specs).unwrap()
    }

    /// The paper's Figure 3 scenario, rebuilt geometrically: D (highest
    /// priority) overlaps B and C; B and C share a priority and both
    /// overlap A (lowest priority); D and A never meet.
    fn figure3() -> StreamSet {
        // A: row 0 eastward, long. B: column 2 southward into row 0.
        // C: column 5 southward into row 0. D: row 3 eastward crossing
        // the columns of B and C. Directions arranged so channels are
        // genuinely shared.
        build(&[
            ([0, 0], [8, 0], 1), // A (priority 1)
            ([2, 3], [4, 0], 2), // B (priority 2): x to 4 at row 3? no: X-Y goes x first
            ([5, 3], [6, 0], 2), // C
            ([1, 3], [9, 3], 3), // D (priority 3): row 3 eastward
        ])
    }

    #[test]
    fn figure3_hp_sets() {
        // Validate geometry first.
        let set = figure3();
        let (a, b, c, d) = (
            set.get(StreamId(0)),
            set.get(StreamId(1)),
            set.get(StreamId(2)),
            set.get(StreamId(3)),
        );
        // B: (2,3) -> (4,3) -> (4,0): crosses D's row-3 channels
        // (2,3)->(3,3)->(4,3), then descends column 4 into row 0? No —
        // ends at (4,0); shares no row-0 channel with A. Adjust: B ends
        // at (4,0) and A runs (0,0)->(8,0) so A uses (4,0)->(5,0); B
        // only *ends* at (4,0). They share no channel. The assertions
        // below pin the actual relation; the scenario still exhibits
        // direct (D-B, D-C) and the A relation is established through
        // column descent? Check:
        assert!(d.directly_affects(b), "D blocks B directly");
        assert!(d.directly_affects(c), "D blocks C directly");
        assert!(!d.directly_affects(a), "D and A are disjoint");
        let _ = a;
    }

    #[test]
    fn figure3_like_chain() {
        // A cleaner Figure-3 replica on one row: D covers the middle,
        // B and C (equal priority) overlap D's span and A's span,
        // A is at the bottom priority.
        let set = build(&[
            ([0, 0], [4, 0], 1), // A: channels 0->1->2->3->4 on row 0
            ([2, 0], [6, 0], 2), // B: shares 2->3->4 with A
            ([3, 0], [7, 0], 2), // C: shares 3->4 with A, overlaps B
            ([5, 0], [9, 0], 3), // D: shares 5->6 with B and C, not A
        ]);
        let hp_a = generate_hp(&set, StreamId(0));
        let hp_b = generate_hp(&set, StreamId(1));
        let hp_c = generate_hp(&set, StreamId(2));
        let hp_d = generate_hp(&set, StreamId(3));

        // D, the highest priority, is blocked by nothing.
        assert!(hp_d.is_empty());

        // B and C block each other (equal priority) and are blocked by D.
        for (hp, peer) in [(&hp_b, StreamId(2)), (&hp_c, StreamId(1))] {
            assert_eq!(hp.len(), 2);
            assert_eq!(hp.element(peer).unwrap().mode, BlockingMode::Direct);
            assert_eq!(hp.element(StreamId(3)).unwrap().mode, BlockingMode::Direct);
        }

        // A is blocked directly by B and C, indirectly by D through
        // both of them.
        assert_eq!(hp_a.len(), 3);
        assert_eq!(
            hp_a.element(StreamId(1)).unwrap().mode,
            BlockingMode::Direct
        );
        assert_eq!(
            hp_a.element(StreamId(2)).unwrap().mode,
            BlockingMode::Direct
        );
        let d_elem = hp_a.element(StreamId(3)).unwrap();
        assert_eq!(d_elem.mode, BlockingMode::Indirect);
        assert_eq!(d_elem.intermediates, vec![StreamId(1), StreamId(2)]);
        assert!(hp_a.has_indirect());
    }

    #[test]
    fn direct_dominates_indirect() {
        // X blocks T directly AND through Y; it must be marked Direct.
        let set = build(&[
            ([0, 0], [6, 0], 1), // T
            ([2, 0], [8, 0], 3), // X: overlaps T and Y
            ([4, 0], [9, 0], 2), // Y: overlaps T
        ]);
        let hp = generate_hp(&set, StreamId(0));
        assert_eq!(hp.element(StreamId(1)).unwrap().mode, BlockingMode::Direct);
        assert!(hp.element(StreamId(1)).unwrap().intermediates.is_empty());
    }

    #[test]
    fn lower_priority_never_appears() {
        let set = build(&[
            ([0, 0], [6, 0], 5), // T, highest priority
            ([2, 0], [8, 0], 1), // overlaps but lower priority
        ]);
        let hp = generate_hp(&set, StreamId(0));
        assert!(hp.is_empty());
    }

    #[test]
    fn chain_depth_two() {
        // W -> X -> Y -> T: W is indirect with IN = {X}; X indirect with
        // IN = {Y}; Y direct.
        let set = build(&[
            ([0, 0], [2, 0], 1), // T: row 0, channels 0..2
            ([1, 0], [4, 0], 2), // Y: shares 1->2 with T
            ([3, 0], [6, 0], 3), // X: shares 3->4 with Y, not T
            ([5, 0], [8, 0], 4), // W: shares 5->6 with X, not Y or T
        ]);
        let hp = generate_hp(&set, StreamId(0));
        assert_eq!(hp.len(), 3);
        assert_eq!(hp.element(StreamId(1)).unwrap().mode, BlockingMode::Direct);
        let x = hp.element(StreamId(2)).unwrap();
        assert_eq!(x.mode, BlockingMode::Indirect);
        assert_eq!(x.intermediates, vec![StreamId(1)]);
        let w = hp.element(StreamId(3)).unwrap();
        assert_eq!(w.mode, BlockingMode::Indirect);
        assert_eq!(w.intermediates, vec![StreamId(2)]);
    }

    #[test]
    fn elements_sorted_by_decreasing_priority() {
        let set = build(&[
            ([0, 0], [6, 0], 1), // T
            ([1, 0], [7, 0], 2),
            ([2, 0], [8, 0], 4),
            ([3, 0], [9, 0], 3),
        ]);
        let hp = generate_hp(&set, StreamId(0));
        let prios: Vec<u32> = hp
            .elements()
            .iter()
            .map(|e| set.get(e.stream).priority())
            .collect();
        assert_eq!(prios, vec![4, 3, 2]);
        assert_eq!(hp.row_of(StreamId(2)), Some(0));
    }

    #[test]
    fn generate_all_matches_individual() {
        let set = figure3();
        let all = generate_hp_sets(&set);
        for id in set.ids() {
            assert_eq!(all[id.index()], generate_hp(&set, id));
        }
    }

    #[test]
    fn indexed_matches_oracle_bit_for_bit() {
        for set in [figure3(), chain_depth_two_set()] {
            assert_eq!(generate_hp_sets(&set), generate_hp_sets_oracle(&set));
            for id in set.ids() {
                assert_eq!(generate_hp(&set, id), generate_hp_oracle(&set, id), "{id}");
            }
        }
    }

    fn chain_depth_two_set() -> StreamSet {
        build(&[
            ([0, 0], [2, 0], 1),
            ([1, 0], [4, 0], 2),
            ([3, 0], [6, 0], 3),
            ([5, 0], [8, 0], 4),
        ])
    }
}
