//! Timing diagrams: the worst-case schedule of higher-priority traffic
//! from which the delay upper bound is read off (paper §4.2-4.3,
//! `Generate_Init_Diagram`).
//!
//! # The worst-case model
//!
//! The diagram abstracts the whole network, from the analyzed stream's
//! point of view, as **one shared timeline**: while any HP-set member
//! transmits anywhere on (or upstream of) the target's path, the target
//! makes no progress; every column in which no member transmits
//! contributes one flit time of progress, and the target completes once
//! it has accumulated `L = hops + C - 1` such columns. The worst case
//! is constructed, critical-instant style, by releasing an instance of
//! every HP element at the start of each of its period windows and
//! letting strictly-higher rows preempt lower ones — exactly what
//! flit-level preemptive switching does on a single contended channel.
//!
//! This is *pessimistic* in two ways (interference on disjoint channels
//! is serialized even when it could overlap the target's pipeline, and
//! every instance is assumed maximal and maximally aligned) and
//! *optimistic* in none that we could exhibit: across 200 random
//! workloads and an exhaustive small-scale phase search, no simulated
//! latency ever exceeded the bound (EXPERIMENTS.md, "End-to-end
//! soundness" and "Tightness search"). The one modelling precondition
//! is that the router sustains one flit per cycle per channel — with
//! credit-based VC buffers this requires depth >= 2 (see the
//! sensitivity study; at depth 1 the bound is genuinely violated
//! because `L` itself is wrong).
//!
//! Within one row, same-priority instances serialize FIFO; rows are
//! sorted by decreasing priority so a `Busy` mark only ever flows
//! downward. `Waiting` marks record preemption and matter to
//! `Modify_Diagram`: an indirect element's instance whose active span
//! sees no intermediate-stream activity cannot reach the target and is
//! discounted.
//!
//! # Representation
//!
//! Since the bitset-kernel rewrite the diagram is *stored* as packed
//! bit words — one allocation mask per row plus the busy-column union —
//! and the four-valued cell matrix the paper draws is a **lazily
//! materialized view** (built on the first [`TimingDiagram::slot`]
//! call, e.g. by the renderer). All analysis queries
//! (`accumulate_free`, `row_active_in`, `free_for_target`) run on the
//! words directly; see [`occupancy`] for the kernel and the equivalence
//! argument, and [`legacy`] for the retained reference implementation
//! behind [`TimingDiagram::generate_legacy`].

mod bits;
mod legacy;
mod occupancy;

pub use occupancy::AnalysisScratch;

use crate::hpset::HpSet;
use crate::stream::{StreamId, StreamSet};
use std::collections::HashSet;
use std::sync::OnceLock;

/// State of one (row, time-slot) cell, exactly the paper's four values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Usable by lower-priority traffic (and ultimately the target).
    Free,
    /// A higher-priority row transmits here; unusable.
    Busy,
    /// This row's message is preempted here (it wants the slot but a
    /// higher-priority row holds it).
    Waiting,
    /// This row's message transmits here.
    Allocated,
}

/// Selects which `Generate_Init_Diagram` implementation runs — the
/// packed-bitset kernel or the original cell-matrix walk kept as its
/// oracle (used by the kernel-equivalence suite and the
/// `diagram_kernel` benchmark).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DiagramKernel {
    /// Word-parallel kernel over packed bit rows (the default).
    #[default]
    Bitset,
    /// The reference cell-matrix transcription of the paper's
    /// pseudocode.
    Legacy,
}

/// One periodic instance of an HP element inside the diagram horizon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Zero-based instance number `k` (release at `k * T`).
    pub index: usize,
    /// First slot of the period window (1-based, inclusive).
    pub window_start: u64,
    /// Last slot of the period window (inclusive, clipped to horizon).
    pub window_end: u64,
    /// Slots this instance transmits in, ascending.
    pub slots: Vec<u64>,
    /// True when the instance obtained all `C` slots inside its window.
    /// `false` means the window (or horizon) ended first — the network
    /// is overloaded at this priority and the bound is reported
    /// infeasible by the caller.
    pub complete: bool,
    /// True when `Modify_Diagram` removed this instance (its indirect
    /// blocking cannot propagate to the target).
    pub removed: bool,
}

impl Instance {
    /// Last slot at which this instance is present in the network
    /// (transmitting or preempted). The greedy allocation marks every
    /// slot from the window start up to the completion slot as either
    /// `Allocated` or `Waiting`, so the instance's *active span* is
    /// `[window_start, active_end()]`; an incomplete instance stays
    /// active through its whole window.
    pub fn active_end(&self) -> u64 {
        if self.complete {
            *self.slots.last().expect("complete instance has slots")
        } else {
            self.window_end
        }
    }
}

/// One row of the diagram: an HP element and its instances.
#[derive(Clone, Debug)]
pub struct Row {
    /// The HP element occupying this row.
    pub stream: StreamId,
    /// Instances in window order.
    pub instances: Vec<Instance>,
}

/// Instances deleted by `Modify_Diagram`, keyed by (stream, instance
/// number).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RemovedInstances(HashSet<(StreamId, usize)>);

impl RemovedInstances {
    /// No removals (the initial diagram).
    pub fn none() -> Self {
        RemovedInstances(HashSet::new())
    }

    /// Marks instance `index` of `stream` as removed.
    pub fn insert(&mut self, stream: StreamId, index: usize) {
        self.0.insert((stream, index));
    }

    /// True when instance `index` of `stream` is removed.
    pub fn contains(&self, stream: StreamId, index: usize) -> bool {
        self.0.contains(&(stream, index))
    }

    /// Number of removed instances.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing was removed.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Drops all removals, keeping the allocation (arena reuse).
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// All removed (stream, instance) pairs, sorted.
    pub fn entries(&self) -> Vec<(StreamId, usize)> {
        let mut v: Vec<_> = self.0.iter().copied().collect();
        v.sort();
        v
    }
}

/// The worst-case timing diagram of one target stream's HP set over
/// slots `1..=horizon`.
///
/// Rows are the HP elements in decreasing-priority order; the target's
/// own row is implicit (a slot is usable by the target iff no HP row is
/// `Allocated` in it). Storage is one packed allocation bit row per HP
/// element plus the busy-column union; the cell matrix is a lazy view.
#[derive(Clone, Debug)]
pub struct TimingDiagram {
    target: StreamId,
    horizon: u64,
    /// Words per bit row.
    words: usize,
    rows: Vec<Row>,
    /// Row-major allocation masks, `rows.len() * words` words: bit
    /// `t-1` set iff the row transmits in slot `t`.
    alloc: Vec<u64>,
    /// Per-column busy bits: the OR of all rows' allocation masks.
    column_taken: Vec<u64>,
    /// Lazily materialized `rows.len() * horizon` cell matrix.
    cells: OnceLock<Vec<Slot>>,
}

impl TimingDiagram {
    /// Runs `Generate_Init_Diagram`: greedily schedules every HP
    /// element's periodic instances over `1..=horizon`, honoring
    /// `removed` (pass [`RemovedInstances::none`] for the initial
    /// diagram).
    ///
    /// Every instance of an element with period `T` and length `C`
    /// claims the first `C` free slots in its window
    /// `[kT+1, (k+1)T]`; slots already taken by higher rows are marked
    /// [`Slot::Waiting`] (the element is preempted there) until the
    /// instance completes, and claimed slots mark every lower row
    /// [`Slot::Busy`].
    ///
    /// # Panics
    /// Panics if `horizon == 0`.
    pub fn generate(set: &StreamSet, hp: &HpSet, horizon: u64, removed: &RemovedInstances) -> Self {
        assert!(horizon > 0, "diagram horizon must be positive");
        let occ = occupancy::generate(set, hp, horizon, removed);
        let d = TimingDiagram {
            target: hp.target,
            horizon,
            words: occ.words,
            rows: occ.rows,
            alloc: occ.alloc,
            column_taken: occ.taken,
            cells: OnceLock::new(),
        };
        #[cfg(debug_assertions)]
        if let Err(e) = d.check_invariants(set) {
            panic!("bitset kernel invariant violated: {e}");
        }
        d
    }

    /// [`TimingDiagram::generate`] through the original cell-matrix
    /// kernel. Semantically identical — the randomized equivalence
    /// suite compares the two bit for bit — and kept as the oracle and
    /// the benchmark baseline.
    pub fn generate_legacy(
        set: &StreamSet,
        hp: &HpSet,
        horizon: u64,
        removed: &RemovedInstances,
    ) -> Self {
        let d = legacy::generate(set, hp, horizon, removed);
        #[cfg(debug_assertions)]
        if let Err(e) = d.check_invariants(set) {
            panic!("legacy kernel invariant violated: {e}");
        }
        d
    }

    /// [`TimingDiagram::generate`] with an explicit kernel choice.
    pub fn generate_with(
        set: &StreamSet,
        hp: &HpSet,
        horizon: u64,
        removed: &RemovedInstances,
        kernel: DiagramKernel,
    ) -> Self {
        match kernel {
            DiagramKernel::Bitset => Self::generate(set, hp, horizon, removed),
            DiagramKernel::Legacy => Self::generate_legacy(set, hp, horizon, removed),
        }
    }

    /// Assembles a diagram from a fully-walked cell matrix (the legacy
    /// kernel's output), deriving the bit rows and storing the matrix
    /// as the already-materialized view.
    fn from_cells(
        target: StreamId,
        horizon: u64,
        rows: Vec<Row>,
        cells: Vec<Slot>,
        column_taken_bools: Vec<bool>,
    ) -> Self {
        let words = bits::word_count(horizon);
        let h = horizon as usize;
        let mut alloc = vec![0u64; rows.len() * words];
        for r in 0..rows.len() {
            for t in 1..=horizon {
                if cells[r * h + (t as usize - 1)] == Slot::Allocated {
                    let (wi, m) = bits::slot_bit(t);
                    alloc[r * words + wi] |= m;
                }
            }
        }
        let mut column_taken = vec![0u64; words];
        for (t0, &b) in column_taken_bools.iter().enumerate() {
            if b {
                let (wi, m) = bits::slot_bit(t0 as u64 + 1);
                column_taken[wi] |= m;
            }
        }
        let lock = OnceLock::new();
        lock.set(cells).expect("fresh lock");
        TimingDiagram {
            target,
            horizon,
            words,
            rows,
            alloc,
            column_taken,
            cells: lock,
        }
    }

    /// The analyzed stream.
    pub fn target(&self) -> StreamId {
        self.target
    }

    /// Number of time slots.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The rows in decreasing-priority order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The materialized cell matrix, built on first use.
    fn cells(&self) -> &[Slot] {
        self.cells.get_or_init(|| {
            let h = self.horizon as usize;
            let mut cells = vec![Slot::Free; self.rows.len() * h];
            let mut above = vec![0u64; self.words];
            for (r, row) in self.rows.iter().enumerate() {
                let base = r * h;
                let row_alloc = &self.alloc[r * self.words..(r + 1) * self.words];
                // Busy wherever some higher row transmits...
                for t in 1..=self.horizon {
                    let (wi, m) = bits::slot_bit(t);
                    if above[wi] & m != 0 {
                        cells[base + t as usize - 1] = Slot::Busy;
                    }
                }
                // ...overwritten inside each instance's active span,
                // where the greedy allocator leaves no cell Free or
                // Busy: Allocated on the row's own slots, Waiting on
                // the preempted remainder.
                for inst in &row.instances {
                    if inst.removed {
                        continue;
                    }
                    for t in inst.window_start..=inst.active_end() {
                        let (wi, m) = bits::slot_bit(t);
                        cells[base + t as usize - 1] = if row_alloc[wi] & m != 0 {
                            Slot::Allocated
                        } else {
                            Slot::Waiting
                        };
                    }
                }
                for (a, w) in above.iter_mut().zip(row_alloc) {
                    *a |= *w;
                }
            }
            cells
        })
    }

    /// Cell state of `row` at 1-based slot `t`.
    ///
    /// Materializes the cell-matrix view on first call; the analysis
    /// queries ([`Self::accumulate_free`], [`Self::row_active_in`],
    /// [`Self::transmits_in`]) never need it.
    pub fn slot(&self, row: usize, t: u64) -> Slot {
        assert!(t >= 1 && t <= self.horizon, "slot {t} out of range");
        self.cells()[row * self.horizon as usize + (t as usize - 1)]
    }

    /// True when `row` transmits in slot `t` — an O(1) bit probe,
    /// equivalent to `slot(row, t) == Slot::Allocated` without
    /// materializing the cell view.
    pub fn transmits_in(&self, row: usize, t: u64) -> bool {
        assert!(t >= 1 && t <= self.horizon, "slot {t} out of range");
        let (wi, m) = bits::slot_bit(t);
        self.alloc[row * self.words + wi] & m != 0
    }

    /// Number of slots `row` transmits in within `1..=limit` (clipped
    /// to the horizon) — a per-word popcount over the row's allocation
    /// mask.
    pub fn allocated_through(&self, row: usize, limit: u64) -> u64 {
        let limit = limit.min(self.horizon);
        if limit == 0 {
            return 0;
        }
        let row_alloc = &self.alloc[row * self.words..(row + 1) * self.words];
        let last = ((limit - 1) >> 6) as usize;
        let mut n = 0u64;
        for (wi, &w) in row_alloc.iter().enumerate().take(last + 1) {
            let masked = if wi == last {
                w & bits::mask_through(((limit - 1) & 63) as u32)
            } else {
                w
            };
            n += u64::from(masked.count_ones());
        }
        n
    }

    /// True when slot `t` is usable by the target (no HP row transmits).
    pub fn free_for_target(&self, t: u64) -> bool {
        assert!(t >= 1 && t <= self.horizon, "slot {t} out of range");
        let (wi, m) = bits::slot_bit(t);
        self.column_taken[wi] & m == 0
    }

    /// True when `row`'s message is present (transmitting or preempted)
    /// anywhere in slots `from..=to` — the `Modify_Diagram` activity
    /// test for intermediate streams. Runs on the instances' active
    /// spans (the greedy allocation keeps every span slot `Allocated`
    /// or `Waiting` and every slot outside all spans `Free` or `Busy`),
    /// so no cell walk is needed.
    pub fn row_active_in(&self, row: usize, from: u64, to: u64) -> bool {
        assert!(
            from >= 1 && from <= self.horizon,
            "slot {from} out of range"
        );
        let to = to.min(self.horizon);
        self.rows[row]
            .instances
            .iter()
            .any(|i| !i.removed && i.window_start <= to && i.active_end() >= from)
    }

    /// Slots usable by the target, ascending.
    pub fn free_slots(&self) -> impl Iterator<Item = u64> + '_ {
        (1..=self.horizon).filter(move |&t| self.free_for_target(t))
    }

    /// The time at which the target has accumulated `needed` free slots,
    /// or `None` if the horizon is exhausted first. This is the delay
    /// upper bound when `needed` is the target's network latency.
    /// Word-parallel: one popcount per 64 slots plus a single bit
    /// select in the final word.
    pub fn accumulate_free(&self, needed: u64) -> Option<u64> {
        bits::accumulate_free(&self.column_taken, self.horizon, needed)
    }

    /// True when some non-removed instance failed to complete within its
    /// window — the schedule is saturated at this priority level and
    /// bounds read from the diagram would be unsound.
    pub fn saturated(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.instances.iter().any(|i| !i.removed && !i.complete))
    }

    /// Row index of `stream`, if it is an HP element.
    pub fn row_of(&self, stream: StreamId) -> Option<usize> {
        self.rows.iter().position(|r| r.stream == stream)
    }

    /// Verifies the diagram's structural invariants against the stream
    /// set it was generated from, returning a description of the first
    /// violation found.
    ///
    /// The checked invariants are exactly the ones the packed-bitset
    /// kernel must preserve for `Cal_U` to be sound:
    ///
    /// 1. **alloc ⊆ taken** — every row's allocation mask is a subset
    ///    of the busy-column union;
    /// 2. **exclusivity / popcount conservation** — no slot is
    ///    allocated by two rows, and the union of the row masks equals
    ///    `column_taken` bit for bit (so popcounts are conserved across
    ///    `Modify_Diagram` removals: removed instances contribute
    ///    nothing, surviving ones exactly their slot counts);
    /// 3. **period windows** — instance `k` of a row with period `T`
    ///    spans `[kT+1, min((k+1)T, horizon)]`, windows tile the
    ///    horizon, and every transmitted slot lies inside its window;
    /// 4. **slot accounting** — a complete instance holds exactly `C`
    ///    ascending slots, a removed one holds none, and the per-row
    ///    slot lists agree with the row's allocation mask popcount.
    ///
    /// The same checks run as `debug_assert!`s inside the kernels; this
    /// method is the release-mode entry point used by the `verifier`
    /// crate's self-check mode.
    pub fn check_invariants(&self, set: &StreamSet) -> Result<(), String> {
        let mut union = vec![0u64; self.words];
        for (r, row) in self.rows.iter().enumerate() {
            let row_alloc = &self.alloc[r * self.words..(r + 1) * self.words];
            let mut mask_pop = 0u64;
            for (wi, &w) in row_alloc.iter().enumerate() {
                if w & !self.column_taken[wi] != 0 {
                    return Err(format!(
                        "row {r} ({}): allocation mask escapes the taken accumulator in word {wi}",
                        row.stream
                    ));
                }
                if union[wi] & w != 0 {
                    return Err(format!(
                        "row {r} ({}): allocation overlaps another row's in word {wi}",
                        row.stream
                    ));
                }
                union[wi] |= w;
                mask_pop += u64::from(w.count_ones());
            }

            let stream = set.get(row.stream);
            let (period, length) = (stream.period(), stream.max_length());
            let mut listed = 0u64;
            for (k, inst) in row.instances.iter().enumerate() {
                if inst.index != k {
                    return Err(format!(
                        "row {r} ({}): instance {k} is numbered {}",
                        row.stream, inst.index
                    ));
                }
                let want_start = k as u64 * period + 1;
                let want_end = ((k as u64 + 1) * period).min(self.horizon);
                if inst.window_start != want_start || inst.window_end != want_end {
                    return Err(format!(
                        "row {r} ({}): instance {k} window [{}, {}] violates period {period} \
                         (expected [{want_start}, {want_end}])",
                        row.stream, inst.window_start, inst.window_end
                    ));
                }
                if inst.removed {
                    if !inst.slots.is_empty() {
                        return Err(format!(
                            "row {r} ({}): removed instance {k} still transmits",
                            row.stream
                        ));
                    }
                    continue;
                }
                if inst.complete && inst.slots.len() as u64 != length {
                    return Err(format!(
                        "row {r} ({}): complete instance {k} holds {} slots, C = {length}",
                        row.stream,
                        inst.slots.len()
                    ));
                }
                let mut prev = 0u64;
                for &t in &inst.slots {
                    if t <= prev {
                        return Err(format!(
                            "row {r} ({}): instance {k} slots not strictly ascending",
                            row.stream
                        ));
                    }
                    if t < inst.window_start || t > inst.window_end {
                        return Err(format!(
                            "row {r} ({}): instance {k} transmits at {t} outside its window \
                             [{}, {}]",
                            row.stream, inst.window_start, inst.window_end
                        ));
                    }
                    let (wi, m) = bits::slot_bit(t);
                    if row_alloc[wi] & m == 0 {
                        return Err(format!(
                            "row {r} ({}): instance {k} lists slot {t} absent from the \
                             allocation mask",
                            row.stream
                        ));
                    }
                    prev = t;
                }
                listed += inst.slots.len() as u64;
            }
            if listed != mask_pop {
                return Err(format!(
                    "row {r} ({}): instance slot lists total {listed} but the allocation mask \
                     holds {mask_pop} bits",
                    row.stream
                ));
            }
        }
        for (wi, (&u, &t)) in union.iter().zip(&self.column_taken).enumerate() {
            if u != t {
                return Err(format!(
                    "busy-column union diverges from the rows' masks in word {wi}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpset::generate_hp;
    use crate::stream::{StreamSet, StreamSpec};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    /// Figure 4's abstract streams, realized on one mesh row so that all
    /// HP elements are direct: M1 (T=10, C=2), M2 (T=15, C=3),
    /// M3 (T=13, C=4), target M4.
    fn figure4() -> StreamSet {
        let m = Mesh::mesh2d(20, 2);
        let mk = |x0: u32, x1: u32, p: u32, t: u64, c: u64| {
            StreamSpec::new(
                m.node_at(&[x0, 0]).unwrap(),
                m.node_at(&[x1, 0]).unwrap(),
                p,
                t,
                c,
                200,
            )
        };
        StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                mk(0, 6, 4, 10, 2), // M1
                mk(1, 7, 3, 15, 3), // M2
                mk(2, 8, 2, 13, 4), // M3
                mk(3, 9, 1, 50, 6), // M4 (target)
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure4_initial_diagram() {
        // Reproduces the shape of paper Figure 4: with M1, M2, M3 all
        // direct, the free slots accumulate so that a network latency of
        // 6 is reached at slot 26.
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        assert_eq!(hp.len(), 3);
        assert!(!hp.has_indirect());
        let d = TimingDiagram::generate(&set, &hp, 50, &RemovedInstances::none());

        // M1 (row 0): slots 1-2, 11-12, 21-22, 31-32, 41-42.
        assert_eq!(d.rows()[0].instances[0].slots, vec![1, 2]);
        assert_eq!(d.rows()[0].instances[1].slots, vec![11, 12]);
        // M2 (row 1): first instance blocked at 1-2, takes 3-5.
        assert_eq!(d.rows()[1].instances[0].slots, vec![3, 4, 5]);
        assert_eq!(d.slot(1, 1), Slot::Waiting);
        assert_eq!(d.slot(1, 2), Slot::Waiting);
        // M3 (row 2): blocked 1-5, takes 6-9.
        assert_eq!(d.rows()[2].instances[0].slots, vec![6, 7, 8, 9]);

        // Paper: "if the network latency of M4 is 6, then time 26 is the
        // delay upper bound of M4".
        assert_eq!(d.accumulate_free(6), Some(26));
    }

    #[test]
    fn columns_taken_match_allocations() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let d = TimingDiagram::generate(&set, &hp, 50, &RemovedInstances::none());
        for t in 1..=50u64 {
            let any_alloc = (0..3).any(|r| d.slot(r, t) == Slot::Allocated);
            assert_eq!(!d.free_for_target(t), any_alloc, "slot {t}");
        }
    }

    #[test]
    fn removal_leaves_window_free() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let mut removed = RemovedInstances::none();
        removed.insert(StreamId(0), 1); // drop M1's second instance
        let d = TimingDiagram::generate(&set, &hp, 50, &removed);
        let inst = &d.rows()[0].instances[1];
        assert!(inst.removed);
        assert!(inst.slots.is_empty());
        // M2's second instance may now start at 16 instead of 18... M2's
        // window [16,30] was previously cut by M1 at 21-22; verify M1's
        // slots 11-12 are gone and the column is reusable.
        assert_eq!(d.slot(0, 11), Slot::Free);
        assert!(
            d.free_for_target(11)
                || d.slot(1, 11) == Slot::Allocated
                || d.slot(2, 11) == Slot::Allocated
        );
    }

    #[test]
    fn saturation_detected() {
        // A stream whose window cannot hold its own length after
        // interference: M-high takes 8 of every 10 slots, M-low needs 5
        // of every 10 -> incomplete.
        let m = Mesh::mesh2d(10, 2);
        let mk = |x0: u32, x1: u32, p: u32, t: u64, c: u64| {
            StreamSpec::new(
                m.node_at(&[x0, 0]).unwrap(),
                m.node_at(&[x1, 0]).unwrap(),
                p,
                t,
                c,
                100,
            )
        };
        let set = StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                mk(0, 6, 3, 10, 8),
                mk(1, 7, 2, 10, 5),
                mk(2, 8, 1, 100, 2), // target
            ],
        )
        .unwrap();
        let hp = generate_hp(&set, StreamId(2));
        let d = TimingDiagram::generate(&set, &hp, 100, &RemovedInstances::none());
        assert!(d.saturated());
        assert_eq!(d.accumulate_free(2), None);
    }

    #[test]
    fn window_clipped_to_horizon() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let d = TimingDiagram::generate(&set, &hp, 25, &RemovedInstances::none());
        // M1 period 10: instances [1,10], [11,20], [21,25] (clipped).
        let insts = &d.rows()[0].instances;
        assert_eq!(insts.len(), 3);
        assert_eq!(insts[2].window_start, 21);
        assert_eq!(insts[2].window_end, 25);
    }

    #[test]
    fn accumulate_zero_is_immediate() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let d = TimingDiagram::generate(&set, &hp, 10, &RemovedInstances::none());
        assert_eq!(d.accumulate_free(0), Some(0));
    }

    #[test]
    fn row_active_covers_waiting() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let d = TimingDiagram::generate(&set, &hp, 50, &RemovedInstances::none());
        // M2 waits at 1-2 and transmits 3-5: active through [1,5].
        assert!(d.row_active_in(1, 1, 2));
        assert!(d.row_active_in(1, 3, 5));
        // M2's first instance is done by 5; inactive in [6,10].
        assert!(!d.row_active_in(1, 6, 10));
    }

    #[test]
    fn bitset_matches_legacy_on_figure4() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let fast = TimingDiagram::generate(&set, &hp, 50, &RemovedInstances::none());
        let slow = TimingDiagram::generate_legacy(&set, &hp, 50, &RemovedInstances::none());
        for r in 0..hp.len() {
            assert_eq!(
                fast.rows()[r].instances,
                slow.rows()[r].instances,
                "row {r}"
            );
            for t in 1..=50 {
                assert_eq!(fast.slot(r, t), slow.slot(r, t), "row {r} slot {t}");
                assert_eq!(fast.transmits_in(r, t), slow.transmits_in(r, t));
            }
        }
        for need in 0..=12 {
            assert_eq!(fast.accumulate_free(need), slow.accumulate_free(need));
        }
    }

    #[test]
    fn transmit_queries_agree_with_cells() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let d = TimingDiagram::generate(&set, &hp, 50, &RemovedInstances::none());
        for r in 0..hp.len() {
            let mut count = 0;
            for t in 1..=50 {
                assert_eq!(d.transmits_in(r, t), d.slot(r, t) == Slot::Allocated);
                if d.transmits_in(r, t) {
                    count += 1;
                }
                assert_eq!(d.allocated_through(r, t), count, "row {r} through {t}");
            }
        }
    }

    #[test]
    fn kernel_selector_dispatches() {
        let set = figure4();
        let hp = generate_hp(&set, StreamId(3));
        let none = RemovedInstances::none();
        for kernel in [DiagramKernel::Bitset, DiagramKernel::Legacy] {
            let d = TimingDiagram::generate_with(&set, &hp, 50, &none, kernel);
            assert_eq!(d.accumulate_free(6), Some(26), "{kernel:?}");
        }
    }
}
