//! Bit-word primitives shared by the diagram kernels.
//!
//! Slots are 1-based: slot `t` occupies bit `t - 1`, packed 64 to a
//! `u64` word with bit 0 holding the lowest slot. All helpers take and
//! return 1-based slot numbers so callers never juggle the offset.

/// Number of 64-bit words covering `horizon` slots.
#[inline]
pub(crate) fn word_count(horizon: u64) -> usize {
    horizon.div_ceil(64) as usize
}

/// Word index and in-word mask of 1-based slot `t`.
#[inline]
pub(crate) fn slot_bit(t: u64) -> (usize, u64) {
    let i = t - 1;
    ((i >> 6) as usize, 1u64 << (i & 63))
}

/// Mask of bit 0 through `bit` inclusive.
#[inline]
pub(crate) fn mask_through(bit: u32) -> u64 {
    debug_assert!(bit < 64);
    !0u64 >> (63 - bit)
}

/// Index of the `n`-th (0-based) set bit of `word`. `n` must be below
/// `word.count_ones()`.
#[inline]
pub(crate) fn select_nth_set(mut word: u64, n: u32) -> u32 {
    for _ in 0..n {
        word &= word - 1;
    }
    word.trailing_zeros()
}

/// The in-range mask of word `wi` for the slot range `from..=to`
/// (1-based, `from <= to`); zero when the word lies outside the range.
#[inline]
pub(crate) fn range_mask(wi: usize, from: u64, to: u64) -> u64 {
    let (first, last) = (((from - 1) >> 6) as usize, ((to - 1) >> 6) as usize);
    if wi < first || wi > last {
        return 0;
    }
    let mut mask = !0u64;
    if wi == first {
        mask &= !0u64 << ((from - 1) & 63);
    }
    if wi == last {
        mask &= mask_through(((to - 1) & 63) as u32);
    }
    mask
}

/// The time at which `needed` clear bits of `taken` have accumulated
/// over slots `1..=horizon`, or `None` when the horizon runs out —
/// the word-parallel form of walking free columns one by one.
pub(crate) fn accumulate_free(taken: &[u64], horizon: u64, needed: u64) -> Option<u64> {
    if needed == 0 {
        return Some(0);
    }
    let words = word_count(horizon);
    let mut got = 0u64;
    for (wi, &w) in taken.iter().enumerate().take(words) {
        let mut free = !w;
        if wi == words - 1 {
            free &= mask_through(((horizon - 1) & 63) as u32);
        }
        let cnt = u64::from(free.count_ones());
        if got + cnt >= needed {
            let b = select_nth_set(free, (needed - got - 1) as u32);
            return Some((wi as u64) * 64 + u64::from(b) + 1);
        }
        got += cnt;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_bit_is_one_based() {
        assert_eq!(slot_bit(1), (0, 1));
        assert_eq!(slot_bit(64), (0, 1 << 63));
        assert_eq!(slot_bit(65), (1, 1));
    }

    #[test]
    fn select_walks_set_bits() {
        let w = 0b1011_0100u64;
        assert_eq!(select_nth_set(w, 0), 2);
        assert_eq!(select_nth_set(w, 1), 4);
        assert_eq!(select_nth_set(w, 2), 5);
        assert_eq!(select_nth_set(w, 3), 7);
    }

    #[test]
    fn range_mask_clips_both_ends() {
        // Slots 3..=5 live in word 0, bits 2..=4.
        assert_eq!(range_mask(0, 3, 5), 0b1_1100);
        assert_eq!(range_mask(1, 3, 5), 0);
        // A range spanning words: 60..=70.
        assert_eq!(range_mask(0, 60, 70), !0u64 << 59);
        assert_eq!(range_mask(1, 60, 70), mask_through(5));
    }

    #[test]
    fn accumulate_matches_scalar_walk() {
        // taken: slots 1-3 and 70 busy over a 100-slot horizon.
        let mut taken = vec![0u64; 2];
        for t in [1u64, 2, 3, 70] {
            let (wi, m) = slot_bit(t);
            taken[wi] |= m;
        }
        assert_eq!(accumulate_free(&taken, 100, 0), Some(0));
        assert_eq!(accumulate_free(&taken, 100, 1), Some(4));
        assert_eq!(accumulate_free(&taken, 100, 64), Some(67));
        // Slots 68, 69 free, 70 busy, 71 free: 66th free slot is 69.
        assert_eq!(accumulate_free(&taken, 100, 66), Some(69));
        assert_eq!(accumulate_free(&taken, 100, 67), Some(71));
        assert_eq!(accumulate_free(&taken, 100, 96), Some(100));
        assert_eq!(accumulate_free(&taken, 100, 97), None);
    }
}
