//! The reference `Generate_Init_Diagram` kernel: a literal transcription
//! of the paper's cell-matrix procedure.
//!
//! Every `(row, slot)` cell is walked and stamped `Free` / `Busy` /
//! `Waiting` / `Allocated`, and each allocated slot marks every lower
//! row `Busy` — `O(rows^2 * horizon)` work. The bitset kernel in
//! [`super::occupancy`] replaces this wholesale; the cell walk is kept
//! as the oracle the randomized kernel-equivalence suite and the
//! `diagram_kernel` benchmark compare against.

use super::{Instance, RemovedInstances, Row, Slot, TimingDiagram};
use crate::hpset::HpSet;
use crate::stream::StreamSet;

/// Runs the cell-matrix kernel and packages the result as a
/// [`TimingDiagram`] (bit rows derived from the cells, cell matrix
/// stored eagerly).
pub(super) fn generate(
    set: &StreamSet,
    hp: &HpSet,
    horizon: u64,
    removed: &RemovedInstances,
) -> TimingDiagram {
    assert!(horizon > 0, "diagram horizon must be positive");
    let n_rows = hp.len();
    let h = horizon as usize;
    let mut cells = vec![Slot::Free; n_rows * h];
    let mut column_taken = vec![false; h];
    let mut rows = Vec::with_capacity(n_rows);

    // Cell addressing: row-major, slot t (1-based) at column t-1.
    let idx = |r: usize, t: u64| -> usize { r * h + (t as usize - 1) };

    for (r, elem) in hp.elements().iter().enumerate() {
        let stream = set.get(elem.stream);
        let period = stream.period();
        let length = stream.max_length();
        let n_instances = horizon.div_ceil(period) as usize;
        let mut instances = Vec::with_capacity(n_instances);
        for k in 0..n_instances {
            let window_start = k as u64 * period + 1;
            let window_end = ((k as u64 + 1) * period).min(horizon);
            if removed.contains(elem.stream, k) {
                instances.push(Instance {
                    index: k,
                    window_start,
                    window_end,
                    slots: Vec::new(),
                    complete: false,
                    removed: true,
                });
                continue;
            }
            let mut slots = Vec::with_capacity(length as usize);
            for t in window_start..=window_end {
                match cells[idx(r, t)] {
                    Slot::Free => {
                        cells[idx(r, t)] = Slot::Allocated;
                        column_taken[t as usize - 1] = true;
                        for lower in (r + 1)..n_rows {
                            if cells[idx(lower, t)] == Slot::Free {
                                cells[idx(lower, t)] = Slot::Busy;
                            }
                        }
                        slots.push(t);
                    }
                    Slot::Busy => cells[idx(r, t)] = Slot::Waiting,
                    Slot::Allocated | Slot::Waiting => {
                        unreachable!("row cell visited twice")
                    }
                }
                if slots.len() as u64 == length {
                    break;
                }
            }
            let complete = slots.len() as u64 == length;
            instances.push(Instance {
                index: k,
                window_start,
                window_end,
                slots,
                complete,
                removed: false,
            });
        }
        rows.push(Row {
            stream: elem.stream,
            instances,
        });
    }

    TimingDiagram::from_cells(hp.target, horizon, rows, cells, column_taken)
}
