//! The packed-bitset `Generate_Init_Diagram` kernel and the reusable
//! bound-only analysis arena.
//!
//! # Why bit words
//!
//! The reference kernel (see [`super::legacy`]) materializes the full
//! `rows x horizon` cell matrix and, on every allocated slot, walks all
//! lower rows to stamp `Busy` — `O(rows^2 * horizon)` work and
//! `O(rows * horizon)` bytes per diagram. But the diagram's semantics
//! only ever need three per-row bit vectors:
//!
//! * which slots a row *transmits* in (its allocation mask), and
//! * which slots are taken by any strictly-higher row (a single running
//!   accumulator, because rows are processed in decreasing priority).
//!
//! `Busy`/`Waiting` are derivable: a cell is `Busy` iff a higher row's
//! allocation covers it, and `Waiting` iff that happens inside the
//! row's own active span (the greedy allocator keeps every instance
//! either transmitting or preempted from its window start to the slot
//! its tail moves, so spans are contiguous). Instance slots are found
//! with word scans — `!taken & window_mask`, then `trailing_zeros` per
//! claimed slot — touching `horizon / 64` words instead of `horizon`
//! cells per row.
//!
//! [`AnalysisScratch`] goes one step further for the hot
//! `Determine-Feasibility` / admission loops: when only the delay
//! *bound* is wanted, nothing needs the per-instance slot lists or the
//! `rows x horizon` allocation masks at all — one `taken` accumulator
//! plus per-instance `[window_start, active_end]` spans suffice, and
//! all of it lives in buffers reused across streams.

use super::bits;
use super::{Instance, RemovedInstances, Row};
use crate::bdg::BlockingDependencyGraph;
use crate::calu::DelayBound;
use crate::hpset::HpSet;
use crate::stream::{StreamId, StreamSet};

/// Raw output of the bitset kernel, consumed by
/// [`super::TimingDiagram`]'s constructor.
pub(super) struct Occupancy {
    /// Words per bit row (`horizon.div_ceil(64)`).
    pub words: usize,
    /// Diagram rows with fully-populated instance slot lists.
    pub rows: Vec<Row>,
    /// Row-major allocation masks, `rows.len() * words` words.
    pub alloc: Vec<u64>,
    /// OR of all rows' allocation masks (the busy columns).
    pub taken: Vec<u64>,
}

/// Runs `Generate_Init_Diagram` over bit words. Produces exactly the
/// allocations of the legacy cell walk: rows in decreasing priority
/// each greedily claim the first `C` slots of every period window that
/// no higher row holds.
pub(super) fn generate(
    set: &StreamSet,
    hp: &HpSet,
    horizon: u64,
    removed: &RemovedInstances,
) -> Occupancy {
    let words = bits::word_count(horizon);
    let n_rows = hp.len();
    let mut taken = vec![0u64; words];
    let mut alloc = vec![0u64; n_rows * words];
    let mut rows = Vec::with_capacity(n_rows);

    for (r, elem) in hp.elements().iter().enumerate() {
        let stream = set.get(elem.stream);
        let period = stream.period();
        let length = stream.max_length();
        let n_instances = horizon.div_ceil(period) as usize;
        let mut instances = Vec::with_capacity(n_instances);
        let row_alloc = &mut alloc[r * words..(r + 1) * words];

        for k in 0..n_instances {
            let window_start = k as u64 * period + 1;
            let window_end = ((k as u64 + 1) * period).min(horizon);
            if removed.contains(elem.stream, k) {
                instances.push(Instance {
                    index: k,
                    window_start,
                    window_end,
                    slots: Vec::new(),
                    complete: false,
                    removed: true,
                });
                continue;
            }
            let mut slots = Vec::with_capacity(length as usize);
            let first = ((window_start - 1) >> 6) as usize;
            let last = ((window_end - 1) >> 6) as usize;
            'scan: for wi in first..=last {
                let mask = bits::range_mask(wi, window_start, window_end);
                let mut avail = !taken[wi] & mask;
                // Claim whole runs of consecutive free bits at a time:
                // under light contention a window is one run, so slots
                // extend by ranges instead of bit-by-bit selects.
                while avail != 0 {
                    let b = avail.trailing_zeros();
                    let run = u64::from((avail >> b).trailing_ones());
                    let need = length - slots.len() as u64;
                    let take = run.min(need);
                    let start_slot = (wi as u64) * 64 + u64::from(b) + 1;
                    slots.extend(start_slot..start_slot + take);
                    let run_mask = if take == 64 {
                        !0u64
                    } else {
                        ((1u64 << take) - 1) << b
                    };
                    row_alloc[wi] |= run_mask;
                    if take == need {
                        break 'scan;
                    }
                    avail &= !run_mask;
                }
            }
            instances.push(Instance {
                index: k,
                window_start,
                window_end,
                complete: slots.len() as u64 == length,
                slots,
                removed: false,
            });
        }

        // Windows within a row are disjoint, so merging after the whole
        // row is equivalent to merging per allocation — and rows below
        // see every slot this row holds.
        debug_assert!(
            row_alloc.iter().zip(taken.iter()).all(|(a, t)| a & t == 0),
            "bitset kernel: row {r} claims slots already in the taken accumulator"
        );
        for (t, a) in taken.iter_mut().zip(row_alloc.iter()) {
            *t |= *a;
        }
        rows.push(Row {
            stream: elem.stream,
            instances,
        });
    }

    Occupancy {
        words,
        rows,
        alloc,
        taken,
    }
}

/// One instance's footprint in the bound-only analysis: its window and
/// active span, no slot list.
#[derive(Clone, Copy, Debug)]
struct SpanInstance {
    window_start: u64,
    /// Last slot of the active span (an incomplete instance is active
    /// through its whole window); meaningless when `removed`.
    active_end: u64,
    removed: bool,
}

/// One row of the bound-only analysis.
#[derive(Clone, Debug)]
struct SpanRow {
    stream: StreamId,
    instances: Vec<SpanInstance>,
}

impl Default for SpanRow {
    fn default() -> Self {
        SpanRow {
            stream: StreamId(0),
            instances: Vec::new(),
        }
    }
}

/// A reusable arena for bound-only `Cal_U` runs.
///
/// [`crate::feasibility::determine_feasibility`] and the admission
/// controller call `Cal_U` once per stream, and `Modify_Diagram`
/// regenerates the diagram after every removal round; building a full
/// [`super::TimingDiagram`] each time allocates the instance slot
/// lists, the allocation masks, and (in the legacy kernel) the whole
/// cell matrix, only for the single number read off at the end. This
/// arena keeps one `taken` bit accumulator and per-row instance-span
/// pools alive across calls, so a steady-state analysis performs no
/// per-stream allocation at all.
///
/// [`AnalysisScratch::delay_bound`] is bit-identical to
/// [`crate::calu::cal_u`] — both implement `Generate_Init_Diagram` +
/// `Modify_Diagram` (instance-span strategy) + free-slot accumulation —
/// which the randomized kernel-equivalence suite enforces.
#[derive(Clone, Debug, Default)]
pub struct AnalysisScratch {
    /// Busy-column accumulator, reused across runs (sliced per run).
    taken: Vec<u64>,
    /// Row pool; `rows[..n_rows]` are live in the current run.
    rows: Vec<SpanRow>,
    /// Live row count of the current run.
    n_rows: usize,
    /// Removal set of the current run's `Modify_Diagram`.
    removed: RemovedInstances,
}

impl AnalysisScratch {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the delay upper bound of `hp.target` over slots
    /// `1..=horizon` — `Generate_Init_Diagram`, `Modify_Diagram` with
    /// the default instance-span strategy, then free-slot accumulation
    /// until the target's network latency is covered.
    ///
    /// # Panics
    /// Panics if `horizon == 0`.
    pub fn delay_bound(&mut self, set: &StreamSet, hp: &HpSet, horizon: u64) -> DelayBound {
        self.delay_bound_with(set, hp, horizon, |hp| {
            BlockingDependencyGraph::build(set, hp)
        })
    }

    /// [`AnalysisScratch::delay_bound`] with the blocking dependency
    /// graph read off a prebuilt interference index (one bit probe per
    /// edge) instead of pairwise path comparisons. Bit-identical: the
    /// index materializes the same directly-affects relation.
    pub fn delay_bound_indexed(
        &mut self,
        set: &StreamSet,
        index: &crate::interference::InterferenceIndex,
        hp: &HpSet,
        horizon: u64,
    ) -> DelayBound {
        self.delay_bound_with(set, hp, horizon, |hp| {
            BlockingDependencyGraph::build_indexed(index, hp)
        })
    }

    fn delay_bound_with(
        &mut self,
        set: &StreamSet,
        hp: &HpSet,
        horizon: u64,
        build_bdg: impl FnOnce(&HpSet) -> BlockingDependencyGraph,
    ) -> DelayBound {
        assert!(horizon > 0, "diagram horizon must be positive");
        self.removed.clear();
        self.regenerate(set, hp, horizon);

        if hp.has_indirect() {
            let bdg = build_bdg(hp);
            for elem_id in bdg.indirect_processing_order(hp) {
                let elem = hp
                    .element(elem_id)
                    .expect("processing order yields HP members");
                let row = self.row_of(elem_id).expect("HP member has a row");
                let mut any_removed = false;
                for k in 0..self.rows[row].instances.len() {
                    let inst = self.rows[row].instances[k];
                    if inst.removed {
                        continue;
                    }
                    let chain_alive = elem.intermediates.iter().any(|&im| {
                        self.row_of(im)
                            .map(|im_row| {
                                self.row_active_in(im_row, inst.window_start, inst.active_end)
                            })
                            .unwrap_or(false)
                    });
                    if !chain_alive {
                        self.removed.insert(elem_id, k);
                        any_removed = true;
                    }
                }
                if any_removed {
                    self.regenerate(set, hp, horizon);
                }
            }
        }

        let needed = set.get(hp.target).latency;
        let words = bits::word_count(horizon);
        match bits::accumulate_free(&self.taken[..words], horizon, needed) {
            Some(u) => DelayBound::Bounded(u),
            None => DelayBound::Exceeded,
        }
    }

    /// Bound-only `Generate_Init_Diagram` honoring `self.removed`:
    /// fills `taken` and the per-row spans, nothing else.
    fn regenerate(&mut self, set: &StreamSet, hp: &HpSet, horizon: u64) {
        let words = bits::word_count(horizon);
        if self.taken.len() < words {
            self.taken.resize(words, 0);
        }
        let taken = &mut self.taken[..words];
        taken.fill(0);
        self.n_rows = hp.len();
        if self.rows.len() < self.n_rows {
            self.rows.resize_with(self.n_rows, SpanRow::default);
        }
        // Popcount conservation across `Modify_Diagram` removals: every
        // bit set in `taken` is claimed by exactly one surviving
        // instance (allocations only ever OR in bits that were clear),
        // so the total claimed count must equal the accumulator's
        // popcount after the pass. Removed instances claim nothing.
        #[cfg(debug_assertions)]
        let mut claimed = 0u64;

        for (r, elem) in hp.elements().iter().enumerate() {
            let stream = set.get(elem.stream);
            let period = stream.period();
            let length = stream.max_length();
            let n_instances = horizon.div_ceil(period) as usize;
            let row = &mut self.rows[r];
            row.stream = elem.stream;
            row.instances.clear();

            for k in 0..n_instances {
                let window_start = k as u64 * period + 1;
                let window_end = ((k as u64 + 1) * period).min(horizon);
                if self.removed.contains(elem.stream, k) {
                    row.instances.push(SpanInstance {
                        window_start,
                        active_end: window_start,
                        removed: true,
                    });
                    continue;
                }
                // Claim the first `length` free slots word by word.
                // Unlike the full kernel, whole words are taken with a
                // popcount and only the final partial word needs a
                // select; allocations go straight into `taken` (same-row
                // windows are disjoint, so later instances never see
                // them inside their own masks).
                let mut remaining = length;
                let mut last_slot = 0u64;
                let first = ((window_start - 1) >> 6) as usize;
                let last = ((window_end - 1) >> 6) as usize;
                for (wi, word) in taken.iter_mut().enumerate().take(last + 1).skip(first) {
                    let mask = bits::range_mask(wi, window_start, window_end);
                    let avail = !*word & mask;
                    let cnt = u64::from(avail.count_ones());
                    if cnt == 0 {
                        continue;
                    }
                    if cnt < remaining {
                        *word |= avail;
                        remaining -= cnt;
                        last_slot = (wi as u64) * 64 + 64 - u64::from(avail.leading_zeros());
                        #[cfg(debug_assertions)]
                        {
                            claimed += cnt;
                        }
                    } else {
                        let b = bits::select_nth_set(avail, (remaining - 1) as u32);
                        *word |= avail & bits::mask_through(b);
                        #[cfg(debug_assertions)]
                        {
                            claimed += remaining;
                        }
                        remaining = 0;
                        last_slot = (wi as u64) * 64 + u64::from(b) + 1;
                        break;
                    }
                }
                let complete = remaining == 0;
                row.instances.push(SpanInstance {
                    window_start,
                    active_end: if complete { last_slot } else { window_end },
                    removed: false,
                });
            }
        }
        #[cfg(debug_assertions)]
        {
            let pop: u64 = taken.iter().map(|w| u64::from(w.count_ones())).sum();
            assert_eq!(
                claimed, pop,
                "scratch kernel: claimed slots diverge from the taken accumulator's popcount"
            );
        }
    }

    /// Row index of `stream` among the live rows.
    fn row_of(&self, stream: StreamId) -> Option<usize> {
        self.rows[..self.n_rows]
            .iter()
            .position(|r| r.stream == stream)
    }

    /// The span-based `Modify_Diagram` activity test: is the row's
    /// message present (transmitting or preempted) in `from..=to`?
    fn row_active_in(&self, row: usize, from: u64, to: u64) -> bool {
        self.rows[row]
            .instances
            .iter()
            .any(|i| !i.removed && i.window_start <= to && i.active_end >= from)
    }
}
