//! Bound attribution: *why* is a stream's delay upper bound what it is?
//!
//! For a finished [`CalUAnalysis`], decomposes `U = L + interference`
//! and attributes every interference slot to the HP element that
//! transmits in it, together with how many of that element's instances
//! `Modify_Diagram` discounted. This is the diagnostic an admission
//! operator needs when a request is rejected: *which* existing streams
//! to re-prioritize or re-place.

use crate::calu::{CalUAnalysis, DelayBound};
use crate::stream::{StreamId, StreamSet};
use std::fmt::Write as _;

/// One HP element's share of the bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Contribution {
    /// The blocking stream.
    pub stream: StreamId,
    /// Slots it transmits in before the target's bound (its share of
    /// the interference).
    pub slots: u64,
    /// Instances `Modify_Diagram` removed (blocking that could *not*
    /// propagate).
    pub removed_instances: usize,
}

/// The decomposition `U = L + sum(contributions)`.
#[derive(Clone, Debug)]
pub struct BoundExplanation {
    /// The analyzed stream.
    pub target: StreamId,
    /// Its network latency `L`.
    pub latency: u64,
    /// The delay upper bound.
    pub bound: DelayBound,
    /// Per-element interference, sorted by decreasing slot share (ties
    /// by stream id).
    pub contributions: Vec<Contribution>,
}

impl BoundExplanation {
    /// Total interference slots (equals `U - L` for bounded results).
    pub fn interference(&self) -> u64 {
        self.contributions.iter().map(|c| c.slots).sum()
    }
}

/// Decomposes a finished analysis into per-element contributions.
pub fn explain(set: &StreamSet, analysis: &CalUAnalysis) -> BoundExplanation {
    let latency = set.get(analysis.target).latency;
    let horizon = match analysis.bound {
        DelayBound::Bounded(u) => u,
        // Unbounded: attribute over the whole analyzed horizon.
        DelayBound::Exceeded => analysis.horizon,
    };
    let diagram = &analysis.finalized;
    let mut contributions: Vec<Contribution> = diagram
        .rows()
        .iter()
        .enumerate()
        .map(|(r, row)| {
            // Word-level popcount over the row's allocation mask; no
            // cell-matrix materialization.
            let slots = diagram.allocated_through(r, horizon);
            let removed_instances = row.instances.iter().filter(|i| i.removed).count();
            Contribution {
                stream: row.stream,
                slots,
                removed_instances,
            }
        })
        .collect();
    contributions.sort_by_key(|c| (std::cmp::Reverse(c.slots), c.stream));
    BoundExplanation {
        target: analysis.target,
        latency,
        bound: analysis.bound,
        contributions,
    }
}

/// Renders an explanation as text.
pub fn render_explanation(set: &StreamSet, e: &BoundExplanation) -> String {
    let mut out = String::new();
    match e.bound {
        DelayBound::Bounded(u) => {
            let _ = writeln!(
                out,
                "U({}) = {} = L({}) + {} interference slot(s)",
                e.target,
                u,
                e.latency,
                e.interference()
            );
        }
        DelayBound::Exceeded => {
            let _ = writeln!(
                out,
                "U({}) exceeds the analysis horizon; interference within it: {} slot(s)",
                e.target,
                e.interference()
            );
        }
    }
    for c in &e.contributions {
        let s = set.get(c.stream);
        let _ = write!(
            out,
            "  {}: {:>4} slot(s)  (P={}, T={}, C={}",
            c.stream,
            c.slots,
            s.priority(),
            s.period(),
            s.max_length()
        );
        if c.removed_instances > 0 {
            let _ = write!(
                out,
                "; {} instance(s) discounted as indirect",
                c.removed_instances
            );
        }
        let _ = writeln!(out, ")");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calu::cal_u_detailed;
    use crate::stream::{StreamSet, StreamSpec};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    fn paper_like() -> StreamSet {
        let m = Mesh::mesh2d(10, 10);
        let mk = |s: [u32; 2], d: [u32; 2], p: u32, t: u64, c: u64| {
            StreamSpec::new(m.node_at(&s).unwrap(), m.node_at(&d).unwrap(), p, t, c, t)
        };
        StreamSet::resolve(
            &m,
            &XyRouting,
            &[
                mk([7, 3], [7, 7], 5, 15, 4),
                mk([1, 1], [5, 4], 4, 10, 2),
                mk([2, 1], [7, 5], 3, 40, 4),
                mk([4, 1], [8, 5], 2, 45, 9),
                mk([6, 1], [9, 3], 1, 50, 6),
            ],
        )
        .unwrap()
    }

    #[test]
    fn interference_accounts_for_u_minus_l() {
        let set = paper_like();
        for id in set.ids() {
            let a = cal_u_detailed(&set, id, set.get(id).deadline());
            let e = explain(&set, &a);
            if let DelayBound::Bounded(u) = a.bound {
                assert_eq!(
                    e.interference(),
                    u - set.get(id).latency,
                    "{id:?}: contributions must sum to U - L"
                );
            }
        }
    }

    #[test]
    fn paper_example_m4_attribution() {
        // Final diagram of HP_4: M0 transmits 1-4, M1 5-6/11-12/21-22,
        // M2 7-10, M3 13-20+23; U = 33. Slots before 33: M0 4, M1 6,
        // M2 4, M3 9 -> 23 = 33 - 10.
        let set = paper_like();
        let a = cal_u_detailed(&set, crate::StreamId(4), 50);
        let e = explain(&set, &a);
        assert_eq!(e.interference(), 23);
        let by_stream = |id: u32| {
            e.contributions
                .iter()
                .find(|c| c.stream == crate::StreamId(id))
                .unwrap()
        };
        assert_eq!(by_stream(0).slots, 4);
        assert_eq!(by_stream(1).slots, 6);
        assert_eq!(by_stream(2).slots, 4);
        assert_eq!(by_stream(3).slots, 9);
        assert!(by_stream(0).removed_instances >= 2);
        assert!(by_stream(1).removed_instances >= 1);
        // Sorted by decreasing share: M3 first.
        assert_eq!(e.contributions[0].stream, crate::StreamId(3));
    }

    #[test]
    fn render_mentions_discounts() {
        let set = paper_like();
        let a = cal_u_detailed(&set, crate::StreamId(4), 50);
        let e = explain(&set, &a);
        let text = render_explanation(&set, &e);
        assert!(text.contains("U(M4) = 33 = L(10) + 23"));
        assert!(text.contains("discounted as indirect"));
    }

    #[test]
    fn unblocked_stream_has_no_contributions() {
        let set = paper_like();
        let a = cal_u_detailed(&set, crate::StreamId(0), 15);
        let e = explain(&set, &a);
        assert!(e.contributions.is_empty());
        assert_eq!(e.interference(), 0);
        let text = render_explanation(&set, &e);
        assert!(text.contains("U(M0) = 7 = L(7) + 0"));
    }
}
