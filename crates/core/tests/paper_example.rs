//! Reproduction of the paper's worked example (§4.4, Figures 7-9):
//! five streams on a 10x10 mesh with X-Y routing, published bounds
//! `U = (7, 8, 26, 20, 33)`.
//!
//! One deliberate divergence: the paper's printed `HP_3` lists only
//! `{M1}` even though `M2`'s X-Y path geometrically shares the row-1
//! channels (4,1)->(7,1) with `M3`'s. Only `HP_3 = {M1}` yields the
//! published `U_3 = 20`; with `M2` included the bound is 26. We
//! reproduce the published numbers for `U_0, U_1, U_2, U_4` from pure
//! geometry and pin `U_3` under both readings.

use rtwc_core::prelude::*;
use rtwc_core::{cal_u, cal_u_detailed, BlockingMode, RemovedInstances, TimingDiagram};
use wormnet_topology::{Mesh, Topology, XyRouting};

/// The example's stream set:
/// M0 = ((7,3),(7,7), P5, T150, C4, D150, L7)
/// M1 = ((1,1),(5,4), P4, T100, C2, D100, L8)
/// M2 = ((2,1),(7,5), P3, T400, C4, D400, L12)
/// M3 = ((4,1),(8,5), P2, T450, C9, D450, L16)
/// M4 = ((6,1),(9,3), P1, T500, C6, D500, L10)
///
/// The OCR of the paper drops trailing zeros; the worked example's slot
/// arithmetic (U2 = 26 with M0 at T=15 and M1 at T=10, U4 = 33, removed
/// instances at windows 16-30/31-45) matches T = (15, 10, 40, 45, 50),
/// so we use those. Deadlines equal periods.
fn paper_set() -> StreamSet {
    let mesh = Mesh::mesh2d(10, 10);
    let node = |x: u32, y: u32| mesh.node_at(&[x, y]).unwrap();
    let specs = vec![
        StreamSpec::new(node(7, 3), node(7, 7), 5, 15, 4, 15),
        StreamSpec::new(node(1, 1), node(5, 4), 4, 10, 2, 10),
        StreamSpec::new(node(2, 1), node(7, 5), 3, 40, 4, 40),
        StreamSpec::new(node(4, 1), node(8, 5), 2, 45, 9, 45),
        StreamSpec::new(node(6, 1), node(9, 3), 1, 50, 6, 50),
    ];
    StreamSet::resolve(&mesh, &XyRouting, &specs).unwrap()
}

#[test]
fn network_latencies_match_paper() {
    let set = paper_set();
    let expected = [7u64, 8, 12, 16, 10];
    for (id, l) in set.ids().zip(expected) {
        assert_eq!(set.get(id).latency, l, "{id:?}");
    }
}

#[test]
fn hp_sets_match_paper() {
    let set = paper_set();

    // HP_0 and HP_1 are empty (the paper lists only the stream itself,
    // which Cal_U immediately removes).
    assert!(generate_hp(&set, StreamId(0)).is_empty());
    assert!(generate_hp(&set, StreamId(1)).is_empty());

    // HP_2 = {M0 direct, M1 direct}.
    let hp2 = generate_hp(&set, StreamId(2));
    assert_eq!(hp2.len(), 2);
    assert_eq!(hp2.element(StreamId(0)).unwrap().mode, BlockingMode::Direct);
    assert_eq!(hp2.element(StreamId(1)).unwrap().mode, BlockingMode::Direct);

    // HP_4 = {M0 indirect via (M2), M1 indirect via (M2, M3),
    //         M2 direct, M3 direct}.
    let hp4 = generate_hp(&set, StreamId(4));
    assert_eq!(hp4.len(), 4);
    let m0 = hp4.element(StreamId(0)).unwrap();
    assert_eq!(m0.mode, BlockingMode::Indirect);
    assert_eq!(m0.intermediates, vec![StreamId(2)]);
    let m1 = hp4.element(StreamId(1)).unwrap();
    assert_eq!(m1.mode, BlockingMode::Indirect);
    assert_eq!(m1.intermediates, vec![StreamId(2), StreamId(3)]);
    assert_eq!(hp4.element(StreamId(2)).unwrap().mode, BlockingMode::Direct);
    assert_eq!(hp4.element(StreamId(3)).unwrap().mode, BlockingMode::Direct);
}

#[test]
fn hp3_discrepancy_documented() {
    // Geometrically M2's path (2,1)->(7,1)->(7,5) and M3's path
    // (4,1)->(8,1)->(8,5) share the directed row-1 channels
    // (4,1)->(5,1)->(6,1)->(7,1); the printed HP_3 nonetheless lists
    // only M1. Our strict overlap-based construction therefore yields
    // {M0 indirect via M2, M1 direct, M2 direct}, and this test pins
    // both readings.
    let set = paper_set();
    let hp3 = generate_hp(&set, StreamId(3));
    assert_eq!(hp3.len(), 3);
    let m0 = hp3.element(StreamId(0)).unwrap();
    assert_eq!(m0.mode, BlockingMode::Indirect);
    assert_eq!(m0.intermediates, vec![StreamId(2)]);
    assert_eq!(hp3.element(StreamId(1)).unwrap().mode, BlockingMode::Direct);
    assert_eq!(hp3.element(StreamId(2)).unwrap().mode, BlockingMode::Direct);
    // Strict reading: U_3 = 30 (M0's 2nd/3rd instances removed because
    // M2 is inactive in their spans; still <= D_3 = 45, so the verdict
    // is unchanged).
    assert_eq!(cal_u(&set, StreamId(3), 45), DelayBound::Bounded(30));
}

#[test]
fn bounds_match_paper() {
    let set = paper_set();
    assert_eq!(cal_u(&set, StreamId(0), 15), DelayBound::Bounded(7));
    assert_eq!(cal_u(&set, StreamId(1), 10), DelayBound::Bounded(8));
    assert_eq!(cal_u(&set, StreamId(2), 40), DelayBound::Bounded(26));
    assert_eq!(cal_u(&set, StreamId(4), 50), DelayBound::Bounded(33));
}

#[test]
fn u3_matches_paper_under_published_hp3() {
    // The paper's U_3 = 20 follows from its printed HP_3 = {M1}: L=16,
    // with only M1 (T=10, C=2) interfering, the 16th free slot is 20.
    // Reconstruct that reading by analyzing M3 against M1 alone.
    let mesh = Mesh::mesh2d(10, 10);
    let node = |x: u32, y: u32| mesh.node_at(&[x, y]).unwrap();
    let specs = vec![
        StreamSpec::new(node(1, 1), node(5, 4), 4, 10, 2, 10),
        StreamSpec::new(node(4, 1), node(8, 5), 2, 45, 9, 45),
    ];
    let set = StreamSet::resolve(&mesh, &XyRouting, &specs).unwrap();
    assert_eq!(cal_u(&set, StreamId(1), 45), DelayBound::Bounded(20));
}

#[test]
fn figure7_initial_diagram_of_hp4() {
    let set = paper_set();
    let a = cal_u_detailed(&set, StreamId(4), 50);
    let initial = &a.initial;
    // Row order: M0 (P5), M1 (P4), M2 (P3), M3 (P2).
    let rows: Vec<StreamId> = initial.rows().iter().map(|r| r.stream).collect();
    assert_eq!(
        rows,
        vec![StreamId(0), StreamId(1), StreamId(2), StreamId(3)]
    );
    // M0: 1-4, 16-19, 31-34, 46-49.
    assert_eq!(initial.rows()[0].instances[0].slots, vec![1, 2, 3, 4]);
    assert_eq!(initial.rows()[0].instances[1].slots, vec![16, 17, 18, 19]);
    assert_eq!(initial.rows()[0].instances[2].slots, vec![31, 32, 33, 34]);
    // M1: 5-6, 11-12, 21-22, 35-36, 41-42.
    let m1_slots: Vec<Vec<u64>> = initial.rows()[1]
        .instances
        .iter()
        .map(|i| i.slots.clone())
        .collect();
    assert_eq!(
        m1_slots,
        vec![
            vec![5, 6],
            vec![11, 12],
            vec![21, 22],
            vec![35, 36],
            vec![41, 42]
        ]
    );
    // M2 (T=40): waits through 1-6, transmits 7-10.
    assert_eq!(initial.rows()[2].instances[0].slots, vec![7, 8, 9, 10]);
    // M3 (T=45): 13-15, 20, 23-27.
    assert_eq!(
        initial.rows()[3].instances[0].slots,
        vec![13, 14, 15, 20, 23, 24, 25, 26, 27]
    );
}

#[test]
fn figure9_final_diagram_of_hp4() {
    let set = paper_set();
    let a = cal_u_detailed(&set, StreamId(4), 50);
    // "The second and the third instance of M0 and the fourth instance
    // of M1 are removed" (plus the tail instances past the figure's
    // display range, whose windows see no intermediate activity).
    assert!(a.removed.contains(StreamId(0), 1));
    assert!(a.removed.contains(StreamId(0), 2));
    assert!(a.removed.contains(StreamId(1), 3));
    assert!(!a.removed.contains(StreamId(0), 0));
    assert!(!a.removed.contains(StreamId(1), 0));
    assert!(!a.removed.contains(StreamId(1), 1));
    assert!(!a.removed.contains(StreamId(1), 2));

    // "Because of the released time slots, the first instance of M3 is
    // compacted": M3 now occupies 13-20 and 23.
    let final_diag = &a.finalized;
    assert_eq!(
        final_diag.rows()[3].instances[0].slots,
        vec![13, 14, 15, 16, 17, 18, 19, 20, 23]
    );
    assert_eq!(a.bound, DelayBound::Bounded(33));
}

#[test]
fn feasibility_verdict_is_success() {
    // All U_i <= D_i, so Determine-Feasibility returns success.
    let set = paper_set();
    let report = determine_feasibility(&set);
    assert!(report.is_feasible());
    let expected = [7u64, 8, 26, 30, 33]; // strict HP_3 reading for U_3
    for (id, u) in set.ids().zip(expected) {
        assert_eq!(report.bound(id), DelayBound::Bounded(u), "{id:?}");
    }
}

#[test]
fn figure7_has_exactly_seven_free_slots() {
    // Paper: "There are 7 free time slots at the last row. Because the
    // network latency of M4 is 10, deadline can not be guaranteed."
    // Counting the second instances of M2 (slots 43-45, 50) and M3
    // (waiting at the tail), exactly 7 columns (28-30, 37-40) remain
    // usable in the all-direct diagram.
    let set = paper_set();
    let hp4 = generate_hp(&set, StreamId(4));
    let initial = TimingDiagram::generate(&set, &hp4, 50, &RemovedInstances::none());
    let free: Vec<u64> = initial.free_slots().collect();
    assert_eq!(free, vec![28, 29, 30, 37, 38, 39, 40]);
    assert_eq!(initial.accumulate_free(set.get(StreamId(4)).latency), None);
}
