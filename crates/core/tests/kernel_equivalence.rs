//! Randomized equivalence of the two `Generate_Init_Diagram` kernels
//! and of the bound-only scratch arena against the full pipeline.
//!
//! The bitset kernel ([`TimingDiagram::generate`]) is a word-parallel
//! rewrite of the paper's cell-matrix procedure
//! ([`TimingDiagram::generate_legacy`]); nothing short of exact
//! agreement is acceptable — the bound is a hard real-time guarantee.
//! These suites drive both kernels through the *entire* pipeline
//! (initial diagram, `Modify_Diagram` under every removal strategy,
//! free-slot accumulation) over randomized stream sets, including
//! column-overlapping routes that produce deep indirect chains, at
//! horizons up to 5000 slots, and compare:
//!
//! * every instance (windows, slot lists, completeness, removal flags),
//! * every cell of the lazily-materialized matrix,
//! * the `RemovedInstances` sets chosen by `Modify_Diagram`,
//! * the accumulated delay bounds at several latencies, and
//! * [`AnalysisScratch::delay_bound`] (one arena reused across all
//!   cases) against [`cal_u`] and [`cal_u_detailed`].
//!
//! Together with `paper_example.rs` (which pins the published numbers
//! `U = (7, 8, 26, 20, 33)` and Fig. 4/6 `U = 26/22`) this is the
//! safety net for any future kernel work.

use proptest::prelude::*;
use rtwc_core::{
    cal_u, cal_u_detailed, generate_hp, modify_diagram_with_kernel, AnalysisScratch, DiagramKernel,
    RemovalStrategy, RemovedInstances, StreamSet, StreamSpec, TimingDiagram,
};
use wormnet_topology::{Mesh, NodeId, XyRouting};

/// Strategy: 2..=7 streams on an 8x8 mesh. Periods reach 600 so
/// moderate horizons still hold many instances, and the coordinate
/// ranges bias toward row/column overlap (shared links -> direct and
/// indirect blocking chains).
fn stream_sets() -> impl Strategy<Value = StreamSet> {
    let spec = (0u32..32, 0u32..32, 1u32..6, 10u64..600, 1u64..20)
        .prop_filter("distinct endpoints", |(s, d, ..)| s != d);
    prop::collection::vec(spec, 2..=7).prop_map(|raw| {
        let mesh = Mesh::mesh2d(8, 8);
        let specs: Vec<StreamSpec> = raw
            .into_iter()
            .map(|(s, d, p, t, c)| StreamSpec::new(NodeId(s), NodeId(d), p, t, c, 4 * t))
            .collect();
        StreamSet::resolve(&mesh, &XyRouting, &specs).unwrap()
    })
}

/// Horizons spanning sub-word, word-boundary, and multi-word cases.
fn horizons() -> impl Strategy<Value = u64> {
    prop_oneof![
        1u64..=70,
        Just(63u64),
        Just(64u64),
        Just(65u64),
        Just(128u64),
        100u64..=700,
        4000u64..=5000,
    ]
}

/// Asserts both diagrams agree on everything observable.
fn assert_diagrams_equal(
    fast: &TimingDiagram,
    slow: &TimingDiagram,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.horizon(), slow.horizon(), "{}", ctx);
    prop_assert_eq!(fast.rows().len(), slow.rows().len(), "{}", ctx);
    for (r, (fr, sr)) in fast.rows().iter().zip(slow.rows()).enumerate() {
        prop_assert_eq!(fr.stream, sr.stream, "{} row {}", ctx, r);
        prop_assert_eq!(&fr.instances, &sr.instances, "{} row {}", ctx, r);
    }
    for t in 1..=fast.horizon() {
        prop_assert_eq!(
            fast.free_for_target(t),
            slow.free_for_target(t),
            "{} col {}",
            ctx,
            t
        );
        for r in 0..fast.rows().len() {
            prop_assert_eq!(
                fast.slot(r, t),
                slow.slot(r, t),
                "{} cell ({}, {})",
                ctx,
                r,
                t
            );
            prop_assert_eq!(fast.transmits_in(r, t), slow.transmits_in(r, t));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Initial diagrams: identical instances, cells, and accumulation.
    #[test]
    fn initial_diagrams_identical(set in stream_sets(), horizon in horizons()) {
        let none = RemovedInstances::none();
        for id in set.ids() {
            let hp = generate_hp(&set, id);
            let fast = TimingDiagram::generate(&set, &hp, horizon, &none);
            let slow = TimingDiagram::generate_legacy(&set, &hp, horizon, &none);
            assert_diagrams_equal(&fast, &slow, &format!("target {id:?}"))?;
            for needed in [0u64, 1, 5, 17, 64, 65, horizon, horizon + 3] {
                prop_assert_eq!(
                    fast.accumulate_free(needed),
                    slow.accumulate_free(needed),
                    "target {:?} needed {}", id, needed
                );
            }
            prop_assert_eq!(fast.saturated(), slow.saturated());
        }
    }

    /// The full `Modify_Diagram` loop picks identical removal sets and
    /// final diagrams through either kernel, under every strategy.
    #[test]
    fn modify_diagram_identical(set in stream_sets(), horizon in horizons()) {
        for id in set.ids() {
            let hp = generate_hp(&set, id);
            for strategy in [
                RemovalStrategy::InstanceSpan,
                RemovalStrategy::InstanceWindow,
                RemovalStrategy::Disabled,
            ] {
                let (fast, fast_removed) = modify_diagram_with_kernel(
                    &set, &hp, horizon, strategy, DiagramKernel::Bitset,
                );
                let (slow, slow_removed) = modify_diagram_with_kernel(
                    &set, &hp, horizon, strategy, DiagramKernel::Legacy,
                );
                prop_assert_eq!(
                    fast_removed.entries(),
                    slow_removed.entries(),
                    "target {:?} {:?}", id, strategy
                );
                assert_diagrams_equal(
                    &fast,
                    &slow,
                    &format!("target {id:?} {strategy:?}"),
                )?;
            }
        }
    }

    /// The bound-only arena (reused across every stream, horizon, and
    /// case) agrees exactly with the full diagram pipeline.
    #[test]
    fn scratch_bound_matches_full_pipeline(set in stream_sets(), horizon in horizons()) {
        let mut scratch = AnalysisScratch::new();
        for id in set.ids() {
            let hp = generate_hp(&set, id);
            let arena = scratch.delay_bound(&set, &hp, horizon);
            let detailed = cal_u_detailed(&set, id, horizon);
            prop_assert_eq!(arena, detailed.bound, "target {:?}", id);
            prop_assert_eq!(arena, cal_u(&set, id, horizon), "target {:?}", id);
        }
    }
}

/// The explicit-removal path (caller-provided `RemovedInstances`, as
/// `Modify_Diagram` uses internally) also agrees across kernels.
#[test]
fn kernels_agree_under_explicit_removals() {
    let mesh = Mesh::mesh2d(8, 8);
    let mk = |s: u32, d: u32, p: u32, t: u64, c: u64| {
        StreamSpec::new(NodeId(s), NodeId(d), p, t, c, 4 * t)
    };
    let set = StreamSet::resolve(
        &mesh,
        &XyRouting,
        &[
            mk(0, 6, 4, 17, 5),
            mk(1, 7, 3, 29, 7),
            mk(2, 5, 2, 41, 9),
            mk(3, 4, 1, 300, 6),
        ],
    )
    .unwrap();
    let hp = generate_hp(&set, rtwc_core::StreamId(3));
    // Remove a scattering of instances and compare at several horizons.
    for horizon in [50u64, 64, 65, 300, 1000] {
        let mut removed = RemovedInstances::none();
        removed.insert(rtwc_core::StreamId(0), 1);
        removed.insert(rtwc_core::StreamId(1), 0);
        removed.insert(rtwc_core::StreamId(2), 2);
        let fast = TimingDiagram::generate(&set, &hp, horizon, &removed);
        let slow = TimingDiagram::generate_legacy(&set, &hp, horizon, &removed);
        assert_eq!(fast.rows().len(), slow.rows().len());
        for r in 0..fast.rows().len() {
            assert_eq!(fast.rows()[r].instances, slow.rows()[r].instances);
            for t in 1..=horizon {
                assert_eq!(fast.slot(r, t), slow.slot(r, t), "h={horizon} ({r}, {t})");
            }
        }
        for needed in 0..=20 {
            assert_eq!(fast.accumulate_free(needed), slow.accumulate_free(needed));
        }
    }
}
