//! Property-based tests of the feasibility analysis: ordering,
//! monotonicity, and structural invariants of HP sets, timing diagrams,
//! and bounds over randomized stream sets.

use proptest::prelude::*;
use rtwc_core::{
    cal_u, cal_u_detailed, determine_feasibility, direct_only_bound, explain, generate_hp,
    is_deadlock_free, single_vc_cycle, DelayBound, Slot, StreamId, StreamSet, StreamSpec,
};
use wormnet_topology::{Mesh, NodeId, XyRouting};

/// Strategy: a random stream set of 2..=8 streams on an 8x8 mesh with
/// small periods/lengths so diagrams stay cheap.
fn stream_sets() -> impl Strategy<Value = StreamSet> {
    let spec = (0u32..64, 0u32..64, 1u32..5, 10u64..60, 1u64..8)
        .prop_filter("distinct endpoints", |(s, d, ..)| s != d);
    prop::collection::vec(spec, 2..=8).prop_map(|raw| {
        let mesh = Mesh::mesh2d(8, 8);
        let specs: Vec<StreamSpec> = raw
            .into_iter()
            .map(|(s, d, p, t, c)| StreamSpec::new(NodeId(s), NodeId(d), p, t, c, 4 * t))
            .collect();
        StreamSet::resolve(&mesh, &XyRouting, &specs).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bound_is_at_least_network_latency(set in stream_sets()) {
        for id in set.ids() {
            if let DelayBound::Bounded(u) = cal_u(&set, id, set.get(id).deadline()) {
                prop_assert!(u >= set.get(id).latency, "{:?}", id);
            }
        }
    }

    #[test]
    fn empty_hp_means_bound_equals_latency(set in stream_sets()) {
        for id in set.ids() {
            if generate_hp(&set, id).is_empty() {
                prop_assert_eq!(
                    cal_u(&set, id, set.get(id).deadline()),
                    DelayBound::Bounded(set.get(id).latency)
                );
            }
        }
    }

    #[test]
    fn direct_only_is_never_tighter(set in stream_sets()) {
        for id in set.ids() {
            let h = set.get(id).deadline();
            match (cal_u(&set, id, h), direct_only_bound(&set, id, h)) {
                (DelayBound::Bounded(full), DelayBound::Bounded(direct)) => {
                    prop_assert!(direct >= full, "{:?}: direct {} < full {}", id, direct, full);
                }
                (DelayBound::Exceeded, DelayBound::Bounded(_)) => {
                    prop_assert!(false, "{:?}: ablation bounded, full not", id);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn removing_a_stream_never_hurts(set in stream_sets()) {
        prop_assume!(set.len() >= 3);
        // Drop the last stream; every surviving stream keeps its id.
        let parts: Vec<(StreamSpec, wormnet_topology::Path)> = set
            .iter()
            .take(set.len() - 1)
            .map(|s| (s.spec.clone(), s.path.clone()))
            .collect();
        let smaller = StreamSet::from_parts(parts).unwrap();
        for id in smaller.ids() {
            let h = set.get(id).deadline();
            let before = cal_u(&set, id, h);
            let after = cal_u(&smaller, id, h);
            match (before, after) {
                (DelayBound::Bounded(b), DelayBound::Bounded(a)) => {
                    prop_assert!(a <= b, "{:?}: {} -> {} after removal", id, b, a);
                }
                (DelayBound::Exceeded, _) => {}
                (DelayBound::Bounded(b), DelayBound::Exceeded) => {
                    prop_assert!(false, "{:?}: bounded {} became unbounded", id, b);
                }
            }
        }
    }

    #[test]
    fn hp_sets_respect_priorities(set in stream_sets()) {
        for id in set.ids() {
            let hp = generate_hp(&set, id);
            for e in hp.elements() {
                prop_assert!(e.stream != id, "self in HP set");
                prop_assert!(
                    set.get(e.stream).priority() >= set.get(id).priority(),
                    "lower-priority blocker in HP set"
                );
                if !e.is_direct() {
                    prop_assert!(!e.intermediates.is_empty(), "indirect without chain");
                    for &im in &e.intermediates {
                        prop_assert!(hp.element(im).is_some(), "intermediate outside HP");
                        prop_assert!(
                            set.get(e.stream).directly_affects(set.get(im)),
                            "intermediate not directly affected"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn diagram_structure_invariants(set in stream_sets()) {
        for id in set.ids() {
            let a = cal_u_detailed(&set, id, set.get(id).deadline());
            for d in [&a.initial, &a.finalized] {
                // At most one transmission per column.
                for t in 1..=d.horizon() {
                    let allocs = (0..d.rows().len())
                        .filter(|&r| d.slot(r, t) == Slot::Allocated)
                        .count();
                    prop_assert!(allocs <= 1, "column {} double-booked", t);
                    prop_assert_eq!(d.free_for_target(t), allocs == 0);
                }
                // Instances stay inside their windows and carry at most
                // C slots, in order.
                for row in d.rows() {
                    let c = set.get(row.stream).max_length();
                    for inst in &row.instances {
                        prop_assert!(inst.slots.len() as u64 <= c);
                        prop_assert!(inst.slots.windows(2).all(|w| w[0] < w[1]));
                        for &s in &inst.slots {
                            prop_assert!(s >= inst.window_start && s <= inst.window_end);
                        }
                        if inst.removed {
                            prop_assert!(inst.slots.is_empty());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn feasibility_report_consistent_with_bounds(set in stream_sets()) {
        let report = determine_feasibility(&set);
        for id in set.ids() {
            let expected = cal_u(&set, id, set.get(id).deadline());
            prop_assert_eq!(report.bound(id), expected);
            let feasible_here = expected.meets(set.get(id).deadline());
            prop_assert_eq!(report.infeasible.contains(&id), !feasible_here);
        }
        prop_assert_eq!(report.is_feasible(), report.infeasible.is_empty());
    }

    #[test]
    fn analysis_is_deterministic(set in stream_sets()) {
        for id in set.ids() {
            let a = cal_u(&set, id, set.get(id).deadline());
            let b = cal_u(&set, id, set.get(id).deadline());
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn xy_routed_sets_are_deadlock_free(set in stream_sets()) {
        // The theorem the paper leans on: X-Y routing admits no cyclic
        // channel dependency — under per-priority VCs *or* a single
        // shared VC — for any stream set whatsoever.
        prop_assert!(is_deadlock_free(&set, None));
        prop_assert!(single_vc_cycle(&set, None).is_none());
    }

    #[test]
    fn explanation_accounts_for_every_interference_slot(set in stream_sets()) {
        for id in set.ids() {
            let a = cal_u_detailed(&set, id, set.get(id).deadline());
            let e = explain(&set, &a);
            if let DelayBound::Bounded(u) = a.bound {
                prop_assert_eq!(e.interference(), u - set.get(id).latency, "{:?}", id);
                // Contributions are sorted by decreasing share.
                prop_assert!(e
                    .contributions
                    .windows(2)
                    .all(|w| w[0].slots >= w[1].slots));
            }
        }
    }

    #[test]
    fn raising_priority_never_hurts_self(set in stream_sets()) {
        // Bump stream 0's priority above everyone: its bound can only
        // shrink (it sheds blockers and gains none it didn't have).
        let id = StreamId(0);
        let before = cal_u(&set, id, 10_000);
        let max_p = set.iter().map(|s| s.priority()).max().unwrap();
        let parts: Vec<(StreamSpec, wormnet_topology::Path)> = set
            .iter()
            .map(|s| {
                let mut spec = s.spec.clone();
                if s.id == id {
                    spec.priority = max_p + 1;
                }
                (spec, s.path.clone())
            })
            .collect();
        let boosted = StreamSet::from_parts(parts).unwrap();
        let after = cal_u(&boosted, id, 10_000);
        match (before, after) {
            (DelayBound::Bounded(b), DelayBound::Bounded(a)) => {
                prop_assert!(a <= b, "boosting priority worsened bound {} -> {}", b, a);
            }
            (DelayBound::Exceeded, _) => {}
            (DelayBound::Bounded(_), DelayBound::Exceeded) => {
                prop_assert!(false, "boosting priority lost the bound");
            }
        }
        // With the unique top priority, nothing blocks it at all.
        prop_assert_eq!(after, DelayBound::Bounded(boosted.get(id).latency));
    }
}
