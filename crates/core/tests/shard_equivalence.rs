//! Equivalence properties of the sharded admission plane: after *any*
//! admit/remove sequence — including cross-shard streams, rejections of
//! every flavor (which must roll back completely), and removals (which
//! shift dense ids) — a [`ShardedController`] must be bit-identical to
//! a monolithic [`AdmissionController`] run over the same sequence:
//! same verdicts, same rejection diagnostics (same blocker/victim ids
//! in the same order), same cached bounds, same parts.
//!
//! This is the property the server's locked plane inherits: its journal
//! stays bit-identical to a serial order because every individual
//! decision already is.

use proptest::prelude::*;
use rtwc_core::{AdmissionController, ShardMap, ShardedController, StreamId, StreamSpec};
use wormnet_topology::{Mesh, NodeId, Routing, XyRouting};

/// One step of a random plane workload: admit the given spec, or (when
/// `remove` is set and something is admitted) remove the stream whose
/// dense id is `victim` modulo the current size.
#[derive(Clone, Debug)]
struct Step {
    remove: bool,
    victim: u32,
    spec: (u32, u32, u32, u64, u64, u64),
}

/// Deadline multiplier in `spec.5` skews the mix: small multipliers
/// produce `CandidateInfeasible`/`BreaksExisting` rejections (whose
/// diagnostics must match id-for-id), large ones produce admissions —
/// including long row/column spanners that cross region boundaries on
/// the 8x8 mesh's 2x2 and 4x4 grids.
fn steps() -> impl Strategy<Value = Vec<Step>> {
    let step = (
        prop::bool::ANY,
        0u32..64,
        (0u32..64, 0u32..64, 1u32..5, 10u64..60, 1u64..8, 1u64..5)
            .prop_filter("distinct endpoints", |(s, d, ..)| s != d),
    )
        .prop_map(|(remove, victim, spec)| Step {
            remove,
            victim,
            spec,
        });
    prop::collection::vec(step, 1..=16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bit-identity of the sharded plane against the monolithic
    /// controller at 1, 4, and 16 shards simultaneously.
    #[test]
    fn sharded_plane_is_bit_identical_to_monolithic(steps in steps()) {
        let mesh = Mesh::mesh2d(8, 8);
        let mut mono = AdmissionController::new();
        let mut planes: Vec<ShardedController> = [1usize, 4, 16]
            .iter()
            .map(|&n| ShardedController::new(ShardMap::regions(&mesh, n)))
            .collect();
        let mut cross_seen = 0u64;
        for step in steps {
            if step.remove && !mono.is_empty() {
                let victim = StreamId(step.victim % mono.len() as u32);
                mono.remove(victim);
                for plane in &mut planes {
                    plane.remove(victim);
                }
            } else {
                let (s, d, p, t, c, dm) = step.spec;
                let spec = StreamSpec::new(NodeId(s), NodeId(d), p, t, c, dm * t);
                let path = XyRouting.route(&mesh, spec.source, spec.dest).unwrap();
                let expect = mono.admit(spec.clone(), path.clone());
                for plane in &mut planes {
                    let got = plane.admit_detailed(spec.clone(), path.clone());
                    match (&expect, got) {
                        (Ok(id), Ok(a)) => {
                            prop_assert_eq!(*id, a.id, "dense ids diverged");
                            prop_assert_eq!(
                                mono.bound(*id).value().unwrap(), a.bound,
                                "candidate bound diverged"
                            );
                            if a.cross {
                                cross_seen += 1;
                            }
                        }
                        (Err(e), Err(g)) => prop_assert_eq!(e, &g, "diagnostics diverged"),
                        (a, b) => prop_assert!(false, "verdicts diverged: {a:?} vs {b:?}"),
                    }
                }
            }
            for plane in &planes {
                let plane_bounds = plane.bounds();
                let plane_parts = plane.parts();
                prop_assert_eq!(mono.bounds(), plane_bounds.as_slice());
                prop_assert_eq!(mono.parts(), plane_parts.as_slice());
                prop_assert_eq!(mono.len(), plane.len());
            }
        }
        // Shard membership invariant: every live stream is resident in
        // exactly the shards its route touches, every replica carries
        // the same (globally computed) bound, and key order is the
        // admission order.
        for plane in &planes {
            let parts = plane.parts();
            let bounds = plane.bounds();
            for (i, (_, path)) in parts.iter().enumerate() {
                let key = live_key(plane, i);
                let owners = plane.map().shards_of(path.links().iter().copied());
                for (s, shard) in plane.shards().iter().enumerate() {
                    let sid = rtwc_core::ShardId(s as u32);
                    match shard.member(key) {
                        Some((_, mpath, b, _)) => {
                            prop_assert!(
                                owners.contains(&sid),
                                "stream resident outside its owner shards"
                            );
                            prop_assert_eq!(mpath, path, "replica path diverged");
                            prop_assert_eq!(b, bounds[i], "replica bound diverged");
                        }
                        None => prop_assert!(
                            !owners.contains(&sid),
                            "stream missing from an owner shard"
                        ),
                    }
                }
            }
        }
        // Keep the workload honest: over the whole suite, cross-shard
        // admissions must actually occur (not asserted per-case since a
        // single short sequence may legitimately stay local).
        let _ = cross_seen;
    }
}

/// The key of the `i`-th live stream (keys are allocated monotonically,
/// so the sorted key list *is* the admission order).
fn live_key(plane: &ShardedController, i: usize) -> u64 {
    let mut keys: Vec<u64> = plane
        .shards()
        .iter()
        .flat_map(|s| s.keys().iter().copied())
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys[i]
}
