//! Golden-output test: the rendered analysis of the paper example's
//! lowest-priority stream, pinned slot by slot. If the diagram
//! generator, the modifier, or the renderer drifts, this fails with a
//! readable diff.

use rtwc_core::{cal_u_detailed, render_diagram, StreamId, StreamSet, StreamSpec};
use wormnet_topology::{Mesh, Topology, XyRouting};

fn paper_set() -> StreamSet {
    let mesh = Mesh::mesh2d(10, 10);
    let node = |x: u32, y: u32| mesh.node_at(&[x, y]).unwrap();
    StreamSet::resolve(
        &mesh,
        &XyRouting,
        &[
            StreamSpec::new(node(7, 3), node(7, 7), 5, 15, 4, 15),
            StreamSpec::new(node(1, 1), node(5, 4), 4, 10, 2, 10),
            StreamSpec::new(node(2, 1), node(7, 5), 3, 40, 4, 40),
            StreamSpec::new(node(4, 1), node(8, 5), 2, 45, 9, 45),
            StreamSpec::new(node(6, 1), node(9, 3), 1, 50, 6, 50),
        ],
    )
    .unwrap()
}

/// Paper Figure 7 — the initial (all-direct) diagram of HP_4.
/// Legend: `#` transmitting, `w` preempted, `x` blocked by a higher
/// row, `.` free; the `M4*` row marks the slots usable by the target.
/// The slot content of the first instances is independently pinned by
/// `paper_example.rs::figure7_initial_diagram_of_hp4`; the free columns
/// are exactly the paper's "7 free time slots" {28-30, 37-40}.
const FIGURE7: &str = "              10        20        30        40        50
M0    ####...........####...........####...........####.
M1    wwww##....##...xxxx.##........wwww##....##...xxxx.
M2    wwwwww####xx...xxxx.xx........xxxxxx....ww###wwww#
M3    wwwwwwwwwwww###wwww#ww#####...xxxxxx....xxxxxwwwww
M4*   xxxxxxxxxxxxxxxxxxxxxxxxxxx...xxxxxx....xxxxxxxxxx
";

/// Paper Figure 9 — after `Modify_Diagram` removes M0's instances 2-3
/// and M1's instance 4 (M0's 4th and M1's 5th instances *stay*: M2 is
/// present — waiting — inside their spans); M3's first instance
/// compacts to 13-20 + 23, and the 10 free slots for L = 10 accumulate
/// by slot 33 = U_4.
const FIGURE9: &str = "              10        20        30        40        50
M0    ####.........................................####.
M1    wwww##....##........##..................##...xxxx.
M2    wwwwww####xx........xx..................ww###wwww#
M3    wwwwwwwwwwww########ww#.................xxxxxwwwww
M4*   xxxxxxxxxxxxxxxxxxxxxxx.................xxxxxxxxxx
";

#[test]
fn figure7_golden() {
    let set = paper_set();
    let a = cal_u_detailed(&set, StreamId(4), 50);
    let text = render_diagram(&set, &a.initial);
    assert_eq!(text, FIGURE7, "\nrendered:\n{text}");
}

#[test]
fn figure9_golden() {
    let set = paper_set();
    let a = cal_u_detailed(&set, StreamId(4), 50);
    let text = render_diagram(&set, &a.finalized);
    assert_eq!(text, FIGURE9, "\nrendered:\n{text}");
}
