//! Equivalence properties of the interference index: the incrementally
//! maintained index inside the admission controller must stay equal to
//! a from-scratch [`InterferenceIndex::build`] after *any* admit/remove
//! sequence, and the indexed HP-set construction must stay
//! byte-identical to the legacy pairwise oracle.

use proptest::prelude::*;
use rtwc_core::{
    determine_feasibility, generate_hp_oracle, generate_hp_sets, generate_hp_sets_oracle,
    AdmissionController, InterferenceIndex, StreamId, StreamSet, StreamSpec,
};
use wormnet_topology::{Mesh, NodeId, Routing, XyRouting};

/// Strategy: a random stream set of 2..=10 streams on an 8x8 mesh.
fn stream_sets() -> impl Strategy<Value = StreamSet> {
    let spec = (0u32..64, 0u32..64, 1u32..5, 10u64..60, 1u64..8)
        .prop_filter("distinct endpoints", |(s, d, ..)| s != d);
    prop::collection::vec(spec, 2..=10).prop_map(|raw| {
        let mesh = Mesh::mesh2d(8, 8);
        let specs: Vec<StreamSpec> = raw
            .into_iter()
            .map(|(s, d, p, t, c)| StreamSpec::new(NodeId(s), NodeId(d), p, t, c, 4 * t))
            .collect();
        StreamSet::resolve(&mesh, &XyRouting, &specs).unwrap()
    })
}

/// One step of a random controller workload: admit the given spec, or
/// (when `remove` is set and something is admitted) remove the stream
/// whose dense id is `victim` modulo the current size.
#[derive(Clone, Debug)]
struct Step {
    remove: bool,
    victim: u32,
    spec: (u32, u32, u32, u64, u64),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    let step = (
        prop::bool::ANY,
        0u32..64,
        (0u32..64, 0u32..64, 1u32..5, 10u64..60, 1u64..8)
            .prop_filter("distinct endpoints", |(s, d, ..)| s != d),
    )
        .prop_map(|(remove, victim, spec)| Step {
            remove,
            victim,
            spec,
        });
    prop::collection::vec(step, 1..=12)
}

/// The controller's index and cached bounds, checked against
/// from-scratch rebuilds of everything.
fn assert_controller_consistent(ctl: &AdmissionController) {
    match ctl.set() {
        None => assert!(ctl.index().is_empty()),
        Some(set) => {
            assert_eq!(
                ctl.index(),
                &InterferenceIndex::build(set),
                "incremental index diverged from a fresh build"
            );
            let fresh = determine_feasibility(set);
            for id in set.ids() {
                assert_eq!(ctl.bound(id), fresh.bound(id), "{id} cached bound");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After every step of a random admit/remove sequence — including
    /// rejected admissions, which must roll back completely — the
    /// controller's incrementally maintained index equals a fresh
    /// `InterferenceIndex::build` of the admitted set, and every cached
    /// bound equals a fresh offline analysis.
    #[test]
    fn controller_index_equals_fresh_build(steps in steps()) {
        let mesh = Mesh::mesh2d(8, 8);
        let mut ctl = AdmissionController::new();
        for step in steps {
            if step.remove && !ctl.is_empty() {
                let victim = StreamId(step.victim % ctl.len() as u32);
                ctl.remove(victim);
            } else {
                let (s, d, p, t, c) = step.spec;
                let spec = StreamSpec::new(NodeId(s), NodeId(d), p, t, c, 4 * t);
                let path = XyRouting.route(&mesh, spec.source, spec.dest).unwrap();
                // Rejections are fine: the controller must be unchanged,
                // which the consistency check below still verifies.
                let _ = ctl.admit(spec, path);
            }
            assert_controller_consistent(&ctl);
        }
    }

    /// The indexed HP-set construction is byte-identical to the legacy
    /// pairwise oracle: same rows, same row order, same element order,
    /// same blocking modes, same intermediate sets.
    #[test]
    fn indexed_hp_sets_match_oracle_byte_for_byte(set in stream_sets()) {
        prop_assert_eq!(generate_hp_sets(&set), generate_hp_sets_oracle(&set));
        let index = InterferenceIndex::build(&set);
        for id in set.ids() {
            prop_assert_eq!(index.hp_set(&set, id), generate_hp_oracle(&set, id));
        }
    }

    /// The controller's live index produces oracle-identical HP sets at
    /// every point of a random workload (i.e. incremental maintenance
    /// never perturbs what the analysis reads off the index).
    #[test]
    fn live_index_hp_sets_match_oracle(steps in steps()) {
        let mesh = Mesh::mesh2d(8, 8);
        let mut ctl = AdmissionController::new();
        for step in steps {
            if step.remove && !ctl.is_empty() {
                ctl.remove(StreamId(step.victim % ctl.len() as u32));
            } else {
                let (s, d, p, t, c) = step.spec;
                let spec = StreamSpec::new(NodeId(s), NodeId(d), p, t, c, 4 * t);
                let path = XyRouting.route(&mesh, spec.source, spec.dest).unwrap();
                let _ = ctl.admit(spec, path);
            }
            if let Some(set) = ctl.set() {
                prop_assert_eq!(ctl.index().hp_sets(set), generate_hp_sets_oracle(set));
            }
        }
    }
}
