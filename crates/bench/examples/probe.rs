use rtwc_bench::{run_experiment, ExperimentConfig};
fn main() {
    for (c, t) in [((1u64, 40u64), (40u64, 90u64)), ((1, 40), (60, 150))] {
        println!("C={c:?} T={t:?}");
        for (n, p) in [(20usize, 1u32), (20, 5), (60, 1), (60, 10)] {
            let mut cfg = ExperimentConfig::table(n, p, 4);
            cfg.c_range = c;
            cfg.t_range = t;
            let rows = run_experiment(&cfg);
            let cells: Vec<String> = rows
                .iter()
                .filter(|r| r.streams > 0)
                .map(|r| {
                    format!(
                        "P{}: m={:.3}/p={:.3}",
                        r.priority, r.mean_ratio, r.pooled_ratio
                    )
                })
                .collect();
            println!("  {n}x{p}: {}", cells.join("  "));
        }
    }
}
