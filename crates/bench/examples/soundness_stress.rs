//! Stress: many seeds, assert max actual <= U under preemptive policy.
use rtwc_core::DelayBound;
use rtwc_workload::{generate, PaperWorkloadConfig};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::Topology;

fn main() {
    let mut checked = 0u64;
    let mut violations = 0u64;
    for seed in 0..40u64 {
        for &(n, p) in &[(20usize, 1u32), (20, 5), (60, 1), (60, 10), (40, 3)] {
            let w = generate(PaperWorkloadConfig {
                num_streams: n,
                priority_levels: p,
                seed: seed * 1000 + n as u64 + p as u64,
                ..PaperWorkloadConfig::default()
            });
            let cfg = SimConfig::paper(p as usize).with_cycles(30_000, 0);
            let mut sim = Simulator::new(w.mesh.num_links(), &w.set, cfg).unwrap();
            sim.run();
            for id in w.set.ids() {
                if let DelayBound::Bounded(u) = w.bounds[id.index()] {
                    if let Some(max) = sim.stats().max_latency(id, 0) {
                        checked += 1;
                        if max > u {
                            violations += 1;
                            println!(
                                "VIOLATION seed={seed} {n}x{p} {id:?}: max {max} > U {u} (P={} T={} C={} L={})",
                                w.set.get(id).priority(), w.set.get(id).period(),
                                w.set.get(id).max_length(), w.set.get(id).latency
                            );
                        }
                    }
                }
            }
        }
    }
    println!("checked {checked} stream-bounds, {violations} violations");
}
