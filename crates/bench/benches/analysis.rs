//! Criterion micro-benchmarks of the feasibility analysis: HP-set
//! construction and `Cal_U` as the stream count and priority-level
//! count scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtwc_core::{cal_u, determine_feasibility, determine_feasibility_parallel, generate_hp_sets};
use rtwc_workload::{generate, PaperWorkloadConfig};

fn workload(streams: usize, plevels: u32, seed: u64) -> rtwc_workload::GeneratedWorkload {
    generate(PaperWorkloadConfig {
        num_streams: streams,
        priority_levels: plevels,
        seed,
        ..PaperWorkloadConfig::default()
    })
}

fn bench_hp_sets(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate_hp_sets");
    for &n in &[10usize, 20, 40, 60] {
        let w = workload(n, 4, 11);
        g.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| generate_hp_sets(&w.set))
        });
    }
    g.finish();
}

fn bench_cal_u(c: &mut Criterion) {
    let mut g = c.benchmark_group("cal_u_lowest_priority");
    for &n in &[10usize, 20, 40, 60] {
        let w = workload(n, 4, 13);
        // The lowest-priority stream has the largest HP set.
        let target = *w.set.by_decreasing_priority().last().unwrap();
        let horizon = w.set.get(target).deadline();
        g.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| cal_u(&w.set, target, horizon))
        });
    }
    g.finish();
}

fn bench_feasibility(c: &mut Criterion) {
    let mut g = c.benchmark_group("determine_feasibility");
    g.sample_size(10);
    for &(n, p) in &[(20usize, 1u32), (20, 5), (60, 10)] {
        let w = workload(n, p, 17);
        g.bench_with_input(
            BenchmarkId::new("streams_plevels", format!("{n}x{p}")),
            &w,
            |b, w| b.iter(|| determine_feasibility(&w.set)),
        );
    }
    g.finish();
}

fn bench_feasibility_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("determine_feasibility_parallel");
    g.sample_size(10);
    let w = workload(60, 10, 17);
    for &threads in &[1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &w, |b, w| {
            b.iter(|| determine_feasibility_parallel(&w.set, threads))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_hp_sets,
    bench_cal_u,
    bench_feasibility,
    bench_feasibility_parallel
);
criterion_main!(benches);
