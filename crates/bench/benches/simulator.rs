//! Criterion micro-benchmarks of the flit-level simulator: cycles per
//! second under the paper's workloads and under each arbitration
//! policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtwc_workload::{generate, PaperWorkloadConfig};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::Topology;

fn bench_paper_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_3000_cycles");
    g.sample_size(10);
    for &(n, p) in &[(20usize, 1u32), (20, 5), (60, 10)] {
        let w = generate(PaperWorkloadConfig {
            num_streams: n,
            priority_levels: p,
            seed: 23,
            ..PaperWorkloadConfig::default()
        });
        g.bench_with_input(
            BenchmarkId::new("streams_plevels", format!("{n}x{p}")),
            &w,
            |b, w| {
                b.iter(|| {
                    let cfg =
                        SimConfig::paper(w.config.priority_levels as usize).with_cycles(3_000, 0);
                    let mut sim = Simulator::new(w.mesh.num_links(), &w.set, cfg).unwrap();
                    sim.run().total_completed()
                })
            },
        );
    }
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("policies_3000_cycles");
    g.sample_size(10);
    let w = generate(PaperWorkloadConfig {
        num_streams: 20,
        priority_levels: 4,
        seed: 29,
        ..PaperWorkloadConfig::default()
    });
    let configs = [
        ("preemptive", SimConfig::paper(4)),
        ("li", SimConfig::li(4)),
        ("classic", SimConfig::classic()),
    ];
    for (name, cfg) in configs {
        let cfg = cfg.with_cycles(3_000, 0);
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut sim = Simulator::new(w.mesh.num_links(), &w.set, cfg.clone()).unwrap();
                sim.run().total_completed()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_paper_workloads, bench_policies);
criterion_main!(benches);
