//! Criterion micro-benchmarks of interference-index HP-set
//! construction: the legacy pairwise oracle vs building the index and
//! reading every HP set off it, plus the index-maintenance primitives
//! the admission fast path leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtwc_bench::contended_mesh_set;
use rtwc_core::{generate_hp_sets_oracle, InterferenceIndex};

fn bench_hpset_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("hpset_index");
    g.sample_size(10);
    for &n in &[100usize, 400] {
        let set = contended_mesh_set(n);
        g.bench_with_input(BenchmarkId::new("oracle", n), &set, |b, s| {
            b.iter(|| generate_hp_sets_oracle(s))
        });
        g.bench_with_input(BenchmarkId::new("build_plus_hp_sets", n), &set, |b, s| {
            b.iter(|| {
                let index = InterferenceIndex::build(s);
                index.hp_sets(s)
            })
        });
        let index = InterferenceIndex::build(&set);
        g.bench_with_input(BenchmarkId::new("hp_sets_prebuilt", n), &set, |b, s| {
            b.iter(|| index.hp_sets(s))
        });
        g.bench_with_input(BenchmarkId::new("insert_remove_last", n), &set, |b, s| {
            let mut idx = InterferenceIndex::build(s);
            let last = s.iter().last().expect("nonempty set");
            b.iter(|| {
                idx.remove_last();
                idx.insert_last(last);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hpset_index);
criterion_main!(benches);
