//! Criterion micro-benchmarks of the admission controller (incremental
//! vs full re-analysis) and of the routing algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtwc_core::{determine_feasibility, AdmissionController, StreamSet, StreamSpec};
use wormnet_topology::{BfsRouting, Mesh, NodeId, Path, Routing, Topology, XyRouting};

/// A deterministic set of admissible requests spread over the mesh.
fn requests(mesh: &Mesh, n: usize) -> Vec<(StreamSpec, Path)> {
    (0..n)
        .map(|i| {
            let w = mesh.dims()[0];
            let h = mesh.dims()[1];
            let sx = (i as u32 * 3) % w;
            let sy = (i as u32 * 5) % h;
            let dx = (sx + 1 + (i as u32 % (w - 1))) % w;
            let dy = (sy + 2) % h;
            let s = mesh.node_at(&[sx, sy]).unwrap();
            let d = mesh.node_at(&[dx, dy]).unwrap();
            let (s, d) = if s == d {
                (s, NodeId((d.0 + 1) % mesh.num_nodes() as u32))
            } else {
                (s, d)
            };
            let path = XyRouting.route(mesh, s, d).unwrap();
            let priority = (i as u32 % 4) + 1;
            (
                StreamSpec::new(s, d, priority, 500 + (i as u64 * 17) % 300, 8, 800),
                path,
            )
        })
        .collect()
}

fn bench_admission(c: &mut Criterion) {
    let mesh = Mesh::mesh2d(10, 10);
    let mut g = c.benchmark_group("admission");
    g.sample_size(10);
    for &n in &[10usize, 20, 40] {
        let reqs = requests(&mesh, n);
        g.bench_with_input(BenchmarkId::new("incremental", n), &reqs, |b, reqs| {
            b.iter(|| {
                let mut ctl = AdmissionController::new();
                for (spec, path) in reqs {
                    let _ = ctl.admit(spec.clone(), path.clone());
                }
                ctl.recomputations()
            })
        });
        g.bench_with_input(BenchmarkId::new("full_reanalysis", n), &reqs, |b, reqs| {
            b.iter(|| {
                // What a naive controller does: rebuild + full analysis
                // after every request.
                let mut parts: Vec<(StreamSpec, Path)> = Vec::new();
                let mut verdicts = 0usize;
                for (spec, path) in reqs {
                    parts.push((spec.clone(), path.clone()));
                    let set = StreamSet::from_parts(parts.clone()).unwrap();
                    if determine_feasibility(&set).is_feasible() {
                        verdicts += 1;
                    } else {
                        parts.pop();
                    }
                }
                verdicts
            })
        });
    }
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mesh = Mesh::mesh2d(16, 16);
    let pairs: Vec<(NodeId, NodeId)> = (0..64u32)
        .map(|i| (NodeId(i * 4 % 256), NodeId((i * 7 + 13) % 256)))
        .filter(|(a, b)| a != b)
        .collect();
    let mut g = c.benchmark_group("routing_64_pairs_16x16");
    g.bench_function("xy", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(s, d)| XyRouting.route(&mesh, s, d).unwrap().hops())
                .sum::<u32>()
        })
    });
    let bfs = BfsRouting::new();
    g.bench_function("bfs", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(s, d)| bfs.route(&mesh, s, d).unwrap().hops())
                .sum::<u32>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_admission, bench_routing);
criterion_main!(benches);
