//! Criterion micro-benchmarks of the two `Generate_Init_Diagram`
//! kernels and the bound-only scratch arena, over horizon x HP-size.
//!
//! `cargo bench -p rtwc-bench --bench diagram_kernel`. For the
//! machine-readable speedup record see the `diagram_bench` binary,
//! which writes `results/BENCH_diagram.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtwc_bench::contended_line_set;
use rtwc_core::{generate_hp, AnalysisScratch, RemovedInstances, TimingDiagram};

const HORIZONS: [u64; 3] = [100, 1_000, 10_000];
const HP_SIZES: [usize; 3] = [4, 16, 64];

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("diagram_generate");
    g.sample_size(20);
    for &n in &HP_SIZES {
        let (set, target) = contended_line_set(n);
        let hp = generate_hp(&set, target);
        let none = RemovedInstances::none();
        for &h in &HORIZONS {
            g.bench_with_input(
                BenchmarkId::new("bitset", format!("h{h}_n{n}")),
                &h,
                |b, &h| b.iter(|| TimingDiagram::generate(&set, &hp, h, &none)),
            );
            g.bench_with_input(
                BenchmarkId::new("legacy", format!("h{h}_n{n}")),
                &h,
                |b, &h| b.iter(|| TimingDiagram::generate_legacy(&set, &hp, h, &none)),
            );
        }
    }
    g.finish();
}

fn bench_scratch_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("diagram_scratch_bound");
    g.sample_size(20);
    for &n in &HP_SIZES {
        let (set, target) = contended_line_set(n);
        let hp = generate_hp(&set, target);
        let mut scratch = AnalysisScratch::new();
        for &h in &HORIZONS {
            g.bench_with_input(
                BenchmarkId::new("scratch", format!("h{h}_n{n}")),
                &h,
                |b, &h| b.iter(|| scratch.delay_bound(&set, &hp, h)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_generate, bench_scratch_bound);
criterion_main!(benches);
