//! Criterion micro-benchmarks of the admission service: the in-process
//! request path (parse → dispatch → render, no sockets) and full TCP
//! round trips against a live server on loopback.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtwc_server::{AdmissionService, Client, Server};
use std::sync::Arc;
use wormnet_topology::Mesh;

/// A service pre-loaded with `n` admitted streams on separate rows and
/// columns, so queries hit a realistically sized set.
fn loaded_service(n: usize) -> Arc<AdmissionService> {
    let svc = Arc::new(AdmissionService::new(Mesh::mesh2d(16, 16)));
    for i in 0..n {
        let row = (i % 16) as u32;
        let shift = (i / 16) as u32;
        let line = format!(
            "ADMIT {},{row} {},{row} {} {} 4",
            shift % 8,
            8 + shift % 8,
            1 + i % 4,
            400 + i * 13
        );
        let (resp, _) = svc.dispatch_line(&line);
        assert!(
            rtwc_server::render_response(&resp).contains("admitted"),
            "seed stream {i} refused"
        );
    }
    svc
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_dispatch");
    for &n in &[16usize, 64] {
        let svc = loaded_service(n);
        g.bench_with_input(BenchmarkId::new("query", n), &svc, |b, svc| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % n as u64;
                svc.dispatch_line(&format!("QUERY {i}")).0
            })
        });
        g.bench_with_input(BenchmarkId::new("snapshot", n), &svc, |b, svc| {
            b.iter(|| svc.dispatch_line("SNAPSHOT").0)
        });
        g.bench_with_input(BenchmarkId::new("admit_remove", n), &svc, |b, svc| {
            // One admit + its removal per iteration, so the set size
            // stays at `n` across samples.
            b.iter(|| {
                let (resp, _) = svc.dispatch_line("ADMIT 0,15 7,15 1 900 2");
                let line = rtwc_server::render_response(&resp);
                let id = line
                    .split("\"id\":")
                    .nth(1)
                    .and_then(|s| s.split(&[',', '}']).next())
                    .and_then(|s| s.parse::<u64>().ok())
                    .expect("admit succeeds");
                svc.dispatch_line(&format!("REMOVE {id}")).0
            })
        });
    }
    g.finish();
}

fn bench_tcp_round_trip(c: &mut Criterion) {
    let svc = loaded_service(32);
    let server = Server::bind(Arc::clone(&svc), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle().unwrap();
    let join = std::thread::spawn(move || server.run());

    let mut g = c.benchmark_group("service_tcp");
    g.sample_size(20);
    let mut client = Client::connect(&addr).unwrap();
    g.bench_function("query_round_trip", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 32;
            client.send(&format!("QUERY {i}")).unwrap()
        })
    });
    g.bench_function("stats_round_trip", |b| {
        b.iter(|| client.send("STATS").unwrap())
    });
    g.finish();
    drop(client);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

criterion_group!(benches, bench_dispatch, bench_tcp_round_trip);
criterion_main!(benches);
