//! Criterion micro-benchmarks of the sharded admission plane:
//! steady-state admit cost through the monolithic controller vs the
//! region-sharded one at several shard counts.
//!
//! The macro-scale sweep (throughput, percentiles, memory, the
//! bit-identity assertion) lives in `rtwc bench-shard`
//! (`results/BENCH_shard.json`); this bench isolates the per-admit
//! cost of the two code paths over an identical pre-seeded resident
//! set, so a regression in either path shows up without running the
//! full sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtwc_core::{AdmissionController, ShardMap, ShardedController, StreamId, StreamSpec};
use wormnet_topology::{Mesh, Path, Routing, Topology, XyRouting};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic locality-bounded requests over the mesh (at most
/// `locality` hops), the same workload shape as `rtwc bench-shard`.
fn requests(mesh: &Mesh, n: usize, locality: i64, seed: u64) -> Vec<(StreamSpec, Path)> {
    let (w, h) = (mesh.dims()[0] as i64, mesh.dims()[1] as i64);
    let mut rng = seed;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let sx = (splitmix64(&mut rng) % w as u64) as i64;
        let sy = (splitmix64(&mut rng) % h as u64) as i64;
        let dx = (splitmix64(&mut rng) % (2 * locality as u64 + 1)) as i64 - locality;
        let rem = locality - dx.abs();
        let dy = (splitmix64(&mut rng) % (2 * rem as u64 + 1)) as i64 - rem;
        if dx == 0 && dy == 0 {
            continue;
        }
        let (tx, ty) = (sx + dx, sy + dy);
        if tx < 0 || ty < 0 || tx >= w || ty >= h {
            continue;
        }
        let s = mesh.node_at(&[sx as u32, sy as u32]).unwrap();
        let d = mesh.node_at(&[tx as u32, ty as u32]).unwrap();
        let priority = 1 + (splitmix64(&mut rng) % 4) as u32;
        let length = 2 + splitmix64(&mut rng) % 6;
        let period = 50 + 10 * (splitmix64(&mut rng) % 8);
        let spec = StreamSpec::new(s, d, priority, period, length, period);
        let path = XyRouting.route(mesh, s, d).unwrap();
        out.push((spec, path));
    }
    out
}

fn bench_sharded_admit(c: &mut Criterion) {
    let mesh = Mesh::mesh2d(64, 64);
    const RESIDENT: usize = 512;
    const PROBES: usize = 32;
    let seedset = requests(&mesh, RESIDENT, 4, 42);
    let probes = requests(&mesh, PROBES, 4, 1000);

    let mut g = c.benchmark_group("sharded_admit");
    g.sample_size(10);

    // Monolithic: admit PROBES candidates into a pre-seeded resident
    // set, removing each immediately so the set stays fixed.
    g.bench_function("monolithic", |b| {
        let mut ctl = AdmissionController::new();
        for (spec, path) in &seedset {
            let _ = ctl.admit(spec.clone(), path.clone());
        }
        b.iter(|| {
            let mut admitted = 0u64;
            for (spec, path) in &probes {
                if let Ok(id) = ctl.admit(spec.clone(), path.clone()) {
                    admitted += 1;
                    ctl.remove(id);
                }
            }
            admitted
        })
    });

    for &shards in &[1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| {
                let mut ctl = ShardedController::new(ShardMap::regions(&mesh, shards));
                for (spec, path) in &seedset {
                    let _ = ctl.admit(spec.clone(), path.clone());
                }
                b.iter(|| {
                    let mut admitted = 0u64;
                    for (spec, path) in &probes {
                        if let Ok(id) = ctl.admit(spec.clone(), path.clone()) {
                            admitted += 1;
                            ctl.remove(StreamId(id.0));
                        }
                    }
                    admitted
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_admit);
criterion_main!(benches);
