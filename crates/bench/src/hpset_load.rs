//! Synthetic contended-mesh workloads for the interference-index
//! benchmarks.
//!
//! The HP-set construction cost is driven by the number of streams and
//! how densely their routes overlap. The generator here scales the mesh
//! with the stream count so the *per-link* contention stays roughly
//! constant (a handful of streams per directed channel), which is the
//! regime a production admission service actually runs in: adding
//! streams grows the network, not the per-channel pile-up. Placement is
//! a deterministic LCG, so every run of every binary sees the same
//! workload.

use rtwc_core::{StreamSet, StreamSpec};
use wormnet_topology::{Mesh, Topology, XyRouting};

/// Deterministic 64-bit LCG (Knuth's MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The mesh a contended workload of `n` streams runs on: side scaled
/// with `sqrt(n)` so total channel supply grows with stream count.
pub fn contended_mesh(n: usize) -> Mesh {
    let side = ((n as f64 / 4.0).sqrt().ceil() as u32).max(6);
    Mesh::mesh2d(side, side)
}

/// `n` deterministic short-haul streams on [`contended_mesh`]: local
/// routes (1-3 hops per axis), 16 priority levels, periods in
/// `60..160`. Average per-link occupancy is a small constant, so the
/// interference neighborhood of any one stream stays bounded while the
/// set grows — the regime where the O(n³) pairwise HP construction is
/// pure overhead.
pub fn contended_mesh_specs(n: usize) -> (Mesh, Vec<StreamSpec>) {
    let mesh = contended_mesh(n);
    let side = mesh.dims()[0];
    let mut rng = Lcg(0x9E3779B97F4A7C15 ^ n as u64);
    let mut specs = Vec::with_capacity(n);
    for i in 0..n {
        let dx = 1 + rng.below(3) as u32;
        let dy = rng.below(3) as u32;
        let sx = rng.below((side - dx) as u64) as u32;
        let sy = rng.below((side - dy) as u64) as u32;
        let source = mesh.node_at(&[sx, sy]).expect("source on mesh");
        let dest = mesh.node_at(&[sx + dx, sy + dy]).expect("dest on mesh");
        let priority = 1 + (i as u32 % 16);
        let period = 60 + rng.below(100);
        let length = 1 + rng.below(4);
        // Deadline = 4T keeps almost every stream admissible, so the
        // incremental-admit benchmark exercises the accept path.
        specs.push(StreamSpec::new(
            source,
            dest,
            priority,
            period,
            length,
            4 * period,
        ));
    }
    (mesh, specs)
}

/// [`contended_mesh_specs`] resolved into a stream set.
pub fn contended_mesh_set(n: usize) -> StreamSet {
    let (mesh, specs) = contended_mesh_specs(n);
    StreamSet::resolve(&mesh, &XyRouting, &specs).expect("contended mesh set resolves")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtwc_core::{generate_hp_sets, generate_hp_sets_oracle, InterferenceIndex};

    #[test]
    fn workload_is_deterministic_and_resolves() {
        let a = contended_mesh_set(200);
        let b = contended_mesh_set(200);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.spec, y.spec);
        }
    }

    #[test]
    fn indexed_hp_sets_match_oracle_on_the_bench_load() {
        let set = contended_mesh_set(150);
        assert_eq!(generate_hp_sets(&set), generate_hp_sets_oracle(&set));
        let index = InterferenceIndex::build(&set);
        assert_eq!(index.hp_sets(&set), generate_hp_sets_oracle(&set));
    }

    #[test]
    fn contention_is_nontrivial() {
        // The workload is only a benchmark of interference machinery if
        // streams actually interfere: most streams must have a nonempty
        // HP set.
        let set = contended_mesh_set(300);
        let sets = generate_hp_sets(&set);
        let blocked = sets.iter().filter(|hp| !hp.is_empty()).count();
        assert!(blocked * 2 > set.len(), "{blocked}/300 blocked");
    }
}
