//! Plain-text rendering of experiment results in the paper's table
//! style.

use crate::harness::{ExperimentConfig, PriorityRow};
use std::fmt::Write as _;

/// Renders one table: header describing the experiment, then one row
/// per priority level (highest first) with the actual/U ratio, exactly
/// the quantity the paper's Tables 1-5 report.
pub fn render_table(title: &str, cfg: &ExperimentConfig, rows: &[PriorityRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{} priority level(s), {} message streams, {} seed(s), {} cycles ({} warm-up)",
        cfg.priority_levels,
        cfg.num_streams,
        cfg.seeds.len(),
        cfg.cycles,
        cfg.warmup
    );
    let _ = writeln!(
        out,
        "{:>9} | {:>8} | {:>11} | {:>9} | {:>9} | {:>9} | {:>8}",
        "priority", "ratio", "mean ratio", "min", "max", "streams", "excluded"
    );
    let _ = writeln!(out, "{}", "-".repeat(80));
    for r in rows {
        if r.streams == 0 {
            let _ = writeln!(
                out,
                "{:>9} | {:>8} | {:>11} | {:>9} | {:>9} | {:>9} | {:>8}",
                format!("P = {}", r.priority),
                "-",
                "-",
                "-",
                "-",
                0,
                r.excluded
            );
        } else {
            let _ = writeln!(
                out,
                "{:>9} | {:>8.3} | {:>11.3} | {:>9.3} | {:>9.3} | {:>9} | {:>8}",
                format!("P = {}", r.priority),
                r.pooled_ratio,
                r.mean_ratio,
                r.min_ratio,
                r.max_ratio,
                r.streams,
                r.excluded
            );
        }
    }
    let _ = writeln!(
        out,
        "('ratio' pools actual/U over the level's streams — the paper's quantity;\n\
         'mean ratio' averages per-stream ratios)"
    );
    out
}

/// Renders a compact one-line summary (used by the sweep binary).
pub fn summary_line(rows: &[PriorityRow]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            if r.streams == 0 {
                format!("P{}: -", r.priority)
            } else {
                format!("P{}: {:.3}", r.priority, r.pooled_ratio)
            }
        })
        .collect();
    cells.join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::PriorityRow;

    fn row(p: u32, ratio: f64, n: usize) -> PriorityRow {
        PriorityRow {
            priority: p,
            streams: n,
            excluded: 0,
            mean_ratio: ratio,
            pooled_ratio: ratio,
            min_ratio: ratio - 0.1,
            max_ratio: ratio + 0.1,
        }
    }

    #[test]
    fn table_contains_all_rows() {
        let cfg = ExperimentConfig::table(20, 2, 3);
        let rows = vec![row(2, 0.9, 11), row(1, 0.4, 9)];
        let text = render_table("Table X", &cfg, &rows);
        assert!(text.contains("Table X"));
        assert!(text.contains("P = 2"));
        assert!(text.contains("P = 1"));
        assert!(text.contains("0.900"));
        assert!(text.contains("0.400"));
    }

    #[test]
    fn empty_level_renders_dash() {
        let cfg = ExperimentConfig::table(20, 1, 1);
        let mut r = row(1, f64::NAN, 0);
        r.streams = 0;
        r.excluded = 4;
        let text = render_table("T", &cfg, &[r]);
        assert!(text.contains('-'));
        assert!(text.contains('4'));
    }

    #[test]
    fn summary_line_compact() {
        let rows = vec![row(2, 0.95, 5), row(1, 0.5, 5)];
        assert_eq!(summary_line(&rows), "P2: 0.950  P1: 0.500");
    }
}
