//! Baseline comparison (paper §3 / Fig. 2 motivation): the same traffic
//! under the paper's flit-level preemptive switching, Li & Mutka's
//! priority VC scheme, and classic non-prioritized wormhole switching.
//!
//! Two workloads:
//! 1. a *raw* (no period inflation) random mix heavy enough to create
//!    contention — reports the top class's latency normalized by its
//!    network latency (1.0 = perfect isolation);
//! 2. the crafted Fig. 2 inversion scenario — reports the victim's max
//!    normalized latency.

use rtwc_core::{StreamId, StreamSet};
use rtwc_workload::{generate, PaperWorkloadConfig, ScenarioBuilder};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::{Mesh, Topology};

/// Per-class mean of (message latency / stream network latency).
fn normalized_latency(
    mesh: &Mesh,
    set: &StreamSet,
    cfg: SimConfig,
    priority: u32,
) -> Option<(f64, f64)> {
    let mut sim = Simulator::new(mesh.num_links(), set, cfg).ok()?;
    sim.run();
    let stats = sim.stats();
    let mut norm = Vec::new();
    for id in set.ids() {
        let s = set.get(id);
        if s.priority() != priority {
            continue;
        }
        for lat in stats.latencies(id, 2_000) {
            norm.push(lat as f64 / s.latency as f64);
        }
    }
    if norm.is_empty() {
        return None;
    }
    let mean = norm.iter().sum::<f64>() / norm.len() as f64;
    let max = norm.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some((mean, max))
}

fn policies(plevels: usize) -> [(&'static str, SimConfig); 3] {
    [
        ("preemptive", SimConfig::paper(plevels)),
        ("li", SimConfig::li(plevels)),
        ("classic", SimConfig::classic()),
    ]
}

fn main() {
    let plevels = 4u32;
    println!("== Part 1: raw random workload (no period inflation; moderate contention) ==");
    println!(
        "{:>12} | {:>22} | {:>22}",
        "policy", "top class (mean/max)", "bottom class (mean/max)"
    );
    println!("{}", "-".repeat(64));
    for seed in [3u64, 5, 8] {
        let w = generate(PaperWorkloadConfig {
            num_streams: 30,
            priority_levels: plevels,
            inflate_periods: false,
            t_range: (120, 250),
            seed,
            ..PaperWorkloadConfig::default()
        });
        println!("seed {seed}:");
        for (name, cfg) in policies(plevels as usize) {
            let top = normalized_latency(&w.mesh, &w.set, cfg.clone(), plevels);
            let bot = normalized_latency(&w.mesh, &w.set, cfg, 1);
            let fmt = |x: Option<(f64, f64)>| match x {
                Some((m, mx)) => format!("{m:>9.2} / {mx:>8.2}"),
                None => "          -".to_string(),
            };
            println!("{:>12} | {:>22} | {:>22}", name, fmt(top), fmt(bot));
        }
    }

    println!();
    println!("== Part 2: the Fig. 2 inversion scenario (crafted) ==");
    let (mesh, set) = ScenarioBuilder::mesh2d(10, 10)
        .stream((1, 2), (8, 2), 1, 60, 40)
        .stream((2, 0), (8, 2), 1, 60, 40)
        .stream((2, 4), (7, 2), 1, 60, 40)
        .stream((0, 2), (9, 2), 4, 300, 6)
        .build_with_mesh()
        .unwrap();
    let victim = StreamId(3);
    let l = set.get(victim).latency;
    for (name, cfg) in policies(4) {
        let mut sim = Simulator::new(mesh.num_links(), &set, cfg.with_cycles(6_000, 0)).unwrap();
        sim.run();
        match sim.stats().max_latency(victim, 0) {
            Some(max) => println!(
                "{:>12}: victim max latency = {} ({:.2}x its network latency {})",
                name,
                max,
                max as f64 / l as f64,
                l
            ),
            None => println!("{name:>12}: victim never completed (permanent inversion)"),
        }
    }
    println!();
    println!(
        "Shape target: 'preemptive' pins the top class at ~1.0x its network\n\
         latency; 'classic' lets low-priority worms inflate it (priority\n\
         inversion); 'li' lands in between."
    );
}
