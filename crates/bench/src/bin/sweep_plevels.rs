//! Regenerates the paper's §5 headline claim: "we found that at least
//! |M|/4 priority levels are needed to have the ratio of the highest
//! priority level be higher than 0.9", and "when more priority levels
//! are allowed, the ratio value of the lowest priority one also
//! increases".
//!
//! Sweeps the number of priority levels for |M| in {20, 40, 60} and
//! prints, per point, the top and bottom priority-level ratios.

use rtwc_bench::{run_experiment, ExperimentConfig};

fn main() {
    println!("Priority-level sweep: top-class and bottom-class actual/U ratio");
    println!("(paper claim: top ratio crosses 0.9 around |M|/4 levels)");
    println!();
    for &streams in &[20usize, 40, 60] {
        println!("|M| = {streams}:");
        println!(
            "{:>8} | {:>10} | {:>10} | {:>14}",
            "plevels", "top ratio", "low ratio", "top > 0.9?"
        );
        println!("{}", "-".repeat(52));
        let mut crossover: Option<u32> = None;
        let candidate_levels: Vec<u32> = [1u32, 2, 3, 4, 5, 6, 8, 10, 12, 15, 20]
            .into_iter()
            .filter(|&p| p as usize <= streams)
            .collect();
        for plevels in candidate_levels {
            let cfg = ExperimentConfig::table(streams, plevels, 6);
            let rows = run_experiment(&cfg);
            let top = rows.iter().find(|r| r.streams > 0);
            let bottom = rows.iter().rev().find(|r| r.streams > 0);
            match (top, bottom) {
                (Some(t), Some(b)) => {
                    let pass = t.pooled_ratio > 0.9;
                    if pass && crossover.is_none() {
                        crossover = Some(plevels);
                    }
                    println!(
                        "{:>8} | {:>10.3} | {:>10.3} | {:>14}",
                        plevels,
                        t.pooled_ratio,
                        b.pooled_ratio,
                        if pass { "yes" } else { "no" }
                    );
                }
                _ => println!("{plevels:>8} | {:>10} | {:>10} |", "-", "-"),
            }
        }
        match crossover {
            Some(p) => println!(
                "-> first plevels with top ratio > 0.9: {p} (paper predicts ~|M|/4 = {})",
                streams / 4
            ),
            None => println!("-> top ratio never crossed 0.9 in the sweep"),
        }
        println!();
    }
}
