//! Ablation: how much does `Modify_Diagram` (indirect-blocking
//! instance removal) tighten the bound over treating every HP element
//! as direct?
//!
//! For each paper workload, compares the full `Cal_U` bound with the
//! direct-only ablation and the classical busy-window bound.

use rtwc_core::{busy_window_bound, cal_u, direct_only_bound, DelayBound};
use rtwc_workload::{generate, PaperWorkloadConfig};

fn main() {
    println!("Ablation: full Cal_U vs direct-only vs busy-window bound");
    println!(
        "{:>8} {:>8} | {:>10} {:>12} {:>12} | {:>9} {:>9}",
        "streams", "plevels", "mean U", "mean direct", "mean busy", "dir/full", "busy/full"
    );
    println!("{}", "-".repeat(86));
    for &(streams, plevels) in &[(20usize, 4u32), (20, 5), (40, 5), (60, 10)] {
        // Means are taken over streams where ALL THREE bounds exist, so
        // the columns are directly comparable.
        let mut full_sum = 0.0f64;
        let mut direct_sum = 0.0f64;
        let mut busy_sum = 0.0f64;
        let mut n = 0usize;
        for seed in 0..5u64 {
            let w = generate(PaperWorkloadConfig {
                num_streams: streams,
                priority_levels: plevels,
                seed: seed * 7 + 1,
                ..PaperWorkloadConfig::default()
            });
            let horizon = 200_000u64;
            for id in w.set.ids() {
                let full = cal_u(&w.set, id, horizon);
                let direct = direct_only_bound(&w.set, id, horizon);
                let busy = busy_window_bound(&w.set, id, horizon);
                if let (DelayBound::Bounded(f), DelayBound::Bounded(d), DelayBound::Bounded(bw)) =
                    (full, direct, busy)
                {
                    full_sum += f as f64;
                    direct_sum += d as f64;
                    busy_sum += bw as f64;
                    n += 1;
                }
            }
        }
        if n == 0 {
            continue;
        }
        let (fm, dm, bm) = (
            full_sum / n as f64,
            direct_sum / n as f64,
            busy_sum / n as f64,
        );
        println!(
            "{:>8} {:>8} | {:>10.1} {:>12.1} {:>12.1} | {:>9.3} {:>9.3}  (n={n})",
            streams,
            plevels,
            fm,
            dm,
            bm,
            dm / fm,
            bm / fm
        );
    }
    println!();
    println!(
        "dir/full > 1 quantifies the tightening contributed by Modify_Diagram;\n\
         busy/full > 1 shows the window-structured diagram beating classical\n\
         response-time analysis over the same HP sets."
    );
}
