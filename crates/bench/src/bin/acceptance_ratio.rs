//! Schedulability experiment: what fraction of randomly-requested
//! real-time streams can be *guaranteed* (`U_i <= D_i`) as the offered
//! load and the number of priority levels vary?
//!
//! This is the classic acceptance-ratio view of the paper's feasibility
//! test — the quantity an admission controller lives by. The paper
//! evaluates bound tightness (Tables 1-5); this bin evaluates the
//! test's *yield*.

use rtwc_core::{cal_u, StreamId};
use rtwc_workload::{generate, PaperWorkloadConfig};

/// Fraction of streams whose bound meets the deadline, averaged over
/// seeds.
fn acceptance(num_streams: usize, plevels: u32, t_range: (u64, u64), seeds: u64) -> f64 {
    let mut accepted = 0usize;
    let mut total = 0usize;
    for seed in 0..seeds {
        let w = generate(PaperWorkloadConfig {
            num_streams,
            priority_levels: plevels,
            t_range,
            inflate_periods: false, // raw request mix: D = T as drawn
            seed: seed * 31 + 7,
            ..PaperWorkloadConfig::default()
        });
        for id in w.set.ids() {
            let s = w.set.get(id);
            total += 1;
            if cal_u(&w.set, id, s.deadline()).meets(s.deadline()) {
                accepted += 1;
            }
        }
        let _ = StreamId(0);
    }
    accepted as f64 / total as f64
}

fn main() {
    println!("Acceptance ratio: fraction of requests with U <= D (= T), 40 streams");
    println!("(period range scales the offered load: shorter periods = heavier)");
    println!();
    let plevel_choices = [1u32, 5, 10];
    print!("{:>16}", "T range");
    for p in plevel_choices {
        print!(" | {:>9}", format!("{p} levels"));
    }
    println!();
    println!("{}", "-".repeat(16 + plevel_choices.len() * 12));
    for (lo, hi) in [(320u64, 720u64), (160, 360), (80, 180), (40, 90), (20, 45)] {
        print!("{:>16}", format!("[{lo}, {hi}]"));
        for &p in &plevel_choices {
            let a = acceptance(40, p, (lo, hi), 5);
            print!(" | {:>9.3}", a);
        }
        println!();
    }
    println!();
    println!(
        "Shape target: acceptance decays as load rises; more priority levels\n\
         rescue high-priority requests, so the multi-level columns dominate\n\
         the single-level one at every load."
    );
}
