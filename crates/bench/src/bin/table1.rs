//! Regenerates **Table 1**: 1 priority level, 20 message streams.
//!
//! Paper shape target: "The ratio between the calculated delay upper
//! bound and the actual latency is less than 0.5."

use rtwc_bench::{render_table, run_experiment, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::table(20, 1, 10);
    let rows = run_experiment(&cfg);
    print!(
        "{}",
        render_table(
            "Table 1 — 1 priority level, 20 message streams",
            &cfg,
            &rows
        )
    );
    println!();
    println!("Paper shape target: ratio < 0.5 with a single priority level.");
    if let Some(r) = rows.first() {
        if r.streams > 0 {
            println!(
                "Measured: mean actual/U = {:.3} -> {}",
                r.pooled_ratio,
                if r.pooled_ratio < 0.5 {
                    "MATCHES"
                } else {
                    "DIFFERS"
                }
            );
        }
    }
}
