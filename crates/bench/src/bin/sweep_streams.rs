//! Load sweep: the ratio-vs-|M| curve that Tables 1 and 2 sample at two
//! points (20 and 60 streams). For fixed priority-level counts, sweeps
//! the number of streams and reports the pooled top-class and
//! bottom-class ratios — showing *where* the single-level bound
//! collapses and how priority levels delay the collapse.

use rtwc_bench::{run_experiment, ExperimentConfig};

fn main() {
    println!("Stream-count sweep: pooled actual/U ratio vs |M|");
    println!("(Tables 1 and 2 are the plevels=1 column at |M| = 20 and 60)");
    println!();
    let stream_counts = [10usize, 20, 30, 40, 50, 60, 80, 100];
    let plevel_choices = [1u32, 5, 10];
    print!("{:>6}", "|M|");
    for p in plevel_choices {
        print!(" | {:>9} {:>9}", format!("p{p} top"), format!("p{p} low"));
    }
    println!();
    println!("{}", "-".repeat(6 + plevel_choices.len() * 22));
    for &m in &stream_counts {
        print!("{m:>6}");
        for &p in &plevel_choices {
            if p as usize > m {
                print!(" | {:>9} {:>9}", "-", "-");
                continue;
            }
            let cfg = ExperimentConfig::table(m, p, 4);
            let rows = run_experiment(&cfg);
            let top = rows.iter().find(|r| r.streams > 0);
            let low = rows.iter().rev().find(|r| r.streams > 0);
            match (top, low) {
                (Some(t), Some(b)) => {
                    print!(" | {:>9.3} {:>9.3}", t.pooled_ratio, b.pooled_ratio)
                }
                _ => print!(" | {:>9} {:>9}", "-", "-"),
            }
        }
        println!();
    }
    println!();
    println!(
        "Shape target: the plevels=1 column decays monotonically with |M|\n\
         (0.44 at 20 -> 0.06 at 60 reproduces Tables 1-2); more levels keep\n\
         the top class's ratio high far deeper into the load range."
    );
}
