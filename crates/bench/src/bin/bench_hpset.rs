//! Measures interference-index HP-set construction against the legacy
//! pairwise oracle, and the incremental admission fast path, over
//! contended meshes of n = 100 .. 10^4 streams. Writes the
//! machine-readable record `results/BENCH_hpset.json`.
//!
//! Run with `cargo run --release -p rtwc-bench --bin bench_hpset`.
//! The acceptance target is a >= 5x indexed speedup over the
//! from-scratch pairwise construction at n = 5000; the JSON records
//! every cell (plus `min_indexed_speedup` across sizes) so regressions
//! are diffable and CI can gate on the key.

use rtwc_bench::contended_mesh_specs;
use rtwc_core::{
    generate_hp_sets_oracle, AdmissionController, InterferenceIndex, StreamId, StreamSet,
};
use std::fmt::Write as _;
use std::time::Instant;
use wormnet_topology::{Routing, XyRouting};

const SIZES: [usize; 4] = [100, 1_000, 5_000, 10_000];

/// Best-of-samples ns of `f`, with warmup; sample count shrinks as a
/// single run grows so the slow from-scratch cells stay affordable.
/// Scheduler noise only ever adds time, so the minimum over samples is
/// the most stable estimate of the true cost.
fn measure(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64();
    let samples = if once > 2.0 {
        1
    } else if once > 0.1 {
        3
    } else {
        7
    };
    let mut best = once;
    for _ in 0..samples {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best * 1e9
}

struct Case {
    n: usize,
    from_scratch_ns: f64,
    indexed_ns: f64,
    index_build_ns: f64,
    incremental_admit_ns: f64,
    admitted: usize,
}

fn main() {
    let mut cases = Vec::new();
    for &n in &SIZES {
        let (mesh, specs) = contended_mesh_specs(n);
        let set = StreamSet::resolve(&mesh, &XyRouting, &specs).expect("bench set resolves");

        // Sanity first: the indexed construction must be bit-identical
        // to the oracle on the exact workload being timed (checked at
        // the sizes where the oracle is cheap enough to run twice).
        if n <= 1_000 {
            let index = InterferenceIndex::build(&set);
            assert_eq!(
                index.hp_sets(&set),
                generate_hp_sets_oracle(&set),
                "indexed HP sets diverge from the oracle at n={n}"
            );
        }

        let from_scratch_ns = measure(|| drop(generate_hp_sets_oracle(&set)));
        let indexed_ns = measure(|| {
            let index = InterferenceIndex::build(&set);
            drop(index.hp_sets(&set));
        });
        let index_build_ns = measure(|| drop(InterferenceIndex::build(&set)));

        // Incremental admission: load the controller once, then time a
        // full admit + remove round trip of one extra stream against
        // the n-stream set. Each admit touches only the candidate's
        // interference neighborhood.
        let mut ctl = AdmissionController::new();
        for (spec, path) in set.iter().map(|s| (s.spec.clone(), s.path.clone())) {
            let _ = ctl.admit(spec, path);
        }
        let admitted = ctl.len();
        let extra = specs[n / 2].clone();
        let extra_path = XyRouting
            .route(&mesh, extra.source, extra.dest)
            .expect("bench route");
        let incremental_admit_ns = measure(|| {
            if ctl.admit(extra.clone(), extra_path.clone()).is_ok() {
                ctl.remove(StreamId(ctl.len() as u32 - 1));
            }
        });

        println!(
            "n={n:>6}  from-scratch {from_scratch_ns:>14.0} ns  indexed {indexed_ns:>12.0} ns \
             ({:>6.1}x)  index-build {index_build_ns:>12.0} ns  admit {incremental_admit_ns:>10.0} ns \
             ({admitted} admitted)",
            from_scratch_ns / indexed_ns,
        );
        cases.push(Case {
            n,
            from_scratch_ns,
            indexed_ns,
            index_build_ns,
            incremental_admit_ns,
            admitted,
        });
    }

    let min_indexed_speedup = cases
        .iter()
        .map(|c| c.from_scratch_ns / c.indexed_ns)
        .fold(f64::INFINITY, f64::min);
    let at_5k = cases
        .iter()
        .find(|c| c.n == 5_000)
        .map(|c| c.from_scratch_ns / c.indexed_ns)
        .unwrap_or(f64::NAN);
    println!(
        "\nminimum indexed speedup across sizes: {min_indexed_speedup:.1}x; \
         at n=5000: {at_5k:.1}x (target >= 5x)"
    );

    let mut json = String::from("{\n  \"benchmark\": \"hpset_index\",\n");
    let _ = writeln!(
        json,
        "  \"load\": \"contended mesh: local routes, 16 priority levels, ~constant per-link occupancy\","
    );
    let _ = writeln!(json, "  \"min_indexed_speedup\": {min_indexed_speedup:.2},");
    let _ = writeln!(json, "  \"indexed_speedup_at_5000\": {at_5k:.2},");
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"from_scratch_ns\": {:.0}, \"indexed_ns\": {:.0}, \
             \"index_build_ns\": {:.0}, \"incremental_admit_ns\": {:.0}, \
             \"indexed_speedup\": {:.2}, \"admitted\": {}}}{}",
            c.n,
            c.from_scratch_ns,
            c.indexed_ns,
            c.index_build_ns,
            c.incremental_admit_ns,
            c.from_scratch_ns / c.indexed_ns,
            c.admitted,
            if i + 1 == cases.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("results/BENCH_hpset.json", &json).expect("write results/BENCH_hpset.json");
    println!("wrote results/BENCH_hpset.json");
}
