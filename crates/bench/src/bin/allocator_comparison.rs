//! Node-allocation study: the paper notes that "jobs which communicate
//! each other frequently could be mapped to relatively nearby
//! processing nodes. But job allocation is another problem" — this bin
//! quantifies how much the allocation choice matters for how many jobs
//! a mesh can *guarantee*.
//!
//! Identical pipelines are deployed until admission or allocation
//! fails, per allocator, at several traffic intensities.

use rtwc_bench::ExperimentConfig;
use rtwc_host::{
    Allocator, Clustered, CommunicationAware, FirstFit, HostProcessor, JobSpec, MessageRequirement,
    RandomPlacement, TaskId,
};

fn pipeline(name: &str, priority: u32, period: u64, length: u64) -> JobSpec {
    let mut msgs: Vec<MessageRequirement> = (0..4)
        .map(|i| MessageRequirement::new(TaskId(i), TaskId(i + 1), priority, period, length))
        .collect();
    msgs.push(MessageRequirement::new(
        TaskId(0),
        TaskId(4),
        1,
        period * 5,
        length * 2,
    ));
    JobSpec::new(name, 5, msgs).unwrap()
}

fn capacity(allocator: &dyn Allocator, period: u64, length: u64) -> (usize, usize) {
    let mut host = HostProcessor::new(10, 10);
    let mut jobs = 0usize;
    loop {
        let job = pipeline(&format!("j{jobs}"), 2 + (jobs as u32 % 3), period, length);
        if host.deploy(&job, allocator).is_err() {
            break;
        }
        jobs += 1;
        if jobs > 50 {
            break; // safety
        }
    }
    (jobs, host.admitted_streams())
}

fn main() {
    // Unused but keeps the crate-level experiment config conventions in
    // one place.
    let _ = ExperimentConfig::table(20, 1, 1);
    println!("Allocator comparison on a 10x10 mesh: 5-task pipelines deployed");
    println!("until the first failure (jobs / guaranteed streams)\n");
    println!(
        "{:>22} | {:>12} | {:>12} | {:>12}",
        "allocator", "light", "medium", "heavy"
    );
    println!("{}", "-".repeat(70));
    let loads = [(160u64, 8u64), (80, 12), (40, 16)];
    let allocators: Vec<(&str, Box<dyn Allocator>)> = vec![
        ("first-fit", Box::new(FirstFit)),
        ("clustered", Box::new(Clustered)),
        ("communication-aware", Box::new(CommunicationAware)),
        ("random (seed 1)", Box::new(RandomPlacement { seed: 1 })),
        ("random (seed 2)", Box::new(RandomPlacement { seed: 2 })),
    ];
    for (label, alloc) in &allocators {
        print!("{label:>22}");
        for &(t, c) in &loads {
            let (jobs, streams) = capacity(alloc.as_ref(), t, c);
            print!(" | {:>6}/{:<5}", jobs, streams);
        }
        println!();
    }
    println!(
        "\nReading: at light/medium load the locality-aware allocators are\n\
         node-limited (20 jobs = 100 nodes / 5 tasks) while random placement\n\
         is feasibility-limited — scattered tasks make long colliding routes,\n\
         exactly the paper's 'map communicating jobs to nearby nodes' advice.\n\
         At heavy load the *shape* of the region matters too: first-fit's\n\
         straight-line placements overlap every stage stream with the\n\
         monitor stream and admit nothing, while clustered 2-D regions\n\
         spread the stages across different channels and keep almost full\n\
         capacity."
    );
}
