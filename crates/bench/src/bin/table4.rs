//! Regenerates **Table 4**: 5 priority levels, 20 message streams.
//!
//! Paper shape target: with |M|/4 = 5 priority levels the top class's
//! ratio should clear 0.9, and even the lowest class improves over
//! Table 1's single level.

use rtwc_bench::{render_table, run_experiment, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::table(20, 5, 10);
    let rows = run_experiment(&cfg);
    print!(
        "{}",
        render_table(
            "Table 4 — 5 priority levels, 20 message streams",
            &cfg,
            &rows
        )
    );
    println!();
    println!("Paper shape target: top-priority ratio > 0.9 at |M|/4 = 5 levels.");
    if let Some(t) = rows.first().filter(|r| r.streams > 0) {
        println!(
            "Measured: P={} ratio {:.3} -> {}",
            t.priority,
            t.pooled_ratio,
            if t.pooled_ratio > 0.9 {
                "MATCHES"
            } else {
                "DIFFERS"
            }
        );
    }
}
