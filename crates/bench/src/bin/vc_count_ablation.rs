//! How many virtual channels does priority handling actually need?
//!
//! The paper assumes one VC per priority level and notes "it is
//! difficult to have too many virtual channels due to practical
//! resource constraints". This ablation fixes a 10-priority-level
//! workload and sweeps the VC count under two ways of spending scarce
//! VCs:
//!
//! * `li` — Li & Mutka's allocation (VC index capped by priority) with
//!   fair bandwidth;
//! * `shared` — a shared VC pool with strictly priority-preemptive
//!   bandwidth (allocation inversion possible when VCs run out).
//!
//! The full paper scheme (`preemptive`, one VC per level) anchors the
//! top of the range.

use rtwc_workload::{generate, GeneratedWorkload, PaperWorkloadConfig};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::Topology;

/// Mean normalized latency (actual / network latency) of the top
/// priority class.
fn top_class_normalized(w: &GeneratedWorkload, cfg: SimConfig) -> Option<f64> {
    let mut sim = Simulator::new(w.mesh.num_links(), &w.set, cfg).ok()?;
    sim.run();
    let mut vals = Vec::new();
    let top = w.set.iter().map(|s| s.priority()).max()?;
    for id in w.set.ids() {
        let s = w.set.get(id);
        if s.priority() != top {
            continue;
        }
        for lat in sim.stats().latencies(id, 2_000) {
            vals.push(lat as f64 / s.latency as f64);
        }
    }
    (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
}

fn main() {
    let plevels = 10u32;
    println!("VC-count ablation: top-class mean latency / L (10 priority levels,");
    println!("30 streams, raw load). 1.0 = perfect isolation.\n");
    println!("{:>6} | {:>10} | {:>10}", "VCs", "li", "shared");
    println!("{}", "-".repeat(34));
    let workloads: Vec<GeneratedWorkload> = (0..4u64)
        .map(|seed| {
            generate(PaperWorkloadConfig {
                num_streams: 30,
                priority_levels: plevels,
                inflate_periods: false,
                t_range: (50, 110),
                seed: seed * 3 + 1,
                ..PaperWorkloadConfig::default()
            })
        })
        .collect();
    let avg = |cfg_of: &dyn Fn() -> SimConfig| -> f64 {
        let vals: Vec<f64> = workloads
            .iter()
            .filter_map(|w| top_class_normalized(w, cfg_of().with_cycles(30_000, 2_000)))
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    for vcs in [1usize, 2, 4, 6, 8, 10] {
        let li = avg(&|| SimConfig::li(vcs));
        let shared = avg(&|| SimConfig::shared_pool(vcs));
        println!("{vcs:>6} | {li:>10.3} | {shared:>10.3}");
    }
    let full = avg(&|| SimConfig::paper(plevels as usize));
    println!("\nanchor: full paper scheme (10 VCs, one per level): {full:.3}");
    println!(
        "\nShape target: the shared pool converges toward the anchor as VCs\n\
         grow (residual gap = allocation inversion when every VC is held by\n\
         lower traffic), while Li's fair bandwidth sharing leaves the top\n\
         class paying for others no matter how many VCs exist — i.e.\n\
         *preemptive bandwidth arbitration* is the load-bearing half of the\n\
         paper's scheme, and one-VC-per-priority removes the last gap."
    );
}
