//! Sensitivity study for the two router/simulation parameters the paper
//! does *not* publish: the VC buffer depth and the stream release
//! phases. The headline ratio (Table 1's single-level pooled actual/U)
//! should be robust to both — this binary quantifies that.

use rtwc_bench::aggregate;
use rtwc_workload::{generate, random_phases, PaperWorkloadConfig};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::Topology;

fn pooled_ratio_with(buffer_depth: usize, phases_seed: Option<u64>, seeds: &[u64]) -> f64 {
    let mut all = Vec::new();
    for &seed in seeds {
        let w = generate(PaperWorkloadConfig {
            num_streams: 20,
            priority_levels: 1,
            seed,
            ..PaperWorkloadConfig::default()
        });
        // Like harness::measure_workload but with custom depth/phases.
        let cfg = SimConfig::paper(1)
            .with_cycles(30_000, 2_000)
            .with_buffer_depth(buffer_depth);
        let phases = match phases_seed {
            Some(ps) => random_phases(w.set.len(), 90, ps),
            None => vec![0; w.set.len()],
        };
        let mut sim = Simulator::with_phases(w.mesh.num_links(), &w.set, cfg, &phases).unwrap();
        sim.run();
        // Reuse the harness measurement shape by re-measuring manually:
        let _ = &sim;
        let measurements = {
            // measure via the shared helper (phases unsupported there),
            // so compute inline:
            use rtwc_bench::StreamMeasurement;
            w.set
                .ids()
                .map(|id| {
                    let bound = w.bounds[id.index()];
                    let stats = sim.stats();
                    let (mean_actual, samples) = match stats.mean_latency(id, 2_000) {
                        Some(m) => (Some(m), stats.latencies(id, 2_000).len()),
                        None => (stats.mean_latency(id, 0), stats.latencies(id, 0).len()),
                    };
                    let ratio = match (mean_actual, bound.value()) {
                        (Some(m), Some(u)) if u > 0 => Some(m / u as f64),
                        _ => None,
                    };
                    StreamMeasurement {
                        stream: id,
                        priority: w.set.get(id).priority(),
                        bound,
                        mean_actual,
                        samples,
                        ratio,
                    }
                })
                .collect::<Vec<_>>()
        };
        all.extend(measurements);
    }
    aggregate(&all, 1)[0].pooled_ratio
}

fn main() {
    let seeds: Vec<u64> = (0..6).map(|s| 100 + s * 13).collect();
    println!("Sensitivity of the Table-1 pooled ratio (20 streams, 1 level)");
    println!();
    println!("VC buffer depth (phases = 0):");
    for depth in [1usize, 2, 4, 8, 16] {
        let r = pooled_ratio_with(depth, None, &seeds);
        println!("  depth {depth:>2}: pooled ratio {r:.3}");
    }
    println!();
    println!("Release phases (depth = 4):");
    let base = pooled_ratio_with(4, None, &seeds);
    println!("  all zero       : pooled ratio {base:.3}");
    for ps in [7u64, 8, 9] {
        let r = pooled_ratio_with(4, Some(ps), &seeds);
        println!("  random (seed {ps}): pooled ratio {r:.3}");
    }
    println!();
    println!(
        "Shape target: for depth >= 2 the ratio moves only mildly with either\n\
         knob — the paper's conclusions do not hinge on its unpublished router\n\
         buffer depth or phase alignment. Depth 1 is the exception and is\n\
         expected to blow up: a single-flit VC buffer halves the pipeline rate\n\
         (credit turnaround), violating the analysis's full-rate assumption\n\
         L = hops + C - 1 — i.e. the scheme *requires* >= 2-flit buffers."
    );
}
