//! Tightness certificate: for small stream sets, search release-phase
//! space exhaustively for the worst *actual* latency the preemptive
//! network can produce, and compare it against the analytical bound U.
//!
//! `max over phases (actual) <= U` re-validates soundness against an
//! adversarial (not just synchronized) release pattern;
//! `max / U` close to 1 certifies that the bound is nearly attained by
//! a real schedule — the strongest tightness statement short of an
//! exact analysis.

use rtwc_core::{cal_u, StreamId, StreamSet};
use rtwc_workload::ScenarioBuilder;
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::{Mesh, Topology};

/// Worst observed latency of `target` over every phase combination of
/// the interfering streams (phases in `0..T_i` stepped by `step`).
fn worst_case_search(
    mesh: &Mesh,
    set: &StreamSet,
    target: StreamId,
    step: u64,
    cycles: u64,
) -> (u64, usize) {
    let periods: Vec<u64> = set.iter().map(|s| s.period()).collect();
    let n = set.len();
    let mut phases = vec![0u64; n];
    let mut worst = 0u64;
    let mut combos = 0usize;
    // Odometer over phase vectors; the target's phase stays 0 (only
    // relative offsets matter).
    loop {
        combos += 1;
        let cfg = SimConfig::paper(set.iter().map(|s| s.priority()).max().unwrap() as usize)
            .with_cycles(cycles, 0);
        let mut sim =
            Simulator::with_phases(mesh.num_links(), set, cfg, &phases).expect("valid scenario");
        sim.run();
        if let Some(m) = sim.stats().max_latency(target, 0) {
            worst = worst.max(m);
        }
        // Advance the odometer (skip the target's digit).
        let mut i = 0;
        loop {
            if i == target.index() {
                i += 1;
                if i >= n {
                    return (worst, combos);
                }
            }
            phases[i] += step;
            if phases[i] < periods[i] {
                break;
            }
            phases[i] = 0;
            i += 1;
            if i >= n {
                return (worst, combos);
            }
        }
    }
}

fn main() {
    println!("Tightness search: exhaustive phase sweep vs the analytical bound\n");
    // Three compact scenarios with known interesting structure.
    let scenarios: Vec<(&str, StreamSet, Mesh)> = vec![
        {
            let (mesh, set) = ScenarioBuilder::mesh2d(10, 2)
                .stream((0, 0), (5, 0), 2, 12, 3)
                .stream((1, 0), (6, 0), 1, 40, 4)
                .build_with_mesh()
                .unwrap();
            ("two streams, one blocker", set, mesh)
        },
        {
            let (mesh, set) = ScenarioBuilder::mesh2d(10, 2)
                .stream((0, 0), (5, 0), 3, 10, 2)
                .stream((1, 0), (6, 0), 2, 15, 3)
                .stream((2, 0), (7, 0), 1, 60, 5)
                .build_with_mesh()
                .unwrap();
            ("three direct blockers", set, mesh)
        },
        {
            // Indirect chain: T <- M3 <- M2 (the Figure 6 shape).
            let (mesh, set) = ScenarioBuilder::mesh2d(20, 2)
                .stream((4, 0), (7, 0), 3, 14, 3)
                .stream((2, 0), (5, 0), 2, 13, 4)
                .stream((0, 0), (3, 0), 1, 60, 4)
                .build_with_mesh()
                .unwrap();
            ("indirect chain", set, mesh)
        },
    ];
    for (name, set, mesh) in scenarios {
        let target = StreamId(set.len() as u32 - 1);
        let u = cal_u(&set, target, 10_000).value().expect("bounded");
        let (worst, combos) = worst_case_search(&mesh, &set, target, 1, 400);
        println!("{name}:");
        println!(
            "  U = {u}, worst actual over {combos} phase combinations = {worst}  ({})",
            if worst <= u {
                format!(
                    "sound; attained {:.0}% of the bound",
                    100.0 * worst as f64 / u as f64
                )
            } else {
                "VIOLATION!".to_string()
            }
        );
    }
    println!(
        "\nShape target: no phase combination beats U, and the worst case\n\
         lands close to it — the timing-diagram bound is both safe and tight\n\
         at small scale."
    );
}
