//! Measures the bitset diagram kernel against the legacy cell-matrix
//! kernel (and the bound-only scratch arena) over horizon x HP-size,
//! and writes the machine-readable record `results/BENCH_diagram.json`.
//!
//! Run with `cargo run --release -p rtwc-bench --bin diagram_bench`.
//! The acceptance target is a >= 5x diagram-construction speedup at
//! horizon 10^4; the JSON records every cell so regressions are
//! diffable.

use rtwc_bench::contended_line_set;
use rtwc_core::{generate_hp, AnalysisScratch, RemovedInstances, TimingDiagram};
use std::fmt::Write as _;
use std::time::Instant;

const HORIZONS: [u64; 3] = [100, 1_000, 10_000];
const HP_SIZES: [usize; 3] = [4, 16, 64];

/// Best-of-samples ns/iter of `f`, with warmup; iteration count adapts
/// so each sample runs long enough for the clock to be trustworthy.
/// Scheduler noise only ever adds time, so the minimum over samples is
/// the most stable estimate of the true cost.
fn measure(mut f: impl FnMut()) -> f64 {
    // Warm up and size one sample to ~25ms.
    f();
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.025 / once) as usize).clamp(1, 250_000);
    (0..9)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

struct Case {
    horizon: u64,
    hp_size: usize,
    legacy_ns: f64,
    bitset_ns: f64,
    scratch_ns: f64,
}

fn main() {
    let mut cases = Vec::new();
    for &n in &HP_SIZES {
        let (set, target) = contended_line_set(n);
        let hp = generate_hp(&set, target);
        let none = RemovedInstances::none();
        let needed = set.get(target).latency;
        for &h in &HORIZONS {
            // Sanity first: identical bounds from all three paths.
            let fast = TimingDiagram::generate(&set, &hp, h, &none);
            let slow = TimingDiagram::generate_legacy(&set, &hp, h, &none);
            let mut check = AnalysisScratch::new();
            assert_eq!(
                fast.accumulate_free(needed),
                slow.accumulate_free(needed),
                "kernel disagreement at h={h} n={n}"
            );
            assert_eq!(
                check.delay_bound(&set, &hp, h).value(),
                fast.accumulate_free(needed),
                "scratch disagreement at h={h} n={n}"
            );

            let legacy_ns = measure(|| drop(TimingDiagram::generate_legacy(&set, &hp, h, &none)));
            let bitset_ns = measure(|| drop(TimingDiagram::generate(&set, &hp, h, &none)));
            let mut scratch = AnalysisScratch::new();
            let scratch_ns = measure(|| {
                scratch.delay_bound(&set, &hp, h);
            });
            println!(
                "h={h:>6} n_hp={n:>3}  legacy {legacy_ns:>12.0} ns  bitset {bitset_ns:>12.0} ns \
                 ({:>6.1}x)  scratch {scratch_ns:>12.0} ns ({:>6.1}x)",
                legacy_ns / bitset_ns,
                legacy_ns / scratch_ns,
            );
            cases.push(Case {
                horizon: h,
                hp_size: n,
                legacy_ns,
                bitset_ns,
                scratch_ns,
            });
        }
    }

    let min_speedup_at_10k = cases
        .iter()
        .filter(|c| c.horizon == 10_000)
        .map(|c| c.legacy_ns / c.bitset_ns)
        .fold(f64::INFINITY, f64::min);
    println!("\nminimum bitset speedup at horizon 10^4: {min_speedup_at_10k:.1}x (target >= 5x)");

    let mut json = String::from("{\n  \"benchmark\": \"diagram_kernel\",\n");
    let _ = writeln!(
        json,
        "  \"load\": \"contended line: n_hp direct blockers, periods 64..160\","
    );
    let _ = writeln!(
        json,
        "  \"min_bitset_speedup_at_horizon_10000\": {min_speedup_at_10k:.2},"
    );
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"horizon\": {}, \"hp_size\": {}, \"legacy_ns\": {:.0}, \
             \"bitset_ns\": {:.0}, \"scratch_ns\": {:.0}, \"bitset_speedup\": {:.2}, \
             \"scratch_speedup\": {:.2}}}{}",
            c.horizon,
            c.hp_size,
            c.legacy_ns,
            c.bitset_ns,
            c.scratch_ns,
            c.legacy_ns / c.bitset_ns,
            c.legacy_ns / c.scratch_ns,
            if i + 1 == cases.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("results/BENCH_diagram.json", &json).expect("write results/BENCH_diagram.json");
    println!("wrote results/BENCH_diagram.json");
}
