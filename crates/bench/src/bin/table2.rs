//! Regenerates **Table 2**: 1 priority level, 60 message streams.
//!
//! Paper shape target: "If more message streams are generated, the
//! ratio is extremely exacerbated" — far below Table 1's.

use rtwc_bench::{render_table, run_experiment, ExperimentConfig};

fn main() {
    let cfg20 = ExperimentConfig::table(20, 1, 10);
    let rows20 = run_experiment(&cfg20);
    let cfg = ExperimentConfig::table(60, 1, 10);
    let rows = run_experiment(&cfg);
    print!(
        "{}",
        render_table(
            "Table 2 — 1 priority level, 60 message streams",
            &cfg,
            &rows
        )
    );
    println!();
    println!("Paper shape target: ratio collapses well below the 20-stream case.");
    if let (Some(r60), Some(r20)) = (rows.first(), rows20.first()) {
        if r60.streams > 0 && r20.streams > 0 {
            println!(
                "Measured: 60-stream ratio {:.3} vs 20-stream ratio {:.3} -> {}",
                r60.pooled_ratio,
                r20.pooled_ratio,
                if r60.pooled_ratio < r20.pooled_ratio {
                    "MATCHES"
                } else {
                    "DIFFERS"
                }
            );
        }
    }
}
