//! Regenerates **Table 5**: 10 priority levels, 60 message streams.
//!
//! Paper shape target: with many levels the per-level ratios spread
//! monotonically — high levels tight, low levels loose but better than
//! the single-level 60-stream collapse of Table 2.

use rtwc_bench::{render_table, run_experiment, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::table(60, 10, 10);
    let rows = run_experiment(&cfg);
    print!(
        "{}",
        render_table(
            "Table 5 — 10 priority levels, 60 message streams",
            &cfg,
            &rows
        )
    );
    println!();
    println!(
        "Paper shape target: ratios decrease from high to low priority; the\n\
         low levels stay above Table 2's single-level collapse."
    );
    let measured: Vec<(u32, f64)> = rows
        .iter()
        .filter(|r| r.streams > 0)
        .map(|r| (r.priority, r.pooled_ratio))
        .collect();
    // Spearman-flavoured check: top third vs bottom third.
    if measured.len() >= 3 {
        let third = measured.len() / 3;
        let top: f64 = measured[..third].iter().map(|&(_, r)| r).sum::<f64>() / third as f64;
        let bottom: f64 = measured[measured.len() - third..]
            .iter()
            .map(|&(_, r)| r)
            .sum::<f64>()
            / third as f64;
        println!(
            "Measured: top-third mean {:.3} vs bottom-third mean {:.3} -> {}",
            top,
            bottom,
            if top > bottom { "MATCHES" } else { "DIFFERS" }
        );
    }
}
