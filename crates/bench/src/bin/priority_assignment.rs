//! Priority-assignment study: the paper draws priorities uniformly at
//! random; rate-monotonic assignment (shortest period = highest
//! priority, the policy Mutka imports from processor scheduling) is the
//! principled alternative. Same traffic, two assignments — who
//! guarantees more?

use rtwc_core::{cal_u, StreamSet, StreamSpec};
use rtwc_workload::{assign_rate_monotonic, generate, PaperWorkloadConfig};
use wormnet_topology::XyRouting;

/// Fraction of streams with U <= D under the given specs.
fn acceptance(mesh: &wormnet_topology::Mesh, specs: &[StreamSpec]) -> f64 {
    let set = StreamSet::resolve(mesh, &XyRouting, specs).unwrap();
    let ok = set
        .ids()
        .filter(|&id| cal_u(&set, id, set.get(id).deadline()).meets(set.get(id).deadline()))
        .count();
    ok as f64 / set.len() as f64
}

fn main() {
    println!("Priority assignment: random (the paper's) vs rate-monotonic,");
    println!("same traffic, acceptance = fraction of streams with U <= D\n");
    println!(
        "{:>10} {:>8} | {:>9} | {:>9} | {:>9}",
        "T range", "levels", "random", "RM", "RM gain"
    );
    println!("{}", "-".repeat(58));
    for (lo, hi) in [(80u64, 180u64), (40, 90), (20, 45)] {
        for levels in [4u32, 10] {
            let mut rnd_sum = 0.0;
            let mut rm_sum = 0.0;
            let seeds = 6u64;
            for seed in 0..seeds {
                let w = generate(PaperWorkloadConfig {
                    num_streams: 40,
                    priority_levels: levels,
                    t_range: (lo, hi),
                    inflate_periods: false,
                    seed: seed * 11 + 3,
                    ..PaperWorkloadConfig::default()
                });
                let specs: Vec<StreamSpec> = w.set.iter().map(|s| s.spec.clone()).collect();
                rnd_sum += acceptance(&w.mesh, &specs);
                let rm_specs = assign_rate_monotonic(&specs, levels);
                rm_sum += acceptance(&w.mesh, &rm_specs);
            }
            let (rnd, rm) = (rnd_sum / seeds as f64, rm_sum / seeds as f64);
            println!(
                "{:>10} {:>8} | {:>9.3} | {:>9.3} | {:>+9.3}",
                format!("[{lo},{hi}]"),
                levels,
                rnd,
                rm,
                rm - rnd
            );
        }
    }
    println!(
        "\nObserved (and worth knowing): RM is NOT consistently better here —\n\
         gains are within a few percent either way. Unlike a processor, a\n\
         wormhole network is many parallel resources: RM concentrates every\n\
         short-period (high-demand) stream in the top band, where they block\n\
         each other and everything below on shared channels, cancelling the\n\
         processor-style optimality. Priority assignment on networks must\n\
         consider *paths*, not just periods — which is why the paper treats\n\
         priorities as application-given."
    );
}
