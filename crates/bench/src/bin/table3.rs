//! Regenerates **Table 3**: 4 priority levels, 20 message streams.
//!
//! Paper shape target: ratios improve over the single-level Table 1,
//! and higher priority levels get tighter bounds.

use rtwc_bench::{render_table, run_experiment, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::table(20, 4, 10);
    let rows = run_experiment(&cfg);
    print!(
        "{}",
        render_table(
            "Table 3 — 4 priority levels, 20 message streams",
            &cfg,
            &rows
        )
    );
    println!();
    println!(
        "Paper shape target: the more priority levels, the better the ratio;\n\
         the top level's ratio dominates the bottom's."
    );
    let top = rows.first().filter(|r| r.streams > 0);
    let bottom = rows.last().filter(|r| r.streams > 0);
    if let (Some(t), Some(b)) = (top, bottom) {
        println!(
            "Measured: P={} ratio {:.3} vs P={} ratio {:.3} -> {}",
            t.priority,
            t.pooled_ratio,
            b.priority,
            b.pooled_ratio,
            if t.pooled_ratio > b.pooled_ratio {
                "MATCHES"
            } else {
                "DIFFERS"
            }
        );
    }
}
