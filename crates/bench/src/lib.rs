//! # rtwc-bench
//!
//! The experiment harness of the ICPP'98 reproduction: every table and
//! headline claim of the paper's evaluation has a binary here that
//! regenerates it (see DESIGN.md §4 for the experiment index), plus
//! Criterion micro-benchmarks of the analyzer and the simulator.
//!
//! Binaries (run with `cargo run --release -p rtwc-bench --bin <name>`):
//!
//! * `table1` .. `table5` — the paper's Tables 1-5 (actual/U ratio per
//!   priority level for each |M| x priority-level combination).
//! * `sweep_plevels` — the §5 claim that at least |M|/4 priority levels
//!   are needed for the top class's ratio to pass 0.9.
//! * `ablation_indirect` — how much `Modify_Diagram` (indirect-blocking
//!   removal) tightens the bound.
//! * `baseline_arbiters` — preemptive vs Li vs classic wormhole
//!   switching on the same workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagram_load;
pub mod harness;
pub mod hpset_load;
pub mod table;

pub use diagram_load::contended_line_set;
pub use harness::{
    aggregate, measure_workload, run_experiment, ExperimentConfig, PriorityRow, StreamMeasurement,
};
pub use hpset_load::{contended_mesh, contended_mesh_set, contended_mesh_specs};
pub use table::{render_table, summary_line};
