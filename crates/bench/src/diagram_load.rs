//! Synthetic contended-line workloads for the diagram-kernel
//! benchmarks.
//!
//! The diagram construction cost is driven by two knobs: the horizon
//! (slots, hence bit words / cells per row) and the HP-set size (rows).
//! The paper workload generator can't pin either directly — HP sets
//! fall out of random placement — so the kernel benchmarks use a
//! deterministic worst-ish case instead: `n_hp` higher-priority streams
//! packed onto one mesh row, every one overlapping the target's route,
//! so the target's HP set has exactly `n_hp` direct elements and every
//! row contends for the same columns.

use rtwc_core::{StreamId, StreamSet, StreamSpec};
use wormnet_topology::{Mesh, Topology, XyRouting};

/// Builds a stream set whose lowest-priority target is directly blocked
/// by exactly `n_hp` streams, and returns it with the target's id.
///
/// Periods are spread over `64..160` and lengths over `1..=2`, so the
/// per-row instance count scales linearly with the analysis horizon and
/// aggregate utilization stays below saturation up to `n_hp = 64`.
pub fn contended_line_set(n_hp: usize) -> (StreamSet, StreamId) {
    let width = (n_hp as u32 + 3).max(6);
    let mesh = Mesh::mesh2d(width, 2);
    let node = |x: u32| mesh.node_at(&[x, 0]).expect("on-row node");
    let mut specs = Vec::with_capacity(n_hp + 1);
    for i in 0..n_hp {
        let x = (i as u32) % (width - 2);
        let period = 64 + ((i as u64) * 19) % 96;
        // Paper-like message sizes, scaled so aggregate utilization
        // stays near 0.7 (below saturation) at every HP-set size.
        let length = (period * 7 / (10 * n_hp as u64)).max(1);
        specs.push(StreamSpec::new(
            node(x),
            node(x + 2),
            2 + i as u32,
            period,
            length,
            period,
        ));
    }
    // The target crosses the whole row, so every HP stream shares a
    // channel with it.
    specs.push(StreamSpec::new(
        node(0),
        node(width - 1),
        1,
        100_000,
        4,
        100_000,
    ));
    let set = StreamSet::resolve(&mesh, &XyRouting, &specs).expect("line set is valid");
    (set, StreamId(n_hp as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtwc_core::generate_hp;

    #[test]
    fn hp_size_is_exact_and_direct() {
        for n in [4usize, 16, 64] {
            let (set, target) = contended_line_set(n);
            let hp = generate_hp(&set, target);
            assert_eq!(hp.len(), n, "n_hp={n}");
            assert!(!hp.has_indirect(), "n_hp={n}: all elements direct");
        }
    }

    #[test]
    fn kernels_agree_on_the_bench_load() {
        use rtwc_core::{RemovedInstances, TimingDiagram};
        let (set, target) = contended_line_set(16);
        let hp = generate_hp(&set, target);
        let none = RemovedInstances::none();
        let fast = TimingDiagram::generate(&set, &hp, 1000, &none);
        let slow = TimingDiagram::generate_legacy(&set, &hp, 1000, &none);
        for r in 0..hp.len() {
            assert_eq!(fast.rows()[r].instances, slow.rows()[r].instances);
        }
        for needed in [1u64, 7, 30] {
            assert_eq!(fast.accumulate_free(needed), slow.accumulate_free(needed));
        }
    }
}
