//! The bound-vs-actual experiment harness behind every table of the
//! paper's evaluation (§5).
//!
//! One experiment: generate the paper workload (`N` streams, `p`
//! priority levels, seeded), compute every stream's delay upper bound
//! `U_i`, simulate 30000 flit times of the preemptive network, and
//! report — per priority level — the ratio between the actual average
//! message latency and `U`. A ratio near 1 means the bound is tight;
//! the paper's tables are exactly these rows.

use rtwc_core::{DelayBound, Priority, StreamId};
use rtwc_workload::{generate, GeneratedWorkload, PaperWorkloadConfig};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::Topology;

/// Parameters of one table experiment.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Number of message streams (|M|).
    pub num_streams: usize,
    /// Number of priority levels (= virtual channels per channel).
    pub priority_levels: u32,
    /// Seeds to average over; each seed is an independent workload.
    pub seeds: Vec<u64>,
    /// Simulated flit times (paper: 30000).
    pub cycles: u64,
    /// Start-up flit times excluded from statistics (paper: 2000).
    pub warmup: u64,
    /// Inclusive range of message sizes (paper: 1..=40 flits).
    pub c_range: (u64, u64),
    /// Inclusive range of periods (paper: 40..=90 flit times, before
    /// inflation).
    pub t_range: (u64, u64),
}

impl ExperimentConfig {
    /// The paper's setup for a table: `|M|` streams, `p` levels,
    /// averaged over `n_seeds` independent workloads.
    pub fn table(num_streams: usize, priority_levels: u32, n_seeds: u64) -> Self {
        ExperimentConfig {
            num_streams,
            priority_levels,
            seeds: (0..n_seeds)
                .map(|s| 0x9e37_79b9 ^ (s * 0x85eb_ca6b + 1))
                .collect(),
            cycles: 30_000,
            warmup: 2_000,
            c_range: (1, 40),
            t_range: (40, 90),
        }
    }
}

/// One stream's measurement within a run.
#[derive(Clone, Copy, Debug)]
pub struct StreamMeasurement {
    /// The stream.
    pub stream: StreamId,
    /// Its priority level.
    pub priority: Priority,
    /// The computed delay upper bound.
    pub bound: DelayBound,
    /// Mean actual latency over measured messages (post-warm-up when
    /// available, otherwise all completed messages), if any completed.
    pub mean_actual: Option<f64>,
    /// Number of messages behind `mean_actual`.
    pub samples: usize,
    /// `mean_actual / U`, when both exist.
    pub ratio: Option<f64>,
}

/// Aggregate over all streams of one priority level (possibly across
/// several seeds) — one row of a paper table.
#[derive(Clone, Copy, Debug)]
pub struct PriorityRow {
    /// The priority level (larger = more urgent).
    pub priority: Priority,
    /// Streams contributing (with both a bound and measurements).
    pub streams: usize,
    /// Streams of this priority lacking a bound or any completed
    /// message (excluded from the ratio).
    pub excluded: usize,
    /// Mean of per-stream `actual / U` ratios.
    pub mean_ratio: f64,
    /// Pooled ratio `sum(actual means) / sum(U)` — weights streams by
    /// their bound, so heavily-blocked streams dominate.
    pub pooled_ratio: f64,
    /// Smallest per-stream ratio.
    pub min_ratio: f64,
    /// Largest per-stream ratio.
    pub max_ratio: f64,
}

/// Simulates one generated workload and measures every stream.
pub fn measure_workload(w: &GeneratedWorkload, cycles: u64, warmup: u64) -> Vec<StreamMeasurement> {
    let cfg = SimConfig::paper(w.config.priority_levels as usize).with_cycles(cycles, warmup);
    let mut sim =
        Simulator::new(w.mesh.num_links(), &w.set, cfg).expect("generated workload is simulable");
    sim.run();
    let stats = sim.stats();
    w.set
        .ids()
        .map(|id| {
            let bound = w.bounds[id.index()];
            // Prefer post-warm-up samples; long-period streams (period
            // inflated past the horizon) may only have their first
            // message, which we then use rather than report nothing.
            let (mean_actual, samples) = match stats.mean_latency(id, warmup) {
                Some(m) => (Some(m), stats.latencies(id, warmup).len()),
                None => (stats.mean_latency(id, 0), stats.latencies(id, 0).len()),
            };
            let ratio = match (mean_actual, bound) {
                (Some(m), DelayBound::Bounded(u)) if u > 0 => Some(m / u as f64),
                _ => None,
            };
            StreamMeasurement {
                stream: id,
                priority: w.set.get(id).priority(),
                bound,
                mean_actual,
                samples,
                ratio,
            }
        })
        .collect()
}

/// Runs the full experiment: every seed, pooled per-priority rows,
/// highest priority first (the paper's row order).
pub fn run_experiment(cfg: &ExperimentConfig) -> Vec<PriorityRow> {
    let mut all: Vec<StreamMeasurement> = Vec::new();
    // Seeds are independent; run them on scoped threads.
    std::thread::scope(|scope| {
        let handles: Vec<_> = cfg
            .seeds
            .iter()
            .map(|&seed| {
                scope.spawn(move || {
                    let w = generate(PaperWorkloadConfig {
                        num_streams: cfg.num_streams,
                        priority_levels: cfg.priority_levels,
                        c_range: cfg.c_range,
                        t_range: cfg.t_range,
                        seed,
                        ..PaperWorkloadConfig::default()
                    });
                    measure_workload(&w, cfg.cycles, cfg.warmup)
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().expect("experiment thread"));
        }
    });
    aggregate(&all, cfg.priority_levels)
}

/// Pools measurements into per-priority rows.
pub fn aggregate(measurements: &[StreamMeasurement], priority_levels: u32) -> Vec<PriorityRow> {
    (1..=priority_levels)
        .rev()
        .map(|p| {
            let of_p: Vec<&StreamMeasurement> =
                measurements.iter().filter(|m| m.priority == p).collect();
            let ratios: Vec<f64> = of_p.iter().filter_map(|m| m.ratio).collect();
            let excluded = of_p.len() - ratios.len();
            let (mut actual_sum, mut bound_sum) = (0.0f64, 0.0f64);
            for m in &of_p {
                if let (Some(a), Some(u)) = (m.mean_actual, m.bound.value()) {
                    actual_sum += a;
                    bound_sum += u as f64;
                }
            }
            let (mean, min, max) = if ratios.is_empty() {
                (f64::NAN, f64::NAN, f64::NAN)
            } else {
                (
                    ratios.iter().sum::<f64>() / ratios.len() as f64,
                    ratios.iter().copied().fold(f64::INFINITY, f64::min),
                    ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                )
            };
            PriorityRow {
                priority: p,
                streams: ratios.len(),
                excluded,
                mean_ratio: mean,
                pooled_ratio: if bound_sum > 0.0 {
                    actual_sum / bound_sum
                } else {
                    f64::NAN
                },
                min_ratio: min,
                max_ratio: max,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_experiment_produces_rows() {
        let cfg = ExperimentConfig {
            num_streams: 8,
            priority_levels: 2,
            seeds: vec![1],
            cycles: 8_000,
            warmup: 1_000,
            ..ExperimentConfig::table(8, 2, 1)
        };
        let rows = run_experiment(&cfg);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].priority, 2, "highest priority first");
        assert_eq!(rows[1].priority, 1);
    }

    #[test]
    fn ratios_are_at_most_one_for_bounded_streams() {
        // U is an upper bound: mean actual latency can never exceed it.
        let cfg = ExperimentConfig {
            num_streams: 12,
            priority_levels: 3,
            seeds: vec![2, 3],
            cycles: 10_000,
            warmup: 1_000,
            ..ExperimentConfig::table(12, 3, 1)
        };
        let rows = run_experiment(&cfg);
        for r in &rows {
            if r.streams > 0 {
                assert!(
                    r.max_ratio <= 1.0 + 1e-9,
                    "P={}: max ratio {} exceeds 1",
                    r.priority,
                    r.max_ratio
                );
            }
        }
    }

    #[test]
    fn aggregate_handles_empty_level() {
        let rows = aggregate(&[], 3);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.streams == 0 && r.mean_ratio.is_nan()));
    }
}
