//! Golden-file tests of the `A109` recovery-report lint: each fixture
//! artifact must render exactly the committed human and JSON output.
//! The rendered diagnostics are part of the tool's output contract
//! (operators grep startup logs for them), so drift is a test failure.
//!
//! To regenerate the goldens after an intentional output change:
//! `BLESS=1 cargo test -p rtwc-verifier --test recovery_report_golden`.

use rtwc_verifier::{lint_recovery_report, render_human, render_json, RecoveryArtifact};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn compare_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with BLESS=1", path.display()));
    assert_eq!(
        rendered, want,
        "golden mismatch for {name}; run with BLESS=1 if intended"
    );
}

/// Fixture artifacts, with the rule findings each must produce.
fn fixtures() -> Vec<(&'static str, RecoveryArtifact, usize)> {
    // A consistent warm recovery: snapshot@3 over a WAL holding
    // seqs 2..=5 — one record skipped, two replayed, serving 5.
    let consistent = RecoveryArtifact {
        snapshot_seq: Some(3),
        wal_base_seq: 2,
        wal_records: 3,
        reported_replayed: 2,
        reported_skipped: 1,
        reported_seq: 5,
    };
    vec![
        ("consistent", consistent, 0),
        (
            "history-gap",
            RecoveryArtifact {
                wal_base_seq: 7,
                ..consistent
            },
            1,
        ),
        (
            "miscounted",
            RecoveryArtifact {
                reported_replayed: 3,
                reported_skipped: 0,
                reported_seq: 6,
                ..consistent
            },
            3,
        ),
    ]
}

#[test]
fn fixtures_match_goldens() {
    for (name, artifact, findings) in fixtures() {
        let diags = lint_recovery_report(&artifact);
        assert_eq!(diags.len(), findings, "{name}: {diags:?}");
        assert!(
            diags.iter().all(|d| d.code == "A109" && d.is_error()),
            "{name}: {diags:?}"
        );
        compare_golden(
            &format!("recovery_{name}.human.txt"),
            &render_human(&diags, None),
        );
        compare_golden(&format!("recovery_{name}.json"), &render_json(&diags, None));
    }
}

#[test]
fn json_goldens_are_well_formed() {
    // Cheap shape check independent of the renderer: balanced quotes
    // and braces, one diagnostics array, a summary matching the
    // severity split. (The CLI's golden suite runs a full JSON parse;
    // this keeps the verifier crate self-contained.)
    for (name, artifact, _) in fixtures() {
        let json = render_json(&lint_recovery_report(&artifact), None);
        assert!(json.starts_with('{') && json.ends_with("}\n"), "{name}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{name}: {json}"
        );
        assert_eq!(json.matches('"').count() % 2, 0, "{name}: {json}");
        assert!(json.contains("\"diagnostics\":["), "{name}: {json}");
    }
}
