//! Property: a *clean* generated workload — distinct priorities,
//! `D = T` with enough slack to cover the unloaded latency — produces
//! **zero** diagnostics from every rule family, even when streams
//! overlap and block each other. The verifier must never cry wolf on
//! workloads that satisfy the paper's model by construction.

use proptest::prelude::*;
use rtwc_core::{StreamSet, StreamSpec};
use rtwc_verifier::{lint_sim_config, verify_workload, DEFAULT_HORIZON_CAP};
use wormnet_sim::SimConfig;
use wormnet_topology::{Mesh, Topology, XyRouting};

const WIDTH: u32 = 8;

/// Per-stream raw parameters: a west-to-east route whose period can be
/// padded past the unloaded latency. `(x0, extra_hops, length, slack)`.
type RawStream = (u32, u32, u64, u64);

fn streams() -> impl Strategy<Value = Vec<RawStream>> {
    prop::collection::vec((0u32..WIDTH - 1, 1u32..4, 1u64..8, 0u64..40), 1..8)
}

fn build(rows: &[RawStream]) -> (Mesh, Vec<StreamSpec>) {
    // Two streams per mesh row: overlapping west-to-east routes give
    // non-empty HP sets (exercising the A1xx rules on real blocking)
    // while distinct priorities keep the workload clean.
    let height = (rows.len() as u32).div_ceil(2);
    let mesh = Mesh::mesh2d(WIDTH, height);
    let specs = rows
        .iter()
        .enumerate()
        .map(|(i, &(x0, extra, c, slack))| {
            let y = (i / 2) as u32;
            let x1 = (x0 + extra).min(WIDTH - 1).max(x0 + 1);
            let hops = x1 - x0;
            // D = T >= L = hops + C - 1, so neither W005/W006/W007 nor
            // an overload can fire; distinct priorities (the row index)
            // keep W008/A103 away.
            let t = u64::from(hops) + c - 1 + slack + 1;
            StreamSpec::new(
                mesh.node_at(&[x0, y]).unwrap(),
                mesh.node_at(&[x1, y]).unwrap(),
                i as u32 + 1,
                t,
                c,
                t,
            )
        })
        .collect();
    (mesh, specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clean_workloads_verify_clean(rows in streams()) {
        let (mesh, specs) = build(&rows);
        let report = verify_workload(&mesh, &XyRouting, &specs, DEFAULT_HORIZON_CAP);
        prop_assert!(report.is_clean(), "{:?}", report.diagnostics);

        // The matching paper configuration is clean too.
        let set = StreamSet::resolve(&mesh, &XyRouting, &specs).unwrap();
        let levels = set.iter().map(|s| s.priority()).max().unwrap() as usize;
        let cfg = SimConfig::paper(levels).with_cycles(10_000, 1_000);
        let diags = lint_sim_config(&set, &cfg, None);
        prop_assert!(diags.is_empty(), "{diags:?}");
    }
}
