//! The rule registry: every lint rule's stable code, name, fixed
//! severity, and one-line summary.
//!
//! Codes are grouped by the layer they check:
//!
//! - `W0xx` — workload/spec rules (the `.streams` file itself);
//! - `A1xx` — analysis-artifact rules (HP sets, BDG, timing diagrams);
//! - `S2xx` — simulator-configuration rules.
//!
//! Codes are part of the tool's output contract: once shipped, a code
//! keeps its meaning forever (retired rules leave a hole rather than
//! being reused).

use crate::diag::Severity;

/// Registry entry for one lint rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable code, e.g. `"W005"`.
    pub code: &'static str,
    /// Short kebab-case name, e.g. `"length-exceeds-period"`.
    pub name: &'static str,
    /// Fixed severity of every finding from this rule.
    pub severity: Severity,
    /// One-line summary of what the rule checks.
    pub summary: &'static str,
}

/// All registered rules, ordered by code.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "W001",
        name: "duplicate-stream",
        severity: Severity::Warning,
        summary: "two streams are byte-for-byte identical (same endpoints and parameters)",
    },
    RuleInfo {
        code: "W002",
        name: "zero-parameter",
        severity: Severity::Error,
        summary: "a stream declares a zero priority, period, length, or deadline",
    },
    RuleInfo {
        code: "W003",
        name: "self-delivery",
        severity: Severity::Error,
        summary: "a stream's source equals its destination",
    },
    RuleInfo {
        code: "W004",
        name: "unroutable",
        severity: Severity::Error,
        summary: "the deterministic routing cannot produce a path between the endpoints",
    },
    RuleInfo {
        code: "W005",
        name: "length-exceeds-period",
        severity: Severity::Error,
        summary: "C > T: the stream oversubscribes its own channel",
    },
    RuleInfo {
        code: "W006",
        name: "deadline-exceeds-period",
        severity: Severity::Error,
        summary: "D > T: breaks the paper's single-outstanding-instance model",
    },
    RuleInfo {
        code: "W007",
        name: "deadline-below-latency",
        severity: Severity::Error,
        summary: "D < L: the deadline is shorter than the unloaded network latency",
    },
    RuleInfo {
        code: "W008",
        name: "priority-collision",
        severity: Severity::Warning,
        summary: "equal-priority streams share a directed channel and mutually block",
    },
    RuleInfo {
        code: "A100",
        name: "hp-set-not-closed",
        severity: Severity::Error,
        summary: "an HP set is not closed under the directly-affects relation",
    },
    RuleInfo {
        code: "A101",
        name: "blocking-mode-misclassified",
        severity: Severity::Error,
        summary: "an HP element's Direct/Indirect mode contradicts the channel-sharing relation",
    },
    RuleInfo {
        code: "A102",
        name: "indirect-without-chain",
        severity: Severity::Error,
        summary: "an Indirect HP element has no blocking chain reaching the target",
    },
    RuleInfo {
        code: "A103",
        name: "bdg-cycle",
        severity: Severity::Warning,
        summary: "the blocking dependency graph contains a cycle (mutual blocking)",
    },
    RuleInfo {
        code: "A104",
        name: "diagram-invariant-violation",
        severity: Severity::Error,
        summary: "a timing diagram violates a structural invariant (masks, windows, slot counts)",
    },
    RuleInfo {
        code: "A105",
        name: "kernel-divergence",
        severity: Severity::Error,
        summary: "the bitset and legacy diagram kernels disagree on instances or sampled cells",
    },
    RuleInfo {
        code: "A106",
        name: "bound-divergence",
        severity: Severity::Error,
        summary: "the scratch-arena and full-diagram bound computations disagree",
    },
    RuleInfo {
        code: "A107",
        name: "recovery-divergence",
        severity: Severity::Error,
        summary: "a recovered cached bound diverges from a fresh offline analysis",
    },
    RuleInfo {
        code: "A108",
        name: "recovered-deadline-violation",
        severity: Severity::Error,
        summary: "a recovered stream's cached bound misses its deadline (or is unbounded)",
    },
    RuleInfo {
        code: "A109",
        name: "recovery-report-mismatch",
        severity: Severity::Error,
        summary: "a recovery report's accounting contradicts its snapshot and WAL inputs",
    },
    RuleInfo {
        code: "A110",
        name: "divergent-suffix",
        severity: Severity::Error,
        summary: "a fenced leader's WAL holds acknowledged operations absent from the winning epoch's history",
    },
    RuleInfo {
        code: "S200",
        name: "vc-undersupply",
        severity: Severity::Error,
        summary: "the paper's policy needs one VC per priority level but fewer are configured",
    },
    RuleInfo {
        code: "S201",
        name: "deadlock-prone-routing",
        severity: Severity::Error,
        summary: "the VC dependency graph has a cycle: the routed set can deadlock",
    },
    RuleInfo {
        code: "S202",
        name: "warmup-exceeds-cycles",
        severity: Severity::Warning,
        summary: "warm-up consumes the whole simulation; no statistics will survive",
    },
    RuleInfo {
        code: "S203",
        name: "classic-multi-vc",
        severity: Severity::Error,
        summary: "classic single-VC wormhole switching configured with more than one VC",
    },
];

/// Looks a rule up by code.
pub fn rule(code: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        // Ascending within the W/A/S groups, unique overall.
        for pair in RULES.windows(2) {
            if pair[0].code[..1] == pair[1].code[..1] {
                assert!(
                    pair[0].code < pair[1].code,
                    "{} vs {}",
                    pair[0].code,
                    pair[1].code
                );
            }
        }
        for (i, r) in RULES.iter().enumerate() {
            assert!(
                RULES[i + 1..].iter().all(|o| o.code != r.code),
                "duplicate {}",
                r.code
            );
        }
        for r in RULES {
            assert_eq!(r.code.len(), 4, "{}", r.code);
            assert!(
                matches!(&r.code[..1], "W" | "A" | "S"),
                "bad prefix {}",
                r.code
            );
            assert!(!r.name.is_empty() && !r.summary.is_empty());
        }
    }

    #[test]
    fn lookup_finds_registered_codes() {
        assert_eq!(rule("A105").unwrap().name, "kernel-divergence");
        assert!(rule("A999").is_none());
    }
}
