//! # rtwc-verifier
//!
//! Static verification of wormhole stream workloads: everything that
//! can be checked **without running the simulator**. Three rule
//! families share one diagnostic model:
//!
//! - `W0xx` ([`rules::spec`]) — the workload itself: duplicate streams,
//!   oversubscription (`C > T`), broken deadline models (`D > T`,
//!   `D < L`), unroutable or self-delivering endpoints, priority
//!   collisions on shared channels;
//! - `A1xx` ([`rules::analysis`]) — the ICPP'98 analysis artifacts: HP
//!   sets closed under the blocking relation, indirect elements with
//!   real blocking chains, BDG cycles, timing-diagram structural
//!   invariants, bitset/legacy kernel agreement, scratch/full bound
//!   agreement;
//! - `S2xx` ([`rules::sim`]) — the simulator configuration: enough VCs
//!   for the policy, deadlock-free channel dependencies, sane warm-up.
//!
//! Every finding is a structured [`Diagnostic`] with a stable rule
//! code, a fixed severity from the [`registry`], a [`Span`], and an
//! optional suggestion; [`render::render_human`] and
//! [`render::render_json`] turn a batch into terminal or CI output.
//! The CLI exposes all of this as `rtwc lint` and as a deny-on-`Error`
//! guard in front of `analyze` and `check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod registry;
pub mod render;
pub mod rules;

pub use diag::{Diagnostic, Severity, Span};
pub use registry::{rule, RuleInfo, RULES};
pub use render::{json_escape, render_diagnostic_json, render_human, render_json};
pub use rules::analysis::{
    lint_analysis, lint_diagram, lint_divergence, lint_hp_set, lint_recovered,
    lint_recovery_report, DivergenceArtifact, RecoveryArtifact, DEFAULT_HORIZON_CAP,
};
pub use rules::sim::lint_sim_config;
pub use rules::spec::{lint_candidate, lint_candidate_indexed, lint_candidate_routed, lint_specs};

use rtwc_core::{StreamSet, StreamSpec};
use wormnet_topology::{Routing, Topology};

/// The outcome of a verification pass: every finding, in rule order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Wraps a batch of findings.
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        LintReport { diagnostics }
    }

    /// Number of `Error` findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }

    /// Number of `Warning` findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// True when at least one finding is an `Error` — the deny
    /// condition for the `analyze`/`check` guard.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.is_error())
    }

    /// True when there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Verifies a whole workload: runs the `W0xx` spec rules, and — when
/// the specs are clean enough to resolve — the `A1xx` analysis rules
/// over the resolved set.
///
/// This is the entry point behind `rtwc lint` and the guard in front of
/// `analyze`/`check`; `horizon_cap` is forwarded to
/// [`lint_analysis`] (use [`DEFAULT_HORIZON_CAP`]).
pub fn verify_workload<T, R>(
    topo: &T,
    routing: &R,
    specs: &[StreamSpec],
    horizon_cap: u64,
) -> LintReport
where
    T: Topology,
    R: Routing<T>,
{
    let mut diagnostics = lint_specs(topo, routing, specs);
    let spec_errors = diagnostics.iter().any(|d| d.is_error());
    if !spec_errors {
        if let Ok(set) = StreamSet::resolve(topo, routing, specs) {
            diagnostics.extend(lint_analysis(&set, horizon_cap));
        }
    }
    LintReport::new(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormnet_topology::{Mesh, XyRouting};

    #[test]
    fn paper_example_verifies_clean() {
        let m = Mesh::mesh2d(10, 10);
        let n = |x, y| m.node_at(&[x, y]).unwrap();
        let specs = [
            StreamSpec::new(n(7, 3), n(7, 7), 5, 15, 4, 15),
            StreamSpec::new(n(1, 1), n(5, 4), 4, 10, 2, 10),
            StreamSpec::new(n(2, 1), n(7, 5), 3, 40, 4, 40),
            StreamSpec::new(n(4, 1), n(8, 5), 2, 45, 9, 45),
            StreamSpec::new(n(6, 1), n(9, 3), 1, 50, 6, 50),
        ];
        let report = verify_workload(&m, &XyRouting, &specs, DEFAULT_HORIZON_CAP);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(!report.has_errors());
        assert_eq!(report.error_count() + report.warning_count(), 0);
    }

    #[test]
    fn broken_specs_stop_before_analysis() {
        let m = Mesh::mesh2d(4, 4);
        let n = |x, y| m.node_at(&[x, y]).unwrap();
        // Self-delivery is a spec error; the resolver would reject the
        // set, so the A1xx rules must not run (and must not panic).
        let specs = [
            StreamSpec::new(n(0, 0), n(0, 0), 1, 10, 2, 10),
            StreamSpec::new(n(0, 1), n(3, 1), 2, 10, 2, 10),
        ];
        let report = verify_workload(&m, &XyRouting, &specs, DEFAULT_HORIZON_CAP);
        assert!(report.has_errors());
        assert!(report.diagnostics.iter().all(|d| d.code.starts_with('W')));
    }
}
