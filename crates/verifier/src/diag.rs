//! The diagnostic data model: severities, spans, and the structured
//! finding every lint rule emits.

use std::fmt;

/// How serious a finding is.
///
/// `Error` findings describe workloads or artifacts the analysis cannot
/// be trusted on (the guard in front of `analyze`/`check` denies them);
/// `Warning` findings are suspicious but analyzable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but analyzable; reported, never fatal.
    Warning,
    /// The workload or artifact is broken; deny-by-default.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// What a diagnostic points at.
///
/// Streams are identified by their dense index (file order in a
/// `.streams` spec, which is also the [`rtwc_core::StreamId`] the
/// resolver assigns); renderers that know the spec's source lines can
/// decorate stream spans with line numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Span {
    /// The workload as a whole.
    Workload,
    /// One stream, by dense index.
    Stream(u32),
    /// An interacting pair of streams.
    StreamPair(u32, u32),
    /// One directed channel, by link index.
    Link(u32),
    /// The simulator configuration.
    Config,
}

impl Span {
    /// The primary stream this span points at, for source-line lookup.
    pub fn stream(&self) -> Option<u32> {
        match self {
            Span::Stream(s) | Span::StreamPair(s, _) => Some(*s),
            _ => None,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Workload => write!(f, "workload"),
            Span::Stream(s) => write!(f, "stream M{s}"),
            Span::StreamPair(a, b) => write!(f, "streams M{a} and M{b}"),
            Span::Link(l) => write!(f, "link L{l}"),
            Span::Config => write!(f, "sim config"),
        }
    }
}

/// One structured finding from a lint rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (`W0xx` spec, `A1xx` analysis, `S2xx` sim).
    pub code: &'static str,
    /// Severity, fixed per rule by the [registry](crate::registry).
    pub severity: Severity,
    /// What the finding points at.
    pub span: Span,
    /// Human-readable statement of the problem.
    pub message: String,
    /// Optional remedy.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic for a registered rule code; the severity is
    /// looked up in the registry.
    ///
    /// # Panics
    ///
    /// Panics on a code absent from [`crate::registry::RULES`] — rule
    /// codes are part of the tool's stable output contract and must be
    /// registered before use.
    pub fn new(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        let info =
            crate::registry::rule(code).unwrap_or_else(|| panic!("unregistered rule code {code}"));
        Diagnostic {
            code,
            severity: info.severity,
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a remedy.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// True for `Error`-severity findings.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_comes_from_registry() {
        let d = Diagnostic::new("W005", Span::Stream(2), "too long");
        assert_eq!(d.severity, Severity::Error);
        let d = Diagnostic::new("W001", Span::StreamPair(0, 1), "dup");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.span.stream(), Some(0));
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn unknown_codes_panic() {
        let _ = Diagnostic::new("Z999", Span::Workload, "nope");
    }
}
