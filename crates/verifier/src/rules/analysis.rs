//! `A1xx` — analysis-artifact rules.
//!
//! These check the ICPP'98 pipeline's intermediate artifacts — HP sets,
//! the blocking dependency graph, and timing diagrams — against the
//! invariants the delay-bound derivation relies on. On a healthy build
//! they are self-checks (the canonical constructors satisfy them by
//! construction); they exist so that hand-built artifacts, future
//! kernel changes, and cross-kernel drift are caught *before* a bound
//! is trusted.

use crate::diag::{Diagnostic, Span};
use rtwc_core::{
    cal_u_with_hp, determine_feasibility, generate_hp, AnalysisScratch, BlockingDependencyGraph,
    DelayBound, HpSet, RemovedInstances, StreamId, StreamSet, TimingDiagram,
};

/// Default cap on the per-stream diagram horizon used by the `A1xx`
/// diagram rules: long-deadline streams are checked over a prefix so
/// linting stays fast.
pub const DEFAULT_HORIZON_CAP: u64 = 4096;

/// Runs every `A1xx` rule over every stream of `set`, generating the
/// canonical artifacts and checking them. `horizon_cap` bounds the
/// diagram horizon per stream (see [`DEFAULT_HORIZON_CAP`]).
pub fn lint_analysis(set: &StreamSet, horizon_cap: u64) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for target in set.ids() {
        let hp = generate_hp(set, target);
        diags.extend(lint_hp_set(set, &hp));
        diags.extend(lint_diagram(set, &hp, horizon_cap));
    }
    diags
}

/// `A100`–`A103`: checks one HP set (canonical or hand-built) against
/// the blocking relation of `set`.
pub fn lint_hp_set(set: &StreamSet, hp: &HpSet) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let target = hp.target;
    let tgt = set.get(target);
    let span = Span::Stream(target.0);
    let member = |id: StreamId| hp.element(id).is_some();

    // A100: the set must be the closure of directly-affects chains
    // ending at the target — and must not contain the target itself.
    if member(target) {
        diags.push(Diagnostic::new(
            "A100",
            span,
            format!("HP({target}) contains its own target"),
        ));
    }
    for e in hp.elements() {
        let m = set.get(e.stream);
        for j in set.iter() {
            if j.id == target || j.id == e.stream || member(j.id) {
                continue;
            }
            if j.directly_affects(m) {
                diags.push(
                    Diagnostic::new(
                        "A100",
                        span,
                        format!(
                            "HP({target}) is not closed: {} directly affects member {} but is missing",
                            j.id, e.stream
                        ),
                    )
                    .with_suggestion("regenerate the HP set with generate_hp"),
                );
            }
        }
    }

    // A101: Direct <=> shares a channel with (and can preempt) the target.
    for e in hp.elements() {
        let direct = set.get(e.stream).directly_affects(tgt);
        if e.is_direct() && !direct {
            diags.push(Diagnostic::new(
                "A101",
                span,
                format!(
                    "{} is marked Direct in HP({target}) but does not directly affect the target",
                    e.stream
                ),
            ));
        }
        if !e.is_direct() && direct {
            diags.push(Diagnostic::new(
                "A101",
                span,
                format!(
                    "{} is marked Indirect in HP({target}) but directly affects the target (Direct dominates)",
                    e.stream
                ),
            ));
        }
        if e.is_direct() && !e.intermediates.is_empty() {
            diags.push(Diagnostic::new(
                "A101",
                span,
                format!(
                    "direct element {} of HP({target}) carries intermediate streams",
                    e.stream
                ),
            ));
        }
    }

    // A102: every indirect element needs a blocking chain — a nonempty
    // IN field of members (or the target), and a finite BDG distance.
    let bdg = BlockingDependencyGraph::build(set, hp);
    let dist = bdg.distance_from_target();
    for e in hp.elements().iter().filter(|e| !e.is_direct()) {
        if e.intermediates.is_empty() {
            diags.push(Diagnostic::new(
                "A102",
                span,
                format!(
                    "indirect element {} of HP({target}) has no intermediate streams",
                    e.stream
                ),
            ));
        }
        for &i in &e.intermediates {
            if i != target && !member(i) {
                diags.push(Diagnostic::new(
                    "A102",
                    span,
                    format!(
                        "intermediate {} of indirect element {} is not in HP({target})",
                        i, e.stream
                    ),
                ));
            }
        }
        if let Some(pos) = bdg.nodes().iter().position(|&n| n == e.stream) {
            if dist[pos].is_none() {
                diags.push(
                    Diagnostic::new(
                        "A102",
                        span,
                        format!(
                            "no blocking chain from indirect element {} reaches the target in the BDG",
                            e.stream
                        ),
                    )
                    .with_suggestion("the element cannot delay the target; drop it"),
                );
            }
        }
    }

    // A103: cycles in the BDG mean mutual blocking (equal priorities on
    // shared channels). The processing order falls back deterministically,
    // so this is a warning, not an error.
    if let Some(cycle) = bdg_cycle(&bdg) {
        let names: Vec<String> = cycle.iter().map(|s| format!("{s}")).collect();
        diags.push(
            Diagnostic::new(
                "A103",
                span,
                format!(
                    "blocking dependency cycle in BDG({target}): {} -> (back to start)",
                    names.join(" -> ")
                ),
            )
            .with_suggestion("distinct priorities on shared channels break the cycle"),
        );
    }

    diags
}

/// `A104`–`A106`: generates the timing diagram for `hp`'s target over a
/// capped horizon and checks structural invariants, bitset/legacy
/// kernel agreement, and scratch/full bound agreement.
pub fn lint_diagram(set: &StreamSet, hp: &HpSet, horizon_cap: u64) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let target = hp.target;
    let span = Span::Stream(target.0);
    let horizon = set.get(target).deadline().clamp(1, horizon_cap.max(1));
    let none = RemovedInstances::none();

    // A104: structural invariants of the packed-bitset diagram.
    let d = TimingDiagram::generate(set, hp, horizon, &none);
    if let Err(e) = d.check_invariants(set) {
        diags.push(
            Diagnostic::new(
                "A104",
                span,
                format!("timing diagram for {target} violates an invariant: {e}"),
            )
            .with_suggestion("the diagram kernel is unsound here; do not trust this bound"),
        );
    }

    // A105: the legacy cell-matrix kernel is the oracle; the bitset
    // kernel must agree on every instance and on sampled cells.
    let legacy = TimingDiagram::generate_legacy(set, hp, horizon, &none);
    diags.extend(kernel_divergence(&d, &legacy, horizon, span));

    // A106: the bound-only scratch arena must agree with the full
    // diagram pipeline on the final bound.
    let full = cal_u_with_hp(set, hp.clone(), horizon).bound;
    let fast = AnalysisScratch::new().delay_bound(set, hp, horizon);
    if full != fast {
        diags.push(Diagnostic::new(
            "A106",
            span,
            format!(
                "bound divergence for {target}: full diagram pipeline says {full}, scratch arena says {fast}"
            ),
        ));
    }

    diags
}

/// `A107`/`A108`: audits a crash-recovered admission state against a
/// fresh offline analysis.
///
/// `cached` are the delay bounds the recovered controller serves, in
/// dense id order. The rule recomputes every bound with
/// `determine_feasibility` over the same set and flags any divergence
/// (`A107`) — a recovered state that does not reproduce the offline
/// analysis bit for bit must not accept traffic, because every
/// guarantee it would issue is built on unverifiable cached state. It
/// also re-checks the admission invariant itself (`A108`): every
/// recovered bound must be bounded and within its stream's deadline.
pub fn lint_recovered(set: &StreamSet, cached: &[DelayBound]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if cached.len() != set.len() {
        diags.push(Diagnostic::new(
            "A107",
            Span::Workload,
            format!(
                "recovered state has {} cached bound(s) for {} stream(s)",
                cached.len(),
                set.len()
            ),
        ));
        return diags;
    }
    let fresh = determine_feasibility(set);
    for id in set.ids() {
        let got = cached[id.index()];
        let want = fresh.bound(id);
        if got != want {
            diags.push(Diagnostic::new(
                "A107",
                Span::Stream(id.0),
                format!(
                    "recovered cached bound for {id} is {got}, fresh offline analysis says {want}"
                ),
            ));
        }
        let deadline = set.get(id).deadline();
        match got.value() {
            Some(u) if u <= deadline => {}
            _ => diags.push(Diagnostic::new(
                "A108",
                Span::Stream(id.0),
                format!(
                    "recovered {id} serves bound {got} against deadline {deadline}: the admitted set is no longer feasible"
                ),
            )),
        }
    }
    diags
}

/// Neutral description of one crash-recovery run: the durability
/// inputs it consumed (snapshot sequence number, WAL header base and
/// physical record count) and the claims its report makes. The
/// admission server's `RecoveryReport` maps onto this; keeping a plain
/// struct here lets the verifier audit the arithmetic without a
/// dependency on the server crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryArtifact {
    /// Sequence number of the loaded snapshot (`None` on a cold start).
    pub snapshot_seq: Option<u64>,
    /// `base_seq` from the WAL header: operations in the history
    /// before the log's first record.
    pub wal_base_seq: u64,
    /// Records physically present in the (torn-tail-truncated) WAL.
    pub wal_records: u64,
    /// Records the report claims were replayed into the state.
    pub reported_replayed: u64,
    /// Records the report claims were skipped as snapshot-covered.
    pub reported_skipped: u64,
    /// The sequence number the recovered state serves.
    pub reported_seq: u64,
}

/// `A109`: cross-checks a recovery report against its snapshot and WAL
/// inputs.
///
/// The durable history is a single sequence of accepted operations;
/// the snapshot covers a prefix `[1, snapshot_seq]` and the WAL covers
/// `(wal_base_seq, wal_base_seq + wal_records]`. A trustworthy
/// recovery must have consumed a *contiguous* history (the WAL may not
/// begin after the snapshot ends — that is a hole) and its report must
/// account for every record exactly once: `skipped` is the overlap
/// with the snapshot, `replayed` is the rest, and the served sequence
/// number is the end of whichever input reaches further. A report that
/// fails this arithmetic describes a recovery that dropped or
/// double-applied operations, so the state it produced must not accept
/// traffic.
pub fn lint_recovery_report(a: &RecoveryArtifact) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let span = Span::Workload;
    let snap_seq = a.snapshot_seq.unwrap_or(0);

    // Contiguity: the WAL's first record must be at or before the
    // operation right after the snapshot's last covered one.
    if a.wal_base_seq > snap_seq {
        diags.push(
            Diagnostic::new(
                "A109",
                span,
                format!(
                    "history gap: the WAL starts at seq {} but the snapshot only covers {snap_seq} \
                     — operations {} through {} are lost",
                    a.wal_base_seq,
                    snap_seq + 1,
                    a.wal_base_seq
                ),
            )
            .with_suggestion("restore the matching snapshot or an older, contiguous WAL"),
        );
        // The alignment arithmetic below would underflow on a gapped
        // history; one fatal finding is enough.
        return diags;
    }

    // Alignment: the snapshot overlap determines what must be skipped
    // and what must be replayed, exactly.
    let want_skipped = (snap_seq - a.wal_base_seq).min(a.wal_records);
    let want_replayed = a.wal_records - want_skipped;
    if a.reported_skipped != want_skipped {
        diags.push(Diagnostic::new(
            "A109",
            span,
            format!(
                "skip miscount: snapshot@{snap_seq} over a WAL at base {} with {} record(s) \
                 covers {want_skipped}, report says {} skipped",
                a.wal_base_seq, a.wal_records, a.reported_skipped
            ),
        ));
    }
    if a.reported_replayed != want_replayed {
        diags.push(Diagnostic::new(
            "A109",
            span,
            format!(
                "replay miscount: {} WAL record(s) minus {want_skipped} snapshot-covered \
                 leaves {want_replayed}, report says {} replayed",
                a.wal_records, a.reported_replayed
            ),
        ));
    }

    // The served sequence number is the furthest point either input
    // reaches; anything else re-issues or skips sequence numbers on
    // the next append.
    let want_seq = (a.wal_base_seq + a.wal_records).max(snap_seq);
    if a.reported_seq != want_seq {
        diags.push(
            Diagnostic::new(
                "A109",
                span,
                format!(
                    "sequence miscount: the recovered history ends at {want_seq}, \
                     the state serves {}",
                    a.reported_seq
                ),
            )
            .with_suggestion("the next appended record would collide with or skip history"),
        );
    }

    diags
}

/// Neutral description of one fencing event: a leader deposed by a
/// higher epoch, with the sequence frontier the winner acknowledged as
/// the common history. The admission server's fence path maps onto
/// this; keeping a plain struct here lets the verifier audit the
/// arithmetic without a dependency on the server crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DivergenceArtifact {
    /// The epoch this node held when it was fenced.
    pub fenced_epoch: u64,
    /// The winning (promoted) peer's epoch.
    pub winner_epoch: u64,
    /// Highest sequence the winner had applied from this node's stream
    /// — the end of the shared history.
    pub common_seq: u64,
    /// Highest sequence this node's local WAL reaches.
    pub local_seq: u64,
}

/// `A110`: audits a fenced leader's unshipped WAL suffix.
///
/// After a partition, the deposed leader's WAL may extend past the
/// last sequence the promoted winner ever applied: every operation in
/// `(common_seq, local_seq]` was acknowledged to some client but is
/// absent from the surviving history, so the acknowledgement is void.
/// The report names the divergent range explicitly — the operator (or
/// the chaos harness) can then replay, compensate, or discard it
/// deliberately instead of the suffix silently vanishing on rejoin. A
/// fence whose epochs are not actually ordered is reported too: it
/// means the fencing handshake itself is broken.
pub fn lint_divergence(a: &DivergenceArtifact) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let span = Span::Workload;
    if a.winner_epoch <= a.fenced_epoch {
        diags.push(
            Diagnostic::new(
                "A110",
                span,
                format!(
                    "bogus fence: winner epoch {} does not exceed the fenced epoch {}",
                    a.winner_epoch, a.fenced_epoch
                ),
            )
            .with_suggestion("a fence must only be honored for a strictly higher epoch"),
        );
        return diags;
    }
    if a.local_seq > a.common_seq {
        let lost = a.local_seq - a.common_seq;
        diags.push(
            Diagnostic::new(
                "A110",
                span,
                format!(
                    "divergent suffix: {lost} acknowledged operation(s) in seq range {}..={} \
                     exist only on the fenced leader (epoch {}); the epoch-{} history ends their \
                     shared prefix at {}",
                    a.common_seq + 1,
                    a.local_seq,
                    a.fenced_epoch,
                    a.winner_epoch,
                    a.common_seq
                ),
            )
            .with_suggestion(
                "rejoin discards this suffix; re-submit the operations against the new leader \
                 if their acknowledgements must hold",
            ),
        );
    }
    diags
}

/// Compares two diagrams row by row: instance lists exactly, cells on a
/// sampled grid (up to 64 samples per row).
fn kernel_divergence(
    d: &TimingDiagram,
    oracle: &TimingDiagram,
    horizon: u64,
    span: Span,
) -> Vec<Diagnostic> {
    if d.rows().len() != oracle.rows().len() {
        return vec![Diagnostic::new(
            "A105",
            span,
            format!(
                "kernel divergence: bitset diagram has {} rows, legacy has {}",
                d.rows().len(),
                oracle.rows().len()
            ),
        )];
    }
    for (r, (dr, or)) in d.rows().iter().zip(oracle.rows().iter()).enumerate() {
        if dr.stream != or.stream || dr.instances != or.instances {
            return vec![Diagnostic::new(
                "A105",
                span,
                format!(
                    "kernel divergence in row {r} ({}): instance lists differ",
                    dr.stream
                ),
            )];
        }
    }
    let stride = (horizon / 64).max(1);
    for r in 0..d.rows().len() {
        let mut t = 1;
        while t <= horizon {
            if d.slot(r, t) != oracle.slot(r, t) {
                return vec![Diagnostic::new(
                    "A105",
                    span,
                    format!(
                        "kernel divergence in row {r} at slot {t}: bitset says {:?}, legacy says {:?}",
                        d.slot(r, t),
                        oracle.slot(r, t)
                    ),
                )];
            }
            t += stride;
        }
    }
    Vec::new()
}

/// Finds one directed cycle in the BDG, if any, via DFS coloring.
fn bdg_cycle(bdg: &BlockingDependencyGraph) -> Option<Vec<StreamId>> {
    let nodes = bdg.nodes();
    let mut color = vec![0u8; nodes.len()]; // 0 white, 1 on-path, 2 done
    let mut path = Vec::new();
    for start in 0..nodes.len() {
        if color[start] == 0 {
            if let Some(c) = dfs(bdg, nodes, start, &mut color, &mut path) {
                return Some(c);
            }
        }
    }
    None
}

fn dfs(
    bdg: &BlockingDependencyGraph,
    nodes: &[StreamId],
    u: usize,
    color: &mut [u8],
    path: &mut Vec<usize>,
) -> Option<Vec<StreamId>> {
    color[u] = 1;
    path.push(u);
    for v in 0..nodes.len() {
        if v == u || !bdg.edge(nodes[u], nodes[v]) {
            continue;
        }
        if color[v] == 1 {
            let from = path.iter().position(|&x| x == v).expect("on path");
            return Some(path[from..].iter().map(|&i| nodes[i]).collect());
        }
        if color[v] == 0 {
            if let Some(c) = dfs(bdg, nodes, v, color, path) {
                return Some(c);
            }
        }
    }
    path.pop();
    color[u] = 2;
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtwc_core::{BlockingMode, HpElement, StreamSpec};
    use wormnet_topology::{Mesh, Topology, XyRouting};

    /// The paper's worked example: M0 highest priority, M4 lowest; M4's
    /// HP set has direct and indirect elements.
    fn paper_set() -> StreamSet {
        let m = Mesh::mesh2d(10, 10);
        let n = |x, y| m.node_at(&[x, y]).unwrap();
        let specs = [
            StreamSpec::new(n(7, 3), n(7, 7), 5, 15, 4, 15),
            StreamSpec::new(n(1, 1), n(5, 4), 4, 10, 2, 10),
            StreamSpec::new(n(2, 1), n(7, 5), 3, 40, 4, 40),
            StreamSpec::new(n(4, 1), n(8, 5), 2, 45, 9, 45),
            StreamSpec::new(n(6, 1), n(9, 3), 1, 50, 6, 50),
        ];
        StreamSet::resolve(&m, &XyRouting, &specs).unwrap()
    }

    #[test]
    fn canonical_artifacts_are_clean() {
        let set = paper_set();
        assert_eq!(lint_analysis(&set, DEFAULT_HORIZON_CAP), Vec::new());
    }

    #[test]
    fn recovery_audit_accepts_fresh_bounds_and_flags_tampering() {
        let set = paper_set();
        let fresh = determine_feasibility(&set);
        let cached: Vec<DelayBound> = set.ids().map(|id| fresh.bound(id)).collect();
        assert_eq!(lint_recovered(&set, &cached), Vec::new());

        // A divergent cached bound is an A107 error; one past its
        // deadline is additionally an A108.
        let mut tampered = cached.clone();
        tampered[2] = DelayBound::Bounded(tampered[2].value().unwrap() + 1);
        let diags = lint_recovered(&set, &tampered);
        assert!(diags.iter().any(|d| d.code == "A107"), "{diags:?}");

        let mut broken = cached.clone();
        broken[1] = DelayBound::Exceeded;
        let diags = lint_recovered(&set, &broken);
        assert!(diags.iter().any(|d| d.code == "A108"), "{diags:?}");
        assert!(diags.iter().all(|d| d.is_error()), "{diags:?}");

        // A length mismatch is flagged without panicking.
        let diags = lint_recovered(&set, &cached[..3]);
        assert!(diags.iter().any(|d| d.code == "A107"), "{diags:?}");
    }

    #[test]
    fn recovery_report_arithmetic_is_cross_checked() {
        // A consistent run: snapshot@3 over a WAL holding seqs 2..=5:
        // 1 skipped, 2 replayed, serving seq 5.
        let ok = RecoveryArtifact {
            snapshot_seq: Some(3),
            wal_base_seq: 2,
            wal_records: 3,
            reported_replayed: 2,
            reported_skipped: 1,
            reported_seq: 5,
        };
        assert_eq!(lint_recovery_report(&ok), Vec::new());

        // Cold start, no snapshot: everything replays.
        let cold = RecoveryArtifact {
            snapshot_seq: None,
            wal_base_seq: 0,
            wal_records: 4,
            reported_replayed: 4,
            reported_skipped: 0,
            reported_seq: 4,
        };
        assert_eq!(lint_recovery_report(&cold), Vec::new());

        // Snapshot past the whole WAL: all records skipped, the
        // snapshot's seq wins.
        let covered = RecoveryArtifact {
            snapshot_seq: Some(9),
            wal_base_seq: 2,
            wal_records: 3,
            reported_replayed: 0,
            reported_skipped: 3,
            reported_seq: 9,
        };
        assert_eq!(lint_recovery_report(&covered), Vec::new());

        // A WAL that begins after the snapshot ends is a history gap:
        // one fatal finding, no underflow.
        let gap = RecoveryArtifact {
            wal_base_seq: 7,
            ..ok
        };
        let diags = lint_recovery_report(&gap);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].code == "A109" && diags[0].is_error());
        assert!(diags[0].message.contains("history gap"), "{diags:?}");

        // Each miscount is flagged independently.
        let wrong = RecoveryArtifact {
            reported_replayed: 3,
            reported_skipped: 0,
            reported_seq: 6,
            ..ok
        };
        let diags = lint_recovery_report(&wrong);
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == "A109" && d.is_error()));
    }

    #[test]
    fn divergence_audit_names_the_lost_suffix() {
        // No divergence: the winner applied everything we had.
        let clean = DivergenceArtifact {
            fenced_epoch: 1,
            winner_epoch: 2,
            common_seq: 7,
            local_seq: 7,
        };
        assert_eq!(lint_divergence(&clean), Vec::new());

        // Behind the winner (we missed frames, not the reverse): the
        // rejoin catch-up handles it; nothing was lost here.
        let behind = DivergenceArtifact {
            local_seq: 5,
            ..clean
        };
        assert_eq!(lint_divergence(&behind), Vec::new());

        // Three acked ops exist only on the fenced side.
        let lost = DivergenceArtifact {
            common_seq: 7,
            local_seq: 10,
            ..clean
        };
        let diags = lint_divergence(&lost);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].code == "A110" && diags[0].is_error());
        assert!(
            diags[0].message.contains("3 acknowledged operation(s)"),
            "{diags:?}"
        );
        assert!(diags[0].message.contains("8..=10"), "{diags:?}");

        // Unordered epochs mean the fence handshake is broken.
        let bogus = DivergenceArtifact {
            fenced_epoch: 2,
            winner_epoch: 2,
            ..lost
        };
        let diags = lint_divergence(&bogus);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("bogus fence"), "{diags:?}");
    }

    #[test]
    fn dropping_a_member_breaks_closure() {
        let set = paper_set();
        let hp = generate_hp(&set, StreamId(4));
        assert!(
            hp.len() >= 3,
            "paper example: M4 is blocked by several streams"
        );
        // Remove one element whose blockers stay members -> not closed.
        let mut elements = hp.elements().to_vec();
        let dropped = elements.remove(0);
        let tampered = HpSet::from_elements(StreamId(4), elements);
        let diags = lint_hp_set(&set, &tampered);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "A100" && d.message.contains(&format!("{}", dropped.stream))),
            "{diags:?}"
        );
    }

    #[test]
    fn flipping_a_mode_is_misclassification() {
        let set = paper_set();
        let hp = generate_hp(&set, StreamId(4));
        let mut elements = hp.elements().to_vec();
        let e = elements.iter_mut().find(|e| e.is_direct()).unwrap();
        e.mode = BlockingMode::Indirect;
        let flipped = e.stream;
        let tampered = HpSet::from_elements(StreamId(4), elements);
        let diags = lint_hp_set(&set, &tampered);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "A101" && d.message.contains(&format!("{flipped}"))),
            "{diags:?}"
        );
    }

    #[test]
    fn fake_indirect_element_has_no_chain() {
        // Two disjoint streams: the lower-priority one cannot be blocked
        // by the higher-priority one at all, so planting it in the HP
        // set as Indirect must raise both A100-family noise and A102.
        let m = Mesh::mesh2d(6, 6);
        let n = |x, y| m.node_at(&[x, y]).unwrap();
        let specs = [
            StreamSpec::new(n(0, 0), n(3, 0), 2, 30, 3, 30),
            StreamSpec::new(n(0, 5), n(3, 5), 1, 30, 3, 30),
        ];
        let set = StreamSet::resolve(&m, &XyRouting, &specs).unwrap();
        assert!(generate_hp(&set, StreamId(1)).is_empty());
        let tampered = HpSet::from_elements(
            StreamId(1),
            vec![HpElement {
                stream: StreamId(0),
                mode: BlockingMode::Indirect,
                intermediates: Vec::new(),
            }],
        );
        let diags = lint_hp_set(&set, &tampered);
        assert!(diags.iter().any(|d| d.code == "A102"), "{diags:?}");
    }

    #[test]
    fn equal_priorities_on_a_shared_channel_cycle() {
        let m = Mesh::mesh2d(6, 1);
        let n = |x| m.node_at(&[x, 0]).unwrap();
        let specs = [
            StreamSpec::new(n(0), n(4), 2, 30, 3, 30),
            StreamSpec::new(n(1), n(5), 2, 30, 3, 30),
        ];
        let set = StreamSet::resolve(&m, &XyRouting, &specs).unwrap();
        let hp = generate_hp(&set, StreamId(0));
        let diags = lint_hp_set(&set, &hp);
        assert!(diags.iter().any(|d| d.code == "A103"), "{diags:?}");
        assert!(
            diags.iter().all(|d| !d.is_error()),
            "mutual blocking is analyzable"
        );
    }

    #[test]
    fn diagram_rules_accept_canonical_diagrams() {
        let set = paper_set();
        for target in set.ids() {
            let hp = generate_hp(&set, target);
            assert_eq!(lint_diagram(&set, &hp, 128), Vec::new());
        }
    }
}
