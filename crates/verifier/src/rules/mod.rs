//! The lint rules, grouped by the layer they check.

pub mod analysis;
pub mod sim;
pub mod spec;
