//! `S2xx` — simulator-configuration rules.
//!
//! These check a [`SimConfig`] against the resolved stream set it is
//! about to simulate: enough virtual channels for the chosen policy,
//! deadlock-free channel dependencies, and a warm-up that leaves
//! statistics behind.

use crate::diag::{Diagnostic, Span};
use rtwc_core::{per_priority_cycle, StreamSet};
use wormnet_sim::{Policy, SimConfig};

/// Runs every `S2xx` rule. `layers` optionally gives each stream's
/// per-hop dateline layers (tori); pass `None` for meshes.
pub fn lint_sim_config(
    set: &StreamSet,
    cfg: &SimConfig,
    layers: Option<&[Vec<u8>]>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // S200: the paper's scheme maps each priority class to its own VC;
    // with fewer VCs than the highest class the mapping is impossible.
    let levels = set.iter().map(|s| s.priority()).max().unwrap_or(0) as usize;
    if cfg.policy == Policy::PreemptivePriority && cfg.num_vcs < levels {
        diags.push(
            Diagnostic::new(
                "S200",
                Span::Config,
                format!(
                    "policy PreemptivePriority needs one VC per priority class: set uses priorities up to {levels} but only {} VC(s) are configured",
                    cfg.num_vcs
                ),
            )
            .with_suggestion(format!("use SimConfig::paper({levels})")),
        );
    }

    // S203: classic wormhole switching is *defined* as single-VC.
    if cfg.policy == Policy::ClassicFifo && cfg.num_vcs != 1 {
        diags.push(
            Diagnostic::new(
                "S203",
                Span::Config,
                format!(
                    "policy ClassicFifo models single-VC wormhole switching but {} VCs are configured",
                    cfg.num_vcs
                ),
            )
            .with_suggestion("use SimConfig::classic()"),
        );
    }

    // S201: a cycle in the VC dependency graph can deadlock the network;
    // the delay bounds assume blocking is the only hazard.
    if let Some(cycle) = per_priority_cycle(set, layers) {
        let witness: Vec<String> = cycle
            .iter()
            .take(6)
            .map(|r| format!("L{}/p{}/l{}", r.link.0, r.class, r.layer))
            .collect();
        let more = cycle.len().saturating_sub(6);
        let tail = if more > 0 {
            format!(" -> ... ({more} more)")
        } else {
            String::new()
        };
        diags.push(
            Diagnostic::new(
                "S201",
                Span::Link(cycle.first().map_or(0, |r| r.link.0)),
                format!(
                    "the routed set's VC dependency graph has a cycle: {}{tail}",
                    witness.join(" -> ")
                ),
            )
            .with_suggestion(
                "use a deadlock-free deterministic routing (X-Y / e-cube) or add dateline layers",
            ),
        );
    }

    // S202: warm-up at or past the end of the run discards every sample.
    if cfg.warmup >= cfg.cycles {
        diags.push(
            Diagnostic::new(
                "S202",
                Span::Config,
                format!(
                    "warm-up ({} cycles) consumes the whole simulation ({} cycles); no statistics will survive",
                    cfg.warmup, cfg.cycles
                ),
            )
            .with_suggestion("simulate longer or shorten the warm-up"),
        );
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtwc_core::StreamSpec;
    use wormnet_topology::{Mesh, NodeId, Path, Topology, XyRouting};

    fn xy_set() -> StreamSet {
        let m = Mesh::mesh2d(4, 4);
        let n = |x, y| m.node_at(&[x, y]).unwrap();
        let specs = [
            StreamSpec::new(n(0, 0), n(3, 1), 2, 30, 3, 30),
            StreamSpec::new(n(3, 3), n(0, 2), 1, 30, 3, 30),
        ];
        StreamSet::resolve(&m, &XyRouting, &specs).unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn paper_config_is_clean() {
        let set = xy_set();
        let cfg = SimConfig::paper(2).with_cycles(10_000, 1_000);
        assert!(lint_sim_config(&set, &cfg, None).is_empty());
    }

    #[test]
    fn vc_undersupply_and_warmup_fire() {
        let set = xy_set();
        let cfg = SimConfig::paper(1).with_cycles(500, 500);
        let diags = lint_sim_config(&set, &cfg, None);
        assert_eq!(codes(&diags), vec!["S200", "S202"], "{diags:?}");
    }

    #[test]
    fn classic_with_extra_vcs_is_rejected() {
        let set = xy_set();
        let mut cfg = SimConfig::classic().with_cycles(10_000, 0);
        cfg.num_vcs = 3;
        let diags = lint_sim_config(&set, &cfg, None);
        assert_eq!(codes(&diags), vec!["S203"], "{diags:?}");
    }

    #[test]
    fn turn_cycle_is_deadlock_prone() {
        // Four equal-priority streams each turning a corner of a 2x2
        // block: the classic wormhole deadlock (cf. core::deadlock).
        let m = Mesh::mesh2d(3, 3);
        let n = |x: u32, y: u32| m.node_at(&[x, y]).unwrap();
        let path = |pts: &[(u32, u32)]| {
            let nodes: Vec<NodeId> = pts.iter().map(|&(x, y)| n(x, y)).collect();
            let links = nodes
                .windows(2)
                .map(|w| m.link_between(w[0], w[1]).unwrap())
                .collect();
            Path::new(nodes, links)
        };
        let mk = |pts: &[(u32, u32)]| {
            let path = path(pts);
            (
                StreamSpec::new(path.source(), path.dest(), 1, 100, 8, 100),
                path,
            )
        };
        let set = StreamSet::from_parts(vec![
            mk(&[(0, 0), (1, 0), (1, 1)]),
            mk(&[(1, 0), (1, 1), (0, 1)]),
            mk(&[(1, 1), (0, 1), (0, 0)]),
            mk(&[(0, 1), (0, 0), (1, 0)]),
        ])
        .unwrap();
        let cfg = SimConfig::paper(1).with_cycles(10_000, 100);
        let diags = lint_sim_config(&set, &cfg, None);
        assert_eq!(codes(&diags), vec!["S201"], "{diags:?}");
        assert!(diags[0].message.contains("cycle"), "{diags:?}");
        assert!(matches!(diags[0].span, Span::Link(_)));
    }
}
