//! `W0xx` — workload/spec rules.
//!
//! These run on *raw* [`StreamSpec`]s, before resolution, so that a
//! spec the resolver would reject outright still produces one
//! structured diagnostic per problem instead of aborting on the first.

use crate::diag::{Diagnostic, Span};
use rtwc_core::{latency::network_latency, StreamSpec};
use wormnet_topology::{LinkId, Path, Routing, Topology};

/// Runs the per-stream rules (`W002`..`W007`) for one spec, appending
/// any findings to `diags` and returning the stream's route when it has
/// one (the pairwise rules need it).
fn single_stream_rules<T, R>(
    topo: &T,
    routing: &R,
    s: &StreamSpec,
    id: u32,
    diags: &mut Vec<Diagnostic>,
) -> Option<Path>
where
    T: Topology,
    R: Routing<T>,
{
    let span = Span::Stream(id);

    // W002: zero parameters. Report every zero field in one finding.
    let mut zeros = Vec::new();
    if s.priority == 0 {
        zeros.push("priority");
    }
    if s.period == 0 {
        zeros.push("period T");
    }
    if s.max_length == 0 {
        zeros.push("length C");
    }
    if s.deadline == 0 {
        zeros.push("deadline D");
    }
    if !zeros.is_empty() {
        diags.push(
            Diagnostic::new(
                "W002",
                span,
                format!(
                    "zero {} (every parameter must be positive)",
                    zeros.join(", ")
                ),
            )
            .with_suggestion("give the stream positive parameters"),
        );
    }

    // W003 / W004: endpoints and routability.
    let path = if s.source == s.dest {
        diags.push(
            Diagnostic::new(
                "W003",
                span,
                format!("source equals destination (node {})", s.source),
            )
            .with_suggestion("self-delivery never enters the network; drop the stream"),
        );
        None
    } else {
        match routing.route(topo, s.source, s.dest) {
            Ok(p) => Some(p),
            Err(e) => {
                diags.push(
                    Diagnostic::new(
                        "W004",
                        span,
                        format!("no route from {} to {}: {e}", s.source, s.dest),
                    )
                    .with_suggestion("pick endpoints the deterministic routing can connect"),
                );
                None
            }
        }
    };

    // W005 / W006: parameter ordering (only meaningful when nonzero).
    if s.max_length > 0 && s.period > 0 && s.max_length > s.period {
        diags.push(
            Diagnostic::new(
                "W005",
                span,
                format!(
                    "length C = {} exceeds period T = {}: the stream oversubscribes its own channel",
                    s.max_length, s.period
                ),
            )
            .with_suggestion("shorten the message or lengthen the period"),
        );
    }
    if s.deadline > 0 && s.period > 0 && s.deadline > s.period {
        diags.push(
            Diagnostic::new(
                "W006",
                span,
                format!(
                    "deadline D = {} exceeds period T = {}: the analysis assumes at most one outstanding instance (D <= T)",
                    s.deadline, s.period
                ),
            )
            .with_suggestion("set D <= T, or split the stream"),
        );
    }

    // W007: deadline below the unloaded network latency.
    if let Some(p) = &path {
        if s.max_length > 0 && s.deadline > 0 {
            let latency = network_latency(p.hops(), s.max_length);
            if s.deadline < latency {
                diags.push(
                    Diagnostic::new(
                        "W007",
                        span,
                        format!(
                            "deadline D = {} is below the unloaded network latency L = {} ({} hops, C = {})",
                            s.deadline,
                            latency,
                            p.hops(),
                            s.max_length
                        ),
                    )
                    .with_suggestion(
                        "no schedule can meet this deadline even on an idle network",
                    ),
                );
            }
        }
    }
    path
}

/// The `W001` finding: stream `j` duplicates the earlier stream `i`.
fn duplicate_finding(j: u32, i: u32) -> Diagnostic {
    Diagnostic::new(
        "W001",
        Span::StreamPair(j, i),
        format!("stream M{j} duplicates M{i} exactly"),
    )
    .with_suggestion("drop the copy, or merge the traffic into one stream")
}

/// The `W008` finding: streams `i` and `j` share `priority` and the
/// directed channel `link`.
fn collision_finding(i: u32, j: u32, priority: u32, link: LinkId) -> Diagnostic {
    Diagnostic::new(
        "W008",
        Span::StreamPair(i, j),
        format!(
            "streams M{i} and M{j} share priority {priority} and directed channel L{} — they mutually block",
            link.0
        ),
    )
    .with_suggestion("give the streams distinct priorities")
}

/// Runs every `W0xx` rule over `specs`, routing each stream with the
/// given deterministic algorithm. Streams are identified in spans by
/// their index in `specs` (the id the resolver would assign).
pub fn lint_specs<T, R>(topo: &T, routing: &R, specs: &[StreamSpec]) -> Vec<Diagnostic>
where
    T: Topology,
    R: Routing<T>,
{
    let mut diags = Vec::new();
    let mut paths: Vec<Option<Path>> = Vec::with_capacity(specs.len());

    for (i, s) in specs.iter().enumerate() {
        let path = single_stream_rules(topo, routing, s, i as u32, &mut diags);
        paths.push(path);
    }

    // W001: byte-for-byte duplicate declarations. Each later copy is
    // reported against its first occurrence.
    for j in 1..specs.len() {
        if let Some(i) = specs[..j].iter().position(|s| *s == specs[j]) {
            diags.push(duplicate_finding(j as u32, i as u32));
        }
    }

    // W008: equal-priority streams sharing a directed channel. Under
    // the paper's model equal priorities block each other, so the pair
    // is analyzable — but the mutual blocking is usually unintended.
    for j in 1..specs.len() {
        for i in 0..j {
            if specs[i].priority != specs[j].priority || specs[i] == specs[j] {
                continue;
            }
            let (Some(a), Some(b)) = (&paths[i], &paths[j]) else {
                continue;
            };
            if let Some(&link) = a.shared_links(b).first() {
                diags.push(collision_finding(
                    i as u32,
                    j as u32,
                    specs[i].priority,
                    link,
                ));
            }
        }
    }

    diags
}

/// Runs the `W0xx` rules on a single **candidate** stream against an
/// already-admitted set: the per-stream rules (`W002`..`W007`) on the
/// candidate itself, plus the pairwise rules (`W001` duplicate, `W008`
/// priority collision) between the candidate and each admitted stream.
///
/// This is the admission-time entry point used by the online service
/// (`rtwc serve`): every `ADMIT` is linted *before* the admission
/// controller is touched, and only findings that involve the candidate
/// are produced — pre-existing findings in the admitted set are not
/// re-reported. The candidate is identified in spans by the id it would
/// get on admission, `admitted.len()`.
pub fn lint_candidate<T, R>(
    topo: &T,
    routing: &R,
    admitted: &[StreamSpec],
    candidate: &StreamSpec,
) -> Vec<Diagnostic>
where
    T: Topology,
    R: Routing<T>,
{
    // Self-deliveries and unroutable streams get a trivial (linkless)
    // path, which shares no channel with anything — exactly the streams
    // the pairwise rules must skip.
    let routed: Vec<(StreamSpec, Path)> = admitted
        .iter()
        .map(|s| {
            let p = if s.source == s.dest {
                Path::trivial(s.source)
            } else {
                routing
                    .route(topo, s.source, s.dest)
                    .unwrap_or_else(|_| Path::trivial(s.source))
            };
            (s.clone(), p)
        })
        .collect();
    lint_candidate_routed(topo, routing, &routed, candidate)
}

/// [`lint_candidate`] over *pre-routed* admitted streams.
///
/// The admission service stores every admitted stream's path alongside
/// its spec, so re-routing the whole set per `ADMIT` (and cloning every
/// spec to build the `&[StreamSpec]` slice) under the exclusive service
/// lock is pure waste. This variant borrows the `(spec, path)` pairs
/// as the admission controller already holds them. With a
/// deterministic routing algorithm the diagnostics are identical to
/// [`lint_candidate`]'s.
pub fn lint_candidate_routed<T, R>(
    topo: &T,
    routing: &R,
    admitted: &[(StreamSpec, Path)],
    candidate: &StreamSpec,
) -> Vec<Diagnostic>
where
    T: Topology,
    R: Routing<T>,
{
    let duplicate_of = admitted
        .iter()
        .position(|(s, _)| s == candidate)
        .map(|i| i as u32);
    let indexed: Vec<(u32, &StreamSpec, &Path)> = admitted
        .iter()
        .enumerate()
        .map(|(i, (s, p))| (i as u32, s, p))
        .collect();
    lint_candidate_indexed(
        topo,
        routing,
        admitted.len() as u32,
        duplicate_of,
        &indexed,
        candidate,
    )
}

/// [`lint_candidate_routed`] with **caller-supplied stream ids**.
///
/// The sharded admission plane lints a candidate against only the
/// streams resident in the shards its route touches — a subset of the
/// admitted set whose dense ids are not contiguous. This entry point
/// takes each admitted stream as an explicit `(id, spec, path)` triple
/// plus the candidate's own id, so the findings carry the same stream
/// ids a monolithic lint over the full set would produce.
///
/// Contract (the sharded caller upholds it, the monolithic wrapper
/// satisfies it trivially):
///
/// * `admitted` is sorted by ascending id — `W008` findings come out in
///   that order, matching the monolithic full scan;
/// * every admitted stream sharing a directed channel with the
///   candidate is present (true for shard-local members: any stream
///   sharing link `l` with the candidate is resident in `l`'s shard,
///   which the candidate touches);
/// * `duplicate_of` is the id of the *first* exact duplicate across the
///   **whole** admitted set, or `None` — duplicate detection needs no
///   path and must not be restricted to the candidate's shards.
pub fn lint_candidate_indexed<T, R>(
    topo: &T,
    routing: &R,
    cand_id: u32,
    duplicate_of: Option<u32>,
    admitted: &[(u32, &StreamSpec, &Path)],
    candidate: &StreamSpec,
) -> Vec<Diagnostic>
where
    T: Topology,
    R: Routing<T>,
{
    let mut diags = Vec::new();
    let cand_path = single_stream_rules(topo, routing, candidate, cand_id, &mut diags);

    if let Some(i) = duplicate_of {
        diags.push(duplicate_finding(cand_id, i));
    }

    if let Some(cp) = &cand_path {
        for &(i, s, p) in admitted {
            if s.priority != candidate.priority || s == candidate || s.source == s.dest {
                continue;
            }
            if let Some(&link) = p.shared_links(cp).first() {
                diags.push(collision_finding(i, cand_id, s.priority, link));
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormnet_topology::{Mesh, NodeId, XyRouting};

    fn mesh() -> Mesh {
        Mesh::mesh2d(4, 4)
    }

    fn node(m: &Mesh, x: u32, y: u32) -> NodeId {
        m.node_at(&[x, y]).unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_spec_produces_no_findings() {
        let m = mesh();
        let specs = [
            StreamSpec::new(node(&m, 0, 0), node(&m, 3, 0), 2, 20, 4, 20),
            StreamSpec::new(node(&m, 0, 1), node(&m, 3, 1), 1, 20, 4, 20),
        ];
        assert!(lint_specs(&m, &XyRouting, &specs).is_empty());
    }

    #[test]
    fn each_structural_rule_fires() {
        let m = mesh();
        let specs = [
            // W002 (zero period) — also suppresses W005/W006 noise.
            StreamSpec::new(node(&m, 0, 0), node(&m, 1, 0), 1, 0, 4, 20),
            // W003.
            StreamSpec::new(node(&m, 2, 2), node(&m, 2, 2), 1, 20, 4, 20),
            // W005 + W006 (C=30 > T=20, D=35 > T=20; L=32 <= D keeps
            // W007 out of this stream).
            StreamSpec::new(node(&m, 0, 1), node(&m, 3, 1), 2, 20, 30, 35),
            // W007: 3 hops, C=2 -> L=4 > D=3.
            StreamSpec::new(node(&m, 0, 2), node(&m, 3, 2), 3, 20, 2, 3),
        ];
        let diags = lint_specs(&m, &XyRouting, &specs);
        let c = codes(&diags);
        assert_eq!(c, vec!["W002", "W003", "W005", "W006", "W007"], "{diags:?}");
        assert!(diags.iter().all(|d| d.suggestion.is_some()));
    }

    #[test]
    fn duplicates_and_collisions_are_pairwise() {
        let m = mesh();
        let a = StreamSpec::new(node(&m, 0, 0), node(&m, 3, 0), 2, 20, 4, 20);
        let specs = [
            a.clone(),
            a,
            // Same priority as the pair above, overlapping X-Y route.
            StreamSpec::new(node(&m, 1, 0), node(&m, 3, 0), 2, 40, 4, 40),
        ];
        let diags = lint_specs(&m, &XyRouting, &specs);
        let c = codes(&diags);
        assert_eq!(c, vec!["W001", "W008", "W008"], "{diags:?}");
        assert_eq!(diags[0].span, Span::StreamPair(1, 0));
        // The duplicate pair itself is not double-reported as a collision.
        assert_eq!(diags[1].span, Span::StreamPair(0, 2));
        assert_eq!(diags[2].span, Span::StreamPair(1, 2));
    }

    #[test]
    fn candidate_lint_reports_only_candidate_findings() {
        let m = mesh();
        // The admitted set itself contains a W005 (C > T) — candidate
        // linting must NOT re-report it.
        let admitted = [
            StreamSpec::new(node(&m, 0, 0), node(&m, 3, 0), 2, 20, 30, 20),
            StreamSpec::new(node(&m, 0, 1), node(&m, 3, 1), 1, 20, 4, 20),
        ];
        // A clean candidate on an empty row: no findings at all.
        let clean = StreamSpec::new(node(&m, 0, 2), node(&m, 3, 2), 3, 20, 4, 20);
        assert!(lint_candidate(&m, &XyRouting, &admitted, &clean).is_empty());

        // Same priority and overlapping route as admitted stream 1:
        // exactly one W008, spanning (admitted idx, candidate id).
        let colliding = StreamSpec::new(node(&m, 1, 1), node(&m, 3, 1), 1, 40, 4, 40);
        let diags = lint_candidate(&m, &XyRouting, &admitted, &colliding);
        assert_eq!(codes(&diags), vec!["W008"], "{diags:?}");
        assert_eq!(diags[0].span, Span::StreamPair(1, 2));

        // An exact copy of admitted stream 1: W001 against it.
        let dup = admitted[1].clone();
        let diags = lint_candidate(&m, &XyRouting, &admitted, &dup);
        assert_eq!(codes(&diags), vec!["W001"], "{diags:?}");
        assert_eq!(diags[0].span, Span::StreamPair(2, 1));

        // A structurally broken candidate fires the per-stream rules.
        let broken = StreamSpec::new(node(&m, 2, 2), node(&m, 2, 2), 1, 0, 2, 10);
        let diags = lint_candidate(&m, &XyRouting, &admitted, &broken);
        assert_eq!(codes(&diags), vec!["W002", "W003"], "{diags:?}");
        assert!(diags.iter().all(|d| d.span == Span::Stream(2)));
    }

    #[test]
    fn candidate_lint_agrees_with_full_lint() {
        // lint_candidate(existing, c) must produce exactly the findings
        // lint_specs(existing + c) attributes to the candidate.
        let m = mesh();
        let admitted = [
            StreamSpec::new(node(&m, 0, 0), node(&m, 3, 0), 2, 20, 4, 20),
            StreamSpec::new(node(&m, 0, 1), node(&m, 3, 1), 1, 20, 4, 20),
        ];
        let cand = StreamSpec::new(node(&m, 1, 0), node(&m, 3, 0), 2, 50, 60, 70);
        let candidate_view = lint_candidate(&m, &XyRouting, &admitted, &cand);

        let mut all = admitted.to_vec();
        all.push(cand);
        let cid = admitted.len() as u32;
        let full: Vec<_> = lint_specs(&m, &XyRouting, &all)
            .into_iter()
            .filter(|d| match d.span {
                Span::Stream(s) => s == cid,
                Span::StreamPair(a, b) => a == cid || b == cid,
                _ => false,
            })
            .collect();
        assert_eq!(candidate_view, full);
    }

    #[test]
    fn routed_candidate_lint_agrees_with_rerouting_lint() {
        let m = mesh();
        let admitted = [
            StreamSpec::new(node(&m, 0, 0), node(&m, 3, 0), 2, 20, 4, 20),
            StreamSpec::new(node(&m, 0, 1), node(&m, 3, 1), 1, 20, 4, 20),
            // Self-delivery: skipped by the pairwise rules either way.
            StreamSpec::new(node(&m, 2, 2), node(&m, 2, 2), 2, 20, 4, 20),
        ];
        let routed: Vec<(StreamSpec, Path)> = admitted
            .iter()
            .map(|s| {
                let p = if s.source == s.dest {
                    Path::trivial(s.source)
                } else {
                    XyRouting.route(&m, s.source, s.dest).unwrap()
                };
                (s.clone(), p)
            })
            .collect();
        for cand in [
            StreamSpec::new(node(&m, 1, 0), node(&m, 3, 0), 2, 40, 4, 40),
            admitted[1].clone(),
            StreamSpec::new(node(&m, 0, 2), node(&m, 3, 2), 3, 20, 4, 20),
        ] {
            assert_eq!(
                lint_candidate(&m, &XyRouting, &admitted, &cand),
                lint_candidate_routed(&m, &XyRouting, &routed, &cand),
                "{cand:?}"
            );
        }
    }

    #[test]
    fn unroutable_endpoints_are_reported() {
        // X-Y routing on a mesh always succeeds, so drive W004 with a
        // routing stub that never makes progress.
        struct NoRoute;
        impl Routing<Mesh> for NoRoute {
            fn next_hop(&self, _: &Mesh, _: NodeId, _: NodeId) -> Option<NodeId> {
                None
            }
        }
        let m = mesh();
        let specs = [StreamSpec::new(
            node(&m, 0, 0),
            node(&m, 3, 0),
            1,
            20,
            4,
            20,
        )];
        let diags = lint_specs(&m, &NoRoute, &specs);
        assert_eq!(codes(&diags), vec!["W004"]);
        assert!(diags[0].message.contains("no route"), "{diags:?}");
    }
}
