//! Human and machine-readable (`--format json`) diagnostic renderers.
//!
//! Both renderers accept the spec file's 1-based source lines (parallel
//! to the stream indices) so stream-scoped findings can be attributed
//! to the line that declared the stream.

use crate::diag::{Diagnostic, Span};
use std::fmt::Write as _;

/// Source line of a diagnostic's primary stream, if known.
fn line_of(d: &Diagnostic, lines: Option<&[usize]>) -> Option<usize> {
    let s = d.span.stream()? as usize;
    lines?.get(s).copied()
}

/// Renders diagnostics for a terminal, one finding per paragraph, with
/// a trailing summary line.
pub fn render_human(diags: &[Diagnostic], lines: Option<&[usize]>) -> String {
    let mut out = String::new();
    for d in diags {
        let loc = match line_of(d, lines) {
            Some(l) => format!(" (line {l})"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "{}[{}] {}{}: {}",
            d.severity, d.code, d.span, loc, d.message
        );
        if let Some(s) = &d.suggestion {
            let _ = writeln!(out, "    help: {s}");
        }
    }
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;
    if diags.is_empty() {
        out.push_str("no findings\n");
    } else {
        let _ = writeln!(out, "{errors} error(s), {warnings} warning(s)");
    }
    out
}

/// Escapes a string for a JSON string literal (RFC 8259).
///
/// Public because every hand-rolled JSON emitter in the workspace (this
/// renderer, the admission service's single-line responses) must escape
/// identically; the build is offline, so there is no serde to share.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one diagnostic as a JSON object, the element shape of
/// [`render_json`]'s `diagnostics` array:
///
/// ```json
/// {"code":"W005","severity":"error","span":{"kind":"stream","stream":2},
///  "line":4,"message":"...","suggestion":"..."}
/// ```
///
/// `line` and `suggestion` are omitted when unknown. Public so other
/// JSON emitters (the admission service's rejection responses) ship
/// byte-identical diagnostic objects.
pub fn render_diagnostic_json(d: &Diagnostic, lines: Option<&[usize]>) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"span\":{}",
        d.code,
        d.severity,
        json_span(d.span)
    );
    if let Some(l) = line_of(d, lines) {
        let _ = write!(out, ",\"line\":{l}");
    }
    let _ = write!(out, ",\"message\":\"{}\"", json_escape(&d.message));
    if let Some(s) = &d.suggestion {
        let _ = write!(out, ",\"suggestion\":\"{}\"", json_escape(s));
    }
    out.push('}');
    out
}

fn json_span(span: Span) -> String {
    match span {
        Span::Workload => r#"{"kind":"workload"}"#.to_string(),
        Span::Stream(s) => format!(r#"{{"kind":"stream","stream":{s}}}"#),
        Span::StreamPair(a, b) => {
            format!(r#"{{"kind":"stream-pair","stream":{a},"other":{b}}}"#)
        }
        Span::Link(l) => format!(r#"{{"kind":"link","link":{l}}}"#),
        Span::Config => r#"{"kind":"config"}"#.to_string(),
    }
}

/// Renders diagnostics as a single JSON object:
///
/// ```json
/// {"tool":"rtwc-lint","version":"0.1.0",
///  "diagnostics":[{"code":"W005","severity":"error",
///                  "span":{"kind":"stream","stream":2},"line":4,
///                  "message":"...","suggestion":"..."}],
///  "summary":{"errors":1,"warnings":0}}
/// ```
///
/// `line` and `suggestion` are omitted when unknown. The JSON is
/// hand-rolled (the build is offline, no serde); the golden tests parse
/// it back with an independent mini-parser to keep it honest.
pub fn render_json(diags: &[Diagnostic], lines: Option<&[usize]>) -> String {
    let mut out = String::from("{\"tool\":\"rtwc-lint\",\"version\":\"");
    out.push_str(env!("CARGO_PKG_VERSION"));
    out.push_str("\",\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_diagnostic_json(d, lines));
    }
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let _ = write!(
        out,
        "],\"summary\":{{\"errors\":{errors},\"warnings\":{}}}}}",
        diags.len() - errors
    );
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(
                "W005",
                Span::Stream(1),
                "length C = 20 exceeds period T = 10",
            )
            .with_suggestion("shorten the \"message\""),
            Diagnostic::new("W008", Span::StreamPair(0, 2), "shared channel"),
        ]
    }

    #[test]
    fn human_output_names_codes_lines_and_counts() {
        let out = render_human(&sample(), Some(&[2, 3, 4]));
        assert!(
            out.contains("error[W005] stream M1 (line 3): length C = 20"),
            "{out}"
        );
        assert!(out.contains("help: shorten"), "{out}");
        assert!(
            out.contains("warning[W008] streams M0 and M2 (line 2)"),
            "{out}"
        );
        assert!(out.ends_with("1 error(s), 1 warning(s)\n"), "{out}");
        assert!(render_human(&[], None).contains("no findings"));
    }

    #[test]
    fn json_output_escapes_and_counts() {
        let out = render_json(&sample(), None);
        assert!(out.contains(r#""code":"W005""#), "{out}");
        assert!(out.contains(r#"shorten the \"message\""#), "{out}");
        assert!(out.contains(r#""span":{"kind":"stream-pair","stream":0,"other":2}"#));
        assert!(
            out.contains(r#""summary":{"errors":1,"warnings":1}"#),
            "{out}"
        );
        assert!(!out.contains("\"line\""), "no lines given");
        let with_lines = render_json(&sample(), Some(&[2, 3, 4]));
        assert!(with_lines.contains(r#""line":3"#), "{with_lines}");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json_escape("a\u{1}\nb"), "a\\u0001\\nb");
    }
}
