//! Property-based tests of topologies and routing: minimality,
//! determinism, structural validity, and the directional-overlap
//! algebra the blocking analysis relies on.

use proptest::prelude::*;
use wormnet_topology::{
    BfsRouting, DimensionOrderRouting, EcubeRouting, Hypercube, LinkId, Mesh, NodeId, Path,
    Routing, Topology, Torus, XyRouting,
};

/// A path is structurally valid for its topology: consecutive nodes are
/// joined by exactly the listed channels.
fn assert_valid_path<T: Topology>(topo: &T, p: &Path) {
    assert_eq!(p.nodes().len(), p.links().len() + 1);
    for (i, &l) in p.links().iter().enumerate() {
        let ends = topo.link_endpoints(l);
        assert_eq!(ends.from, p.nodes()[i]);
        assert_eq!(ends.to, p.nodes()[i + 1]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mesh_dor_routes_are_minimal_and_valid(
        w in 2u32..8,
        h in 2u32..8,
        s in 0u32..64,
        d in 0u32..64,
    ) {
        let mesh = Mesh::mesh2d(w, h);
        let n = w * h;
        let (s, d) = (NodeId(s % n), NodeId(d % n));
        let p = DimensionOrderRouting.route(&mesh, s, d).unwrap();
        prop_assert_eq!(p.hops(), mesh.distance(s, d));
        assert_valid_path(&mesh, &p);
        prop_assert_eq!(p.source(), s);
        prop_assert_eq!(p.dest(), d);
        // Determinism.
        let q = DimensionOrderRouting.route(&mesh, s, d).unwrap();
        prop_assert_eq!(p.links(), q.links());
    }

    #[test]
    fn mesh3d_dor_minimal(
        dims in prop::collection::vec(2u32..5, 3),
        s in 0u32..1000,
        d in 0u32..1000,
    ) {
        let mesh = Mesh::new(&dims);
        let n = mesh.num_nodes() as u32;
        let (s, d) = (NodeId(s % n), NodeId(d % n));
        let p = DimensionOrderRouting.route(&mesh, s, d).unwrap();
        prop_assert_eq!(p.hops(), mesh.distance(s, d));
        assert_valid_path(&mesh, &p);
    }

    #[test]
    fn xy_equals_dor_on_2d(
        w in 2u32..9,
        h in 2u32..9,
        s in 0u32..81,
        d in 0u32..81,
    ) {
        let mesh = Mesh::mesh2d(w, h);
        let n = w * h;
        let (s, d) = (NodeId(s % n), NodeId(d % n));
        let a = XyRouting.route(&mesh, s, d).unwrap();
        let b = DimensionOrderRouting.route(&mesh, s, d).unwrap();
        prop_assert_eq!(a.links(), b.links());
    }

    #[test]
    fn torus_dor_minimal_and_valid(
        w in 2u32..7,
        h in 2u32..7,
        s in 0u32..49,
        d in 0u32..49,
    ) {
        let torus = Torus::new(&[w, h]);
        let n = w * h;
        let (s, d) = (NodeId(s % n), NodeId(d % n));
        let p = DimensionOrderRouting.route(&torus, s, d).unwrap();
        prop_assert_eq!(p.hops(), torus.distance(s, d));
        assert_valid_path(&torus, &p);
    }

    #[test]
    fn ecube_minimal_and_valid(dim in 1u32..7, s in 0u32..128, d in 0u32..128) {
        let h = Hypercube::new(dim);
        let n = h.num_nodes() as u32;
        let (s, d) = (NodeId(s % n), NodeId(d % n));
        let p = EcubeRouting.route(&h, s, d).unwrap();
        prop_assert_eq!(p.hops(), h.distance(s, d));
        assert_valid_path(&h, &p);
    }

    #[test]
    fn overlap_is_symmetric_and_reflexive(
        a in 0u32..100, b in 0u32..100, c in 0u32..100, d in 0u32..100,
    ) {
        let mesh = Mesh::mesh2d(10, 10);
        let (a, b) = (NodeId(a), NodeId(b));
        let (c, d) = (NodeId(c), NodeId(d));
        prop_assume!(a != b && c != d);
        let p = XyRouting.route(&mesh, a, b).unwrap();
        let q = XyRouting.route(&mesh, c, d).unwrap();
        prop_assert_eq!(p.shares_link(&q), q.shares_link(&p));
        prop_assert!(p.shares_link(&p));
        // shared_links is consistent with shares_link.
        prop_assert_eq!(!p.shared_links(&q).is_empty(), p.shares_link(&q));
    }

    #[test]
    fn xy_never_returns_to_x_after_y(
        s in 0u32..100, d in 0u32..100,
    ) {
        let mesh = Mesh::mesh2d(10, 10);
        let (s, d) = (NodeId(s), NodeId(d));
        prop_assume!(s != d);
        let p = XyRouting.route(&mesh, s, d).unwrap();
        let mut seen_y = false;
        for w in p.nodes().windows(2) {
            let a = mesh.coord(w[0]);
            let b = mesh.coord(w[1]);
            let x_move = a.get(0) != b.get(0);
            if x_move {
                prop_assert!(!seen_y, "X move after a Y move");
            } else {
                seen_y = true;
            }
        }
    }

    #[test]
    fn bfs_routing_avoids_failures_or_errors(
        s in 0u32..36,
        d in 0u32..36,
        failed in prop::collection::btree_set(0u32..120, 0..12),
    ) {
        let mesh = Mesh::mesh2d(6, 6);
        let (s, d) = (NodeId(s), NodeId(d));
        let failed: Vec<LinkId> = failed
            .into_iter()
            .filter(|&l| (l as usize) < mesh.num_links())
            .map(LinkId)
            .collect();
        let bfs = BfsRouting::avoiding(failed.clone());
        match bfs.route(&mesh, s, d) {
            Ok(p) => {
                prop_assert_eq!(p.source(), s);
                prop_assert_eq!(p.dest(), d);
                for l in &failed {
                    prop_assert!(!p.uses_link(*l), "route uses failed {l:?}");
                }
                // Never shorter than the unconstrained minimum, and
                // structurally valid.
                prop_assert!(p.hops() >= mesh.distance(s, d));
                assert_valid_path(&mesh, &p);
                // Deterministic.
                let q = bfs.route(&mesh, s, d).unwrap();
                prop_assert_eq!(p.links(), q.links());
            }
            Err(_) => {
                // Only acceptable when the failures disconnect d from s.
                // Verify with a fresh reachability scan.
                let reach = {
                    let mut seen = vec![false; mesh.num_nodes()];
                    seen[s.index()] = true;
                    let mut queue = std::collections::VecDeque::from([s]);
                    while let Some(n) = queue.pop_front() {
                        for &l in mesh.links().outgoing(n) {
                            if failed.contains(&l) {
                                continue;
                            }
                            let to = mesh.links().endpoints(l).to;
                            if !seen[to.index()] {
                                seen[to.index()] = true;
                                queue.push_back(to);
                            }
                        }
                    }
                    seen[d.index()]
                };
                prop_assert!(!reach, "routing failed despite reachability");
            }
        }
    }

    #[test]
    fn torus_dateline_layers_are_monotone_per_dimension(
        w in 3u32..7,
        h in 3u32..7,
        s in 0u32..49,
        d in 0u32..49,
    ) {
        let torus = Torus::new(&[w, h]);
        let n = w * h;
        let (s, d) = (NodeId(s % n), NodeId(d % n));
        let p = DimensionOrderRouting.route(&torus, s, d).unwrap();
        let layers = torus.dateline_layers(&p);
        prop_assert_eq!(layers.len(), p.hops() as usize);
        // Within each dimension's hop segment, the layer goes 0* then 1*.
        let mut per_dim: Vec<Vec<u8>> = vec![Vec::new(); 2];
        for (i, &l) in p.links().iter().enumerate() {
            per_dim[torus.link_dimension(l)].push(layers[i]);
        }
        for seq in per_dim {
            let mut seen_one = false;
            for v in seq {
                if v == 1 {
                    seen_one = true;
                } else {
                    prop_assert!(!seen_one, "layer fell back to 0 after the dateline");
                }
            }
        }
    }

    #[test]
    fn mesh_link_tables_consistent(w in 2u32..8, h in 2u32..8) {
        let mesh = Mesh::mesh2d(w, h);
        for (id, link) in mesh.links().iter() {
            // Endpoints resolve back to the same id.
            prop_assert_eq!(mesh.link_between(link.from, link.to), Some(id));
            // Outgoing/incoming tables contain it.
            prop_assert!(mesh.links().outgoing(link.from).contains(&id));
            prop_assert!(mesh.links().incoming(link.to).contains(&id));
        }
        // Degree sums match the channel count.
        let total: usize = mesh
            .nodes()
            .iter()
            .map(|&n| mesh.links().outgoing(n).len())
            .sum();
        prop_assert_eq!(total, mesh.num_links());
    }
}
