//! Binary n-cube.

use super::Topology;
use crate::link::LinkTable;
use crate::node::{Coord, NodeId};

/// A binary n-dimensional hypercube: 2^n nodes, two nodes adjacent iff
/// their ids differ in exactly one bit.
///
/// The paper's system model names the hypercube as one of the target
/// interconnects; e-cube routing (`EcubeRouting`) is the deterministic
/// deadlock-free routing used on it.
#[derive(Clone, Debug)]
pub struct Hypercube {
    dimension: u32,
    dims: Vec<u32>,
    links: LinkTable,
}

impl Hypercube {
    /// Builds an `n`-dimensional hypercube with `2^n` nodes.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > 20` (a million-node cube is almost
    /// certainly a mistake).
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "hypercube dimension must be positive");
        assert!(n <= 20, "hypercube dimension too large");
        let num_nodes = 1u32 << n;
        let mut links = LinkTable::new(num_nodes as usize);
        for idx in 0..num_nodes {
            for bit in 0..n {
                let to = idx ^ (1 << bit);
                links.add(NodeId(idx), NodeId(to));
            }
        }
        Hypercube {
            dimension: n,
            dims: vec![2; n as usize],
            links,
        }
    }

    /// The cube dimension n (so there are 2^n nodes).
    pub fn dimension(&self) -> u32 {
        self.dimension
    }
}

impl Topology for Hypercube {
    fn num_nodes(&self) -> usize {
        1usize << self.dimension
    }

    fn num_links(&self) -> usize {
        self.links.len()
    }

    fn dims(&self) -> &[u32] {
        &self.dims
    }

    fn coord(&self, n: NodeId) -> Coord {
        let bits: Vec<u32> = (0..self.dimension).map(|b| (n.0 >> b) & 1).collect();
        Coord::new(&bits)
    }

    fn node_at(&self, c: &[u32]) -> Option<NodeId> {
        if c.len() != self.dimension as usize || c.iter().any(|&b| b > 1) {
            return None;
        }
        let mut id = 0u32;
        for (b, &v) in c.iter().enumerate() {
            id |= v << b;
        }
        Some(NodeId(id))
    }

    fn links(&self) -> &LinkTable {
        &self.links
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        (a.0 ^ b.0).count_ones()
    }

    fn diameter(&self) -> u32 {
        self.dimension
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_counts() {
        let h = Hypercube::new(4);
        assert_eq!(h.num_nodes(), 16);
        assert_eq!(h.num_links(), 16 * 4);
        assert_eq!(h.diameter(), 4);
        assert_eq!(h.dimension(), 4);
    }

    #[test]
    fn adjacency_is_single_bit_flip() {
        let h = Hypercube::new(3);
        for (_, link) in h.links().iter() {
            assert_eq!((link.from.0 ^ link.to.0).count_ones(), 1);
        }
        for n in h.nodes() {
            assert_eq!(h.neighbors(n).len(), 3);
        }
    }

    #[test]
    fn hamming_distance() {
        let h = Hypercube::new(4);
        assert_eq!(h.distance(NodeId(0b0000), NodeId(0b1111)), 4);
        assert_eq!(h.distance(NodeId(0b1010), NodeId(0b1000)), 1);
    }

    #[test]
    fn coord_roundtrip() {
        let h = Hypercube::new(3);
        for n in h.nodes() {
            let c = h.coord(n);
            assert_eq!(h.node_at(c.as_slice()), Some(n));
        }
        assert!(h.node_at(&[0, 1]).is_none());
        assert!(h.node_at(&[0, 1, 2]).is_none());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_panics() {
        Hypercube::new(0);
    }
}
