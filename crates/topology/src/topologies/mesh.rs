//! k-ary n-dimensional mesh.

use super::{coord_to_index, index_to_coord, Topology};
use crate::link::LinkTable;
use crate::node::{Coord, NodeId};

/// A k-ary n-dimensional mesh: nodes on an integer grid, bidirectional
/// wires (two directed channels) between grid neighbors, no wraparound.
///
/// The ICPP'98 evaluation uses a 10x10 2-D mesh ([`Mesh::mesh2d`]).
#[derive(Clone, Debug)]
pub struct Mesh {
    dims: Vec<u32>,
    links: LinkTable,
}

impl Mesh {
    /// Builds a mesh with the given per-dimension extents.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any extent is zero.
    pub fn new(dims: &[u32]) -> Self {
        assert!(!dims.is_empty(), "mesh needs at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "zero-extent dimension");
        let num_nodes: u32 = dims.iter().product();
        let mut links = LinkTable::new(num_nodes as usize);
        // Enumerate channels in a fixed order: for each node in id order,
        // for each dimension, the +1 then the -1 neighbor. The order is
        // part of the crate's stable behaviour (link ids are stable).
        for idx in 0..num_nodes {
            let c = index_to_coord(dims, idx);
            for d in 0..dims.len() {
                let v = c.get(d);
                if v + 1 < dims[d] {
                    let mut nc = c.clone();
                    nc.set(d, v + 1);
                    let to = coord_to_index(dims, nc.as_slice()).unwrap();
                    links.add(NodeId(idx), NodeId(to));
                }
                if v > 0 {
                    let mut nc = c.clone();
                    nc.set(d, v - 1);
                    let to = coord_to_index(dims, nc.as_slice()).unwrap();
                    links.add(NodeId(idx), NodeId(to));
                }
            }
        }
        Mesh {
            dims: dims.to_vec(),
            links,
        }
    }

    /// Convenience constructor for a 2-D `width x height` mesh, the
    /// topology of the paper's evaluation.
    pub fn mesh2d(width: u32, height: u32) -> Self {
        Mesh::new(&[width, height])
    }
}

impl Topology for Mesh {
    fn num_nodes(&self) -> usize {
        self.dims.iter().product::<u32>() as usize
    }

    fn num_links(&self) -> usize {
        self.links.len()
    }

    fn dims(&self) -> &[u32] {
        &self.dims
    }

    fn coord(&self, n: NodeId) -> Coord {
        index_to_coord(&self.dims, n.0)
    }

    fn node_at(&self, c: &[u32]) -> Option<NodeId> {
        coord_to_index(&self.dims, c).map(NodeId)
    }

    fn links(&self) -> &LinkTable {
        &self.links
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.coord(a).manhattan(&self.coord(b))
    }

    fn diameter(&self) -> u32 {
        self.dims.iter().map(|&d| d - 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh2d_counts() {
        let m = Mesh::mesh2d(10, 10);
        assert_eq!(m.num_nodes(), 100);
        // 2 * (9*10 horizontal wires + 10*9 vertical wires) directed.
        assert_eq!(m.num_links(), 2 * (9 * 10 + 10 * 9));
        assert_eq!(m.diameter(), 18);
    }

    #[test]
    fn corner_and_interior_degree() {
        let m = Mesh::mesh2d(4, 4);
        let corner = m.node_at(&[0, 0]).unwrap();
        let edge = m.node_at(&[1, 0]).unwrap();
        let interior = m.node_at(&[1, 1]).unwrap();
        assert_eq!(m.neighbors(corner).len(), 2);
        assert_eq!(m.neighbors(edge).len(), 3);
        assert_eq!(m.neighbors(interior).len(), 4);
    }

    #[test]
    fn links_are_between_grid_neighbors_only() {
        let m = Mesh::mesh2d(5, 3);
        for (_, link) in m.links().iter() {
            assert_eq!(m.distance(link.from, link.to), 1);
        }
        // Both directions exist for every wire.
        for (_, link) in m.links().iter() {
            assert!(m.link_between(link.to, link.from).is_some());
        }
    }

    #[test]
    fn three_dimensional_mesh() {
        let m = Mesh::new(&[3, 4, 5]);
        assert_eq!(m.num_nodes(), 60);
        assert_eq!(m.diameter(), 2 + 3 + 4);
        let a = m.node_at(&[0, 0, 0]).unwrap();
        let b = m.node_at(&[2, 3, 4]).unwrap();
        assert_eq!(m.distance(a, b), 9);
        let interior = m.node_at(&[1, 1, 1]).unwrap();
        assert_eq!(m.neighbors(interior).len(), 6);
    }

    #[test]
    fn node_at_rejects_out_of_range() {
        let m = Mesh::mesh2d(10, 10);
        assert!(m.node_at(&[10, 0]).is_none());
        assert!(m.node_at(&[0, 10]).is_none());
        assert!(m.node_at(&[0]).is_none());
    }

    #[test]
    #[should_panic(expected = "zero-extent")]
    fn zero_extent_panics() {
        Mesh::new(&[3, 0]);
    }
}
