//! Concrete direct-network topologies.

mod hypercube;
mod mesh;
mod torus;

pub use hypercube::Hypercube;
pub use mesh::Mesh;
pub use torus::Torus;

use crate::link::{Link, LinkId, LinkTable};
use crate::node::{Coord, NodeId};

/// A direct network: a set of router nodes joined by directed physical
/// channels, with a coordinate system used by deterministic routing.
pub trait Topology {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Number of directed physical channels.
    fn num_links(&self) -> usize;

    /// Per-dimension extents (radix of each dimension).
    fn dims(&self) -> &[u32];

    /// Coordinate of node `n`.
    fn coord(&self, n: NodeId) -> Coord;

    /// Node at coordinate `c`, if it exists.
    fn node_at(&self, c: &[u32]) -> Option<NodeId>;

    /// The channel table.
    fn links(&self) -> &LinkTable;

    /// Nodes adjacent to `n` via an outgoing channel.
    fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        self.links()
            .outgoing(n)
            .iter()
            .map(|&l| self.links().endpoints(l).to)
            .collect()
    }

    /// The directed channel `from -> to`, if adjacent.
    fn link_between(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.links().between(from, to)
    }

    /// Endpoints of channel `l`.
    fn link_endpoints(&self, l: LinkId) -> Link {
        self.links().endpoints(l)
    }

    /// All node ids.
    fn nodes(&self) -> Vec<NodeId> {
        (0..self.num_nodes() as u32).map(NodeId).collect()
    }

    /// Minimal hop distance between two nodes under the topology's
    /// natural metric (Manhattan for meshes, wrap-aware Manhattan for
    /// tori, Hamming for hypercubes).
    fn distance(&self, a: NodeId, b: NodeId) -> u32;

    /// The longest minimal distance between any node pair.
    fn diameter(&self) -> u32;
}

/// Mixed-radix encoding shared by mesh-like topologies: dimension 0
/// varies fastest.
pub(crate) fn coord_to_index(dims: &[u32], c: &[u32]) -> Option<u32> {
    if c.len() != dims.len() {
        return None;
    }
    let mut idx: u32 = 0;
    let mut stride: u32 = 1;
    for (d, (&extent, &v)) in dims.iter().zip(c).enumerate() {
        if v >= extent {
            return None;
        }
        let _ = d;
        idx += v * stride;
        stride *= extent;
    }
    Some(idx)
}

/// Inverse of [`coord_to_index`].
pub(crate) fn index_to_coord(dims: &[u32], mut idx: u32) -> Coord {
    let mut out = Vec::with_capacity(dims.len());
    for &extent in dims {
        out.push(idx % extent);
        idx /= extent;
    }
    debug_assert_eq!(idx, 0, "node index out of range for dims {dims:?}");
    Coord::new(&out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_radix_roundtrip() {
        let dims = [10u32, 10];
        for i in 0..100u32 {
            let c = index_to_coord(&dims, i);
            assert_eq!(coord_to_index(&dims, c.as_slice()), Some(i));
        }
    }

    #[test]
    fn coord_out_of_range() {
        assert_eq!(coord_to_index(&[10, 10], &[10, 0]), None);
        assert_eq!(coord_to_index(&[10, 10], &[0, 10]), None);
        assert_eq!(coord_to_index(&[10, 10], &[0]), None);
    }

    #[test]
    fn dimension_zero_varies_fastest() {
        // Paper convention: node (x, y) on a 10x10 mesh is x + 10*y.
        assert_eq!(coord_to_index(&[10, 10], &[7, 3]), Some(37));
        assert_eq!(index_to_coord(&[10, 10], 37).as_slice(), &[7, 3]);
    }
}
