//! k-ary n-cube (torus) with wraparound channels.

use super::{coord_to_index, index_to_coord, Topology};
use crate::link::{LinkId, LinkTable};
use crate::node::{Coord, NodeId};
use crate::path::Path;

/// A k-ary n-dimensional torus: a mesh whose edges wrap around.
///
/// The paper's analysis applies to "a topology, such as a hypercube or a
/// mesh"; the torus is included because it is the other classical
/// wormhole substrate. Note that *deterministic dimension-order routing
/// on a torus is only deadlock-free with extra virtual channels per
/// wraparound dateline*; the priority virtual channels of the ICPP'98
/// scheme are orthogonal to (and do not substitute for) dateline
/// channels. The off-line analysis is routing-agnostic and works on
/// torus paths unchanged, but `wormnet-sim` should only be driven with
/// deadlock-free routings — use meshes or hypercubes for simulation, or
/// keep torus utilization low enough that its watchdog stays quiet.
#[derive(Clone, Debug)]
pub struct Torus {
    dims: Vec<u32>,
    links: LinkTable,
}

impl Torus {
    /// Builds a torus with the given per-dimension extents.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any extent is < 2 (a wraparound wire
    /// needs at least two distinct nodes; extent 2 would duplicate the
    /// mesh wire, which we allow as a single pair of channels).
    pub fn new(dims: &[u32]) -> Self {
        assert!(!dims.is_empty(), "torus needs at least one dimension");
        assert!(dims.iter().all(|&d| d >= 2), "torus dimension extent < 2");
        let num_nodes: u32 = dims.iter().product();
        let mut links = LinkTable::new(num_nodes as usize);
        for idx in 0..num_nodes {
            let c = index_to_coord(dims, idx);
            for d in 0..dims.len() {
                let extent = dims[d];
                let v = c.get(d);
                // +1 neighbor with wraparound.
                let up = (v + 1) % extent;
                // -1 neighbor with wraparound.
                let down = (v + extent - 1) % extent;
                for nv in [up, down] {
                    if nv == v {
                        continue; // extent 1 guarded by assert; defensive.
                    }
                    let mut nc = c.clone();
                    nc.set(d, nv);
                    let to = coord_to_index(dims, nc.as_slice()).unwrap();
                    // With extent 2 the up and down neighbors coincide;
                    // register the channel only once.
                    if links.between(NodeId(idx), NodeId(to)).is_none() {
                        links.add(NodeId(idx), NodeId(to));
                    }
                }
            }
        }
        Torus {
            dims: dims.to_vec(),
            links,
        }
    }

    /// Wrap-aware per-dimension distance.
    fn dim_distance(extent: u32, a: u32, b: u32) -> u32 {
        let direct = a.abs_diff(b);
        direct.min(extent - direct)
    }

    /// The dimension a channel travels in (the single coordinate that
    /// differs between its endpoints).
    pub fn link_dimension(&self, link: LinkId) -> usize {
        let ends = self.links.endpoints(link);
        let (a, b) = (self.coord(ends.from), self.coord(ends.to));
        (0..self.dims.len())
            .find(|&d| a.get(d) != b.get(d))
            .expect("channel endpoints differ in one dimension")
    }

    /// True when `link` is a wraparound channel (its endpoints'
    /// coordinates differ by more than one in its dimension).
    pub fn is_wraparound(&self, link: LinkId) -> bool {
        let ends = self.links.endpoints(link);
        let (a, b) = (self.coord(ends.from), self.coord(ends.to));
        let d = self.link_dimension(link);
        a.get(d).abs_diff(b.get(d)) > 1
    }

    /// Dateline virtual-channel layers for a routed path: hop `i` is in
    /// layer 1 iff the path has traversed (or is traversing) a
    /// wraparound channel in the same dimension. Deterministic
    /// dimension-order routing on a torus is deadlock-free when each
    /// priority class is split into two such layers (the classic
    /// dateline scheme) — `wormnet-sim` consumes these layers via
    /// `SimConfig::num_layers`.
    pub fn dateline_layers(&self, path: &Path) -> Vec<u8> {
        let mut wrapped = vec![false; self.dims.len()];
        path.links()
            .iter()
            .map(|&l| {
                let d = self.link_dimension(l);
                if self.is_wraparound(l) {
                    wrapped[d] = true;
                }
                wrapped[d] as u8
            })
            .collect()
    }
}

impl Topology for Torus {
    fn num_nodes(&self) -> usize {
        self.dims.iter().product::<u32>() as usize
    }

    fn num_links(&self) -> usize {
        self.links.len()
    }

    fn dims(&self) -> &[u32] {
        &self.dims
    }

    fn coord(&self, n: NodeId) -> Coord {
        index_to_coord(&self.dims, n.0)
    }

    fn node_at(&self, c: &[u32]) -> Option<NodeId> {
        coord_to_index(&self.dims, c).map(NodeId)
    }

    fn links(&self) -> &LinkTable {
        &self.links
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        self.dims
            .iter()
            .enumerate()
            .map(|(d, &extent)| Self::dim_distance(extent, ca.get(d), cb.get(d)))
            .sum()
    }

    fn diameter(&self) -> u32 {
        self.dims.iter().map(|&d| d / 2).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_counts() {
        let t = Torus::new(&[4, 4]);
        assert_eq!(t.num_nodes(), 16);
        // Every node has degree 4 (two dims, two directions): 16*4 = 64.
        assert_eq!(t.num_links(), 64);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn wraparound_adjacency() {
        let t = Torus::new(&[5, 5]);
        let a = t.node_at(&[0, 2]).unwrap();
        let b = t.node_at(&[4, 2]).unwrap();
        assert!(t.link_between(a, b).is_some(), "wraparound channel exists");
        assert_eq!(t.distance(a, b), 1);
    }

    #[test]
    fn extent_two_merges_directions() {
        let t = Torus::new(&[2, 2]);
        // Each node has 2 distinct neighbors; 4 nodes * 2 = 8 channels.
        assert_eq!(t.num_links(), 8);
        for n in t.nodes() {
            assert_eq!(t.neighbors(n).len(), 2);
        }
    }

    #[test]
    fn wrap_distance_shorter_way() {
        let t = Torus::new(&[10, 10]);
        let a = t.node_at(&[1, 0]).unwrap();
        let b = t.node_at(&[9, 0]).unwrap();
        assert_eq!(t.distance(a, b), 2); // around the edge, not 8 across
    }

    #[test]
    #[should_panic(expected = "extent < 2")]
    fn extent_one_panics() {
        Torus::new(&[1, 4]);
    }

    #[test]
    fn wraparound_detection() {
        let t = Torus::new(&[5, 5]);
        let a = t.node_at(&[4, 2]).unwrap();
        let b = t.node_at(&[0, 2]).unwrap();
        let wrap = t.link_between(a, b).unwrap();
        assert!(t.is_wraparound(wrap));
        assert_eq!(t.link_dimension(wrap), 0);
        let c = t.node_at(&[1, 2]).unwrap();
        let d = t.node_at(&[2, 2]).unwrap();
        let plain = t.link_between(c, d).unwrap();
        assert!(!t.is_wraparound(plain));
    }

    #[test]
    fn dateline_layers_switch_after_wrap() {
        use crate::routing::{DimensionOrderRouting, Routing};
        let t = Torus::new(&[6, 6]);
        // 4,0 -> 1,0 goes the short way: 4 -> 5 -> 0(wrap) -> 1.
        let s = t.node_at(&[4, 0]).unwrap();
        let d = t.node_at(&[1, 0]).unwrap();
        let p = DimensionOrderRouting.route(&t, s, d).unwrap();
        assert_eq!(p.hops(), 3);
        assert_eq!(t.dateline_layers(&p), vec![0, 1, 1]);
        // A wrap-free route stays in layer 0.
        let s2 = t.node_at(&[1, 1]).unwrap();
        let d2 = t.node_at(&[3, 4]).unwrap();
        let p2 = DimensionOrderRouting.route(&t, s2, d2).unwrap();
        assert!(t.dateline_layers(&p2).iter().all(|&l| l == 0));
    }

    #[test]
    fn dateline_layers_reset_per_dimension() {
        use crate::routing::{DimensionOrderRouting, Routing};
        let t = Torus::new(&[6, 6]);
        // Wraps in X (5 -> 0), then travels in Y without wrapping: the
        // Y hops are back in layer 0.
        let s = t.node_at(&[4, 1]).unwrap();
        let d = t.node_at(&[0, 3]).unwrap();
        let p = DimensionOrderRouting.route(&t, s, d).unwrap();
        let layers = t.dateline_layers(&p);
        // X: 4->5 (0), 5->0 wrap (1); Y: 1->2 (0), 2->3 (0).
        assert_eq!(layers, vec![0, 1, 0, 0]);
    }
}
