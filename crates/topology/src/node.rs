//! Node identifiers and multi-dimensional coordinates.

use std::fmt;

/// A node (processing element + router) in a direct network.
///
/// Node ids are dense indices in `0..Topology::num_nodes()`, assigned in
/// mixed-radix order of the node coordinates (dimension 0 varies
/// fastest). They are cheap to copy and usable as array indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A point in the topology's coordinate system, one entry per dimension.
///
/// For the paper's 2-D mesh, `coords[0]` is the X (column) coordinate and
/// `coords[1]` is the Y (row) coordinate, so the paper's node `(7, 3)` is
/// `Coord::new(&[7, 3])`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Coord {
    coords: Vec<u32>,
}

impl Coord {
    /// Builds a coordinate from per-dimension values.
    pub fn new(coords: &[u32]) -> Self {
        Coord {
            coords: coords.to_vec(),
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.coords.len()
    }

    /// The coordinate in dimension `d`.
    #[inline]
    pub fn get(&self, d: usize) -> u32 {
        self.coords[d]
    }

    /// All per-dimension values.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.coords
    }

    /// Mutable access (used by routing to advance one dimension).
    #[inline]
    pub fn set(&mut self, d: usize, v: u32) {
        self.coords[d] = v;
    }

    /// Manhattan (L1) distance to `other`; both coordinates must have the
    /// same dimensionality.
    pub fn manhattan(&self, other: &Coord) -> u32 {
        assert_eq!(self.dims(), other.dims(), "dimensionality mismatch");
        self.coords
            .iter()
            .zip(&other.coords)
            .map(|(&a, &b)| a.abs_diff(b))
            .sum()
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId(17);
        assert_eq!(n.index(), 17);
        assert_eq!(NodeId::from(17u32), n);
        assert_eq!(format!("{n:?}"), "n17");
        assert_eq!(n.to_string(), "17");
    }

    #[test]
    fn coord_accessors() {
        let mut c = Coord::new(&[7, 3]);
        assert_eq!(c.dims(), 2);
        assert_eq!(c.get(0), 7);
        assert_eq!(c.get(1), 3);
        c.set(1, 4);
        assert_eq!(c.as_slice(), &[7, 4]);
        assert_eq!(c.to_string(), "(7,4)");
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord::new(&[1, 1]);
        let b = Coord::new(&[5, 4]);
        assert_eq!(a.manhattan(&b), 7);
        assert_eq!(b.manhattan(&a), 7);
        assert_eq!(a.manhattan(&a), 0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn manhattan_dim_mismatch_panics() {
        let a = Coord::new(&[1, 1]);
        let b = Coord::new(&[5, 4, 2]);
        let _ = a.manhattan(&b);
    }
}
