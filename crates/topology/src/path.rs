//! Routed paths and the directed-channel overlap queries that drive the
//! blocking analysis.

use crate::link::LinkId;
use crate::node::NodeId;
use std::fmt;

/// A routed path: the sequence of directed channels a message's header
/// flit acquires from source to destination.
///
/// Two message streams *directly block* each other exactly when their
/// paths share at least one directed channel ([`Path::shares_link`]);
/// that predicate is the foundation of HP-set construction in
/// `rtwc-core`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
    links: Vec<LinkId>,
    /// The channel set in increasing-id order, precomputed once so the
    /// overlap queries below run as sorted merges instead of nested
    /// scans. Deterministic routes never repeat a channel, so this is a
    /// permutation of `links` (equality and hashing over both fields
    /// stay consistent).
    sorted_links: Vec<LinkId>,
}

impl Path {
    /// Builds a path from its node sequence and the channels between
    /// consecutive nodes.
    ///
    /// # Panics
    /// Panics unless `nodes.len() == links.len() + 1` and `nodes` is
    /// non-empty.
    pub fn new(nodes: Vec<NodeId>, links: Vec<LinkId>) -> Self {
        assert!(!nodes.is_empty(), "path must contain at least one node");
        assert_eq!(
            nodes.len(),
            links.len() + 1,
            "node/link sequence length mismatch"
        );
        let mut sorted_links = links.clone();
        sorted_links.sort_unstable();
        Path {
            nodes,
            links,
            sorted_links,
        }
    }

    /// A zero-hop path (source == destination; local delivery).
    pub fn trivial(node: NodeId) -> Self {
        Path {
            nodes: vec![node],
            links: Vec::new(),
            sorted_links: Vec::new(),
        }
    }

    /// Source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node.
    #[inline]
    pub fn dest(&self) -> NodeId {
        *self.nodes.last().unwrap()
    }

    /// Number of channels traversed.
    #[inline]
    pub fn hops(&self) -> u32 {
        self.links.len() as u32
    }

    /// The node sequence, source first.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The channel sequence, in traversal order.
    #[inline]
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// The channel set in increasing-id order (the representation the
    /// interference index builds its occupancy table from).
    #[inline]
    pub fn sorted_links(&self) -> &[LinkId] {
        &self.sorted_links
    }

    /// True when this path uses directed channel `l`.
    pub fn uses_link(&self, l: LinkId) -> bool {
        self.sorted_links.binary_search(&l).is_ok()
    }

    /// True when the two paths share at least one *directed* channel —
    /// the paper's direct-blocking condition ("paths of two message
    /// streams are overlapping").
    pub fn shares_link(&self, other: &Path) -> bool {
        // Sorted merge over the precomputed channel sets: O(a + b)
        // instead of the nested O(a * b) scan.
        let (mut a, mut b) = (
            self.sorted_links.iter().peekable(),
            other.sorted_links.iter().peekable(),
        );
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
            }
        }
        false
    }

    /// All directed channels shared with `other`, in this path's
    /// traversal order.
    pub fn shared_links(&self, other: &Path) -> Vec<LinkId> {
        self.links
            .iter()
            .copied()
            .filter(|l| other.uses_link(*l))
            .collect()
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path[")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, "->")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{Routing, XyRouting};
    use crate::topologies::{Mesh, Topology};

    fn path(mesh: &Mesh, s: [u32; 2], d: [u32; 2]) -> Path {
        XyRouting
            .route(mesh, mesh.node_at(&s).unwrap(), mesh.node_at(&d).unwrap())
            .unwrap()
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId(5));
        assert_eq!(p.hops(), 0);
        assert_eq!(p.source(), p.dest());
    }

    #[test]
    fn paper_example_overlaps() {
        // The overlap structure of the paper's worked example (§4.4).
        let mesh = Mesh::mesh2d(10, 10);
        let m0 = path(&mesh, [7, 3], [7, 7]);
        let m1 = path(&mesh, [1, 1], [5, 4]);
        let m2 = path(&mesh, [2, 1], [7, 5]);
        let m3 = path(&mesh, [4, 1], [8, 5]);
        let m4 = path(&mesh, [6, 1], [9, 3]);

        // M2 is directly blocked by both M0 and M1.
        assert!(m2.shares_link(&m0));
        assert!(m2.shares_link(&m1));
        // M0 and M1 never meet, nor do M0/M3, M0/M4, M1/M4.
        assert!(!m0.shares_link(&m1));
        assert!(!m3.shares_link(&m0));
        assert!(!m4.shares_link(&m0));
        assert!(!m4.shares_link(&m1));
        // M4 is directly blocked by M2 and M3.
        assert!(m4.shares_link(&m2));
        assert!(m4.shares_link(&m3));
    }

    #[test]
    fn overlap_is_directional() {
        let mesh = Mesh::mesh2d(10, 10);
        // Same wire, opposite directions: no shared directed channel.
        let east = path(&mesh, [0, 0], [5, 0]);
        let west = path(&mesh, [5, 0], [0, 0]);
        assert!(!east.shares_link(&west));
        assert!(east.shares_link(&east));
    }

    #[test]
    fn shared_links_in_traversal_order() {
        let mesh = Mesh::mesh2d(10, 10);
        let m2 = path(&mesh, [2, 1], [7, 5]);
        let m3 = path(&mesh, [4, 1], [8, 5]);
        let shared = m2.shared_links(&m3);
        // (4,1)->(5,1), (5,1)->(6,1), (6,1)->(7,1)
        assert_eq!(shared.len(), 3);
        let mut prev_pos = None;
        for l in &shared {
            let pos = m2.links().iter().position(|x| x == l).unwrap();
            if let Some(p) = prev_pos {
                assert!(pos > p);
            }
            prev_pos = Some(pos);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_lengths_panic() {
        Path::new(vec![NodeId(0), NodeId(1)], vec![]);
    }

    #[test]
    fn empty_paths_share_nothing() {
        let a = Path::trivial(NodeId(0));
        let b = Path::trivial(NodeId(0));
        assert!(!a.shares_link(&b), "zero-hop paths hold no channels");
        assert!(!a.shares_link(&a));
        assert!(a.shared_links(&b).is_empty());
        let mesh = Mesh::mesh2d(4, 4);
        let p = path(&mesh, [0, 0], [3, 0]);
        assert!(!a.shares_link(&p));
        assert!(!p.shares_link(&a));
    }

    #[test]
    fn single_link_overlap() {
        let mesh = Mesh::mesh2d(4, 4);
        // Two one-hop paths over the same directed channel.
        let p = path(&mesh, [0, 0], [1, 0]);
        let q = path(&mesh, [0, 0], [1, 0]);
        assert_eq!(p.hops(), 1);
        assert!(p.shares_link(&q));
        assert_eq!(p.shared_links(&q), p.links().to_vec());
        // One-hop against a longer path covering that channel.
        let long = path(&mesh, [0, 0], [3, 0]);
        assert!(p.shares_link(&long));
        assert!(long.shares_link(&p));
    }

    #[test]
    fn disjoint_paths_share_nothing() {
        let mesh = Mesh::mesh2d(4, 4);
        let p = path(&mesh, [0, 0], [3, 0]);
        let q = path(&mesh, [0, 2], [3, 2]);
        assert!(!p.shares_link(&q));
        assert!(!q.shares_link(&p));
        assert!(p.shared_links(&q).is_empty());
    }

    #[test]
    fn sorted_links_is_a_sorted_permutation() {
        let mesh = Mesh::mesh2d(6, 6);
        // A Y-then-X-ish dogleg via two XY legs has unsorted link ids.
        let p = path(&mesh, [5, 5], [0, 0]);
        let mut expect = p.links().to_vec();
        expect.sort_unstable();
        assert_eq!(p.sorted_links(), &expect[..]);
        for &l in p.links() {
            assert!(p.uses_link(l));
        }
    }
}
