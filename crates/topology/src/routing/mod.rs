//! Deterministic, minimal routing algorithms.
//!
//! The ICPP'98 scheme requires that "the routing path of each message
//! stream is statically determined by using a deterministic routing
//! algorithm such as X-Y routing for meshes": the off-line analysis must
//! know exactly which channels each stream occupies, and the routing must
//! be deadlock-free so that blocking — not deadlock — is the only hazard.

mod bfs;
mod dor;
mod ecube;
mod xy;

pub use bfs::BfsRouting;
pub use dor::DimensionOrderRouting;
pub use ecube::EcubeRouting;
pub use xy::XyRouting;

use crate::node::NodeId;
use crate::path::Path;
use crate::topologies::Topology;
use std::fmt;

/// Why a route could not be produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The algorithm selected a next hop with no channel to it — the
    /// topology and the algorithm disagree (e.g. X-Y routing on a
    /// non-2-D topology).
    MissingChannel {
        /// The node the route was leaving.
        from: NodeId,
        /// The selected (unreachable) next hop.
        to: NodeId,
    },
    /// The algorithm failed to make progress within `diameter` hops.
    NoProgress {
        /// The node the route stalled at.
        stuck_at: NodeId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::MissingChannel { from, to } => {
                write!(f, "no channel from node {from} to selected next hop {to}")
            }
            RouteError::NoProgress { stuck_at } => {
                write!(f, "routing made no progress at node {stuck_at}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A deterministic routing algorithm for topology `T`.
///
/// Implementations provide [`Routing::next_hop`]; the provided
/// [`Routing::route`] walks `next_hop` from source to destination and
/// materializes the [`Path`]. Determinism is a *requirement*: the same
/// `(src, dst)` pair must always produce the same path, because the
/// off-line bound and the on-line simulation must agree on channel usage.
pub trait Routing<T: Topology + ?Sized> {
    /// The neighbor to forward to from `current` toward `dest`, or
    /// `None` when `current == dest`.
    fn next_hop(&self, topo: &T, current: NodeId, dest: NodeId) -> Option<NodeId>;

    /// The full deterministic path from `src` to `dst`.
    fn route(&self, topo: &T, src: NodeId, dst: NodeId) -> Result<Path, RouteError> {
        let mut nodes = vec![src];
        let mut links = Vec::new();
        let mut current = src;
        // A minimal deterministic route never exceeds the diameter.
        let limit = topo.diameter() as usize + 1;
        while current != dst {
            if links.len() >= limit {
                return Err(RouteError::NoProgress { stuck_at: current });
            }
            let next = match self.next_hop(topo, current, dst) {
                Some(n) => n,
                None => return Err(RouteError::NoProgress { stuck_at: current }),
            };
            let link = topo
                .link_between(current, next)
                .ok_or(RouteError::MissingChannel {
                    from: current,
                    to: next,
                })?;
            nodes.push(next);
            links.push(link);
            current = next;
        }
        Ok(Path::new(nodes, links))
    }
}
