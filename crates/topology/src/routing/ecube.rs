//! E-cube routing on hypercubes.

use super::Routing;
use crate::node::NodeId;
use crate::topologies::Hypercube;

/// E-cube routing: resolve the lowest-order differing address bit first.
/// The classic deterministic deadlock-free routing for binary n-cubes,
/// named by the paper's system model as a target interconnect.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EcubeRouting;

impl Routing<Hypercube> for EcubeRouting {
    fn next_hop(&self, _topo: &Hypercube, current: NodeId, dest: NodeId) -> Option<NodeId> {
        let diff = current.0 ^ dest.0;
        if diff == 0 {
            return None;
        }
        let bit = diff.trailing_zeros();
        Some(NodeId(current.0 ^ (1 << bit)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies::Topology;

    #[test]
    fn route_is_minimal() {
        let h = Hypercube::new(4);
        for s in h.nodes() {
            for d in h.nodes() {
                let p = EcubeRouting.route(&h, s, d).unwrap();
                assert_eq!(p.hops(), h.distance(s, d));
            }
        }
    }

    #[test]
    fn bits_resolved_low_to_high() {
        let h = Hypercube::new(4);
        let p = EcubeRouting
            .route(&h, NodeId(0b0000), NodeId(0b1011))
            .unwrap();
        let ids: Vec<u32> = p.nodes().iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![0b0000, 0b0001, 0b0011, 0b1011]);
    }

    #[test]
    fn deterministic() {
        let h = Hypercube::new(5);
        let a = EcubeRouting.route(&h, NodeId(3), NodeId(28)).unwrap();
        let b = EcubeRouting.route(&h, NodeId(3), NodeId(28)).unwrap();
        assert_eq!(a.links(), b.links());
    }
}
