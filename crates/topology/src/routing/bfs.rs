//! Shortest-path routing that avoids failed channels.
//!
//! The ICPP'98 scheme assumes a deterministic routing; when channels
//! fail, the host processor must *re-plan*: re-route the affected
//! streams (deterministically) and re-run the feasibility test. This
//! router provides that re-planning step: breadth-first shortest paths
//! over the surviving channels, with deterministic tie-breaking.
//!
//! **Deadlock caveat**: unlike X-Y/e-cube, arbitrary shortest paths are
//! not turn-restricted, so a set of BFS-routed streams is not
//! automatically deadlock-free in a wormhole network. The off-line
//! analysis is unaffected (it only needs paths); drive the simulator
//! with BFS routes only at low utilization or verify the channel
//! dependency graph stays acyclic for your set.

use super::{RouteError, Routing};
use crate::link::LinkId;
use crate::node::NodeId;
use crate::path::Path;
use crate::topologies::Topology;
use std::collections::{BTreeSet, VecDeque};

/// Deterministic BFS shortest-path routing over surviving channels.
///
/// # Examples
///
/// ```
/// use wormnet_topology::{BfsRouting, Mesh, Routing, Topology};
///
/// let mesh = Mesh::mesh2d(5, 2);
/// let s = mesh.node_at(&[0, 0]).unwrap();
/// let d = mesh.node_at(&[4, 0]).unwrap();
/// let broken = mesh
///     .link_between(mesh.node_at(&[2, 0]).unwrap(), mesh.node_at(&[3, 0]).unwrap())
///     .unwrap();
///
/// let detour = BfsRouting::avoiding([broken]).route(&mesh, s, d).unwrap();
/// assert!(!detour.uses_link(broken));
/// assert_eq!(detour.hops(), 6); // two extra hops via the other row
/// ```
#[derive(Clone, Debug, Default)]
pub struct BfsRouting {
    avoid: BTreeSet<LinkId>,
}

impl BfsRouting {
    /// Routes over all channels (equivalent hop counts to the minimal
    /// deterministic routings, though possibly different paths).
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes avoiding the given failed channels.
    pub fn avoiding(failed: impl IntoIterator<Item = LinkId>) -> Self {
        BfsRouting {
            avoid: failed.into_iter().collect(),
        }
    }

    /// Marks one more channel as failed.
    pub fn fail_link(&mut self, link: LinkId) {
        self.avoid.insert(link);
    }

    /// The failed channels.
    pub fn failed(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.avoid.iter().copied()
    }

    /// BFS parents from `src` toward every reachable node, skipping
    /// failed channels. Neighbor order follows the topology's stable
    /// outgoing-channel order, so paths are deterministic.
    fn bfs<T: Topology + ?Sized>(&self, topo: &T, src: NodeId) -> Vec<Option<(NodeId, LinkId)>> {
        let mut parent: Vec<Option<(NodeId, LinkId)>> = vec![None; topo.num_nodes()];
        let mut seen = vec![false; topo.num_nodes()];
        seen[src.index()] = true;
        let mut queue = VecDeque::from([src]);
        while let Some(n) = queue.pop_front() {
            for &l in topo.links().outgoing(n) {
                if self.avoid.contains(&l) {
                    continue;
                }
                let to = topo.links().endpoints(l).to;
                if !seen[to.index()] {
                    seen[to.index()] = true;
                    parent[to.index()] = Some((n, l));
                    queue.push_back(to);
                }
            }
        }
        parent
    }
}

impl<T: Topology + ?Sized> Routing<T> for BfsRouting {
    fn next_hop(&self, topo: &T, current: NodeId, dest: NodeId) -> Option<NodeId> {
        if current == dest {
            return None;
        }
        // Walk the parent chain of a BFS from `current` back from
        // `dest`: the first step out of `current` is the next hop.
        let parent = self.bfs(topo, current);
        let mut node = dest;
        while let Some((p, _)) = parent[node.index()] {
            if p == current {
                return Some(node);
            }
            node = p;
        }
        None
    }

    fn route(&self, topo: &T, src: NodeId, dst: NodeId) -> Result<Path, RouteError> {
        if src == dst {
            return Ok(Path::trivial(src));
        }
        let parent = self.bfs(topo, src);
        if parent[dst.index()].is_none() {
            return Err(RouteError::NoProgress { stuck_at: src });
        }
        let mut nodes = vec![dst];
        let mut links = Vec::new();
        let mut node = dst;
        while let Some((p, l)) = parent[node.index()] {
            nodes.push(p);
            links.push(l);
            node = p;
        }
        nodes.reverse();
        links.reverse();
        debug_assert_eq!(nodes[0], src);
        Ok(Path::new(nodes, links))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::XyRouting;
    use crate::topologies::Mesh;

    #[test]
    fn matches_minimal_hops_without_failures() {
        let mesh = Mesh::mesh2d(6, 6);
        let bfs = BfsRouting::new();
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                let p = bfs.route(&mesh, s, d).unwrap();
                assert_eq!(p.hops(), mesh.distance(s, d), "{s:?}->{d:?}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let mesh = Mesh::mesh2d(8, 8);
        let bfs = BfsRouting::new();
        let a = bfs
            .route(&mesh, crate::NodeId(0), crate::NodeId(63))
            .unwrap();
        let b = bfs
            .route(&mesh, crate::NodeId(0), crate::NodeId(63))
            .unwrap();
        assert_eq!(a.links(), b.links());
    }

    #[test]
    fn detours_around_failed_channel() {
        let mesh = Mesh::mesh2d(5, 1); // a line: detours are impossible
        let s = mesh.node_at(&[0, 0]).unwrap();
        let d = mesh.node_at(&[4, 0]).unwrap();
        let mid_a = mesh.node_at(&[2, 0]).unwrap();
        let mid_b = mesh.node_at(&[3, 0]).unwrap();
        let broken = mesh.link_between(mid_a, mid_b).unwrap();
        let bfs = BfsRouting::avoiding([broken]);
        // On a 1-D line the failure partitions the network.
        assert!(bfs.route(&mesh, s, d).is_err());

        // On a 2-D mesh the route detours via the other row.
        let mesh = Mesh::mesh2d(5, 2);
        let s = mesh.node_at(&[0, 0]).unwrap();
        let d = mesh.node_at(&[4, 0]).unwrap();
        let mid_a = mesh.node_at(&[2, 0]).unwrap();
        let mid_b = mesh.node_at(&[3, 0]).unwrap();
        let broken = mesh.link_between(mid_a, mid_b).unwrap();
        let bfs = BfsRouting::avoiding([broken]);
        let p = bfs.route(&mesh, s, d).unwrap();
        assert!(!p.uses_link(broken));
        assert_eq!(p.hops(), 6, "minimal detour adds two hops");
        // The XY route would have used the broken channel.
        let xy = XyRouting.route(&mesh, s, d).unwrap();
        assert!(xy.uses_link(broken));
    }

    #[test]
    fn next_hop_consistent_with_route() {
        let mesh = Mesh::mesh2d(4, 4);
        let bfs = BfsRouting::new();
        let s = mesh.node_at(&[0, 0]).unwrap();
        let d = mesh.node_at(&[3, 3]).unwrap();
        let p = bfs.route(&mesh, s, d).unwrap();
        let first = bfs.next_hop(&mesh, s, d).unwrap();
        assert_eq!(first, p.nodes()[1]);
        assert_eq!(bfs.next_hop(&mesh, d, d), None);
    }

    #[test]
    fn failed_links_tracked() {
        let mut bfs = BfsRouting::new();
        bfs.fail_link(LinkId(3));
        bfs.fail_link(LinkId(1));
        let failed: Vec<LinkId> = bfs.failed().collect();
        assert_eq!(failed, vec![LinkId(1), LinkId(3)]);
    }

    #[test]
    fn trivial_route() {
        let mesh = Mesh::mesh2d(3, 3);
        let n = mesh.node_at(&[1, 1]).unwrap();
        let p = BfsRouting::new().route(&mesh, n, n).unwrap();
        assert_eq!(p.hops(), 0);
    }
}
