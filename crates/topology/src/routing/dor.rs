//! Dimension-order routing for n-dimensional meshes and tori.

use super::Routing;
use crate::node::NodeId;
use crate::topologies::{Mesh, Topology, Torus};

/// Dimension-order routing (DOR): fully correct dimension 0, then
/// dimension 1, and so on. On a 2-D mesh this *is* X-Y routing; on a
/// torus each dimension takes the shorter way around (ties broken toward
/// the increasing direction so the route stays deterministic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DimensionOrderRouting;

impl DimensionOrderRouting {
    fn mesh_step(dims: &[u32], c: &[u32], d: &[u32]) -> Option<Vec<u32>> {
        let _ = dims;
        for dim in 0..c.len() {
            if c[dim] < d[dim] {
                let mut next = c.to_vec();
                next[dim] += 1;
                return Some(next);
            }
            if c[dim] > d[dim] {
                let mut next = c.to_vec();
                next[dim] -= 1;
                return Some(next);
            }
        }
        None
    }

    fn torus_step(dims: &[u32], c: &[u32], d: &[u32]) -> Option<Vec<u32>> {
        for dim in 0..c.len() {
            let extent = dims[dim];
            if c[dim] == d[dim] {
                continue;
            }
            let up_dist = (d[dim] + extent - c[dim]) % extent;
            let down_dist = (c[dim] + extent - d[dim]) % extent;
            let mut next = c.to_vec();
            if up_dist <= down_dist {
                next[dim] = (c[dim] + 1) % extent;
            } else {
                next[dim] = (c[dim] + extent - 1) % extent;
            }
            return Some(next);
        }
        None
    }
}

impl Routing<Mesh> for DimensionOrderRouting {
    fn next_hop(&self, topo: &Mesh, current: NodeId, dest: NodeId) -> Option<NodeId> {
        if current == dest {
            return None;
        }
        let c = topo.coord(current);
        let d = topo.coord(dest);
        Self::mesh_step(topo.dims(), c.as_slice(), d.as_slice())
            .and_then(|next| topo.node_at(&next))
    }
}

impl Routing<Torus> for DimensionOrderRouting {
    fn next_hop(&self, topo: &Torus, current: NodeId, dest: NodeId) -> Option<NodeId> {
        if current == dest {
            return None;
        }
        let c = topo.coord(current);
        let d = topo.coord(dest);
        Self::torus_step(topo.dims(), c.as_slice(), d.as_slice())
            .and_then(|next| topo.node_at(&next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::XyRouting;

    #[test]
    fn matches_xy_on_2d_mesh() {
        let mesh = Mesh::mesh2d(8, 8);
        for s in 0..64u32 {
            for d in [0u32, 7, 13, 42, 63] {
                let (s, d) = (NodeId(s), NodeId(d));
                let a = DimensionOrderRouting.route(&mesh, s, d).unwrap();
                let b = XyRouting.route(&mesh, s, d).unwrap();
                assert_eq!(a.links(), b.links());
            }
        }
    }

    #[test]
    fn minimal_on_3d_mesh() {
        let mesh = Mesh::new(&[4, 4, 4]);
        let s = mesh.node_at(&[0, 1, 2]).unwrap();
        let d = mesh.node_at(&[3, 3, 0]).unwrap();
        let p = DimensionOrderRouting.route(&mesh, s, d).unwrap();
        assert_eq!(p.hops(), mesh.distance(s, d));
    }

    #[test]
    fn torus_takes_shorter_way() {
        let torus = Torus::new(&[10, 10]);
        let s = torus.node_at(&[1, 5]).unwrap();
        let d = torus.node_at(&[9, 5]).unwrap();
        let p = DimensionOrderRouting.route(&torus, s, d).unwrap();
        assert_eq!(p.hops(), 2); // 1 -> 0 -> 9 around the edge
    }

    #[test]
    fn torus_minimal_everywhere() {
        let torus = Torus::new(&[5, 4]);
        for s in torus.nodes() {
            for d in torus.nodes() {
                let p = DimensionOrderRouting.route(&torus, s, d).unwrap();
                assert_eq!(p.hops(), torus.distance(s, d), "{s:?}->{d:?}");
            }
        }
    }

    #[test]
    fn torus_tie_break_is_deterministic() {
        // Even extent: opposite node is equidistant both ways; DOR must
        // always pick the same (increasing) direction.
        let torus = Torus::new(&[4, 4]);
        let s = torus.node_at(&[0, 0]).unwrap();
        let d = torus.node_at(&[2, 0]).unwrap();
        let p1 = DimensionOrderRouting.route(&torus, s, d).unwrap();
        let p2 = DimensionOrderRouting.route(&torus, s, d).unwrap();
        assert_eq!(p1.links(), p2.links());
        // Goes through x=1 (increasing), not x=3.
        let via = torus.node_at(&[1, 0]).unwrap();
        assert!(p1.nodes().contains(&via));
    }
}
