//! X-Y routing on 2-D meshes — the paper's deterministic routing.

use super::Routing;
use crate::node::NodeId;
use crate::topologies::{Mesh, Topology};

/// X-Y (row-column) routing: correct the X coordinate fully, then the Y
/// coordinate. Deterministic, minimal, and deadlock-free on 2-D meshes —
/// exactly the assumption under which the ICPP'98 bound is derived.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XyRouting;

impl Routing<Mesh> for XyRouting {
    fn next_hop(&self, topo: &Mesh, current: NodeId, dest: NodeId) -> Option<NodeId> {
        assert_eq!(
            topo.dims().len(),
            2,
            "X-Y routing is defined on 2-D meshes; use DimensionOrderRouting for {}-D",
            topo.dims().len()
        );
        if current == dest {
            return None;
        }
        let c = topo.coord(current);
        let d = topo.coord(dest);
        let (cx, cy) = (c.get(0), c.get(1));
        let (dx, dy) = (d.get(0), d.get(1));
        let next = if cx < dx {
            [cx + 1, cy]
        } else if cx > dx {
            [cx - 1, cy]
        } else if cy < dy {
            [cx, cy + 1]
        } else {
            [cx, cy - 1]
        };
        topo.node_at(&next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use crate::topologies::Topology;

    fn route(mesh: &Mesh, s: [u32; 2], d: [u32; 2]) -> Path {
        XyRouting
            .route(mesh, mesh.node_at(&s).unwrap(), mesh.node_at(&d).unwrap())
            .unwrap()
    }

    #[test]
    fn route_is_minimal() {
        let mesh = Mesh::mesh2d(10, 10);
        let p = route(&mesh, [1, 1], [5, 4]);
        assert_eq!(p.hops(), 7); // Manhattan distance
    }

    #[test]
    fn x_is_corrected_before_y() {
        let mesh = Mesh::mesh2d(10, 10);
        let p = route(&mesh, [2, 1], [7, 5]);
        // First 5 hops move in X at y=1, then 4 hops move in Y at x=7.
        let coords: Vec<(u32, u32)> = p
            .nodes()
            .iter()
            .map(|&n| {
                let c = mesh.coord(n);
                (c.get(0), c.get(1))
            })
            .collect();
        for w in coords.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if y0 != y1 {
                // Once we move in Y, X must already be final.
                assert_eq!(x0, 7);
                assert_eq!(x1, 7);
            }
            let _ = (x1, y1);
        }
        assert_eq!(coords.first(), Some(&(2, 1)));
        assert_eq!(coords.last(), Some(&(7, 5)));
    }

    #[test]
    fn self_route_is_trivial() {
        let mesh = Mesh::mesh2d(4, 4);
        let n = mesh.node_at(&[2, 2]).unwrap();
        let p = XyRouting.route(&mesh, n, n).unwrap();
        assert_eq!(p.hops(), 0);
    }

    #[test]
    fn paper_latencies_follow_from_xy_hops() {
        // Network latency L = hops + C - 1; the worked example's L values
        // pin the routing convention.
        let mesh = Mesh::mesh2d(10, 10);
        let cases: [([u32; 2], [u32; 2], u32, u32); 5] = [
            ([7, 3], [7, 7], 4, 7),  // M0: C=4
            ([1, 1], [5, 4], 2, 8),  // M1: C=2
            ([2, 1], [7, 5], 4, 12), // M2: C=4
            ([4, 1], [8, 5], 9, 16), // M3: C=9
            ([6, 1], [9, 3], 6, 10), // M4: C=6
        ];
        for (s, d, c, l) in cases {
            let p = route(&mesh, s, d);
            assert_eq!(p.hops() + c - 1, l, "stream {s:?}->{d:?}");
        }
    }

    #[test]
    #[should_panic(expected = "X-Y routing is defined on 2-D meshes")]
    fn rejects_non_2d() {
        let mesh = Mesh::new(&[3, 3, 3]);
        let a = mesh.node_at(&[0, 0, 0]).unwrap();
        let b = mesh.node_at(&[2, 2, 2]).unwrap();
        let _ = XyRouting.route(&mesh, a, b);
    }
}
