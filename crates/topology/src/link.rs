//! Directed physical channels and the channel table shared by all
//! topologies.

use crate::node::NodeId;
use std::collections::HashMap;
use std::fmt;

/// A *directed* physical channel between two adjacent routers.
///
/// Wormhole blocking is directional: a message travelling east over a
/// bidirectional wire never contends with one travelling west, so every
/// physical wire contributes two `LinkId`s, one per direction. Link ids
/// are dense indices in `0..Topology::num_links()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The link id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Endpoints of a directed channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Link {
    /// Router the channel leaves.
    pub from: NodeId,
    /// Router the channel enters.
    pub to: NodeId,
}

/// Dense table of every directed channel in a topology, with O(1)
/// endpoint and reverse lookups.
///
/// All concrete topologies build one of these at construction time so
/// that the simulator can allocate per-channel state (virtual channels,
/// credits) as flat arrays indexed by [`LinkId`].
#[derive(Clone, Debug)]
pub struct LinkTable {
    links: Vec<Link>,
    by_endpoints: HashMap<(NodeId, NodeId), LinkId>,
    /// Outgoing links of each node, in insertion order.
    outgoing: Vec<Vec<LinkId>>,
    /// Incoming links of each node, in insertion order.
    incoming: Vec<Vec<LinkId>>,
}

impl LinkTable {
    /// Creates an empty table for `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        LinkTable {
            links: Vec::new(),
            by_endpoints: HashMap::new(),
            outgoing: vec![Vec::new(); num_nodes],
            incoming: vec![Vec::new(); num_nodes],
        }
    }

    /// Registers the directed channel `from -> to` and returns its id.
    ///
    /// # Panics
    /// Panics if the channel already exists or is a self-loop.
    pub fn add(&mut self, from: NodeId, to: NodeId) -> LinkId {
        assert_ne!(from, to, "self-loop channel {from:?} -> {to:?}");
        let id = LinkId(self.links.len() as u32);
        let prev = self.by_endpoints.insert((from, to), id);
        assert!(prev.is_none(), "duplicate channel {from:?} -> {to:?}");
        self.links.push(Link { from, to });
        self.outgoing[from.index()].push(id);
        self.incoming[to.index()].push(id);
        id
    }

    /// Number of directed channels.
    #[inline]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when the table holds no channels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Endpoints of channel `id`.
    #[inline]
    pub fn endpoints(&self, id: LinkId) -> Link {
        self.links[id.index()]
    }

    /// The channel `from -> to`, if adjacent.
    #[inline]
    pub fn between(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.by_endpoints.get(&(from, to)).copied()
    }

    /// Channels leaving `node`.
    #[inline]
    pub fn outgoing(&self, node: NodeId) -> &[LinkId] {
        &self.outgoing[node.index()]
    }

    /// Channels entering `node`.
    #[inline]
    pub fn incoming(&self, node: NodeId) -> &[LinkId] {
        &self.incoming[node.index()]
    }

    /// Iterator over `(LinkId, Link)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, Link)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &l)| (LinkId(i as u32), l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn add_and_lookup() {
        let mut t = LinkTable::new(3);
        let a = t.add(n(0), n(1));
        let b = t.add(n(1), n(0));
        let c = t.add(n(1), n(2));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.between(n(0), n(1)), Some(a));
        assert_eq!(t.between(n(1), n(0)), Some(b));
        assert_eq!(t.between(n(0), n(2)), None);
        assert_eq!(
            t.endpoints(c),
            Link {
                from: n(1),
                to: n(2)
            }
        );
        assert_eq!(t.outgoing(n(1)), &[b, c]);
        assert_eq!(t.incoming(n(0)), &[b]);
        assert_eq!(t.incoming(n(2)), &[c]);
    }

    #[test]
    fn direction_matters() {
        let mut t = LinkTable::new(2);
        let fwd = t.add(n(0), n(1));
        let rev = t.add(n(1), n(0));
        assert_ne!(fwd, rev);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = LinkTable::new(3);
        t.add(n(0), n(1));
        t.add(n(1), n(2));
        let ids: Vec<u32> = t.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "duplicate channel")]
    fn duplicate_panics() {
        let mut t = LinkTable::new(2);
        t.add(n(0), n(1));
        t.add(n(0), n(1));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut t = LinkTable::new(1);
        t.add(n(0), n(0));
    }
}
