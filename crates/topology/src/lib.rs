//! # wormnet-topology
//!
//! Direct-network topologies and deterministic, deadlock-free routing for
//! wormhole-switched multicomputers.
//!
//! This crate is the geometric substrate of the ICPP'98 reproduction: it
//! knows what the network *looks like* (nodes, directed physical channels)
//! and how a deterministic router chooses a path, but nothing about time,
//! flits, or priorities. Both the off-line feasibility analysis
//! (`rtwc-core`) and the flit-level simulator (`wormnet-sim`) consume the
//! same [`Path`]s, which is what makes the analytical bound and the
//! measured latency comparable.
//!
//! ## Topologies
//!
//! * [`Mesh`] — k-ary n-dimensional mesh (the paper evaluates a 10x10
//!   2-D mesh; [`Mesh::mesh2d`] is the convenience constructor).
//! * [`Torus`] — k-ary n-cube with wraparound channels.
//! * [`Hypercube`] — binary n-cube.
//!
//! All topologies implement [`Topology`], which enumerates nodes
//! (`NodeId`) and *directed* physical channels (`LinkId`). Channels are
//! directed because wormhole blocking is directional: two messages
//! interfere only if they use the same channel in the same direction.
//!
//! ## Routing
//!
//! * [`XyRouting`] — X-Y routing on a 2-D mesh (the paper's assumption).
//! * [`DimensionOrderRouting`] — generalization to n dimensions
//!   (and tori, taking the shorter way around).
//! * [`EcubeRouting`] — e-cube routing on hypercubes.
//!
//! All are deterministic and minimal, and on meshes/hypercubes
//! deadlock-free, which is the precondition the paper assumes
//! ("deadlock situation never occurs").
//!
//! ## Example
//!
//! ```
//! use wormnet_topology::{Mesh, Topology, XyRouting, Routing};
//!
//! let mesh = Mesh::mesh2d(10, 10);
//! let routing = XyRouting;
//! let src = mesh.node_at(&[7, 3]).unwrap();
//! let dst = mesh.node_at(&[7, 7]).unwrap();
//! let path = routing.route(&mesh, src, dst).unwrap();
//! assert_eq!(path.hops(), 4); // Manhattan distance
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod node;
pub mod path;
pub mod routing;
pub mod topologies;

pub use link::{Link, LinkId, LinkTable};
pub use node::{Coord, NodeId};
pub use path::Path;
pub use routing::{
    BfsRouting, DimensionOrderRouting, EcubeRouting, RouteError, Routing, XyRouting,
};
pub use topologies::{Hypercube, Mesh, Topology, Torus};
