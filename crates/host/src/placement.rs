//! Node allocation: mapping a job's tasks onto free processing nodes.
//!
//! The paper leaves this open ("the jobs which communicate each other
//! frequently could be mapped to relatively nearby processing nodes.
//! But job allocation is another problem") — so this module provides
//! the standard spectrum of allocators to study exactly that trade-off:
//! arbitrary, clustered, communication-aware, and random placement.

use crate::task::{JobSpec, TaskId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::VecDeque;
use wormnet_topology::{Mesh, NodeId, Topology};

/// A complete assignment of a job's tasks to distinct nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    nodes: Vec<NodeId>,
}

impl Placement {
    /// Builds a placement; one distinct node per task.
    ///
    /// # Panics
    /// Panics if nodes repeat.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        let mut sorted = nodes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), nodes.len(), "placement repeats a node");
        Placement { nodes }
    }

    /// The node hosting `task`.
    pub fn node_of(&self, task: TaskId) -> NodeId {
        self.nodes[task.index()]
    }

    /// All nodes used, in task order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Total communication cost: sum over message requirements of
    /// `rate x hop distance` — the objective communication-aware
    /// placement minimizes.
    pub fn communication_cost(&self, job: &JobSpec, mesh: &Mesh) -> f64 {
        job.messages
            .iter()
            .map(|m| m.rate() * mesh.distance(self.node_of(m.from), self.node_of(m.to)) as f64)
            .sum()
    }
}

/// A node-allocation strategy. `free` is the currently unoccupied node
/// list in ascending id order; returns `None` when the job cannot be
/// placed (not enough free nodes).
pub trait Allocator {
    /// Chooses nodes for every task of `job`.
    fn place(&self, job: &JobSpec, mesh: &Mesh, free: &[NodeId]) -> Option<Placement>;
}

/// Takes the first `num_tasks` free nodes in id order — the baseline
/// that ignores communication entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstFit;

impl Allocator for FirstFit {
    fn place(&self, job: &JobSpec, _mesh: &Mesh, free: &[NodeId]) -> Option<Placement> {
        (free.len() >= job.num_tasks).then(|| Placement::new(free[..job.num_tasks].to_vec()))
    }
}

/// Grows a connected region by BFS from the first free node and fills
/// it in discovery order — tasks land near each other, but without
/// looking at *which* tasks talk.
#[derive(Clone, Copy, Debug, Default)]
pub struct Clustered;

impl Allocator for Clustered {
    fn place(&self, job: &JobSpec, mesh: &Mesh, free: &[NodeId]) -> Option<Placement> {
        if free.len() < job.num_tasks {
            return None;
        }
        let is_free = {
            let mut v = vec![false; mesh.num_nodes()];
            for &n in free {
                v[n.index()] = true;
            }
            v
        };
        let mut picked = Vec::with_capacity(job.num_tasks);
        let mut seen = vec![false; mesh.num_nodes()];
        // BFS over free nodes from the lowest-id free seed; if the free
        // region is disconnected, restart from the next unseen free
        // node.
        for &seed in free {
            if picked.len() >= job.num_tasks {
                break;
            }
            if seen[seed.index()] {
                continue;
            }
            let mut queue = VecDeque::from([seed]);
            seen[seed.index()] = true;
            while let Some(n) = queue.pop_front() {
                picked.push(n);
                if picked.len() >= job.num_tasks {
                    break;
                }
                for nb in mesh.neighbors(n) {
                    if is_free[nb.index()] && !seen[nb.index()] {
                        seen[nb.index()] = true;
                        queue.push_back(nb);
                    }
                }
            }
        }
        (picked.len() >= job.num_tasks).then(|| Placement::new(picked))
    }
}

/// Greedy communication-aware placement: tasks are placed in decreasing
/// order of total communication rate; each goes to the free node
/// minimizing `sum(rate x distance)` to its already-placed partners
/// (ties: lowest node id). The first task takes the most central free
/// node.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommunicationAware;

impl Allocator for CommunicationAware {
    fn place(&self, job: &JobSpec, mesh: &Mesh, free: &[NodeId]) -> Option<Placement> {
        if free.len() < job.num_tasks {
            return None;
        }
        // Order tasks by total communication, heaviest first.
        let mut weight = vec![0.0f64; job.num_tasks];
        for m in &job.messages {
            weight[m.from.index()] += m.rate();
            weight[m.to.index()] += m.rate();
        }
        let mut order: Vec<TaskId> = (0..job.num_tasks as u32).map(TaskId).collect();
        order.sort_by(|a, b| {
            weight[b.index()]
                .total_cmp(&weight[a.index()])
                .then(a.cmp(b))
        });

        let mut assigned: Vec<Option<NodeId>> = vec![None; job.num_tasks];
        let mut available: Vec<NodeId> = free.to_vec();
        for &task in &order {
            let best = if assigned.iter().all(Option::is_none) {
                // First task: most central free node (minimum total
                // distance to all free nodes).
                available.iter().copied().min_by(|&a, &b| {
                    let cost = |n: NodeId| -> u64 {
                        available.iter().map(|&m| mesh.distance(n, m) as u64).sum()
                    };
                    cost(a).cmp(&cost(b)).then(a.cmp(&b))
                })?
            } else {
                available.iter().copied().min_by(|&a, &b| {
                    let cost = |n: NodeId| -> f64 {
                        job.messages
                            .iter()
                            .filter_map(|m| {
                                let partner = if m.from == task {
                                    assigned[m.to.index()]
                                } else if m.to == task {
                                    assigned[m.from.index()]
                                } else {
                                    None
                                };
                                partner.map(|p| m.rate() * mesh.distance(n, p) as f64)
                            })
                            .sum()
                    };
                    cost(a).total_cmp(&cost(b)).then(a.cmp(&b))
                })?
            };
            assigned[task.index()] = Some(best);
            available.retain(|&n| n != best);
        }
        Some(Placement::new(
            assigned.into_iter().map(Option::unwrap).collect(),
        ))
    }
}

/// Uniform random placement (seeded) — the pessimistic baseline.
#[derive(Clone, Copy, Debug)]
pub struct RandomPlacement {
    /// RNG seed; the placement is a pure function of (job, free, seed).
    pub seed: u64,
}

impl Allocator for RandomPlacement {
    fn place(&self, job: &JobSpec, _mesh: &Mesh, free: &[NodeId]) -> Option<Placement> {
        if free.len() < job.num_tasks {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut pool = free.to_vec();
        pool.shuffle(&mut rng);
        Some(Placement::new(pool[..job.num_tasks].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::MessageRequirement;

    fn mesh() -> Mesh {
        Mesh::mesh2d(8, 8)
    }

    fn line_job(n: usize) -> JobSpec {
        let msgs = (0..n as u32 - 1)
            .map(|i| MessageRequirement::new(TaskId(i), TaskId(i + 1), 1, 100, 20))
            .collect();
        JobSpec::new("line", n, msgs).unwrap()
    }

    fn all_free(mesh: &Mesh) -> Vec<NodeId> {
        mesh.nodes()
    }

    #[test]
    fn first_fit_uses_lowest_ids() {
        let m = mesh();
        let p = FirstFit.place(&line_job(4), &m, &all_free(&m)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn insufficient_nodes_rejected() {
        let m = mesh();
        let free = vec![NodeId(0), NodeId(1)];
        assert!(FirstFit.place(&line_job(4), &m, &free).is_none());
        assert!(Clustered.place(&line_job(4), &m, &free).is_none());
        assert!(CommunicationAware.place(&line_job(4), &m, &free).is_none());
        assert!(RandomPlacement { seed: 1 }
            .place(&line_job(4), &m, &free)
            .is_none());
    }

    #[test]
    fn clustered_region_is_connected_under_full_freedom() {
        let m = mesh();
        let p = Clustered.place(&line_job(9), &m, &all_free(&m)).unwrap();
        // Every placed node is adjacent to at least one other placed
        // node (region connectivity).
        for &n in p.nodes() {
            let near = m.neighbors(n).iter().any(|nb| p.nodes().contains(nb));
            assert!(near || p.nodes().len() == 1, "{n:?} isolated");
        }
    }

    #[test]
    fn communication_aware_beats_random_on_cost() {
        let m = mesh();
        let job = line_job(10);
        let free = all_free(&m);
        let smart = CommunicationAware.place(&job, &m, &free).unwrap();
        let mut random_costs = Vec::new();
        for seed in 0..10 {
            let r = RandomPlacement { seed }.place(&job, &m, &free).unwrap();
            random_costs.push(r.communication_cost(&job, &m));
        }
        let avg_random: f64 = random_costs.iter().sum::<f64>() / random_costs.len() as f64;
        let smart_cost = smart.communication_cost(&job, &m);
        assert!(
            smart_cost < avg_random,
            "communication-aware {smart_cost} should beat random avg {avg_random}"
        );
        // For a 10-task line, adjacent placement costs 9 * rate = 1.8.
        assert!(smart_cost <= 2.5, "near-optimal expected, got {smart_cost}");
    }

    #[test]
    fn placements_are_injective_and_free_only() {
        let m = mesh();
        let job = line_job(6);
        let free: Vec<NodeId> = m.nodes().into_iter().filter(|n| n.0 % 2 == 0).collect();
        for alloc in [
            &FirstFit as &dyn Allocator,
            &Clustered,
            &CommunicationAware,
            &RandomPlacement { seed: 3 },
        ] {
            if let Some(p) = alloc.place(&job, &m, &free) {
                let mut ns = p.nodes().to_vec();
                ns.sort();
                ns.dedup();
                assert_eq!(ns.len(), job.num_tasks);
                assert!(ns.iter().all(|n| free.contains(n)));
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let m = mesh();
        let job = line_job(5);
        let free = all_free(&m);
        let a = RandomPlacement { seed: 9 }.place(&job, &m, &free).unwrap();
        let b = RandomPlacement { seed: 9 }.place(&job, &m, &free).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "repeats a node")]
    fn duplicate_nodes_panic() {
        Placement::new(vec![NodeId(1), NodeId(1)]);
    }
}
