//! # rtwc-host
//!
//! The host processor of the ICPP'98 system model (paper Fig. 1): "the
//! host processor is in charge of overall system management such as job
//! scheduling, node allocation, and schedulability testing of real-time
//! jobs."
//!
//! This crate is the management layer above `rtwc-core`:
//!
//! * [`JobSpec`] — a real-time job: cooperating tasks plus the periodic
//!   [`MessageRequirement`]s between them;
//! * [`Allocator`]s — node-allocation strategies ([`FirstFit`],
//!   [`Clustered`], [`CommunicationAware`], [`RandomPlacement`]); the
//!   paper observes that "jobs which communicate each other frequently
//!   could be mapped to relatively nearby processing nodes" but leaves
//!   allocation open — these let you quantify the choice;
//! * [`HostProcessor`] — owns the mesh, deploys jobs atomically with
//!   feasibility-preserving admission control (every admitted stream
//!   keeps `U <= D`), and reclaims resources on job completion.
//!
//! ```
//! use rtwc_host::{CommunicationAware, HostProcessor, JobSpec, MessageRequirement, TaskId};
//!
//! let mut host = HostProcessor::new(8, 8);
//! let job = JobSpec::new(
//!     "control-loop",
//!     3,
//!     vec![
//!         MessageRequirement::new(TaskId(0), TaskId(1), 2, 100, 8),
//!         MessageRequirement::new(TaskId(1), TaskId(2), 2, 100, 8),
//!     ],
//! )
//! .unwrap();
//! let id = host.deploy(&job, &CommunicationAware).unwrap();
//! assert_eq!(host.jobs()[0].id, id);
//! // Every stream of the job now carries a hard delay guarantee.
//! for &s in &host.jobs()[0].streams {
//!     assert!(host.bound(s).is_bounded());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod host;
pub mod placement;
pub mod task;

pub use host::{DeployError, DeployedJob, HostProcessor, JobId};
pub use placement::{
    Allocator, Clustered, CommunicationAware, FirstFit, Placement, RandomPlacement,
};
pub use task::{JobSpec, JobSpecError, MessageRequirement, TaskId};
