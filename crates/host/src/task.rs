//! Real-time jobs: cooperating tasks and the periodic message streams
//! between them (the paper's §2 system model: "a real-time application
//! consists of several cooperating jobs, and each job is executed on a
//! different processing node. Real-time message traffic flows are
//! required between such jobs").

use rtwc_core::Priority;
use std::fmt;

/// A task within a job, dense in `0..JobSpec::num_tasks`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A periodic communication requirement between two tasks of one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageRequirement {
    /// Producing task.
    pub from: TaskId,
    /// Consuming task.
    pub to: TaskId,
    /// Stream priority (larger = more urgent).
    pub priority: Priority,
    /// Minimum inter-generation time `T`, in flit times.
    pub period: u64,
    /// Maximum message length `C`, in flits.
    pub length: u64,
    /// Relative deadline `D`.
    pub deadline: u64,
}

impl MessageRequirement {
    /// Convenience constructor with `D = T`.
    pub fn new(from: TaskId, to: TaskId, priority: Priority, period: u64, length: u64) -> Self {
        MessageRequirement {
            from,
            to,
            priority,
            period,
            length,
            deadline: period,
        }
    }

    /// Sets an explicit deadline.
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = deadline;
        self
    }

    /// Average bandwidth demand, flits per flit time.
    pub fn rate(&self) -> f64 {
        self.length as f64 / self.period as f64
    }
}

/// A job the host processor can deploy: `num_tasks` tasks (one per
/// allocated node) plus the message streams between them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Number of tasks; each occupies one processing node.
    pub num_tasks: usize,
    /// The inter-task streams.
    pub messages: Vec<MessageRequirement>,
}

/// Why a job spec is malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobSpecError {
    /// A job needs at least one task.
    NoTasks,
    /// A message references a task outside `0..num_tasks`.
    UnknownTask {
        /// Index of the offending message.
        message: usize,
        /// The missing task.
        task: TaskId,
    },
    /// A message's producer equals its consumer (same node — no network
    /// traffic; model it as local computation instead).
    SelfMessage {
        /// Index of the offending message.
        message: usize,
    },
    /// A message has a zero period, length, or deadline.
    ZeroParameter {
        /// Index of the offending message.
        message: usize,
    },
}

impl fmt::Display for JobSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobSpecError::NoTasks => write!(f, "job has no tasks"),
            JobSpecError::UnknownTask { message, task } => {
                write!(f, "message {message} references unknown task {task}")
            }
            JobSpecError::SelfMessage { message } => {
                write!(f, "message {message} is a self-message")
            }
            JobSpecError::ZeroParameter { message } => {
                write!(f, "message {message} has a zero period/length/deadline")
            }
        }
    }
}

impl std::error::Error for JobSpecError {}

impl JobSpec {
    /// Builds and validates a job spec.
    pub fn new(
        name: impl Into<String>,
        num_tasks: usize,
        messages: Vec<MessageRequirement>,
    ) -> Result<Self, JobSpecError> {
        let job = JobSpec {
            name: name.into(),
            num_tasks,
            messages,
        };
        job.validate()?;
        Ok(job)
    }

    fn validate(&self) -> Result<(), JobSpecError> {
        if self.num_tasks == 0 {
            return Err(JobSpecError::NoTasks);
        }
        for (i, m) in self.messages.iter().enumerate() {
            for t in [m.from, m.to] {
                if t.index() >= self.num_tasks {
                    return Err(JobSpecError::UnknownTask {
                        message: i,
                        task: t,
                    });
                }
            }
            if m.from == m.to {
                return Err(JobSpecError::SelfMessage { message: i });
            }
            if m.period == 0 || m.length == 0 || m.deadline == 0 {
                return Err(JobSpecError::ZeroParameter { message: i });
            }
        }
        Ok(())
    }

    /// Total bandwidth demand between each (unordered) task pair —
    /// the affinity weights communication-aware placement optimizes.
    pub fn affinity(&self) -> Vec<((TaskId, TaskId), f64)> {
        let mut pairs: Vec<((TaskId, TaskId), f64)> = Vec::new();
        for m in &self.messages {
            let key = if m.from <= m.to {
                (m.from, m.to)
            } else {
                (m.to, m.from)
            };
            match pairs.iter_mut().find(|(k, _)| *k == key) {
                Some((_, w)) => *w += m.rate(),
                None => pairs.push((key, m.rate())),
            }
        }
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(from: u32, to: u32) -> MessageRequirement {
        MessageRequirement::new(TaskId(from), TaskId(to), 1, 100, 10)
    }

    #[test]
    fn valid_job() {
        let job = JobSpec::new("pipeline", 3, vec![msg(0, 1), msg(1, 2)]).unwrap();
        assert_eq!(job.num_tasks, 3);
        assert_eq!(job.messages.len(), 2);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            JobSpec::new("x", 0, vec![]).unwrap_err(),
            JobSpecError::NoTasks
        );
        assert!(matches!(
            JobSpec::new("x", 2, vec![msg(0, 5)]).unwrap_err(),
            JobSpecError::UnknownTask { message: 0, .. }
        ));
        assert!(matches!(
            JobSpec::new("x", 2, vec![msg(1, 1)]).unwrap_err(),
            JobSpecError::SelfMessage { message: 0 }
        ));
        let mut bad = msg(0, 1);
        bad.period = 0;
        assert!(matches!(
            JobSpec::new("x", 2, vec![bad]).unwrap_err(),
            JobSpecError::ZeroParameter { message: 0 }
        ));
    }

    #[test]
    fn affinity_merges_directions_and_sorts() {
        let mut a = msg(0, 1);
        a.length = 30; // rate 0.3
        let mut b = msg(1, 0);
        b.length = 20; // rate 0.2 -> pair (0,1) total 0.5
        let c = msg(1, 2); // rate 0.1
        let job = JobSpec::new("x", 3, vec![a, b, c]).unwrap();
        let aff = job.affinity();
        assert_eq!(aff.len(), 2);
        assert_eq!(aff[0].0, (TaskId(0), TaskId(1)));
        assert!((aff[0].1 - 0.5).abs() < 1e-12);
        assert_eq!(aff[1].0, (TaskId(1), TaskId(2)));
    }

    #[test]
    fn deadline_builder() {
        let m = msg(0, 1).with_deadline(40);
        assert_eq!(m.deadline, 40);
        assert!((m.rate() - 0.1).abs() < 1e-12);
    }
}
