//! The host processor: owns the mesh, allocates nodes to jobs, admits
//! their message streams with hard guarantees, and reclaims resources
//! when jobs finish — the management layer of the paper's Figure 1.

use crate::placement::{Allocator, Placement};
use crate::task::JobSpec;
use rtwc_core::{AdmissionController, AdmissionError, DelayBound, StreamId, StreamSpec};
use std::collections::BTreeSet;
use std::fmt;
use wormnet_topology::{Mesh, NodeId, Routing, Topology, XyRouting};

/// Handle to a deployed job.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u32);

/// A successfully deployed job.
#[derive(Clone, Debug)]
pub struct DeployedJob {
    /// The handle.
    pub id: JobId,
    /// The job's name.
    pub name: String,
    /// Where each task runs.
    pub placement: Placement,
    /// The admitted streams, in message-requirement order. Ids track
    /// the host's admission controller and are remapped when other
    /// jobs are removed.
    pub streams: Vec<StreamId>,
}

/// Why a job could not be deployed. Deployment is atomic: on any
/// error the host is left exactly as before the call.
#[derive(Clone, Debug)]
pub enum DeployError {
    /// The allocator found no placement (not enough free nodes).
    NoPlacement,
    /// A message stream was refused admission.
    Rejected {
        /// Index of the refused message requirement.
        message: usize,
        /// The admission failure.
        reason: AdmissionError,
    },
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::NoPlacement => write!(f, "no feasible node allocation"),
            DeployError::Rejected { message, reason } => {
                write!(f, "message {message} refused admission: {reason}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// The host processor of a real-time wormhole multicomputer.
#[derive(Clone, Debug)]
pub struct HostProcessor {
    mesh: Mesh,
    free: BTreeSet<NodeId>,
    admission: AdmissionController,
    jobs: Vec<DeployedJob>,
    next_job: u32,
}

impl HostProcessor {
    /// A host managing an empty `width x height` mesh.
    pub fn new(width: u32, height: u32) -> Self {
        let mesh = Mesh::mesh2d(width, height);
        let free = mesh.nodes().into_iter().collect();
        HostProcessor {
            mesh,
            free,
            admission: AdmissionController::new(),
            jobs: Vec::new(),
            next_job: 0,
        }
    }

    /// The managed mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Unoccupied nodes, ascending.
    pub fn free_nodes(&self) -> Vec<NodeId> {
        self.free.iter().copied().collect()
    }

    /// Deployed jobs.
    pub fn jobs(&self) -> &[DeployedJob] {
        &self.jobs
    }

    /// The guaranteed bound of one admitted stream.
    pub fn bound(&self, id: StreamId) -> DelayBound {
        self.admission.bound(id)
    }

    /// Deploys `job`: allocate nodes with `allocator`, route every
    /// message with X-Y routing, and admit each stream while preserving
    /// all existing guarantees. Atomic: on failure nothing changes.
    pub fn deploy(
        &mut self,
        job: &JobSpec,
        allocator: &dyn Allocator,
    ) -> Result<JobId, DeployError> {
        let free = self.free_nodes();
        let placement = allocator
            .place(job, &self.mesh, &free)
            .ok_or(DeployError::NoPlacement)?;
        let mut admitted: Vec<StreamId> = Vec::with_capacity(job.messages.len());
        for (i, m) in job.messages.iter().enumerate() {
            let src = placement.node_of(m.from);
            let dst = placement.node_of(m.to);
            let path = XyRouting
                .route(&self.mesh, src, dst)
                .expect("mesh routes always exist");
            let spec = StreamSpec::new(src, dst, m.priority, m.period, m.length, m.deadline);
            match self.admission.admit(spec, path) {
                Ok(id) => admitted.push(id),
                Err(reason) => {
                    // Roll back this job's already-admitted streams
                    // (descending ids, so earlier ids stay stable).
                    for &id in admitted.iter().rev() {
                        self.admission.remove(id);
                    }
                    return Err(DeployError::Rejected { message: i, reason });
                }
            }
        }
        for &n in placement.nodes() {
            self.free.remove(&n);
        }
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.jobs.push(DeployedJob {
            id,
            name: job.name.clone(),
            placement,
            streams: admitted,
        });
        Ok(id)
    }

    /// Removes a deployed job, releasing its nodes and withdrawing its
    /// streams (remaining jobs keep their guarantees — bounds can only
    /// improve).
    ///
    /// # Panics
    /// Panics on an unknown job id.
    pub fn remove_job(&mut self, id: JobId) {
        let pos = self
            .jobs
            .iter()
            .position(|j| j.id == id)
            .unwrap_or_else(|| panic!("unknown job {id:?}"));
        let job = self.jobs.remove(pos);
        for &n in job.placement.nodes() {
            self.free.insert(n);
        }
        // Withdraw streams in descending id order; after each removal,
        // every stored id above it (in any job) shifts down by one.
        let mut ids = job.streams.clone();
        ids.sort_unstable();
        for &removed in ids.iter().rev() {
            self.admission.remove(removed);
            for j in &mut self.jobs {
                for s in &mut j.streams {
                    debug_assert_ne!(*s, removed, "stream owned by two jobs");
                    if *s > removed {
                        *s = StreamId(s.0 - 1);
                    }
                }
            }
        }
    }

    /// Total streams currently guaranteed.
    pub fn admitted_streams(&self) -> usize {
        self.admission.len()
    }

    /// The admitted streams as an analyzable/simulable stream set
    /// (`None` when nothing is deployed). Stream ids match
    /// [`DeployedJob::streams`].
    pub fn stream_set(&self) -> Option<&rtwc_core::StreamSet> {
        self.admission.set()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{CommunicationAware, FirstFit};
    use crate::task::{JobSpec, MessageRequirement, TaskId};

    fn pipeline_job(name: &str, tasks: usize, priority: u32) -> JobSpec {
        let msgs = (0..tasks as u32 - 1)
            .map(|i| MessageRequirement::new(TaskId(i), TaskId(i + 1), priority, 200, 10))
            .collect();
        JobSpec::new(name, tasks, msgs).unwrap()
    }

    #[test]
    fn deploy_and_guarantee() {
        let mut host = HostProcessor::new(8, 8);
        let job = pipeline_job("j", 4, 2);
        let id = host.deploy(&job, &CommunicationAware).unwrap();
        assert_eq!(host.jobs().len(), 1);
        assert_eq!(host.free_nodes().len(), 60);
        let deployed = &host.jobs()[0];
        assert_eq!(deployed.id, id);
        assert_eq!(deployed.streams.len(), 3);
        for &s in &deployed.streams {
            assert!(host.bound(s).is_bounded());
        }
    }

    #[test]
    fn deploy_is_atomic_on_rejection() {
        let mut host = HostProcessor::new(4, 1); // a line of 4 nodes
                                                 // One job, two messages: the first saturates the row channels,
                                                 // the second (lower priority, tight deadline, same channels)
                                                 // is then unadmittable — the WHOLE job must roll back.
        let job = JobSpec::new(
            "doomed",
            4,
            vec![
                MessageRequirement::new(TaskId(0), TaskId(3), 2, 20, 18),
                MessageRequirement::new(TaskId(1), TaskId(2), 1, 100, 10).with_deadline(12),
            ],
        )
        .unwrap();
        let err = host.deploy(&job, &FirstFit).unwrap_err();
        assert!(matches!(err, DeployError::Rejected { message: 1, .. }));
        assert_eq!(host.admitted_streams(), 0, "first stream rolled back");
        assert_eq!(host.free_nodes().len(), 4, "no nodes leaked");
        assert!(host.jobs().is_empty());
    }

    #[test]
    fn no_placement_when_mesh_full() {
        let mut host = HostProcessor::new(2, 2);
        host.deploy(&pipeline_job("a", 3, 1), &FirstFit).unwrap();
        let err = host
            .deploy(&pipeline_job("b", 2, 1), &FirstFit)
            .unwrap_err();
        assert!(matches!(err, DeployError::NoPlacement));
    }

    #[test]
    fn remove_job_releases_and_remaps() {
        let mut host = HostProcessor::new(8, 8);
        let a = host.deploy(&pipeline_job("a", 3, 3), &FirstFit).unwrap();
        let b = host.deploy(&pipeline_job("b", 3, 2), &FirstFit).unwrap();
        let c = host.deploy(&pipeline_job("c", 3, 1), &FirstFit).unwrap();
        assert_eq!(host.admitted_streams(), 6);

        // Remove the middle job: c's stream ids shift down.
        host.remove_job(b);
        assert_eq!(host.admitted_streams(), 4);
        assert_eq!(host.free_nodes().len(), 64 - 6);
        let ids: Vec<JobId> = host.jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![a, c]);
        // All remapped stream ids resolve and are bounded.
        for j in host.jobs() {
            for &s in &j.streams {
                assert!(host.bound(s).is_bounded(), "{s} of job {:?}", j.id);
            }
        }
        // And they are exactly 0..4.
        let mut all: Vec<StreamId> = host.jobs().iter().flat_map(|j| j.streams.clone()).collect();
        all.sort();
        assert_eq!(all, (0..4).map(StreamId).collect::<Vec<_>>());
    }

    #[test]
    fn removing_a_heavy_job_improves_survivors() {
        let mut host = HostProcessor::new(6, 1);
        let heavy = JobSpec::new(
            "heavy",
            2,
            vec![MessageRequirement::new(TaskId(0), TaskId(1), 2, 40, 20)],
        )
        .unwrap();
        // Place heavy on nodes 0..2, light on 2..4 — their streams
        // share row channels.
        let h = host.deploy(&heavy, &FirstFit).unwrap();
        let light = JobSpec::new(
            "light",
            2,
            vec![MessageRequirement::new(TaskId(0), TaskId(1), 1, 200, 6)],
        )
        .unwrap();
        host.deploy(&light, &FirstFit).unwrap();
        let light_stream = host.jobs()[1].streams[0];
        let before = host.bound(light_stream).value().unwrap();
        host.remove_job(h);
        let light_stream = host.jobs()[0].streams[0];
        let after = host.bound(light_stream).value().unwrap();
        assert!(
            after <= before,
            "removal must not hurt: {before} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "unknown job")]
    fn remove_unknown_job_panics() {
        let mut host = HostProcessor::new(2, 2);
        host.remove_job(JobId(7));
    }
}
