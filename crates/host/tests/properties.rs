//! Property tests of node allocation and host deployment.

use proptest::prelude::*;
use rtwc_host::{
    Allocator, Clustered, CommunicationAware, FirstFit, HostProcessor, JobSpec, MessageRequirement,
    RandomPlacement, TaskId,
};
use wormnet_topology::{Mesh, NodeId, Topology};

/// Random small jobs: chains with a few extra random edges.
fn jobs() -> impl Strategy<Value = JobSpec> {
    (
        2usize..8,
        prop::collection::vec((0u32..8, 0u32..8, 1u32..4, 20u64..200, 1u64..20), 0..5),
    )
        .prop_map(|(tasks, extra)| {
            let mut msgs: Vec<MessageRequirement> = (0..tasks as u32 - 1)
                .map(|i| MessageRequirement::new(TaskId(i), TaskId(i + 1), 1, 100, 8))
                .collect();
            for (a, b, p, t, c) in extra {
                let a = a % tasks as u32;
                let b = b % tasks as u32;
                if a != b {
                    msgs.push(MessageRequirement::new(TaskId(a), TaskId(b), p, t, c));
                }
            }
            JobSpec::new("rand", tasks, msgs).unwrap()
        })
}

fn free_subsets() -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::btree_set(0u32..36, 8..36).prop_map(|s| s.into_iter().map(NodeId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn placements_valid_for_all_allocators(job in jobs(), free in free_subsets()) {
        let mesh = Mesh::mesh2d(6, 6);
        let allocators: Vec<Box<dyn Allocator>> = vec![
            Box::new(FirstFit),
            Box::new(Clustered),
            Box::new(CommunicationAware),
            Box::new(RandomPlacement { seed: 5 }),
        ];
        for alloc in &allocators {
            match alloc.place(&job, &mesh, &free) {
                Some(p) => {
                    prop_assert_eq!(p.nodes().len(), job.num_tasks);
                    let mut ns = p.nodes().to_vec();
                    ns.sort();
                    ns.dedup();
                    prop_assert_eq!(ns.len(), job.num_tasks, "distinct nodes");
                    prop_assert!(ns.iter().all(|n| free.contains(n)), "free nodes only");
                }
                None => prop_assert!(
                    free.len() < job.num_tasks || job.num_tasks > mesh.num_nodes(),
                    "refused despite sufficient nodes"
                ),
            }
        }
    }

    #[test]
    fn communication_aware_never_worse_than_first_fit_on_chains(
        tasks in 3usize..9
    ) {
        // For pure chains with uniform rates on an empty mesh, the
        // greedy allocator's cost must not exceed first-fit's (which is
        // already a line — near optimal — so equality is common).
        let mesh = Mesh::mesh2d(8, 8);
        let msgs = (0..tasks as u32 - 1)
            .map(|i| MessageRequirement::new(TaskId(i), TaskId(i + 1), 1, 100, 10))
            .collect();
        let job = JobSpec::new("chain", tasks, msgs).unwrap();
        let free = mesh.nodes();
        let ff = FirstFit.place(&job, &mesh, &free).unwrap();
        let ca = CommunicationAware.place(&job, &mesh, &free).unwrap();
        prop_assert!(
            ca.communication_cost(&job, &mesh) <= ff.communication_cost(&job, &mesh) + 1e-9
        );
    }

    #[test]
    fn deploy_remove_roundtrip_restores_host(seed in 0u64..50) {
        let mut host = HostProcessor::new(6, 6);
        let baseline_free = host.free_nodes();
        let job = JobSpec::new(
            "j",
            3,
            vec![
                MessageRequirement::new(TaskId(0), TaskId(1), 2, 100, 8),
                MessageRequirement::new(TaskId(1), TaskId(2), 1, 150, 10),
            ],
        )
        .unwrap();
        let alloc = RandomPlacement { seed };
        if let Ok(id) = host.deploy(&job, &alloc) {
            prop_assert_eq!(host.admitted_streams(), 2);
            host.remove_job(id);
        }
        prop_assert_eq!(host.admitted_streams(), 0);
        prop_assert_eq!(host.free_nodes(), baseline_free);
        prop_assert!(host.jobs().is_empty());
    }

    #[test]
    fn interleaved_deploys_keep_ids_consistent(remove_first in proptest::bool::ANY) {
        let mut host = HostProcessor::new(8, 8);
        let mk = |p: u32| {
            JobSpec::new(
                "j",
                2,
                vec![MessageRequirement::new(TaskId(0), TaskId(1), p, 120, 8)],
            )
            .unwrap()
        };
        let a = host.deploy(&mk(3), &FirstFit).unwrap();
        let b = host.deploy(&mk(2), &FirstFit).unwrap();
        let c = host.deploy(&mk(1), &FirstFit).unwrap();
        host.remove_job(if remove_first { a } else { b });
        let _ = c;
        // Every surviving job's stream ids resolve to bounded streams
        // and are dense.
        let mut all: Vec<u32> = host
            .jobs()
            .iter()
            .flat_map(|j| j.streams.iter().map(|s| s.0))
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, vec![0, 1]);
        for j in host.jobs() {
            for &s in &j.streams {
                prop_assert!(host.bound(s).is_bounded());
            }
        }
    }
}
