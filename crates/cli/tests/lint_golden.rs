//! Golden-file tests of the lint diagnostics: every broken fixture must
//! produce exactly the committed human and JSON output, the JSON must
//! be syntactically valid (checked with an independent mini-parser, not
//! the renderer), and the binary's exit codes must reflect severity.
//!
//! To regenerate the goldens after an intentional output change:
//! `BLESS=1 cargo test -p rtwc-cli --test lint_golden`.

use rtwc_cli::{lint, parse_raw, LintFormat};
use std::path::PathBuf;
use std::process::Command;

fn repo_file(dir: &str, name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(dir)
        .join(name)
}

fn fixture(name: &str) -> String {
    std::fs::read_to_string(repo_file("fixtures", name)).unwrap()
}

/// Expected rule codes per fixture, in emission order.
const EXPECTED: &[(&str, &[&str])] = &[
    ("clean.streams", &[]),
    (
        "broken.streams",
        &[
            "W002", "W003", "W005", "W006", "W007", "W001", "W008", "W008",
        ],
    ),
    ("warnings.streams", &["W001", "A103", "A103"]),
    ("infeasible.streams", &["W005", "W007"]),
];

fn compare_golden(name: &str, rendered: &str) {
    let path = repo_file("golden", name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with BLESS=1", path.display()));
    assert_eq!(
        rendered, want,
        "golden mismatch for {name}; run with BLESS=1 if intended"
    );
}

#[test]
fn fixtures_match_goldens_and_expected_codes() {
    for (fix, codes) in EXPECTED {
        let raw = parse_raw(&fixture(fix)).unwrap();
        let (human, human_clean) = lint(&raw, LintFormat::Human);
        let (json, json_clean) = lint(&raw, LintFormat::Json);
        assert_eq!(human_clean, json_clean);

        let stem = fix.strip_suffix(".streams").unwrap();
        compare_golden(&format!("{stem}.human.txt"), &human);
        compare_golden(&format!("{stem}.json"), &json);

        // Every expected code appears in order in the JSON stream.
        let mut at = 0;
        for code in *codes {
            let probe = format!("\"code\":\"{code}\"");
            match json[at..].find(&probe) {
                Some(i) => at += i + probe.len(),
                None => panic!("{fix}: expected {code} after byte {at} in {json}"),
            }
        }
        let found = json.matches("\"code\":").count();
        assert_eq!(found, codes.len(), "{fix}: extra findings in {json}");

        // And the JSON is well-formed.
        json_validate(&json).unwrap_or_else(|e| panic!("{fix}: invalid JSON ({e}): {json}"));
    }
}

#[test]
fn lint_exit_codes_reflect_severity() {
    let rtwc = env!("CARGO_BIN_EXE_rtwc");
    let run = |fix: &str, extra: &[&str]| {
        Command::new(rtwc)
            .arg("lint")
            .arg(repo_file("fixtures", fix))
            .args(extra)
            .output()
            .unwrap()
    };
    assert!(run("clean.streams", &[]).status.success());
    assert!(
        run("warnings.streams", &[]).status.success(),
        "warnings never fail lint"
    );
    let broken = run("broken.streams", &["--format", "json"]);
    assert!(!broken.status.success());
    let json = String::from_utf8(broken.stdout).unwrap();
    json_validate(&json).unwrap();
    assert!(json.contains("\"code\":\"W003\""), "{json}");
}

#[test]
fn analyze_guard_denies_error_findings() {
    let rtwc = env!("CARGO_BIN_EXE_rtwc");
    let path = repo_file("fixtures", "infeasible.streams");
    let denied = Command::new(rtwc)
        .arg("analyze")
        .arg(&path)
        .output()
        .unwrap();
    assert!(!denied.status.success());
    let err = String::from_utf8(denied.stderr).unwrap();
    assert!(err.contains("W005"), "{err}");
    assert!(err.contains("--no-verify"), "{err}");
    assert!(denied.stdout.is_empty(), "no analysis output when denied");

    let bypassed = Command::new(rtwc)
        .args(["analyze"])
        .arg(&path)
        .arg("--no-verify")
        .output()
        .unwrap();
    assert!(bypassed.status.success(), "--no-verify bypasses the guard");
    let out = String::from_utf8(bypassed.stdout).unwrap();
    assert!(out.contains("Determine-Feasibility"), "{out}");

    let checked = Command::new(rtwc).arg("check").arg(&path).output().unwrap();
    assert!(!checked.status.success(), "check is guarded too");
}

// --- a minimal independent JSON syntax checker -------------------------

/// Validates that `s` is exactly one well-formed JSON value (plus
/// whitespace). Independent of the renderer by construction: it only
/// *reads* the grammar.
fn json_validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0;
    json_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn json_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => json_composite(b, i, b'}', true),
        Some(b'[') => json_composite(b, i, b']', false),
        Some(b'"') => json_string(b, i),
        Some(b't') => json_lit(b, i, "true"),
        Some(b'f') => json_lit(b, i, "false"),
        Some(b'n') => json_lit(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => json_number(b, i),
        other => Err(format!("unexpected {other:?} at {i}")),
    }
}

fn json_composite(b: &[u8], i: &mut usize, close: u8, keyed: bool) -> Result<(), String> {
    *i += 1; // opening bracket
    skip_ws(b, i);
    if b.get(*i) == Some(&close) {
        *i += 1;
        return Ok(());
    }
    loop {
        if keyed {
            skip_ws(b, i);
            json_string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("expected ':' at {i}"));
            }
            *i += 1;
        }
        json_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(c) if *c == close => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or close, got {other:?} at {i}")),
        }
    }
}

fn json_lit(b: &[u8], i: &mut usize, word: &str) -> Result<(), String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at {i}"))
    }
}

fn json_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                let esc = b.get(*i + 1).ok_or("dangling escape")?;
                match esc {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => *i += 2,
                    b'u' => {
                        let hex = b.get(*i + 2..*i + 6).ok_or("short \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at {i}"));
                        }
                        *i += 6;
                    }
                    other => return Err(format!("bad escape \\{} at {i}", *other as char)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte at {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn json_number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while b.get(*i).is_some_and(u8::is_ascii_digit) {
        *i += 1;
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    if *i == start {
        return Err(format!("empty number at {start}"));
    }
    Ok(())
}

#[test]
fn the_mini_parser_rejects_malformed_json() {
    assert!(json_validate(r#"{"a":[1,2,{"b":"c\n"}],"d":true}"#).is_ok());
    for bad in [
        r#"{"a":1"#,
        r#"{"a" 1}"#,
        r#"[1,]"#,
        "\"\u{1}\"",
        r#"{"a":01x}"#,
        "{} {}",
    ] {
        assert!(json_validate(bad).is_err(), "{bad}");
    }
}
