//! End-to-end tests of the compiled `rtwc` binary: argument handling,
//! output, and exit codes.

use std::io::Write as _;
use std::process::Command;

fn rtwc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rtwc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("rtwc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const STREAMS: &str = "mesh 10 10\nstream 7,3 7,7 5 15 4\nstream 6,1 9,3 1 50 6\n";

#[test]
fn help_prints_usage() {
    let out = rtwc().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("analyze"));
    assert!(text.contains("deploy"));
}

#[test]
fn no_args_fails_with_usage() {
    let out = rtwc().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn analyze_success() {
    let path = write_temp("ok.streams", STREAMS);
    let out = rtwc().arg("analyze").arg(&path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("U = 7"));
    assert!(text.contains("Determine-Feasibility: success"));
}

#[test]
fn check_exit_code_reflects_verdict() {
    let path = write_temp("check.streams", STREAMS);
    let out = rtwc()
        .args(["check"])
        .arg(&path)
        .args(["--cycles", "2000", "--warmup", "0"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("within bounds"));
}

#[test]
fn parse_errors_carry_line_numbers() {
    let path = write_temp("bad.streams", "mesh 10 10\nstream bogus\n");
    let out = rtwc().arg("analyze").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn unknown_flag_rejected() {
    let path = write_temp("flag.streams", STREAMS);
    let out = rtwc()
        .arg("simulate")
        .arg(&path)
        .arg("--frobnicate")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn deploy_jobs_file() {
    let path = write_temp(
        "demo.jobs",
        "mesh 8 8\njob a 3\n  msg 0 1 2 100 8\n  msg 1 2 2 100 8\n",
    );
    let out = rtwc()
        .args(["deploy"])
        .arg(&path)
        .args(["--allocator", "clustered"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("a: deployed on ["), "{text}");
    assert!(text.contains("1 job(s) running"));
}

#[test]
fn serve_and_client_round_trip() {
    use std::io::BufRead as _;
    let path = write_temp("serve.streams", STREAMS);
    let mut server = rtwc()
        .args(["serve"])
        .arg(&path)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // Rust's stdout is line-buffered even when piped, so the announce
    // line arrives as soon as the listener is live.
    let mut announce = String::new();
    std::io::BufReader::new(server.stdout.take().unwrap())
        .read_line(&mut announce)
        .unwrap();
    assert!(announce.contains("2 stream(s) seeded"), "{announce}");
    let addr = announce
        .strip_prefix("listening on ")
        .and_then(|s| s.split_whitespace().next())
        .unwrap()
        .to_string();

    let client = |req: &[&str]| {
        let out = rtwc().arg("client").arg(&addr).args(req).output().unwrap();
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).to_string(),
        )
    };
    let (ok, reply) = client(&["ADMIT", "0,0", "5,0", "2", "50", "4"]);
    assert!(ok, "{reply}");
    assert!(
        reply.contains("\"status\":\"admitted\",\"id\":2"),
        "{reply}"
    );
    let (ok, reply) = client(&["QUERY", "2"]);
    assert!(ok, "{reply}");
    assert!(reply.contains("\"bound\":"), "{reply}");
    // Rejections exit nonzero so shell scripts can branch.
    let (ok, reply) = client(&["ADMIT", "3,3", "3,3", "1", "50", "4"]);
    assert!(!ok, "{reply}");
    assert!(reply.contains("\"reason\":\"lint\""), "{reply}");
    let (ok, reply) = client(&["REMOVE", "2"]);
    assert!(ok, "{reply}");
    let (ok, _) = client(&["QUERY", "2"]);
    assert!(!ok, "removed id must not resolve");
    let (ok, reply) = client(&["SHUTDOWN"]);
    assert!(ok, "{reply}");
    let status = server.wait().unwrap();
    assert!(status.success());
}

#[test]
fn bench_serve_writes_artifact() {
    let dir = std::env::temp_dir().join("rtwc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join(format!("{}-bench.json", std::process::id()));
    let out = rtwc()
        .args(["bench-serve", "--clients", "2", "--ops", "10", "--out"])
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("ops/s"));
    let json = std::fs::read_to_string(&out_path).unwrap();
    assert!(json.contains("\"throughput_ops_per_s\""), "{json}");
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn bad_allocator_rejected() {
    let path = write_temp("alloc.jobs", "mesh 4 4\njob a 2\n  msg 0 1 1 100 4\n");
    let out = rtwc()
        .args(["deploy"])
        .arg(&path)
        .args(["--allocator", "quantum"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown allocator"));
}
