//! Property tests of the spec-file parser: render/parse round-trips and
//! rejection of malformed input.

use proptest::prelude::*;
use rtwc_cli::{parse, render};

/// Random well-formed spec-file text.
fn spec_text() -> impl Strategy<Value = String> {
    let stream = (
        0u32..8,
        0u32..8,
        0u32..8,
        0u32..8,
        1u32..6,
        1u64..200,
        1u64..40,
    )
        .prop_filter("distinct endpoints", |(sx, sy, dx, dy, ..)| {
            (sx, sy) != (dx, dy)
        });
    prop::collection::vec(stream, 1..12).prop_map(|streams| {
        let mut text = String::from("mesh 8 8\n");
        for (sx, sy, dx, dy, p, t, c) in streams {
            text.push_str(&format!("stream {sx},{sy} {dx},{dy} {p} {t} {c}\n"));
        }
        text
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_render_roundtrip(text in spec_text()) {
        let spec = parse(&text).unwrap();
        let rendered = render(&spec);
        let again = parse(&rendered).unwrap();
        prop_assert_eq!(again.set.len(), spec.set.len());
        for (a, b) in again.set.iter().zip(spec.set.iter()) {
            prop_assert_eq!(&a.spec, &b.spec);
            prop_assert_eq!(a.path.links(), b.path.links());
        }
    }

    #[test]
    fn junk_lines_never_panic(junk in "[ -~]{0,60}") {
        // Arbitrary printable junk: parser returns Ok or Err, never
        // panics.
        let _ = parse(&junk);
        let _ = parse(&format!("mesh 4 4\n{junk}\nstream 0,0 1,0 1 10 2\n"));
    }

    #[test]
    fn whitespace_and_comments_are_invisible(extra_ws in 1usize..5) {
        let pad = " ".repeat(extra_ws);
        let text = format!(
            "# header\n\nmesh{pad}6 6\n{pad}stream{pad}0,0{pad}5,0{pad}2{pad}30{pad}4 # tail\n"
        );
        let spec = parse(&text).unwrap();
        prop_assert_eq!(spec.set.len(), 1);
    }
}
