//! The `.streams` spec file format: a plain-text description of a mesh
//! and its periodic real-time message streams.
//!
//! ```text
//! # comments start with '#'; blank lines are ignored
//! mesh 10 10
//! # stream SX,SY DX,DY PRIORITY PERIOD LENGTH [DEADLINE]
//! stream 7,3 7,7 5 15 4
//! stream 1,1 5,4 4 10 2 10
//! ```
//!
//! Coordinates are `x,y` on the mesh; priorities are 1-based (larger =
//! more urgent); the deadline defaults to the period. Routing is always
//! X-Y (the paper's assumption for meshes).

use rtwc_core::{StreamSet, StreamSpec};
use std::fmt;
use wormnet_topology::{Mesh, Topology, XyRouting};

/// A parsed spec file: the mesh and the resolved stream set.
#[derive(Clone, Debug)]
pub struct SpecFile {
    /// The mesh declared by the `mesh` line.
    pub mesh: Mesh,
    /// The streams, in file order (ids follow file order).
    pub set: StreamSet,
    /// 1-based source line of each stream, parallel to the set's ids.
    pub lines: Vec<usize>,
}

/// A spec file parsed but not yet resolved against routing: the mesh
/// and the raw stream specs with their source lines.
///
/// The `lint` subcommand works on this form so that specs the resolver
/// would reject outright (self-delivery, zero parameters, unroutable
/// endpoints) still produce structured diagnostics instead of aborting
/// at the first failure.
#[derive(Clone, Debug)]
pub struct RawSpecFile {
    /// The mesh declared by the `mesh` line.
    pub mesh: Mesh,
    /// The stream specs in file order.
    pub specs: Vec<StreamSpec>,
    /// 1-based source line of each spec, parallel to `specs`.
    pub lines: Vec<usize>,
}

impl RawSpecFile {
    /// Resolves the raw specs into a [`SpecFile`], attributing any
    /// resolution failure to the offending stream's source line.
    pub fn resolve(&self) -> Result<SpecFile, ParseError> {
        let set = StreamSet::resolve(&self.mesh, &XyRouting, &self.specs).map_err(|e| {
            let line = e.stream().map_or(0, |i| self.lines[i]);
            err(line, format!("invalid stream set: {e}"))
        })?;
        Ok(SpecFile {
            mesh: self.mesh.clone(),
            set,
            lines: self.lines.clone(),
        })
    }
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_coord(line: usize, token: &str) -> Result<(u32, u32), ParseError> {
    let (x, y) = token
        .split_once(',')
        .ok_or_else(|| err(line, format!("expected X,Y coordinate, got '{token}'")))?;
    let x = x
        .parse::<u32>()
        .map_err(|_| err(line, format!("bad X coordinate '{x}'")))?;
    let y = y
        .parse::<u32>()
        .map_err(|_| err(line, format!("bad Y coordinate '{y}'")))?;
    Ok((x, y))
}

fn parse_num<T: std::str::FromStr>(line: usize, token: &str, what: &str) -> Result<T, ParseError> {
    token
        .parse::<T>()
        .map_err(|_| err(line, format!("bad {what} '{token}'")))
}

/// Parses a spec file's contents and resolves every stream's route.
pub fn parse(input: &str) -> Result<SpecFile, ParseError> {
    parse_raw(input)?.resolve()
}

/// Parses a spec file's contents without resolving routes (the lint
/// front end; see [`RawSpecFile`]).
pub fn parse_raw(input: &str) -> Result<RawSpecFile, ParseError> {
    let mut mesh: Option<Mesh> = None;
    // (line, src, dst, priority, period, length, deadline)
    type RawStream = (usize, (u32, u32), (u32, u32), u32, u64, u64, u64);
    let mut raw_streams: Vec<RawStream> = Vec::new();

    for (i, raw_line) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        // The emptiness check above makes a missing keyword unreachable
        // today, but these parsers are also fed untrusted lines by the
        // admission server — degenerate input must surface as a
        // `ParseError` with a line number, never a panic.
        let Some(keyword) = tokens.next() else {
            return Err(err(lineno, "blank or whitespace-only statement"));
        };
        let rest: Vec<&str> = tokens.collect();
        match keyword {
            "mesh" => {
                if mesh.is_some() {
                    return Err(err(lineno, "duplicate 'mesh' line"));
                }
                if rest.len() != 2 {
                    return Err(err(lineno, "usage: mesh WIDTH HEIGHT"));
                }
                let w: u32 = parse_num(lineno, rest[0], "width")?;
                let h: u32 = parse_num(lineno, rest[1], "height")?;
                if w == 0 || h == 0 {
                    return Err(err(lineno, "mesh dimensions must be positive"));
                }
                mesh = Some(Mesh::mesh2d(w, h));
            }
            "stream" => {
                if rest.len() < 5 || rest.len() > 6 {
                    return Err(err(
                        lineno,
                        "usage: stream SX,SY DX,DY PRIORITY PERIOD LENGTH [DEADLINE]",
                    ));
                }
                let src = parse_coord(lineno, rest[0])?;
                let dst = parse_coord(lineno, rest[1])?;
                let priority: u32 = parse_num(lineno, rest[2], "priority")?;
                let period: u64 = parse_num(lineno, rest[3], "period")?;
                let length: u64 = parse_num(lineno, rest[4], "length")?;
                let deadline: u64 = if rest.len() == 6 {
                    parse_num(lineno, rest[5], "deadline")?
                } else {
                    period
                };
                if priority == 0 {
                    return Err(err(lineno, "priorities are 1-based"));
                }
                raw_streams.push((lineno, src, dst, priority, period, length, deadline));
            }
            other => return Err(err(lineno, format!("unknown keyword '{other}'"))),
        }
    }

    let mesh = mesh.ok_or_else(|| err(0, "missing 'mesh WIDTH HEIGHT' line"))?;
    if raw_streams.is_empty() {
        return Err(err(0, "spec declares no streams"));
    }

    let mut specs = Vec::with_capacity(raw_streams.len());
    let mut lines = Vec::with_capacity(raw_streams.len());
    for (lineno, src, dst, priority, period, length, deadline) in raw_streams {
        let s = mesh
            .node_at(&[src.0, src.1])
            .ok_or_else(|| err(lineno, format!("source ({},{}) outside mesh", src.0, src.1)))?;
        let d = mesh
            .node_at(&[dst.0, dst.1])
            .ok_or_else(|| err(lineno, format!("dest ({},{}) outside mesh", dst.0, dst.1)))?;
        specs.push(StreamSpec::new(s, d, priority, period, length, deadline));
        lines.push(lineno);
    }
    Ok(RawSpecFile { mesh, specs, lines })
}

/// Serializes a spec back to the file format (round-trip support).
pub fn render(spec: &SpecFile) -> String {
    let dims = spec.mesh.dims();
    let mut out = format!("mesh {} {}\n", dims[0], dims[1]);
    for s in spec.set.iter() {
        let sc = spec.mesh.coord(s.path.source());
        let dc = spec.mesh.coord(s.path.dest());
        out.push_str(&format!(
            "stream {},{} {},{} {} {} {} {}\n",
            sc.get(0),
            sc.get(1),
            dc.get(0),
            dc.get(1),
            s.priority(),
            s.period(),
            s.max_length(),
            s.deadline(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtwc_core::StreamId;

    const PAPER: &str = "\
# the paper's worked example
mesh 10 10
stream 7,3 7,7 5 15 4
stream 1,1 5,4 4 10 2
stream 2,1 7,5 3 40 4
stream 4,1 8,5 2 45 9
stream 6,1 9,3 1 50 6 50
";

    #[test]
    fn parses_paper_example() {
        let spec = parse(PAPER).unwrap();
        assert_eq!(spec.set.len(), 5);
        assert_eq!(spec.set.get(StreamId(0)).latency, 7);
        assert_eq!(spec.set.get(StreamId(1)).deadline(), 10, "defaults to T");
        assert_eq!(spec.set.get(StreamId(4)).deadline(), 50);
    }

    #[test]
    fn roundtrip() {
        let spec = parse(PAPER).unwrap();
        let text = render(&spec);
        let again = parse(&text).unwrap();
        assert_eq!(again.set.len(), spec.set.len());
        for (a, b) in again.set.iter().zip(spec.set.iter()) {
            assert_eq!(a.spec, b.spec);
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let spec = parse("\n# hi\nmesh 4 4\n\nstream 0,0 3,0 1 10 2 # trailing\n").unwrap();
        assert_eq!(spec.set.len(), 1);
    }

    #[test]
    fn error_lines_are_reported() {
        let e = parse("mesh 4 4\nstream 0,0 3,0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("usage"));

        let e = parse("mesh 4 4\nstream 9,0 3,0 1 10 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("outside mesh"));

        let e = parse("stream 0,0 1,0 1 10 2\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("missing 'mesh"));

        let e = parse("mesh 4 4\nbogus 1 2\n").unwrap_err();
        assert!(e.message.contains("unknown keyword"));

        let e = parse("mesh 4 4\nmesh 4 4\n").unwrap_err();
        assert!(e.message.contains("duplicate"));

        let e = parse("mesh 4 4\nstream 0,0 1,0 0 10 2\n").unwrap_err();
        assert!(e.message.contains("1-based"));

        let e = parse("mesh 4 4\nstream 0x0 1,0 1 10 2\n").unwrap_err();
        assert!(e.message.contains("coordinate"));

        let e = parse("mesh 4 4\n").unwrap_err();
        assert!(e.message.contains("no streams"));
    }

    #[test]
    fn degenerate_lines_never_panic() {
        // Whitespace-only and comment-only lines (including Unicode
        // whitespace) are skipped; control characters become ordinary
        // unknown-keyword errors with the right line number. The server
        // feeds untrusted text to this parser, so every weird shape
        // must produce `Ok` or a `ParseError` — never a panic.
        let ok = parse("\u{a0}\t \nmesh 4 4\n \t\nstream 0,0 3,0 1 10 2\n#\u{b}\n").unwrap();
        assert_eq!(ok.set.len(), 1);
        let e = parse("mesh 4 4\n\u{1}garbage\nstream 0,0 3,0 1 10 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown keyword"), "{e}");
        assert!(parse("  #only a comment\n").is_err(), "missing mesh");
    }

    #[test]
    fn resolve_errors_point_at_the_offending_line() {
        // The third line's stream self-delivers; the resolver's error
        // must be attributed to it, not to the whole file.
        let e = parse("mesh 4 4\nstream 0,0 1,0 1 10 2\nstream 2,2 2,2 1 10 2\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("source equals destination"), "{e}");
    }

    #[test]
    fn parse_raw_keeps_broken_specs() {
        // parse() rejects this file (self-delivery), parse_raw keeps it
        // for the lint pass.
        let raw = parse_raw("mesh 4 4\nstream 2,2 2,2 1 10 2\n").unwrap();
        assert_eq!(raw.specs.len(), 1);
        assert_eq!(raw.lines, vec![2]);
        assert!(raw.resolve().is_err());
    }
}
