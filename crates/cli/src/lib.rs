//! # rtwc-cli
//!
//! Library backing the `rtwc` command-line tool: a plain-text spec
//! format for stream sets ([`spec`]) and the `analyze` / `simulate` /
//! `check` commands ([`commands`]).
//!
//! ```text
//! rtwc analyze  set.streams [--diagrams]
//! rtwc simulate set.streams [--policy preemptive|li|classic] [--cycles N] [--warmup N]
//! rtwc check    set.streams [--policy ...] [--cycles N] [--warmup N]
//! ```

#![warn(missing_docs)]

pub mod commands;
pub mod jobs;
pub mod spec;

pub use commands::{analyze, analyze_with, check, deploy, simulate, SimOptions};
pub use jobs::{parse_jobs, JobsFile};
pub use spec::{parse, render, ParseError, SpecFile};
