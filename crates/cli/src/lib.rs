//! # rtwc-cli
//!
//! Library backing the `rtwc` command-line tool: a plain-text spec
//! format for stream sets ([`spec`]) and the `analyze` / `simulate` /
//! `check` commands ([`commands`]).
//!
//! ```text
//! rtwc lint     set.streams [--format human|json]
//! rtwc analyze  set.streams [--diagrams]
//! rtwc simulate set.streams [--policy preemptive|li|classic] [--cycles N] [--warmup N]
//! rtwc check    set.streams [--policy ...] [--cycles N] [--warmup N]
//! ```
//!
//! `analyze`/`simulate`/`check` run the [`rtwc_verifier`] lint rules
//! first and refuse workloads with error-severity findings
//! (`--no-verify` bypasses the guard).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_shard;
pub mod commands;
pub mod jobs;
pub mod serve;
pub mod spec;

pub use bench_shard::{
    render_shard_json, render_shard_summary, run_bench_shard, run_shard_bench, ShardBenchConfig,
    ShardBenchOutcome, ShardBenchTier,
};
pub use commands::{
    analyze, analyze_with, check, deploy, lint, simulate, verify_sim, verify_spec, LintFormat,
    SimOptions,
};
pub use jobs::{parse_jobs, JobsFile};
pub use serve::{
    run_bench_serve, run_chaos_command, run_client, run_serve, run_service_command, seed_service,
    ServeOptions,
};
pub use spec::{parse, parse_raw, render, ParseError, RawSpecFile, SpecFile};
