//! The `rtwc` command-line tool.

#![forbid(unsafe_code)]

use rtwc_cli::{check, lint, simulate, LintFormat, SimOptions};
use std::process::ExitCode;
use wormnet_sim::Policy;

const USAGE: &str = "\
rtwc — real-time wormhole communication toolkit (ICPP'98 reproduction)

USAGE:
    rtwc lint     <SPEC> [--format human|json]
    rtwc analyze  <SPEC> [--diagrams] [--explain] [--no-verify]
    rtwc simulate <SPEC> [--policy preemptive|li|classic|shared] [--cycles N] [--warmup N] [--no-verify]
    rtwc check    <SPEC> [--policy preemptive|li|classic|shared] [--cycles N] [--warmup N] [--no-verify]
    rtwc deploy   <JOBS> [--allocator first-fit|clustered|comm|random[:SEED]]
    rtwc serve    <SPEC> [--addr HOST:PORT] [--wal-dir DIR] [--fsync always|never|interval:MS]
                         [--snapshot-every N] [--max-conns N] [--max-pending N] [--shards N|auto]
                         [--repl-addr HOST:PORT [--lease-ms N]
                          | --follower-of HOST:PORT [--promote-grace-ms N]]
    rtwc client   <ADDR> [--timeout-ms N] [--retries N] [--req-id N] <REQUEST...>
    rtwc promote  <ADDR>
    rtwc bench-serve [--clients N] [--ops N] [--mesh WxH] [--seed S] [--out FILE]
                     [--wal-sweep | --wal-dir DIR --fsync P [--snapshot-every N]]
    rtwc bench-repl  [--clients N] [--ops N | --duration SECS] [--mesh WxH] [--seed S]
                     [--grace-ms N] [--out FILE]
    rtwc bench-shard [--mesh WxH] [--ops N] [--shards N,N,...] [--cap N] [--locality N]
                     [--seed S] [--full] [--min-speedup X] [--out FILE]
    rtwc chaos    [--seed S] [--ops N] [--mesh WxH] [--snapshot-every N] [--dir D]
    rtwc netchaos <TARGET> [--listen HOST:PORT] [--seed S] [--script FILE]

SPEC is a .streams file:
    mesh 10 10
    # stream SX,SY DX,DY PRIORITY PERIOD LENGTH [DEADLINE]
    stream 7,3 7,7 5 15 4

JOBS is a .jobs file:
    mesh 10 10
    job control 3
      msg 0 1 2 100 8      # FROM TO PRIORITY PERIOD LENGTH [DEADLINE]

COMMANDS:
    lint       statically verify the workload; exit nonzero on errors
    analyze    run Determine-Feasibility and print every delay bound U_i
    simulate   run the flit-level wormhole simulator and print latencies
    check      analyze + simulate, verifying max latency <= U for all streams
    deploy     allocate nodes and admit each job's streams with guarantees
    serve      run the online admission service over TCP (stop with SHUTDOWN);
               --wal-dir makes it crash-safe: ops are logged before the ack
               and a restart recovers (and audits) the exact admitted set;
               --repl-addr ships the WAL to followers (--lease-ms seals the
               leader when follower acks stop, preventing split-brain),
               --follower-of runs a warm standby that serves reads and
               redirects writes
    client     send one request (ADMIT|REMOVE|QUERY|SNAPSHOT|STATS|PROMOTE|SHUTDOWN);
               --req-id N makes a retried ADMIT/REMOVE idempotent
    promote    flip a follower into the serving leader (audits first)
    bench-serve  closed-loop load generator; writes results/BENCH_service.json
               (--wal-sweep adds per-fsync-policy durability costs)
    bench-repl replication bench: leader under load with a live follower,
               then a timed failover; writes results/BENCH_repl.json
    bench-shard sharded-admission scaling bench: the same deterministic
               churn through the monolith (serial reference) and each
               shard count, asserting bit-identical verdicts and bounds;
               writes results/BENCH_shard.json (--full adds 10x10 and
               256x256 tiers)
    chaos      fault-injection harness: torn/short writes, fsync errors,
               kill-9 truncation, and network partitions (symmetric,
               one-way blackhole, heal-and-rejoin); asserts recovery is
               bit-identical to a serial replay of the acknowledged
               history and that a deposed leader fences, never dual-acks
    netchaos   deterministic fault-injecting TCP proxy in front of TARGET;
               partitions, one-way blackholes, latency, severs and
               duplicate delivery, driven by stdin control lines or a
               timed --script (e.g. 'at 100ms partition; at 2000ms heal')

analyze, simulate, and check first run the lint rules and refuse
workloads with error-severity findings; --no-verify skips the guard.
";

fn parse_format(s: &str) -> Result<LintFormat, String> {
    match s {
        "human" => Ok(LintFormat::Human),
        "json" => Ok(LintFormat::Json),
        other => Err(format!("unknown format '{other}' (human|json)")),
    }
}

fn parse_allocator(s: &str) -> Result<Box<dyn rtwc_host::Allocator>, String> {
    if let Some(seed) = s.strip_prefix("random:") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("bad random seed '{seed}'"))?;
        return Ok(Box::new(rtwc_host::RandomPlacement { seed }));
    }
    match s {
        "first-fit" => Ok(Box::new(rtwc_host::FirstFit)),
        "clustered" => Ok(Box::new(rtwc_host::Clustered)),
        "comm" => Ok(Box::new(rtwc_host::CommunicationAware)),
        "random" => Ok(Box::new(rtwc_host::RandomPlacement { seed: 0 })),
        other => Err(format!(
            "unknown allocator '{other}' (first-fit|clustered|comm|random[:SEED])"
        )),
    }
}

fn parse_policy(s: &str) -> Result<Policy, String> {
    match s {
        "preemptive" => Ok(Policy::PreemptivePriority),
        "li" => Ok(Policy::LiPriorityVc),
        "classic" => Ok(Policy::ClassicFifo),
        "shared" => Ok(Policy::SharedPoolPriority),
        other => Err(format!(
            "unknown policy '{other}' (preemptive|li|classic|shared)"
        )),
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => return Err(USAGE.to_string()),
    };
    if matches!(command, "-h" | "--help" | "help") {
        println!("{USAGE}");
        return Ok(true);
    }
    // The service subcommands have their own argument shapes (client
    // takes an address, bench-serve takes no file at all).
    if matches!(
        command,
        "serve"
            | "client"
            | "promote"
            | "bench-serve"
            | "bench-repl"
            | "bench-shard"
            | "chaos"
            | "netchaos"
    ) {
        return rtwc_cli::run_service_command(command, rest);
    }
    let (path, flags) = match rest.split_first() {
        Some((p, flags)) if !p.starts_with('-') => (p.clone(), flags.to_vec()),
        _ => return Err(format!("missing SPEC file\n\n{USAGE}")),
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;

    let mut opts = SimOptions::default();
    let mut diagrams = false;
    let mut explain_flag = false;
    let mut no_verify = false;
    let mut format = LintFormat::Human;
    let mut allocator = "comm".to_string();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--diagrams" => diagrams = true,
            "--explain" => explain_flag = true,
            "--no-verify" => no_verify = true,
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                format = parse_format(v)?;
            }
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                opts.policy = parse_policy(v)?;
            }
            "--cycles" => {
                let v = it.next().ok_or("--cycles needs a value")?;
                opts.cycles = v.parse().map_err(|_| format!("bad --cycles '{v}'"))?;
            }
            "--warmup" => {
                let v = it.next().ok_or("--warmup needs a value")?;
                opts.warmup = v.parse().map_err(|_| format!("bad --warmup '{v}'"))?;
            }
            "--allocator" => {
                allocator = it.next().ok_or("--allocator needs a value")?.clone();
            }
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }

    if command == "deploy" {
        let file = rtwc_cli::parse_jobs(&text).map_err(|e| format!("{path}: {e}"))?;
        let alloc = parse_allocator(&allocator)?;
        print!("{}", rtwc_cli::deploy(&file, alloc.as_ref()));
        return Ok(true);
    }

    let raw = rtwc_cli::parse_raw(&text).map_err(|e| format!("{path}: {e}"))?;
    if command == "lint" {
        let (out, clean) = lint(&raw, format);
        print!("{out}");
        return Ok(clean);
    }
    if !no_verify {
        rtwc_cli::verify_spec(&raw)?;
    }
    let spec = raw.resolve().map_err(|e| format!("{path}: {e}"))?;
    if !no_verify && matches!(command, "simulate" | "check") {
        rtwc_cli::verify_sim(&spec, &opts)?;
    }
    match command {
        "analyze" => {
            print!("{}", rtwc_cli::analyze_with(&spec, diagrams, explain_flag));
            Ok(true)
        }
        "simulate" => {
            print!("{}", simulate(&spec, &opts)?);
            Ok(true)
        }
        "check" => {
            let (out, ok) = check(&spec, &opts)?;
            print!("{out}");
            Ok(ok)
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
