//! The `rtwc` command-line tool.

use rtwc_cli::{check, simulate, SimOptions};
use std::process::ExitCode;
use wormnet_sim::Policy;

const USAGE: &str = "\
rtwc — real-time wormhole communication toolkit (ICPP'98 reproduction)

USAGE:
    rtwc analyze  <SPEC> [--diagrams] [--explain]
    rtwc simulate <SPEC> [--policy preemptive|li|classic|shared] [--cycles N] [--warmup N]
    rtwc check    <SPEC> [--policy preemptive|li|classic|shared] [--cycles N] [--warmup N]
    rtwc deploy   <JOBS> [--allocator first-fit|clustered|comm|random[:SEED]]

SPEC is a .streams file:
    mesh 10 10
    # stream SX,SY DX,DY PRIORITY PERIOD LENGTH [DEADLINE]
    stream 7,3 7,7 5 15 4

JOBS is a .jobs file:
    mesh 10 10
    job control 3
      msg 0 1 2 100 8      # FROM TO PRIORITY PERIOD LENGTH [DEADLINE]

COMMANDS:
    analyze    run Determine-Feasibility and print every delay bound U_i
    simulate   run the flit-level wormhole simulator and print latencies
    check      analyze + simulate, verifying max latency <= U for all streams
    deploy     allocate nodes and admit each job's streams with guarantees
";

fn parse_allocator(s: &str) -> Result<Box<dyn rtwc_host::Allocator>, String> {
    if let Some(seed) = s.strip_prefix("random:") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("bad random seed '{seed}'"))?;
        return Ok(Box::new(rtwc_host::RandomPlacement { seed }));
    }
    match s {
        "first-fit" => Ok(Box::new(rtwc_host::FirstFit)),
        "clustered" => Ok(Box::new(rtwc_host::Clustered)),
        "comm" => Ok(Box::new(rtwc_host::CommunicationAware)),
        "random" => Ok(Box::new(rtwc_host::RandomPlacement { seed: 0 })),
        other => Err(format!(
            "unknown allocator '{other}' (first-fit|clustered|comm|random[:SEED])"
        )),
    }
}

fn parse_policy(s: &str) -> Result<Policy, String> {
    match s {
        "preemptive" => Ok(Policy::PreemptivePriority),
        "li" => Ok(Policy::LiPriorityVc),
        "classic" => Ok(Policy::ClassicFifo),
        "shared" => Ok(Policy::SharedPoolPriority),
        other => Err(format!(
            "unknown policy '{other}' (preemptive|li|classic|shared)"
        )),
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => return Err(USAGE.to_string()),
    };
    if matches!(command, "-h" | "--help" | "help") {
        println!("{USAGE}");
        return Ok(true);
    }
    let (path, flags) = match rest.split_first() {
        Some((p, flags)) if !p.starts_with('-') => (p.clone(), flags.to_vec()),
        _ => return Err(format!("missing SPEC file\n\n{USAGE}")),
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;

    let mut opts = SimOptions::default();
    let mut diagrams = false;
    let mut explain_flag = false;
    let mut allocator = "comm".to_string();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--diagrams" => diagrams = true,
            "--explain" => explain_flag = true,
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                opts.policy = parse_policy(v)?;
            }
            "--cycles" => {
                let v = it.next().ok_or("--cycles needs a value")?;
                opts.cycles = v.parse().map_err(|_| format!("bad --cycles '{v}'"))?;
            }
            "--warmup" => {
                let v = it.next().ok_or("--warmup needs a value")?;
                opts.warmup = v.parse().map_err(|_| format!("bad --warmup '{v}'"))?;
            }
            "--allocator" => {
                allocator = it.next().ok_or("--allocator needs a value")?.clone();
            }
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }

    if command == "deploy" {
        let file = rtwc_cli::parse_jobs(&text).map_err(|e| format!("{path}: {e}"))?;
        let alloc = parse_allocator(&allocator)?;
        print!("{}", rtwc_cli::deploy(&file, alloc.as_ref()));
        return Ok(true);
    }

    let spec = rtwc_cli::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match command {
        "analyze" => {
            print!("{}", rtwc_cli::analyze_with(&spec, diagrams, explain_flag));
            Ok(true)
        }
        "simulate" => {
            print!("{}", simulate(&spec, &opts)?);
            Ok(true)
        }
        "check" => {
            let (out, ok) = check(&spec, &opts)?;
            print!("{out}");
            Ok(ok)
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
