//! `rtwc bench-shard` — the sharded-admission-plane scaling benchmark.
//!
//! Drives the same deterministic admit/remove churn through the
//! monolithic [`AdmissionController`] (the serial bit-identity
//! reference) and through [`ShardedController`] at each requested
//! shard count. The 1-shard phase is the *control*: every admission
//! scans the whole resident set, exactly like the monolith, so the
//! speedup of the multi-shard phases over it isolates what region
//! sharding buys — component discovery confined to the shards a route
//! actually touches.
//!
//! The workload is locality-bounded: routes are at most `locality`
//! hops, and a resident cap keeps the set in steady-state churn
//! (admissions and removals balance), which is the regime the paper's
//! run-time scheme operates in. Every phase must produce the identical
//! verdict sequence and final bounds as the serial reference — the
//! benchmark doubles as a scale test of the bit-identity invariant.

use rtwc_core::{
    AdmissionController, DelayBound, ShardMap, ShardedController, StreamId, StreamSpec,
};
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use wormnet_topology::{Mesh, Path, Routing, Topology, XyRouting};

/// One benchmark tier: a mesh size, an op count, and the shard counts
/// to sweep.
#[derive(Clone, Debug)]
pub struct ShardBenchTier {
    /// Mesh width.
    pub width: u32,
    /// Mesh height.
    pub height: u32,
    /// Total operations (admits + removes) per phase.
    pub ops: usize,
    /// Shard counts to sweep; 1 (the control) is added when absent.
    pub shard_counts: Vec<usize>,
    /// Resident-stream cap (0 = half the node count). Bounds
    /// link-sharing component size: churn at the cap is the paper's
    /// steady-state regime, and an uncapped dense set percolates into
    /// one mesh-wide component that no partition can split.
    pub resident_cap: usize,
}

/// Benchmark configuration.
#[derive(Clone, Debug)]
pub struct ShardBenchConfig {
    /// The tiers to run.
    pub tiers: Vec<ShardBenchTier>,
    /// Maximum route length in hops.
    pub locality: u32,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ShardBenchConfig {
    fn default() -> Self {
        ShardBenchConfig {
            tiers: vec![ShardBenchTier {
                width: 64,
                height: 64,
                ops: 100_000,
                shard_counts: vec![1, 4, 16],
                resident_cap: 0,
            }],
            // 4-hop routes keep link-sharing components inside (or
            // near) one region tile, so shard-local admission cost is
            // dominated by the per-shard resident scan — the term
            // sharding actually divides.
            locality: 4,
            seed: 42,
        }
    }
}

/// Latency summary of the timed admits in one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdmitLatency {
    /// Timed admissions.
    pub count: u64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
}

/// The serial ([`AdmissionController`]) reference run.
#[derive(Clone, Debug)]
pub struct SerialOutcome {
    /// Wall-clock for the whole op sequence.
    pub elapsed: Duration,
    /// Admit latency (all admits).
    pub admit: AdmitLatency,
    /// Interference-index memory at the end of the run, bytes.
    pub index_bytes: u64,
    /// Streams resident at the end of the run.
    pub final_streams: u64,
    /// Operations per second.
    pub throughput: f64,
}

/// One sharded phase of a tier.
#[derive(Clone, Debug)]
pub struct PhaseOutcome {
    /// Shard count this phase ran with (actual, from the map).
    pub shards: usize,
    /// Wall-clock for the whole op sequence.
    pub elapsed: Duration,
    /// Operations per second.
    pub throughput: f64,
    /// Admit latency over every admission attempt.
    pub admit: AdmitLatency,
    /// Admit latency over shard-local admissions only: decisions that
    /// touched exactly one shard, at insert and during convergence.
    pub local_admit: AdmitLatency,
    /// Fraction of successful admissions that crossed shards.
    pub cross_admit_fraction: f64,
    /// Successful admissions.
    pub admitted: u64,
    /// Refused admissions.
    pub rejected: u64,
    /// Removals.
    pub removed: u64,
    /// Committed cross-shard admissions.
    pub cross_admits: u64,
    /// Cross-shard admissions the analysis refused.
    pub cross_aborts: u64,
    /// `Cal_U` invocations across the run.
    pub recomputations: u64,
    /// Total resident index memory across shards at the end, bytes.
    pub index_bytes_total: u64,
    /// Largest single shard's resident index memory, bytes.
    pub index_bytes_max_shard: u64,
    /// Streams resident at the end of the run.
    pub final_streams: u64,
    /// Control wall-clock divided by this phase's (1.0 for the control
    /// itself).
    pub speedup_vs_control: f64,
    /// True when the verdict sequence and final bounds matched the
    /// serial reference exactly.
    pub bit_identical_to_serial: bool,
}

/// One tier's results.
#[derive(Clone, Debug)]
pub struct TierOutcome {
    /// Mesh width.
    pub width: u32,
    /// Mesh height.
    pub height: u32,
    /// Operations per phase.
    pub ops: usize,
    /// Resident cap in effect.
    pub resident_cap: usize,
    /// The serial reference.
    pub serial: SerialOutcome,
    /// The sharded phases, control (1 shard) first.
    pub phases: Vec<PhaseOutcome>,
    /// Minimum speedup over the 1-shard control across multi-shard
    /// phases (the CI gate value).
    pub min_speedup_vs_control: f64,
}

/// The whole benchmark's results.
#[derive(Clone, Debug)]
pub struct ShardBenchOutcome {
    /// Workload seed.
    pub seed: u64,
    /// Route-length bound, hops.
    pub locality: u32,
    /// Per-tier results.
    pub tiers: Vec<TierOutcome>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One generated operation.
enum Op {
    Admit(StreamSpec, Path),
    Remove(usize),
}

/// Draws the next operation. The draw count depends only on the RNG
/// state and the resident count — and resident counts evolve
/// identically across runs because every run produces identical
/// verdicts — so each phase sees the exact same op sequence.
fn next_op(
    rng: &mut u64,
    mesh: &Mesh,
    width: u32,
    height: u32,
    locality: u32,
    resident: usize,
    cap: usize,
) -> Op {
    let must_remove = resident >= cap;
    let may_remove = resident > cap / 2 && splitmix64(rng) % 100 < 30;
    if resident > 0 && (must_remove || may_remove) {
        return Op::Remove((splitmix64(rng) as usize) % resident);
    }
    let span = i64::from(locality.max(1));
    loop {
        let sx = (splitmix64(rng) % u64::from(width)) as i64;
        let sy = (splitmix64(rng) % u64::from(height)) as i64;
        let dx = (splitmix64(rng) % (2 * span as u64 + 1)) as i64 - span;
        let rem = span - dx.abs();
        let dy = (splitmix64(rng) % (2 * rem as u64 + 1)) as i64 - rem;
        if dx == 0 && dy == 0 {
            continue;
        }
        let (tx, ty) = (sx + dx, sy + dy);
        if tx < 0 || ty < 0 || tx >= i64::from(width) || ty >= i64::from(height) {
            continue;
        }
        let source = mesh.node_at(&[sx as u32, sy as u32]).expect("in bounds");
        let dest = mesh.node_at(&[tx as u32, ty as u32]).expect("in bounds");
        let priority = 1 + (splitmix64(rng) % 4) as u32;
        let length = 2 + splitmix64(rng) % 6;
        let period = 50 + 10 * (splitmix64(rng) % 8);
        let spec = StreamSpec::new(source, dest, priority, period, length, period);
        let path = XyRouting.route(mesh, source, dest).expect("mesh routes");
        return Op::Admit(spec, path);
    }
}

/// The controller surface the op driver needs.
trait Driver {
    /// Tries the admission; `Ok(coordinated)` on success, where
    /// `coordinated` means the decision touched more than one shard —
    /// at insert *or* during neighborhood convergence. The complement
    /// is a genuinely shard-local admit: one region lock, zero
    /// cross-shard coordination.
    fn admit(&mut self, spec: StreamSpec, path: Path) -> Result<bool, ()>;
    /// Removes the stream with this dense id.
    fn remove(&mut self, dense: usize);
    /// Resident stream count.
    fn resident(&self) -> usize;
    /// Final bounds in admission order.
    fn final_bounds(&self) -> Vec<DelayBound>;
}

impl Driver for AdmissionController {
    fn admit(&mut self, spec: StreamSpec, path: Path) -> Result<bool, ()> {
        AdmissionController::admit(self, spec, path)
            .map(|_| false)
            .map_err(|_| ())
    }
    fn remove(&mut self, dense: usize) {
        AdmissionController::remove(self, StreamId(dense as u32));
    }
    fn resident(&self) -> usize {
        self.len()
    }
    fn final_bounds(&self) -> Vec<DelayBound> {
        self.bounds().to_vec()
    }
}

impl Driver for ShardedController {
    fn admit(&mut self, spec: StreamSpec, path: Path) -> Result<bool, ()> {
        self.admit_detailed(spec, path)
            .map(|a| a.shards_visited > 1)
            .map_err(|_| ())
    }
    fn remove(&mut self, dense: usize) {
        ShardedController::remove(self, StreamId(dense as u32));
    }
    fn resident(&self) -> usize {
        self.len()
    }
    fn final_bounds(&self) -> Vec<DelayBound> {
        self.bounds()
    }
}

/// What one run records, for timing and for the bit-identity diff.
struct RunTrace {
    verdicts: Vec<bool>,
    bounds: Vec<DelayBound>,
    admit_ns: Vec<u64>,
    local_ns: Vec<u64>,
    admitted: u64,
    rejected: u64,
    removed: u64,
    elapsed: Duration,
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

fn latency(mut ns: Vec<u64>) -> AdmitLatency {
    ns.sort_unstable();
    AdmitLatency {
        count: ns.len() as u64,
        p50_ns: percentile(&ns, 50),
        p99_ns: percentile(&ns, 99),
    }
}

fn drive<D: Driver>(
    cfg: &ShardBenchConfig,
    tier: &ShardBenchTier,
    cap: usize,
    driver: &mut D,
) -> RunTrace {
    let mesh = Mesh::mesh2d(tier.width, tier.height);
    let mut rng = cfg.seed;
    let mut verdicts = Vec::with_capacity(tier.ops);
    let mut admit_ns = Vec::new();
    let mut local_ns = Vec::new();
    let (mut admitted, mut rejected, mut removed) = (0u64, 0u64, 0u64);
    let started = Instant::now();
    for _ in 0..tier.ops {
        match next_op(
            &mut rng,
            &mesh,
            tier.width,
            tier.height,
            cfg.locality,
            driver.resident(),
            cap,
        ) {
            Op::Admit(spec, path) => {
                let t = Instant::now();
                let outcome = driver.admit(spec, path);
                let ns = t.elapsed().as_nanos() as u64;
                admit_ns.push(ns);
                match outcome {
                    Ok(coordinated) => {
                        admitted += 1;
                        if !coordinated {
                            local_ns.push(ns);
                        }
                        verdicts.push(true);
                    }
                    Err(()) => {
                        rejected += 1;
                        verdicts.push(false);
                    }
                }
            }
            Op::Remove(dense) => {
                driver.remove(dense);
                removed += 1;
                verdicts.push(true);
            }
        }
    }
    let elapsed = started.elapsed();
    RunTrace {
        verdicts,
        bounds: driver.final_bounds(),
        admit_ns,
        local_ns,
        admitted,
        rejected,
        removed,
        elapsed,
    }
}

fn run_tier(cfg: &ShardBenchConfig, tier: &ShardBenchTier) -> Result<TierOutcome, String> {
    let mesh = Mesh::mesh2d(tier.width, tier.height);
    let cap = if tier.resident_cap == 0 {
        ((tier.width as usize) * (tier.height as usize) / 2).max(16)
    } else {
        tier.resident_cap
    };

    // Serial reference: the monolithic controller.
    let mut serial_ctl = AdmissionController::new();
    let serial_trace = drive(cfg, tier, cap, &mut serial_ctl);
    let serial = SerialOutcome {
        elapsed: serial_trace.elapsed,
        admit: latency(serial_trace.admit_ns.clone()),
        index_bytes: serial_ctl.index().memory_bytes() as u64,
        final_streams: serial_ctl.len() as u64,
        throughput: tier.ops as f64 / serial_trace.elapsed.as_secs_f64().max(1e-9),
    };

    let mut counts = tier.shard_counts.clone();
    if !counts.contains(&1) {
        counts.insert(0, 1);
    }
    counts.sort_unstable();
    counts.dedup();

    let mut phases = Vec::new();
    let mut control_elapsed = None;
    for &requested in &counts {
        let map = ShardMap::regions(&mesh, requested);
        let shards = map.len();
        let mut ctl = ShardedController::new(map);
        let trace = drive(cfg, tier, cap, &mut ctl);
        let bit_identical =
            trace.verdicts == serial_trace.verdicts && trace.bounds == serial_trace.bounds;
        if !bit_identical {
            return Err(format!(
                "{}x{} @ {shards} shard(s): sharded run diverged from the serial reference",
                tier.width, tier.height
            ));
        }
        let gauges = ctl.gauges();
        let index_bytes_total: u64 = gauges.iter().map(|g| g.index_bytes).sum();
        let index_bytes_max_shard = gauges.iter().map(|g| g.index_bytes).max().unwrap_or(0);
        if requested == 1 {
            control_elapsed = Some(trace.elapsed);
        }
        let control = control_elapsed.expect("control phase runs first");
        let cross_admit_fraction = if trace.admitted > 0 {
            ctl.cross_admits() as f64 / trace.admitted as f64
        } else {
            0.0
        };
        phases.push(PhaseOutcome {
            shards,
            elapsed: trace.elapsed,
            throughput: tier.ops as f64 / trace.elapsed.as_secs_f64().max(1e-9),
            admit: latency(trace.admit_ns.clone()),
            local_admit: latency(trace.local_ns.clone()),
            cross_admit_fraction,
            admitted: trace.admitted,
            rejected: trace.rejected,
            removed: trace.removed,
            cross_admits: ctl.cross_admits(),
            cross_aborts: ctl.cross_aborts(),
            recomputations: ctl.recomputations(),
            index_bytes_total,
            index_bytes_max_shard,
            final_streams: ctl.len() as u64,
            speedup_vs_control: control.as_secs_f64() / trace.elapsed.as_secs_f64().max(1e-9),
            bit_identical_to_serial: bit_identical,
        });
    }
    let min_speedup_vs_control = phases
        .iter()
        .filter(|p| p.shards > 1)
        .map(|p| p.speedup_vs_control)
        .fold(f64::INFINITY, f64::min);
    Ok(TierOutcome {
        width: tier.width,
        height: tier.height,
        ops: tier.ops,
        resident_cap: cap,
        serial,
        phases,
        min_speedup_vs_control: if min_speedup_vs_control.is_finite() {
            min_speedup_vs_control
        } else {
            1.0
        },
    })
}

/// Runs the whole benchmark.
pub fn run_shard_bench(cfg: &ShardBenchConfig) -> Result<ShardBenchOutcome, String> {
    let mut tiers = Vec::new();
    for tier in &cfg.tiers {
        if tier.width < 2 || tier.height < 2 {
            return Err("bench-shard needs a mesh of at least 2x2".to_string());
        }
        if tier.ops == 0 {
            return Err("bench-shard needs --ops >= 1".to_string());
        }
        tiers.push(run_tier(cfg, tier)?);
    }
    Ok(ShardBenchOutcome {
        seed: cfg.seed,
        locality: cfg.locality,
        tiers,
    })
}

fn write_latency(out: &mut String, key: &str, l: &AdmitLatency) {
    let _ = write!(
        out,
        "\"{key}\":{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
        l.count, l.p50_ns, l.p99_ns
    );
}

/// Renders the artifact JSON (hand-rolled: the build is offline).
pub fn render_shard_json(o: &ShardBenchOutcome) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"bench\": \"shard\",\n  \"seed\": {},\n  \"locality\": {},\n  \"tiers\": [",
        o.seed, o.locality
    );
    for (ti, t) in o.tiers.iter().enumerate() {
        if ti > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"mesh\":[{},{}],\"ops\":{},\"resident_cap\":{},\n     \"serial\":{{\"elapsed_ms\":{:.3},\"throughput_ops_s\":{:.0},",
            t.width,
            t.height,
            t.ops,
            t.resident_cap,
            t.serial.elapsed.as_secs_f64() * 1e3,
            t.serial.throughput
        );
        write_latency(&mut out, "admit", &t.serial.admit);
        let _ = write!(
            out,
            ",\"index_bytes\":{},\"final_streams\":{}}},\n     \"phases\":[",
            t.serial.index_bytes, t.serial.final_streams
        );
        for (pi, p) in t.phases.iter().enumerate() {
            if pi > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"shards\":{},\"elapsed_ms\":{:.3},\"throughput_ops_s\":{:.0},",
                p.shards,
                p.elapsed.as_secs_f64() * 1e3,
                p.throughput
            );
            write_latency(&mut out, "admit", &p.admit);
            out.push(',');
            write_latency(&mut out, "local_admit", &p.local_admit);
            let _ = write!(
                out,
                ",\"cross_admit_fraction\":{:.4},\"admitted\":{},\"rejected\":{},\"removed\":{},\"cross_admits\":{},\"cross_aborts\":{},\"recomputations\":{},\"index_bytes_total\":{},\"index_bytes_max_shard\":{},\"final_streams\":{},\"speedup_vs_control\":{:.3},\"bit_identical_to_serial\":{}}}",
                p.cross_admit_fraction,
                p.admitted,
                p.rejected,
                p.removed,
                p.cross_admits,
                p.cross_aborts,
                p.recomputations,
                p.index_bytes_total,
                p.index_bytes_max_shard,
                p.final_streams,
                p.speedup_vs_control,
                p.bit_identical_to_serial
            );
        }
        let _ = write!(
            out,
            "],\n     \"min_speedup_vs_control\":{:.3}}}",
            t.min_speedup_vs_control
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Runs the benchmark, writes the JSON artifact to `out`, and returns
/// the human summary. With `min_speedup`, fails when any tier's
/// minimum multi-shard speedup over the 1-shard control falls below
/// the floor — the CI gate.
pub fn run_bench_shard(
    cfg: &ShardBenchConfig,
    out: &str,
    min_speedup: Option<f64>,
) -> Result<String, String> {
    let outcome = run_shard_bench(cfg)?;
    let json = render_shard_json(&outcome);
    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    if let Some(floor) = min_speedup {
        for t in &outcome.tiers {
            if t.phases.iter().any(|p| p.shards > 1) && t.min_speedup_vs_control < floor {
                return Err(format!(
                    "{}x{}: min multi-shard speedup {:.2}x below the --min-speedup floor of {floor:.2}x",
                    t.width, t.height, t.min_speedup_vs_control
                ));
            }
        }
    }
    let mut summary = render_shard_summary(&outcome);
    let _ = writeln!(summary, "wrote {out}");
    Ok(summary)
}

/// Renders the human summary.
pub fn render_shard_summary(o: &ShardBenchOutcome) -> String {
    let mut out = String::new();
    for t in &o.tiers {
        let _ = writeln!(
            out,
            "{}x{} mesh, {} ops, cap {} resident (seed {}, locality {}):",
            t.width, t.height, t.ops, t.resident_cap, o.seed, o.locality
        );
        let _ = writeln!(
            out,
            "  serial reference: {:.0} ops/s, admit p50 {}ns p99 {}ns, index {} KiB, {} resident",
            t.serial.throughput,
            t.serial.admit.p50_ns,
            t.serial.admit.p99_ns,
            t.serial.index_bytes / 1024,
            t.serial.final_streams
        );
        for p in &t.phases {
            let _ = writeln!(
                out,
                "  {:>3} shard(s): {:.0} ops/s ({:.2}x control), local admit p50 {}ns p99 {}ns, cross {:.1}%, max shard index {} KiB{}",
                p.shards,
                p.throughput,
                p.speedup_vs_control,
                p.local_admit.p50_ns,
                p.local_admit.p99_ns,
                p.cross_admit_fraction * 100.0,
                p.index_bytes_max_shard / 1024,
                if p.bit_identical_to_serial {
                    ", bit-identical"
                } else {
                    ", DIVERGED"
                }
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ShardBenchConfig {
        ShardBenchConfig {
            tiers: vec![ShardBenchTier {
                width: 10,
                height: 10,
                ops: 400,
                shard_counts: vec![1, 4],
                resident_cap: 40,
            }],
            locality: 5,
            seed: 7,
        }
    }

    #[test]
    fn small_run_is_bit_identical_and_renders() {
        let o = run_shard_bench(&tiny_cfg()).unwrap();
        assert_eq!(o.tiers.len(), 1);
        let t = &o.tiers[0];
        assert_eq!(t.phases.len(), 2);
        assert!(t.phases.iter().all(|p| p.bit_identical_to_serial));
        assert_eq!(t.phases[0].shards, 1);
        assert_eq!(t.phases[1].shards, 4);
        assert!(t.phases[1].cross_admits > 0, "workload must cross shards");
        assert!(t.phases[1].local_admit.count > 0);
        assert!(
            t.phases[1].index_bytes_max_shard < t.serial.index_bytes,
            "per-shard index ({}) must undercut the monolith ({})",
            t.phases[1].index_bytes_max_shard,
            t.serial.index_bytes
        );
        let json = render_shard_json(&o);
        assert!(json.contains("\"bench\": \"shard\""), "{json}");
        assert!(json.contains("\"min_speedup_vs_control\""), "{json}");
        assert!(json.contains("\"cross_admit_fraction\""), "{json}");
        assert!(json.contains("\"bit_identical_to_serial\":true"), "{json}");
        let summary = render_shard_summary(&o);
        assert!(summary.contains("bit-identical"), "{summary}");
    }

    #[test]
    fn phase_ops_counts_add_up() {
        let o = run_shard_bench(&tiny_cfg()).unwrap();
        for p in &o.tiers[0].phases {
            assert_eq!(
                p.admitted + p.rejected + p.removed,
                o.tiers[0].ops as u64,
                "every op is an admit attempt or a removal"
            );
        }
    }
}
