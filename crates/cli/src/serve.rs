//! The online-service subcommands: `serve`, `client`, `bench-serve`,
//! and `chaos`.
//!
//! `serve` turns a spec file into a long-running admission daemon: the
//! spec's streams are seeded through the same verifier-gated admission
//! path live requests use, then the TCP server blocks until `SHUTDOWN`.
//! With `--wal-dir` the daemon is crash-safe: accepted operations are
//! persisted before acknowledgement and a restart recovers the exact
//! admitted set (a non-empty recovery *replaces* spec seeding, so a
//! crashed daemon never double-admits its spec on restart). `client` is
//! the matching one-shot request tool, `bench-serve` runs the
//! closed-loop load generator, and `chaos` runs the fault-injection
//! harness over every storage failure class.

use crate::bench_shard::{run_bench_shard, ShardBenchConfig, ShardBenchTier};
use crate::spec::RawSpecFile;
use rtwc_server::{
    catch_up, recover, render_bench_json, render_chaos_report, render_repl_json, render_response,
    render_sweep_json, run_bench, run_bench_repl, run_chaos, run_wal_sweep, AdmissionService,
    BenchConfig, CatchupOpts, ChaosConfig, Client, ClientConfig, Durability, Follower,
    FollowerConfig, FsyncPolicy, GroupWal, NetAction, NetChaos, NetSchedule, ReplHub, Response,
    Server, ServerConfig, Shipper, ShipperConfig,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use wormnet_topology::Topology;

/// How `rtwc serve` should run.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address.
    pub addr: String,
    /// Durability directory; `None` = in-memory only.
    pub wal_dir: Option<PathBuf>,
    /// Fsync policy for the WAL.
    pub fsync: FsyncPolicy,
    /// Snapshot + compact after this many WAL records (0 = never).
    pub snapshot_every: u64,
    /// Connection cap (0 = unlimited).
    pub max_connections: usize,
    /// Pending-write shedding threshold (0 = never shed).
    pub max_pending: u64,
    /// Worker threads executing admission work off the reactor
    /// (0 = one per core, capped at 8). With more than one worker the
    /// optimistic disjoint-neighborhood admission path is enabled.
    pub workers: usize,
    /// Replication listen address: serve as a leader shipping WAL
    /// frames to followers from here. Requires `--wal-dir`.
    pub repl_addr: Option<String>,
    /// Run as a warm-standby follower of this leader replication
    /// address: catch up, stream the WAL, serve reads, redirect
    /// writes. Requires `--wal-dir`; spec seeding is skipped.
    pub follower_of: Option<String>,
    /// Follower self-promotion grace: promote to leader once this long
    /// has passed without leader contact (`None` = only explicit
    /// `PROMOTE` promotes).
    pub promote_grace: Option<Duration>,
    /// Leader write lease: seal (shed writes with a retryable `sealed`
    /// error) once this long has passed without a follower ack round
    /// trip. Requires `--repl-addr`; `None` = never seal.
    pub lease: Option<Duration>,
    /// Sharded admission plane: `None` = monolithic, `Some(0)` = auto
    /// (one region per 16x16 tile), `Some(n)` = n link-disjoint region
    /// shards. Valid on leaders and followers alike — a sharded
    /// follower routes replicated frames through the same plane.
    pub shards: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7077".to_string(),
            wal_dir: None,
            fsync: FsyncPolicy::Always,
            snapshot_every: 1024,
            max_connections: 0,
            max_pending: 0,
            workers: 0,
            repl_addr: None,
            follower_of: None,
            promote_grace: None,
            lease: None,
            shards: None,
        }
    }
}

/// Admits every spec stream through the live admission path (verifier
/// gate included). A spec whose streams are not jointly admissible
/// cannot be served: the whole point of the daemon is that the admitted
/// set is feasible at every instant.
fn seed_streams(service: &AdmissionService, raw: &RawSpecFile) -> Result<(), String> {
    for (i, spec) in raw.specs.iter().enumerate() {
        let at = |n| {
            let c = raw.mesh.coord(n);
            (c.get(0), c.get(1))
        };
        let response = service.admit(
            0,
            at(spec.source),
            at(spec.dest),
            spec.priority,
            spec.period,
            spec.max_length,
            Some(spec.deadline),
        );
        if !matches!(response, Response::Admitted { .. }) {
            return Err(format!(
                "line {}: seed stream M{i} refused: {}",
                raw.lines[i],
                render_response(&response)
            ));
        }
    }
    Ok(())
}

/// Builds an in-memory service over the spec's mesh with every spec
/// stream admitted.
pub fn seed_service(raw: &RawSpecFile) -> Result<Arc<AdmissionService>, String> {
    let service = AdmissionService::new(raw.mesh.clone());
    seed_streams(&service, raw)?;
    Ok(Arc::new(service))
}

/// Builds the service for `rtwc serve`: durable (recovering whatever
/// the WAL directory holds) when `--wal-dir` is set, in-memory
/// otherwise. Returns the service and a startup description line.
fn build_service(
    raw: &RawSpecFile,
    opts: &ServeOptions,
) -> Result<(AdmissionService, String), String> {
    if let Some(leader) = &opts.follower_of {
        return build_follower(raw, opts, leader);
    }
    let Some(dir) = &opts.wal_dir else {
        let service = AdmissionService::new(raw.mesh.clone());
        seed_streams(&service, raw)?;
        let line = format!("{} stream(s) seeded", service.admitted_count());
        return Ok((service, line));
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let (state, wal, report) = recover(&raw.mesh, dir, opts.fsync)
        .map_err(|e| format!("recovery from {} failed: {e}", dir.display()))?;
    let recovered = !state.handles.is_empty() || state.seq > 0;
    let service = AdmissionService::with_durability(
        raw.mesh.clone(),
        state,
        Durability {
            dir: dir.clone(),
            wal: GroupWal::new(wal),
            snapshot_every: opts.snapshot_every,
        },
    );
    // A non-empty recovery replaces spec seeding: the recovered state
    // *is* the admitted set the last run acknowledged, and re-admitting
    // the spec on top of it would double every stream.
    let line = if recovered {
        report.render()
    } else {
        seed_streams(&service, raw)?;
        format!(
            "{} stream(s) seeded (WAL at {}, fsync {})",
            service.admitted_count(),
            dir.display(),
            opts.fsync.label()
        )
    };
    Ok((service, line))
}

/// Builds the warm-standby service for `rtwc serve --follower-of`:
/// snapshot catch-up from the leader if it offers one, local recovery,
/// and a follower [`ReplHub`] so writes redirect until promotion. Spec
/// seeding never runs — the leader's stream *is* the state.
fn build_follower(
    raw: &RawSpecFile,
    opts: &ServeOptions,
    leader: &str,
) -> Result<(AdmissionService, String), String> {
    let Some(dir) = &opts.wal_dir else {
        return Err("--follower-of needs --wal-dir (the replica is durable by design)".to_string());
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let caught = catch_up(leader, dir, opts.fsync, &CatchupOpts::default())
        .map_err(|e| format!("catch-up from {leader} failed: {e}"))?;
    let (state, wal, report) = recover(&raw.mesh, dir, opts.fsync)
        .map_err(|e| format!("recovery from {} failed: {e}", dir.display()))?;
    let service = AdmissionService::with_durability(
        raw.mesh.clone(),
        state,
        Durability {
            dir: dir.clone(),
            wal: GroupWal::new(wal),
            snapshot_every: opts.snapshot_every,
        },
    );
    service.attach_repl(Arc::new(ReplHub::follower(leader)));
    let caught_line = match caught {
        Some(c) if c.resumed > 0 => format!(
            "snapshot catch-up to seq {} ({} chunk(s) resumed); ",
            c.snap_seq, c.resumed
        ),
        Some(c) => format!("snapshot catch-up to seq {}; ", c.snap_seq),
        None => String::new(),
    };
    let line = format!("follower of {leader}; {caught_line}{}", report.render());
    Ok((service, line))
}

/// `rtwc serve <SPEC> [--addr HOST:PORT] [--wal-dir DIR] [--fsync P]
/// [--snapshot-every N] [--max-conns N] [--max-pending N]
/// [--workers N]` — seeds (or recovers) the service and blocks serving
/// requests until a client sends `SHUTDOWN`.
pub fn run_serve(raw: &RawSpecFile, opts: &ServeOptions) -> Result<(), String> {
    if opts.repl_addr.is_some() && opts.follower_of.is_some() {
        return Err("--repl-addr and --follower-of are mutually exclusive".to_string());
    }
    if opts.repl_addr.is_some() && opts.wal_dir.is_none() {
        return Err("--repl-addr needs --wal-dir (followers stream the WAL file)".to_string());
    }
    if opts.lease.is_some() && opts.repl_addr.is_none() {
        return Err("--lease-ms needs --repl-addr (the lease is fed by follower acks)".to_string());
    }
    let (mut service, mut startup) = build_service(raw, opts)?;
    if let Some(requested) = opts.shards {
        let count = service.enable_sharding(requested);
        startup = format!("{startup}; {count} admission shard(s)");
    }
    service.set_max_pending(opts.max_pending);
    // Multiple workers can overlap in dispatch; let disjoint admits
    // validate concurrently instead of queueing on the write lock.
    service.set_optimistic(opts.workers > 1);
    let service = Arc::new(service);
    let mut shipper = None;
    if let Some(repl_addr) = &opts.repl_addr {
        let hub = Arc::new(ReplHub::leader());
        if let Some(lease) = opts.lease {
            hub.set_lease(lease);
        }
        service.attach_repl(hub);
        let listener = std::net::TcpListener::bind(repl_addr)
            .map_err(|e| format!("cannot bind replication address {repl_addr}: {e}"))?;
        let dir = opts.wal_dir.clone().expect("checked above");
        let s = Shipper::spawn(listener, Arc::clone(&service), ShipperConfig::new(dir))
            .map_err(|e| format!("cannot start the WAL shipper: {e}"))?;
        shipper = Some(s);
    }
    let server = Server::bind_with_config(
        Arc::clone(&service),
        &opts.addr,
        ServerConfig {
            max_connections: opts.max_connections,
            workers: opts.workers,
        },
    )
    .map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    let local = server
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    // Spawned after the bind so a `--addr ...:0` follower advertises
    // its *resolved* address — on promotion the fence tells the deposed
    // leader where its clients should redirect.
    let mut follower_loop = None;
    if let Some(leader) = &opts.follower_of {
        let mut follow_cfg = FollowerConfig::new(leader);
        follow_cfg.promote_grace = opts.promote_grace;
        follow_cfg.advertise = local.to_string();
        let f = Follower::spawn(Arc::clone(&service), follow_cfg)
            .map_err(|e| format!("cannot start the follower loop: {e}"))?;
        follower_loop = Some(f);
    }
    // Announced on stdout (line-buffered even when piped) so scripts
    // binding port 0 can read the real address back. The replication
    // line comes second so `^listening on` keeps matching first.
    println!("listening on {local} ({startup})");
    if let Some(s) = &shipper {
        println!("replication listening on {}", s.addr());
    }
    let result = server.run().map_err(|e| format!("server failed: {e}"));
    if let Some(s) = shipper {
        s.stop();
    }
    if let Some(f) = follower_loop {
        f.stop();
    }
    // Clean shutdown: push any interval/never-policy tail to disk.
    service.flush();
    result
}

/// `rtwc client <ADDR> <REQUEST…>` — one request, one JSON line on
/// stdout. Returns `false` (exit code 1) when the server refused the
/// request (`rejected` or `error`), so shell scripts can branch on it.
pub fn run_client(
    addr: &str,
    request: &[String],
    config: ClientConfig,
    req_id: u64,
) -> Result<bool, String> {
    if request.is_empty() {
        return Err("client needs a request, e.g.: rtwc client 127.0.0.1:7077 STATS".to_string());
    }
    let mut client =
        Client::connect_with(addr, config).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let line = request.join(" ");
    let reply = if req_id != 0 {
        client.send_idempotent(req_id, &line)
    } else {
        client.send_with_retry(&line)
    }
    .map_err(|e| format!("request failed: {e}"))?;
    if reply.is_empty() {
        return Err("server closed the connection without responding".to_string());
    }
    println!("{reply}");
    let refused =
        reply.contains("\"status\":\"rejected\"") || reply.contains("\"status\":\"error\"");
    Ok(!refused)
}

/// `rtwc bench-serve [--clients N] [--ops N | --duration SECS]
/// [--warmup-ms N] [--pipeline N] [--workers N] [--mesh WxH] [--seed S]
/// [--wal-sweep | --wal-dir DIR --fsync P] [--min-throughput OPS]
/// [--out FILE]` — runs the closed-loop load generator and writes the
/// JSON artifact. With `--duration` each client sends as many pipelined
/// bursts as fit in the wall-clock window (after the warmup) instead of
/// a fixed op count. With `--wal-sweep` the baseline run is followed by
/// one durable run per fsync policy and the artifact gains a
/// `wal_sweep` section. `--min-throughput` turns the run into a perf
/// gate: the command fails if the measured ops/s lands below the floor.
/// Returns the human summary printed on stdout.
pub fn run_bench_serve(
    cfg: &BenchConfig,
    sweep: bool,
    out: &str,
    min_throughput: Option<f64>,
) -> Result<String, String> {
    let (outcome, json, extra) = if sweep {
        let dir = std::env::temp_dir().join(format!("rtwc-bench-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        let s = run_wal_sweep(cfg, &dir).map_err(|e| format!("bench failed: {e}"))?;
        let _ = std::fs::remove_dir_all(&dir);
        let mut extra = String::new();
        for (label, o) in &s.policies {
            extra.push_str(&format!(
                "  fsync {label}: {:.0} ops/s, admit p50 {}us p99 {}us\n",
                o.throughput, o.admit.p50_us, o.admit.p99_us
            ));
        }
        let json = render_sweep_json(&s);
        (s.baseline, json, extra)
    } else {
        let o = run_bench(cfg).map_err(|e| format!("bench failed: {e}"))?;
        let json = render_bench_json(&o);
        (o, json, String::new())
    };
    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    if let Some(floor) = min_throughput {
        if outcome.throughput < floor {
            return Err(format!(
                "throughput {:.0} ops/s below the --min-throughput floor of {floor:.0} ops/s",
                outcome.throughput
            ));
        }
    }
    let load = match cfg.duration {
        Some(d) => format!("{} clients x {:.1}s", outcome.clients, d.as_secs_f64()),
        None => format!(
            "{} clients x {} ops",
            outcome.clients, outcome.ops_per_client
        ),
    };
    let batching = match &outcome.group_commit {
        Some(gc) if gc.syncs > 0 => format!(
            "group commit: {} syncs, mean batch {:.2}, max batch {}\n",
            gc.syncs,
            gc.mean_batch(),
            gc.max_batch
        ),
        _ => String::new(),
    };
    Ok(format!(
        "{} (pipeline {}): {:.0} ops/s, latency p50 {}us p99 {}us max {}us\n\
         admitted {}, rejected {}, removed {}, errors {}; {} stream(s) audited OK\n\
         {batching}{}wrote {}\n",
        load,
        outcome.pipeline,
        outcome.throughput,
        outcome.p50_us,
        outcome.p99_us,
        outcome.max_us,
        outcome.admitted,
        outcome.rejected,
        outcome.removed,
        outcome.errors,
        outcome.audited_streams,
        extra,
        out
    ))
}

/// `rtwc bench-repl [--clients N] [--ops N | --duration SECS]
/// [--warmup-ms N] [--pipeline N] [--workers N] [--mesh WxH]
/// [--seed S] [--fsync P] [--snapshot-every N] [--grace-ms N]
/// [--dir D] [--out FILE]` — runs
/// the replication bench (leader under load with a live follower, then
/// a timed failover) and writes the JSON artifact. Returns the human
/// summary printed on stdout.
pub fn run_bench_repl_command(
    cfg: &BenchConfig,
    dir: Option<PathBuf>,
    grace: Duration,
    out: &str,
) -> Result<String, String> {
    let (dir, scratch) = match dir {
        Some(d) => (d, false),
        None => (
            std::env::temp_dir().join(format!("rtwc-bench-repl-{}", std::process::id())),
            true,
        ),
    };
    let o = run_bench_repl(cfg, &dir, grace).map_err(|e| format!("bench-repl failed: {e}"))?;
    if scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let json = render_repl_json(&o);
    if let Some(parent) = std::path::Path::new(out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {parent:?}: {e}"))?;
        }
    }
    std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!(
        "{} clients x {} ops (pipeline {}): {:.0} ops/s with one follower streaming\n\
         no-follower control: {:.0} ops/s on this machine (overhead {:.1}%)\n\
         replication lag: max {} frame(s), drained to {} in {:.0}ms (applied seq {})\n\
         failover: promoted to epoch {} in {:.0}ms (grace {}ms); post-failover write {}\n\
         {} stream(s) audited on the promoted follower; wrote {}\n",
        o.leader.clients,
        o.leader.ops_per_client,
        o.leader.pipeline,
        o.leader.throughput,
        o.baseline_throughput,
        o.overhead_pct,
        o.max_lag_frames,
        o.final_lag_frames,
        o.drain_ms,
        o.follower_applied_seq,
        o.promoted_epoch,
        o.failover_ms,
        o.promote_grace.as_millis(),
        o.write_after_failover,
        o.promoted_streams,
        out
    ))
}

/// `rtwc chaos [--seed S] [--ops N] [--mesh WxH] [--snapshot-every N]
/// [--dir D]` — runs every fault-injection scenario and prints the
/// report. Returns `false` (exit code 1) when any fault class failed to
/// recover bit-identical.
pub fn run_chaos_command(cfg: &ChaosConfig) -> Result<bool, String> {
    let outcome = run_chaos(cfg).map_err(|e| format!("chaos run failed: {e}"))?;
    print!("{}", render_chaos_report(&outcome));
    Ok(outcome.passed())
}

/// `rtwc netchaos <TARGET> [--listen HOST:PORT] [--seed S]
/// [--script FILE]` — runs the deterministic fault-injecting TCP proxy
/// in front of `TARGET`. Prints `netchaos listening on ADDR` (stdout,
/// so scripts binding port 0 can read the address back), starts the
/// `--script` timed schedule if one was given, then applies one control
/// line per stdin line: `partition`, `heal`, `blackhole-up`,
/// `blackhole-down`, `sever`, `latency MS`, `duplicate on|off`, or
/// `quit`. Exits on `quit` or stdin EOF.
pub fn run_netchaos_command(args: &[String]) -> Result<bool, String> {
    const USAGE: &str =
        "usage: rtwc netchaos <TARGET> [--listen HOST:PORT] [--seed S] [--script FILE]";
    let (target, flags) = match args.split_first() {
        Some((t, flags)) if !t.starts_with('-') => (t.clone(), flags),
        _ => return Err(USAGE.to_string()),
    };
    let mut listen = "127.0.0.1:0".to_string();
    let mut seed = 0u64;
    let mut script = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{what} needs a value"))
                .cloned()
        };
        match flag.as_str() {
            "--listen" => listen = value("--listen")?,
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--script" => script = Some(value("--script")?),
            other => return Err(format!("unknown netchaos flag '{other}'\n{USAGE}")),
        }
    }
    let schedule = match &script {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Some(NetSchedule::parse(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let listener =
        std::net::TcpListener::bind(&listen).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let proxy = NetChaos::spawn(listener, &target, seed)
        .map_err(|e| format!("cannot start the proxy: {e}"))?;
    println!(
        "netchaos listening on {} -> {target} (seed {seed})",
        proxy.addr()
    );
    let timer = schedule.map(|s| proxy.run_schedule(s));
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "quit" {
            break;
        }
        match NetAction::parse(trimmed) {
            Some(action) => {
                proxy.handle().apply(action);
                println!("netchaos: {trimmed}");
            }
            None => println!("netchaos: bad control line '{trimmed}'"),
        }
    }
    if let Some(t) = timer {
        let _ = t.join();
    }
    proxy.stop();
    Ok(true)
}

fn parse_mesh(v: &str) -> Result<(u32, u32), String> {
    let (w, h) = v
        .split_once('x')
        .ok_or_else(|| format!("bad --mesh '{v}' (expected WxH)"))?;
    Ok((
        w.parse().map_err(|e| format!("bad --mesh width: {e}"))?,
        h.parse().map_err(|e| format!("bad --mesh height: {e}"))?,
    ))
}

/// Dispatches the service subcommands from the raw argument list
/// (everything after the command word). Returns the process success.
pub fn run_service_command(command: &str, args: &[String]) -> Result<bool, String> {
    match command {
        "serve" => {
            let (path, flags) = match args.split_first() {
                Some((p, flags)) if !p.starts_with('-') => (p, flags),
                _ => {
                    return Err(
                        "usage: rtwc serve <SPEC> [--addr HOST:PORT] [--wal-dir DIR] \
                         [--fsync always|never|interval:MS] [--snapshot-every N] \
                         [--max-conns N] [--max-pending N] [--workers N] \
                         [--shards N|auto] \
                         [--repl-addr HOST:PORT [--lease-ms N] | --follower-of HOST:PORT \
                         [--promote-grace-ms N]]"
                            .to_string(),
                    )
                }
            };
            let mut opts = ServeOptions::default();
            let mut it = flags.iter();
            while let Some(flag) = it.next() {
                let mut value = |what: &str| {
                    it.next()
                        .ok_or_else(|| format!("{what} needs a value"))
                        .cloned()
                };
                match flag.as_str() {
                    "--addr" => opts.addr = value("--addr")?,
                    "--wal-dir" => opts.wal_dir = Some(PathBuf::from(value("--wal-dir")?)),
                    "--fsync" => opts.fsync = FsyncPolicy::parse(&value("--fsync")?)?,
                    "--snapshot-every" => {
                        opts.snapshot_every = value("--snapshot-every")?
                            .parse()
                            .map_err(|e| format!("bad --snapshot-every: {e}"))?;
                    }
                    "--max-conns" => {
                        opts.max_connections = value("--max-conns")?
                            .parse()
                            .map_err(|e| format!("bad --max-conns: {e}"))?;
                    }
                    "--max-pending" => {
                        opts.max_pending = value("--max-pending")?
                            .parse()
                            .map_err(|e| format!("bad --max-pending: {e}"))?;
                    }
                    "--workers" => {
                        opts.workers = value("--workers")?
                            .parse()
                            .map_err(|e| format!("bad --workers: {e}"))?;
                    }
                    "--shards" => {
                        let v = value("--shards")?;
                        opts.shards = Some(if v == "auto" {
                            0
                        } else {
                            let n: usize = v.parse().map_err(|e| format!("bad --shards: {e}"))?;
                            if n == 0 {
                                return Err("--shards must be >= 1 (or 'auto')".to_string());
                            }
                            n
                        });
                    }
                    "--repl-addr" => opts.repl_addr = Some(value("--repl-addr")?),
                    "--follower-of" => opts.follower_of = Some(value("--follower-of")?),
                    "--promote-grace-ms" => {
                        let ms: u64 = value("--promote-grace-ms")?
                            .parse()
                            .map_err(|e| format!("bad --promote-grace-ms: {e}"))?;
                        if ms == 0 {
                            return Err("--promote-grace-ms must be nonzero".to_string());
                        }
                        opts.promote_grace = Some(Duration::from_millis(ms));
                    }
                    "--lease-ms" => {
                        let ms: u64 = value("--lease-ms")?
                            .parse()
                            .map_err(|e| format!("bad --lease-ms: {e}"))?;
                        if ms == 0 {
                            return Err("--lease-ms must be nonzero".to_string());
                        }
                        opts.lease = Some(Duration::from_millis(ms));
                    }
                    other => return Err(format!("unknown serve flag '{other}'")),
                }
            }
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let raw = crate::parse_raw(&text).map_err(|e| format!("{path}: {e}"))?;
            run_serve(&raw, &opts)?;
            Ok(true)
        }
        "client" => {
            let (addr, rest) = args
                .split_first()
                .ok_or("usage: rtwc client <ADDR> [--timeout-ms N] [--retries N] [--req-id N] <REQUEST...>")?;
            let mut config = ClientConfig::default();
            let mut req_id = 0u64;
            let mut request: Vec<String> = Vec::new();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                let mut value = |what: &str| {
                    it.next()
                        .ok_or_else(|| format!("{what} needs a value"))
                        .cloned()
                };
                match arg.as_str() {
                    "--timeout-ms" if request.is_empty() => {
                        let ms: u64 = value("--timeout-ms")?
                            .parse()
                            .map_err(|e| format!("bad --timeout-ms: {e}"))?;
                        config.io_timeout = Duration::from_millis(ms);
                        config.connect_timeout = Duration::from_millis(ms);
                    }
                    "--retries" if request.is_empty() => {
                        config.retries = value("--retries")?
                            .parse()
                            .map_err(|e| format!("bad --retries: {e}"))?;
                    }
                    "--req-id" if request.is_empty() => {
                        req_id = value("--req-id")?
                            .parse()
                            .map_err(|e| format!("bad --req-id: {e}"))?;
                        if req_id == 0 {
                            return Err("--req-id must be nonzero".to_string());
                        }
                    }
                    _ => request.push(arg.clone()),
                }
            }
            run_client(addr, &request, config, req_id)
        }
        "bench-serve" => {
            let mut cfg = BenchConfig::default();
            let mut out = "results/BENCH_service.json".to_string();
            let mut sweep = false;
            let mut min_throughput = None;
            let mut it = args.iter();
            while let Some(flag) = it.next() {
                let mut value = |what: &str| {
                    it.next()
                        .ok_or_else(|| format!("{what} needs a value"))
                        .cloned()
                };
                match flag.as_str() {
                    "--clients" => {
                        cfg.clients = value("--clients")?
                            .parse()
                            .map_err(|e| format!("bad --clients: {e}"))?;
                    }
                    "--ops" => {
                        cfg.ops_per_client = value("--ops")?
                            .parse()
                            .map_err(|e| format!("bad --ops: {e}"))?;
                    }
                    "--duration" => {
                        let secs: f64 = value("--duration")?
                            .parse()
                            .map_err(|e| format!("bad --duration: {e}"))?;
                        if secs.is_nan() || secs <= 0.0 {
                            return Err("--duration must be positive seconds".to_string());
                        }
                        cfg.duration = Some(Duration::from_secs_f64(secs));
                    }
                    "--warmup-ms" => {
                        let ms: u64 = value("--warmup-ms")?
                            .parse()
                            .map_err(|e| format!("bad --warmup-ms: {e}"))?;
                        cfg.warmup = Duration::from_millis(ms);
                    }
                    "--pipeline" => {
                        cfg.pipeline = value("--pipeline")?
                            .parse()
                            .map_err(|e| format!("bad --pipeline: {e}"))?;
                    }
                    "--workers" => {
                        cfg.server_workers = value("--workers")?
                            .parse()
                            .map_err(|e| format!("bad --workers: {e}"))?;
                    }
                    "--min-throughput" => {
                        min_throughput = Some(
                            value("--min-throughput")?
                                .parse::<f64>()
                                .map_err(|e| format!("bad --min-throughput: {e}"))?,
                        );
                    }
                    "--mesh" => {
                        let (w, h) = parse_mesh(&value("--mesh")?)?;
                        cfg.width = w;
                        cfg.height = h;
                    }
                    "--locality" => {
                        cfg.locality = value("--locality")?
                            .parse()
                            .map_err(|e| format!("bad --locality: {e}"))?;
                    }
                    "--max-own" => {
                        cfg.max_own = value("--max-own")?
                            .parse()
                            .map_err(|e| format!("bad --max-own: {e}"))?;
                    }
                    "--seed" => {
                        cfg.seed = value("--seed")?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?;
                    }
                    "--wal-dir" => cfg.wal_dir = Some(PathBuf::from(value("--wal-dir")?)),
                    "--fsync" => cfg.fsync = FsyncPolicy::parse(&value("--fsync")?)?,
                    "--snapshot-every" => {
                        cfg.snapshot_every = value("--snapshot-every")?
                            .parse()
                            .map_err(|e| format!("bad --snapshot-every: {e}"))?;
                    }
                    "--wal-sweep" => sweep = true,
                    "--out" => out = value("--out")?,
                    other => return Err(format!("unknown bench-serve flag '{other}'")),
                }
            }
            if cfg.clients == 0 || (cfg.ops_per_client == 0 && cfg.duration.is_none()) {
                return Err(
                    "bench-serve needs at least one client and one op (or --duration)".to_string(),
                );
            }
            print!("{}", run_bench_serve(&cfg, sweep, &out, min_throughput)?);
            Ok(true)
        }
        "bench-shard" => {
            let mut cfg = ShardBenchConfig::default();
            let mut tier = cfg.tiers.pop().expect("default has one tier");
            let mut full = false;
            let mut out = "results/BENCH_shard.json".to_string();
            let mut min_speedup = None;
            let mut it = args.iter();
            while let Some(flag) = it.next() {
                let mut value = |what: &str| {
                    it.next()
                        .ok_or_else(|| format!("{what} needs a value"))
                        .cloned()
                };
                match flag.as_str() {
                    "--mesh" => {
                        let (w, h) = parse_mesh(&value("--mesh")?)?;
                        tier.width = w;
                        tier.height = h;
                    }
                    "--ops" => {
                        tier.ops = value("--ops")?
                            .parse()
                            .map_err(|e| format!("bad --ops: {e}"))?;
                    }
                    "--shards" => {
                        let v = value("--shards")?;
                        let counts: Result<Vec<usize>, _> = v.split(',').map(str::parse).collect();
                        tier.shard_counts =
                            counts.map_err(|e| format!("bad --shards '{v}': {e}"))?;
                        if tier.shard_counts.contains(&0) {
                            return Err("--shards counts must be >= 1".to_string());
                        }
                    }
                    "--cap" => {
                        tier.resident_cap = value("--cap")?
                            .parse()
                            .map_err(|e| format!("bad --cap: {e}"))?;
                    }
                    "--locality" => {
                        cfg.locality = value("--locality")?
                            .parse()
                            .map_err(|e| format!("bad --locality: {e}"))?;
                    }
                    "--seed" => {
                        cfg.seed = value("--seed")?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?;
                    }
                    "--full" => full = true,
                    "--min-speedup" => {
                        min_speedup = Some(
                            value("--min-speedup")?
                                .parse::<f64>()
                                .map_err(|e| format!("bad --min-speedup: {e}"))?,
                        );
                    }
                    "--out" => out = value("--out")?,
                    other => return Err(format!("unknown bench-shard flag '{other}'")),
                }
            }
            cfg.tiers = if full {
                // The paper's 10x10 evaluation mesh, the primary 64x64
                // tier, and a 256x256 scale point with the same shard
                // sweep plus its auto count (one shard per 16x16 tile).
                // The 256x256 cap is w*h/16, not the default quarter: a
                // denser set percolates into one mesh-wide component
                // and every phase degenerates to scanning it.
                vec![
                    ShardBenchTier {
                        width: 10,
                        height: 10,
                        ops: tier.ops.min(20_000),
                        shard_counts: vec![1, 4],
                        resident_cap: 0,
                    },
                    tier.clone(),
                    ShardBenchTier {
                        width: 256,
                        height: 256,
                        ops: tier.ops.min(20_000),
                        shard_counts: {
                            let mut c = tier.shard_counts.clone();
                            c.push(256);
                            c.sort_unstable();
                            c.dedup();
                            c
                        },
                        resident_cap: 256 * 256 / 16,
                    },
                ]
            } else {
                vec![tier]
            };
            print!("{}", run_bench_shard(&cfg, &out, min_speedup)?);
            Ok(true)
        }
        "promote" => {
            let (addr, rest) = args.split_first().ok_or("usage: rtwc promote <ADDR>")?;
            if !rest.is_empty() {
                return Err("usage: rtwc promote <ADDR>".to_string());
            }
            let mut client =
                Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            let reply = client
                .send("PROMOTE")
                .map_err(|e| format!("promote failed: {e}"))?;
            println!("{reply}");
            Ok(reply.contains("\"status\":\"promoted\""))
        }
        "bench-repl" => {
            let mut cfg = BenchConfig::default();
            let mut grace = Duration::from_millis(300);
            let mut out = "results/BENCH_repl.json".to_string();
            let mut dir = None;
            let mut it = args.iter();
            while let Some(flag) = it.next() {
                let mut value = |what: &str| {
                    it.next()
                        .ok_or_else(|| format!("{what} needs a value"))
                        .cloned()
                };
                match flag.as_str() {
                    "--clients" => {
                        cfg.clients = value("--clients")?
                            .parse()
                            .map_err(|e| format!("bad --clients: {e}"))?;
                    }
                    "--ops" => {
                        cfg.ops_per_client = value("--ops")?
                            .parse()
                            .map_err(|e| format!("bad --ops: {e}"))?;
                    }
                    "--duration" => {
                        let secs: f64 = value("--duration")?
                            .parse()
                            .map_err(|e| format!("bad --duration: {e}"))?;
                        if secs.is_nan() || secs <= 0.0 {
                            return Err("--duration must be positive seconds".to_string());
                        }
                        cfg.duration = Some(Duration::from_secs_f64(secs));
                    }
                    "--warmup-ms" => {
                        let ms: u64 = value("--warmup-ms")?
                            .parse()
                            .map_err(|e| format!("bad --warmup-ms: {e}"))?;
                        cfg.warmup = Duration::from_millis(ms);
                    }
                    "--pipeline" => {
                        cfg.pipeline = value("--pipeline")?
                            .parse()
                            .map_err(|e| format!("bad --pipeline: {e}"))?;
                    }
                    "--workers" => {
                        cfg.server_workers = value("--workers")?
                            .parse()
                            .map_err(|e| format!("bad --workers: {e}"))?;
                    }
                    "--mesh" => {
                        let (w, h) = parse_mesh(&value("--mesh")?)?;
                        cfg.width = w;
                        cfg.height = h;
                    }
                    "--locality" => {
                        cfg.locality = value("--locality")?
                            .parse()
                            .map_err(|e| format!("bad --locality: {e}"))?;
                    }
                    "--max-own" => {
                        cfg.max_own = value("--max-own")?
                            .parse()
                            .map_err(|e| format!("bad --max-own: {e}"))?;
                    }
                    "--seed" => {
                        cfg.seed = value("--seed")?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?;
                    }
                    "--fsync" => cfg.fsync = FsyncPolicy::parse(&value("--fsync")?)?,
                    "--snapshot-every" => {
                        cfg.snapshot_every = value("--snapshot-every")?
                            .parse()
                            .map_err(|e| format!("bad --snapshot-every: {e}"))?;
                    }
                    "--grace-ms" => {
                        let ms: u64 = value("--grace-ms")?
                            .parse()
                            .map_err(|e| format!("bad --grace-ms: {e}"))?;
                        if ms == 0 {
                            return Err("--grace-ms must be nonzero".to_string());
                        }
                        grace = Duration::from_millis(ms);
                    }
                    "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
                    "--out" => out = value("--out")?,
                    other => return Err(format!("unknown bench-repl flag '{other}'")),
                }
            }
            if cfg.clients == 0 || (cfg.ops_per_client == 0 && cfg.duration.is_none()) {
                return Err(
                    "bench-repl needs at least one client and one op (or --duration)".to_string(),
                );
            }
            print!("{}", run_bench_repl_command(&cfg, dir, grace, &out)?);
            Ok(true)
        }
        "chaos" => {
            let mut cfg = ChaosConfig::default();
            let mut it = args.iter();
            while let Some(flag) = it.next() {
                let mut value = |what: &str| {
                    it.next()
                        .ok_or_else(|| format!("{what} needs a value"))
                        .cloned()
                };
                match flag.as_str() {
                    "--seed" => {
                        cfg.seed = value("--seed")?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?;
                    }
                    "--ops" => {
                        cfg.ops = value("--ops")?
                            .parse()
                            .map_err(|e| format!("bad --ops: {e}"))?;
                    }
                    "--mesh" => {
                        let (w, h) = parse_mesh(&value("--mesh")?)?;
                        cfg.width = w;
                        cfg.height = h;
                    }
                    "--snapshot-every" => {
                        cfg.snapshot_every = value("--snapshot-every")?
                            .parse()
                            .map_err(|e| format!("bad --snapshot-every: {e}"))?;
                    }
                    "--dir" => cfg.dir = Some(PathBuf::from(value("--dir")?)),
                    other => return Err(format!("unknown chaos flag '{other}'")),
                }
            }
            if cfg.ops < 4 {
                return Err("chaos needs --ops >= 4 (the faults fire mid-history)".to_string());
            }
            run_chaos_command(&cfg)
        }
        "netchaos" => run_netchaos_command(args),
        other => Err(format!("unknown service command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(text: &str) -> RawSpecFile {
        crate::parse_raw(text).unwrap()
    }

    #[test]
    fn seeding_admits_the_paper_example() {
        let svc = seed_service(&raw("mesh 10 10\n\
             stream 7,3 7,7 5 15 4\n\
             stream 1,1 5,4 4 10 2\n\
             stream 2,1 7,5 3 40 4\n\
             stream 4,1 8,5 2 45 9\n\
             stream 6,1 9,3 1 50 6\n"))
        .unwrap();
        assert_eq!(svc.admitted_count(), 5);
        assert_eq!(svc.audit().unwrap(), 5);
    }

    #[test]
    fn seeding_refuses_infeasible_specs_with_the_source_line() {
        // Self-delivery: the verifier gate refuses it (W003).
        let err = seed_service(&raw("mesh 4 4\nstream 1,1 1,1 1 10 2\n")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("W003"), "{err}");
    }

    #[test]
    fn durable_build_recovers_instead_of_reseeding() {
        let dir = std::env::temp_dir().join(format!("rtwc-serve-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = raw("mesh 10 10\nstream 7,3 7,7 5 15 4\nstream 1,1 5,4 4 10 2\n");
        let opts = ServeOptions {
            wal_dir: Some(dir.clone()),
            ..ServeOptions::default()
        };
        // First build: empty dir, spec seeding runs and is persisted.
        let (svc, line) = build_service(&spec, &opts).unwrap();
        assert_eq!(svc.admitted_count(), 2);
        assert!(line.contains("seeded"), "{line}");
        drop(svc);
        // Second build: recovery wins, the spec is NOT re-admitted.
        let (svc, line) = build_service(&spec, &opts).unwrap();
        assert_eq!(svc.admitted_count(), 2, "no double seeding");
        assert!(line.contains("recovered"), "{line}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_serve_writes_the_artifact() {
        let dir = std::env::temp_dir().join("rtwc-bench-serve-test");
        let out = dir.join("BENCH_service.json");
        let cfg = BenchConfig {
            clients: 2,
            ops_per_client: 15,
            ..BenchConfig::default()
        };
        let summary = run_bench_serve(&cfg, false, out.to_str().unwrap(), None).unwrap();
        assert!(summary.contains("ops/s"), "{summary}");
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"bench\": \"service\""), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_serve_enforces_the_throughput_floor() {
        let dir = std::env::temp_dir().join("rtwc-bench-floor-test");
        let out = dir.join("BENCH_service.json");
        let cfg = BenchConfig {
            clients: 1,
            ops_per_client: 5,
            ..BenchConfig::default()
        };
        // No machine clears a 10^12 ops/s floor; the gate must trip.
        let err = run_bench_serve(&cfg, false, out.to_str().unwrap(), Some(1e12)).unwrap_err();
        assert!(err.contains("below the --min-throughput floor"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn service_command_rejects_bad_usage() {
        assert!(run_service_command("serve", &[]).is_err());
        assert!(run_service_command("client", &[]).is_err());
        assert!(run_service_command("bench-serve", &["--clients".into(), "0".into()]).is_err());
        assert!(run_service_command("bench-serve", &["--frob".into()]).is_err());
        assert!(run_service_command("chaos", &["--ops".into(), "1".into()]).is_err());
        assert!(run_service_command("chaos", &["--what".into()]).is_err());
    }

    #[test]
    fn chaos_command_small_run_passes() {
        let cfg = ChaosConfig {
            ops: 8,
            ..ChaosConfig::default()
        };
        assert!(run_chaos_command(&cfg).unwrap());
    }
}
