//! The online-service subcommands: `serve`, `client`, and
//! `bench-serve`.
//!
//! `serve` turns a spec file into a long-running admission daemon: the
//! spec's streams are seeded through the same verifier-gated admission
//! path live requests use, then the TCP server blocks until `SHUTDOWN`.
//! `client` is the matching one-shot request tool, and `bench-serve`
//! runs the closed-loop load generator and writes the
//! `results/BENCH_service.json` artifact.

use crate::spec::RawSpecFile;
use rtwc_server::{
    render_bench_json, render_response, run_bench, AdmissionService, BenchConfig, Client, Response,
    Server,
};
use std::sync::Arc;
use wormnet_topology::Topology;

/// Builds a service over the spec's mesh and admits every spec stream
/// through the live admission path (verifier gate included). A spec
/// whose streams are not jointly admissible cannot be served: the whole
/// point of the daemon is that the admitted set is feasible at every
/// instant.
pub fn seed_service(raw: &RawSpecFile) -> Result<Arc<AdmissionService>, String> {
    let service = Arc::new(AdmissionService::new(raw.mesh.clone()));
    for (i, spec) in raw.specs.iter().enumerate() {
        let at = |n| {
            let c = raw.mesh.coord(n);
            (c.get(0), c.get(1))
        };
        let response = service.admit(
            at(spec.source),
            at(spec.dest),
            spec.priority,
            spec.period,
            spec.max_length,
            Some(spec.deadline),
        );
        if !matches!(response, Response::Admitted { .. }) {
            return Err(format!(
                "line {}: seed stream M{i} refused: {}",
                raw.lines[i],
                render_response(&response)
            ));
        }
    }
    Ok(service)
}

/// `rtwc serve <SPEC> [--addr HOST:PORT]` — seeds the service and
/// blocks serving requests until a client sends `SHUTDOWN`.
pub fn run_serve(raw: &RawSpecFile, addr: &str) -> Result<(), String> {
    let service = seed_service(raw)?;
    let seeded = service.admitted_count();
    let server = Server::bind(service, addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = server
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    // Announced on stdout (line-buffered even when piped) so scripts
    // binding port 0 can read the real address back.
    println!("listening on {local} ({seeded} stream(s) seeded)");
    server.run().map_err(|e| format!("server failed: {e}"))
}

/// `rtwc client <ADDR> <REQUEST…>` — one request, one JSON line on
/// stdout. Returns `false` (exit code 1) when the server refused the
/// request (`rejected` or `error`), so shell scripts can branch on it.
pub fn run_client(addr: &str, request: &[String]) -> Result<bool, String> {
    if request.is_empty() {
        return Err("client needs a request, e.g.: rtwc client 127.0.0.1:7077 STATS".to_string());
    }
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let line = request.join(" ");
    let reply = client
        .send(&line)
        .map_err(|e| format!("request failed: {e}"))?;
    if reply.is_empty() {
        return Err("server closed the connection without responding".to_string());
    }
    println!("{reply}");
    let refused =
        reply.contains("\"status\":\"rejected\"") || reply.contains("\"status\":\"error\"");
    Ok(!refused)
}

/// `rtwc bench-serve [--clients N] [--ops N] [--mesh WxH] [--seed S]
/// [--out FILE]` — runs the closed-loop load generator and writes the
/// JSON artifact. Returns the human summary printed on stdout.
pub fn run_bench_serve(cfg: &BenchConfig, out: &str) -> Result<String, String> {
    let outcome = run_bench(cfg).map_err(|e| format!("bench failed: {e}"))?;
    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    std::fs::write(out, render_bench_json(&outcome))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!(
        "{} clients x {} ops: {:.0} ops/s, latency p50 {}us p99 {}us max {}us\n\
         admitted {}, rejected {}, removed {}, errors {}; {} stream(s) audited OK\n\
         wrote {}\n",
        outcome.clients,
        outcome.ops_per_client,
        outcome.throughput,
        outcome.p50_us,
        outcome.p99_us,
        outcome.max_us,
        outcome.admitted,
        outcome.rejected,
        outcome.removed,
        outcome.errors,
        outcome.audited_streams,
        out
    ))
}

/// Dispatches the three service subcommands from the raw argument list
/// (everything after the command word). Returns the process success.
pub fn run_service_command(command: &str, args: &[String]) -> Result<bool, String> {
    match command {
        "serve" => {
            let (path, flags) = match args.split_first() {
                Some((p, flags)) if !p.starts_with('-') => (p, flags),
                _ => return Err("usage: rtwc serve <SPEC> [--addr HOST:PORT]".to_string()),
            };
            let mut addr = "127.0.0.1:7077".to_string();
            let mut it = flags.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--addr" => addr = it.next().ok_or("--addr needs a value")?.clone(),
                    other => return Err(format!("unknown serve flag '{other}'")),
                }
            }
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let raw = crate::parse_raw(&text).map_err(|e| format!("{path}: {e}"))?;
            run_serve(&raw, &addr)?;
            Ok(true)
        }
        "client" => {
            let (addr, request) = args
                .split_first()
                .ok_or("usage: rtwc client <ADDR> <REQUEST...>")?;
            run_client(addr, request)
        }
        "bench-serve" => {
            let mut cfg = BenchConfig::default();
            let mut out = "results/BENCH_service.json".to_string();
            let mut it = args.iter();
            while let Some(flag) = it.next() {
                let mut value = |what: &str| {
                    it.next()
                        .ok_or_else(|| format!("{what} needs a value"))
                        .cloned()
                };
                match flag.as_str() {
                    "--clients" => {
                        cfg.clients = value("--clients")?
                            .parse()
                            .map_err(|e| format!("bad --clients: {e}"))?;
                    }
                    "--ops" => {
                        cfg.ops_per_client = value("--ops")?
                            .parse()
                            .map_err(|e| format!("bad --ops: {e}"))?;
                    }
                    "--mesh" => {
                        let v = value("--mesh")?;
                        let (w, h) = v
                            .split_once('x')
                            .ok_or_else(|| format!("bad --mesh '{v}' (expected WxH)"))?;
                        cfg.width = w.parse().map_err(|e| format!("bad --mesh width: {e}"))?;
                        cfg.height = h.parse().map_err(|e| format!("bad --mesh height: {e}"))?;
                    }
                    "--seed" => {
                        cfg.seed = value("--seed")?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?;
                    }
                    "--out" => out = value("--out")?,
                    other => return Err(format!("unknown bench-serve flag '{other}'")),
                }
            }
            if cfg.clients == 0 || cfg.ops_per_client == 0 {
                return Err("bench-serve needs at least one client and one op".to_string());
            }
            print!("{}", run_bench_serve(&cfg, &out)?);
            Ok(true)
        }
        other => Err(format!("unknown service command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(text: &str) -> RawSpecFile {
        crate::parse_raw(text).unwrap()
    }

    #[test]
    fn seeding_admits_the_paper_example() {
        let svc = seed_service(&raw("mesh 10 10\n\
             stream 7,3 7,7 5 15 4\n\
             stream 1,1 5,4 4 10 2\n\
             stream 2,1 7,5 3 40 4\n\
             stream 4,1 8,5 2 45 9\n\
             stream 6,1 9,3 1 50 6\n"))
        .unwrap();
        assert_eq!(svc.admitted_count(), 5);
        assert_eq!(svc.audit().unwrap(), 5);
    }

    #[test]
    fn seeding_refuses_infeasible_specs_with_the_source_line() {
        // Self-delivery: the verifier gate refuses it (W003).
        let err = seed_service(&raw("mesh 4 4\nstream 1,1 1,1 1 10 2\n")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("W003"), "{err}");
    }

    #[test]
    fn bench_serve_writes_the_artifact() {
        let dir = std::env::temp_dir().join("rtwc-bench-serve-test");
        let out = dir.join("BENCH_service.json");
        let cfg = BenchConfig {
            clients: 2,
            ops_per_client: 15,
            ..BenchConfig::default()
        };
        let summary = run_bench_serve(&cfg, out.to_str().unwrap()).unwrap();
        assert!(summary.contains("ops/s"), "{summary}");
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"bench\": \"service\""), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn service_command_rejects_bad_usage() {
        assert!(run_service_command("serve", &[]).is_err());
        assert!(run_service_command("client", &[]).is_err());
        assert!(run_service_command("bench-serve", &["--clients".into(), "0".into()]).is_err());
        assert!(run_service_command("bench-serve", &["--frob".into()]).is_err());
    }
}
