//! The `.jobs` spec format: a mesh plus a sequence of real-time jobs
//! for the host processor to deploy.
//!
//! ```text
//! mesh 10 10
//! # job NAME NUM_TASKS
//! job control 3
//!   # msg FROM_TASK TO_TASK PRIORITY PERIOD LENGTH [DEADLINE]
//!   msg 0 1 2 100 8
//!   msg 1 2 2 100 8
//! job telemetry 2
//!   msg 0 1 1 400 32 300
//! ```

use crate::spec::ParseError;
use rtwc_host::{JobSpec, MessageRequirement, TaskId};

/// A parsed `.jobs` file: the mesh dimensions and the jobs in
/// submission order.
#[derive(Clone, Debug)]
pub struct JobsFile {
    /// Mesh width.
    pub width: u32,
    /// Mesh height.
    pub height: u32,
    /// Jobs in submission order.
    pub jobs: Vec<JobSpec>,
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn num<T: std::str::FromStr>(line: usize, token: &str, what: &str) -> Result<T, ParseError> {
    token
        .parse::<T>()
        .map_err(|_| err(line, format!("bad {what} '{token}'")))
}

/// Parses a `.jobs` file.
pub fn parse_jobs(input: &str) -> Result<JobsFile, ParseError> {
    let mut dims: Option<(u32, u32)> = None;
    let mut jobs: Vec<JobSpec> = Vec::new();
    // The job currently being assembled: (line, name, tasks, messages).
    let mut current: Option<(usize, String, usize, Vec<MessageRequirement>)> = None;

    let finish = |cur: &mut Option<(usize, String, usize, Vec<MessageRequirement>)>,
                  jobs: &mut Vec<JobSpec>|
     -> Result<(), ParseError> {
        if let Some((line, name, tasks, msgs)) = cur.take() {
            let job = JobSpec::new(name, tasks, msgs)
                .map_err(|e| err(line, format!("invalid job: {e}")))?;
            jobs.push(job);
        }
        Ok(())
    };

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        // Unreachable while the emptiness check above holds, but the
        // admission server feeds these parsers untrusted lines: return
        // a line-numbered `ParseError` rather than panicking.
        let Some(keyword) = tokens.next() else {
            return Err(err(lineno, "blank or whitespace-only statement"));
        };
        let rest: Vec<&str> = tokens.collect();
        match keyword {
            "mesh" => {
                if dims.is_some() {
                    return Err(err(lineno, "duplicate 'mesh' line"));
                }
                if rest.len() != 2 {
                    return Err(err(lineno, "usage: mesh WIDTH HEIGHT"));
                }
                dims = Some((
                    num(lineno, rest[0], "width")?,
                    num(lineno, rest[1], "height")?,
                ));
            }
            "job" => {
                finish(&mut current, &mut jobs)?;
                if rest.len() != 2 {
                    return Err(err(lineno, "usage: job NAME NUM_TASKS"));
                }
                let tasks: usize = num(lineno, rest[1], "task count")?;
                current = Some((lineno, rest[0].to_string(), tasks, Vec::new()));
            }
            "msg" => {
                let Some((_, _, _, msgs)) = current.as_mut() else {
                    return Err(err(lineno, "'msg' outside a job"));
                };
                if rest.len() < 5 || rest.len() > 6 {
                    return Err(err(
                        lineno,
                        "usage: msg FROM TO PRIORITY PERIOD LENGTH [DEADLINE]",
                    ));
                }
                let from = TaskId(num(lineno, rest[0], "from-task")?);
                let to = TaskId(num(lineno, rest[1], "to-task")?);
                let priority: u32 = num(lineno, rest[2], "priority")?;
                let period: u64 = num(lineno, rest[3], "period")?;
                let length: u64 = num(lineno, rest[4], "length")?;
                let mut m = MessageRequirement::new(from, to, priority, period, length);
                if rest.len() == 6 {
                    m = m.with_deadline(num(lineno, rest[5], "deadline")?);
                }
                msgs.push(m);
            }
            other => return Err(err(lineno, format!("unknown keyword '{other}'"))),
        }
    }
    finish(&mut current, &mut jobs)?;

    let (width, height) = dims.ok_or_else(|| err(0, "missing 'mesh WIDTH HEIGHT' line"))?;
    if jobs.is_empty() {
        return Err(err(0, "file declares no jobs"));
    }
    Ok(JobsFile {
        width,
        height,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
mesh 10 10
job control 3
  msg 0 1 2 100 8
  msg 1 2 2 100 8
job telemetry 2
  msg 0 1 1 400 32 300
";

    #[test]
    fn parses_jobs() {
        let f = parse_jobs(SAMPLE).unwrap();
        assert_eq!((f.width, f.height), (10, 10));
        assert_eq!(f.jobs.len(), 2);
        assert_eq!(f.jobs[0].name, "control");
        assert_eq!(f.jobs[0].num_tasks, 3);
        assert_eq!(f.jobs[0].messages.len(), 2);
        assert_eq!(f.jobs[1].messages[0].deadline, 300);
    }

    #[test]
    fn msg_outside_job_rejected() {
        let e = parse_jobs("mesh 4 4\nmsg 0 1 1 10 2\n").unwrap_err();
        assert!(e.message.contains("outside a job"));
    }

    #[test]
    fn invalid_job_reported_at_job_line() {
        let e = parse_jobs("mesh 4 4\njob broken 2\n  msg 0 5 1 10 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("invalid job"));
    }

    #[test]
    fn missing_mesh_or_jobs() {
        assert!(parse_jobs("job a 1\n")
            .unwrap_err()
            .message
            .contains("missing 'mesh"));
        assert!(parse_jobs("mesh 4 4\n")
            .unwrap_err()
            .message
            .contains("no jobs"));
    }

    #[test]
    fn degenerate_lines_never_panic() {
        let f = parse_jobs("\u{a0} \t\nmesh 4 4\njob a 2\n \t \n  msg 0 1 1 10 2\n").unwrap();
        assert_eq!(f.jobs.len(), 1);
        let e = parse_jobs("mesh 4 4\n\u{1}\njob a 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown keyword"), "{e}");
    }

    #[test]
    fn comments_ok() {
        let f = parse_jobs("# hi\nmesh 4 4\njob a 2 # two tasks\n  msg 0 1 1 10 2\n").unwrap();
        assert_eq!(f.jobs.len(), 1);
    }
}
