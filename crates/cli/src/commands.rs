//! The `lint`, `analyze`, `simulate`, and `check` commands, factored
//! out of `main` so they are testable without a process boundary.

use crate::spec::{RawSpecFile, SpecFile};
use rtwc_core::{
    analyze_all, determine_feasibility_parallel, explain as explain_bound, render_analysis,
    render_explanation, DelayBound,
};
use rtwc_verifier::{
    lint_sim_config, render_human, render_json, verify_workload, LintReport, DEFAULT_HORIZON_CAP,
};
use wormnet_sim::{Policy, SimConfig, Simulator};
use wormnet_topology::{Topology, XyRouting};

/// Worker threads for the feasibility analysis: all available cores
/// (the work-stealing analysis is bit-identical at any thread count).
fn analysis_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Options shared by the simulation-backed commands.
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Arbitration policy.
    pub policy: Policy,
    /// Cycles to simulate.
    pub cycles: u64,
    /// Warm-up cycles excluded from statistics.
    pub warmup: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            policy: Policy::PreemptivePriority,
            cycles: 30_000,
            warmup: 2_000,
        }
    }
}

impl SimOptions {
    fn config(&self, priority_levels: usize) -> SimConfig {
        let base = match self.policy {
            Policy::PreemptivePriority => SimConfig::paper(priority_levels),
            Policy::LiPriorityVc => SimConfig::li(priority_levels.max(1)),
            Policy::ClassicFifo => SimConfig::classic(),
            Policy::SharedPoolPriority => SimConfig::shared_pool(priority_levels.max(1)),
        };
        base.with_cycles(self.cycles, self.warmup)
    }
}

fn max_priority(spec: &SpecFile) -> usize {
    spec.set.iter().map(|s| s.priority()).max().unwrap_or(1) as usize
}

/// Output format for `rtwc lint`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LintFormat {
    /// One finding per paragraph, for terminals.
    #[default]
    Human,
    /// A single JSON object, for CI.
    Json,
}

fn verify_raw(raw: &RawSpecFile) -> LintReport {
    verify_workload(&raw.mesh, &XyRouting, &raw.specs, DEFAULT_HORIZON_CAP)
}

/// `rtwc lint`: run every spec and analysis rule over a raw (possibly
/// unresolvable) spec file. Returns the rendered report and whether the
/// workload is free of `Error`-severity findings.
pub fn lint(raw: &RawSpecFile, format: LintFormat) -> (String, bool) {
    let report = verify_raw(raw);
    let out = match format {
        LintFormat::Human => render_human(&report.diagnostics, Some(&raw.lines)),
        LintFormat::Json => render_json(&report.diagnostics, Some(&raw.lines)),
    };
    (out, !report.has_errors())
}

/// The deny-by-default guard in front of `analyze`/`simulate`/`check`:
/// `Error`-severity findings abort the command (warnings pass).
pub fn verify_spec(raw: &RawSpecFile) -> Result<(), String> {
    let report = verify_raw(raw);
    if report.has_errors() {
        Err(format!(
            "workload verification failed ({} error(s)):\n\n{}\nrun `rtwc lint` for machine-readable output, or pass --no-verify to bypass",
            report.error_count(),
            render_human(&report.diagnostics, Some(&raw.lines)),
        ))
    } else {
        Ok(())
    }
}

/// The simulator-configuration guard (`S2xx` rules) in front of
/// `simulate`/`check`.
pub fn verify_sim(spec: &SpecFile, opts: &SimOptions) -> Result<(), String> {
    let cfg = opts.config(max_priority(spec));
    let diags = lint_sim_config(&spec.set, &cfg, None);
    let report = LintReport::new(diags);
    if report.has_errors() {
        Err(format!(
            "sim-config verification failed ({} error(s)):\n\n{}\npass --no-verify to bypass",
            report.error_count(),
            render_human(&report.diagnostics, None),
        ))
    } else {
        Ok(())
    }
}

/// `rtwc analyze`: run Determine-Feasibility and report every bound;
/// with `diagrams`, also render each stream's timing diagrams; with
/// `explain`, decompose every bound into per-blocker contributions.
pub fn analyze_with(spec: &SpecFile, diagrams: bool, explain: bool) -> String {
    let mut out = analyze(spec, diagrams);
    if explain {
        out.push('\n');
        for analysis in analyze_all(&spec.set) {
            let e = explain_bound(&spec.set, &analysis);
            out.push_str(&render_explanation(&spec.set, &e));
        }
    }
    out
}

/// `rtwc analyze` without bound attribution (see [`analyze_with`]).
pub fn analyze(spec: &SpecFile, diagrams: bool) -> String {
    let mut out = String::new();
    let report = determine_feasibility_parallel(&spec.set, analysis_threads());
    out.push_str(&format!(
        "{} streams on a {}x{} mesh, {} priority level(s)\n\n",
        spec.set.len(),
        spec.mesh.dims()[0],
        spec.mesh.dims()[1],
        spec.set.priority_level_count(),
    ));
    for s in spec.set.iter() {
        let bound = report.bound(s.id);
        out.push_str(&format!(
            "  {}: P={} T={} C={} D={} L={}  U = {}  [{}]\n",
            s.id,
            s.priority(),
            s.period(),
            s.max_length(),
            s.deadline(),
            s.latency,
            bound,
            if bound.meets(s.deadline()) {
                "guaranteed"
            } else {
                "NOT guaranteed"
            },
        ));
    }
    out.push_str(&format!(
        "\nDetermine-Feasibility: {}\n",
        if report.is_feasible() {
            "success"
        } else {
            "fail"
        }
    ));
    if diagrams {
        out.push('\n');
        for analysis in analyze_all(&spec.set) {
            out.push_str(&render_analysis(&spec.set, &analysis));
            out.push('\n');
        }
    }
    out
}

/// `rtwc simulate`: run the flit-level simulator and report per-stream
/// latency statistics.
pub fn simulate(spec: &SpecFile, opts: &SimOptions) -> Result<String, String> {
    let cfg = opts.config(max_priority(spec));
    let mut sim = Simulator::new(spec.mesh.num_links(), &spec.set, cfg)?;
    sim.run();
    let stats = sim.stats();
    let mut out = format!(
        "simulated {} cycles ({} warm-up) under {:?}\n\n",
        stats.cycles_run, opts.warmup, opts.policy
    );
    for s in spec.set.iter() {
        let n = stats.latencies(s.id, opts.warmup).len();
        let mean = stats.mean_latency(s.id, opts.warmup);
        let max = stats.max_latency(s.id, opts.warmup);
        match (mean, max) {
            (Some(mean), Some(max)) => out.push_str(&format!(
                "  {}: {} msgs, latency mean {:.1} / max {} (L = {})\n",
                s.id, n, mean, max, s.latency
            )),
            _ => out.push_str(&format!("  {}: no completed messages\n", s.id)),
        }
    }
    if let Some(t) = stats.stalled_at {
        out.push_str(&format!("\nWARNING: stall watchdog fired at cycle {t}\n"));
    }
    out.push_str(&format!(
        "\n{} released, {} completed\n",
        stats.total_released(),
        stats.total_completed()
    ));
    Ok(out)
}

/// `rtwc check`: analyze + simulate, and verify every observed latency
/// stays within its bound. Returns `(report, ok)`.
pub fn check(spec: &SpecFile, opts: &SimOptions) -> Result<(String, bool), String> {
    let report = determine_feasibility_parallel(&spec.set, analysis_threads());
    let cfg = opts.config(max_priority(spec));
    let mut sim = Simulator::new(spec.mesh.num_links(), &spec.set, cfg)?;
    sim.run();
    let stats = sim.stats();
    let mut out = String::from("bound vs simulation:\n");
    let mut ok = true;
    for s in spec.set.iter() {
        let bound = report.bound(s.id);
        let max = stats.max_latency(s.id, opts.warmup);
        let verdict = match (bound, max) {
            (DelayBound::Bounded(u), Some(m)) if m <= u => "ok",
            (DelayBound::Bounded(_), Some(_)) => {
                ok = false;
                "VIOLATION"
            }
            (DelayBound::Exceeded, _) => "no bound",
            (_, None) => "no samples",
        };
        out.push_str(&format!(
            "  {}: U = {:>6}  max actual = {:>6}  {}\n",
            s.id,
            bound.to_string(),
            max.map(|m| m.to_string()).unwrap_or_else(|| "-".into()),
            verdict
        ));
    }
    out.push_str(&format!(
        "\nresult: {}\n",
        if ok {
            "all observed latencies within bounds"
        } else {
            "BOUND VIOLATIONS"
        }
    ));
    Ok((out, ok))
}

/// `rtwc deploy`: submit every job of a `.jobs` file to a fresh host
/// processor, printing placements, guarantees, and failures.
pub fn deploy(file: &crate::jobs::JobsFile, allocator: &dyn rtwc_host::Allocator) -> String {
    use std::fmt::Write as _;
    let mut host = rtwc_host::HostProcessor::new(file.width, file.height);
    let mut out = format!(
        "host: {}x{} mesh, {} job(s) to deploy\n\n",
        file.width,
        file.height,
        file.jobs.len()
    );
    for job in &file.jobs {
        match host.deploy(job, allocator) {
            Ok(id) => {
                let deployed = host
                    .jobs()
                    .iter()
                    .find(|j| j.id == id)
                    .expect("just deployed");
                let nodes: Vec<String> = deployed
                    .placement
                    .nodes()
                    .iter()
                    .map(|n| {
                        let c = host.mesh().coord(*n);
                        format!("({},{})", c.get(0), c.get(1))
                    })
                    .collect();
                let _ = writeln!(out, "{}: deployed on [{}]", job.name, nodes.join(", "));
                for (m, &s) in job.messages.iter().zip(&deployed.streams) {
                    let _ = writeln!(
                        out,
                        "  {} -> {}: U = {} (D = {})",
                        m.from,
                        m.to,
                        host.bound(s),
                        m.deadline
                    );
                }
            }
            Err(e) => {
                let _ = writeln!(out, "{}: REJECTED ({e})", job.name);
            }
        }
    }
    let _ = writeln!(
        out,
        "\n{} job(s) running, {} stream(s) guaranteed, {} node(s) free",
        host.jobs().len(),
        host.admitted_streams(),
        host.free_nodes().len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse;

    fn paper_spec() -> SpecFile {
        parse(
            "mesh 10 10\n\
             stream 7,3 7,7 5 15 4\n\
             stream 1,1 5,4 4 10 2\n\
             stream 2,1 7,5 3 40 4\n\
             stream 4,1 8,5 2 45 9\n\
             stream 6,1 9,3 1 50 6\n",
        )
        .unwrap()
    }

    #[test]
    fn analyze_reports_bounds() {
        let out = analyze(&paper_spec(), false);
        assert!(out.contains("M0: P=5"));
        assert!(out.contains("U = 7"));
        assert!(out.contains("Determine-Feasibility: success"));
        assert!(!out.contains("Initial timing diagram"));
    }

    #[test]
    fn analyze_with_diagrams() {
        let out = analyze(&paper_spec(), true);
        assert!(out.contains("Initial timing diagram"));
        assert!(out.contains("Removed instances"));
    }

    #[test]
    fn analyze_with_explanations() {
        let out = analyze_with(&paper_spec(), false, true);
        assert!(out.contains("U(M4) = 33 = L(10) + 23"));
        assert!(out.contains("discounted as indirect"));
    }

    #[test]
    fn simulate_reports_latencies() {
        let opts = SimOptions {
            cycles: 2_000,
            warmup: 0,
            ..SimOptions::default()
        };
        let out = simulate(&paper_spec(), &opts).unwrap();
        assert!(out.contains("M0:"));
        assert!(out.contains("released"));
        assert!(!out.contains("WARNING"));
    }

    #[test]
    fn check_paper_example_passes() {
        let opts = SimOptions {
            cycles: 5_000,
            warmup: 0,
            ..SimOptions::default()
        };
        let (out, ok) = check(&paper_spec(), &opts).unwrap();
        assert!(ok, "{out}");
        assert!(out.contains("all observed latencies within bounds"));
    }

    #[test]
    fn deploy_reports_placements_and_bounds() {
        let file = crate::jobs::parse_jobs(
            "mesh 8 8\n\
             job control 3\n  msg 0 1 2 100 8\n  msg 1 2 2 100 8\n\
             job bulk 2\n  msg 0 1 1 400 32\n",
        )
        .unwrap();
        let out = deploy(&file, &rtwc_host::CommunicationAware);
        assert!(out.contains("control: deployed on ["), "{out}");
        assert!(out.contains("t0 -> t1: U = "));
        assert!(out.contains("2 job(s) running"));
        assert!(out.contains("3 stream(s) guaranteed"));
    }

    #[test]
    fn deploy_reports_rejections() {
        // Second job cannot fit on a 2x1 mesh.
        let file = crate::jobs::parse_jobs(
            "mesh 2 1\n\
             job a 2\n  msg 0 1 1 100 4\n\
             job b 2\n  msg 0 1 1 100 4\n",
        )
        .unwrap();
        let out = deploy(&file, &rtwc_host::FirstFit);
        assert!(out.contains("b: REJECTED"), "{out}");
        assert!(out.contains("1 job(s) running"));
    }

    #[test]
    fn lint_clean_spec_reports_no_findings() {
        let raw = crate::spec::parse_raw(
            "mesh 10 10\n\
             stream 7,3 7,7 5 15 4\n\
             stream 1,1 5,4 4 10 2\n",
        )
        .unwrap();
        let (out, clean) = lint(&raw, LintFormat::Human);
        assert!(clean);
        assert!(out.contains("no findings"), "{out}");
        let (json, clean) = lint(&raw, LintFormat::Json);
        assert!(clean);
        assert!(
            json.contains("\"summary\":{\"errors\":0,\"warnings\":0}"),
            "{json}"
        );
        assert!(verify_spec(&raw).is_ok());
    }

    #[test]
    fn lint_broken_spec_denies_the_guard() {
        // Self-delivery (W003); C > T (W005), which also drags the
        // unloaded latency past the deadline (W007).
        let raw = crate::spec::parse_raw(
            "mesh 4 4\n\
             stream 2,2 2,2 1 10 2\n\
             stream 0,0 3,0 2 10 20\n",
        )
        .unwrap();
        let (out, clean) = lint(&raw, LintFormat::Human);
        assert!(!clean);
        assert!(out.contains("error[W003] stream M0 (line 2)"), "{out}");
        assert!(out.contains("error[W005] stream M1 (line 3)"), "{out}");
        let e = verify_spec(&raw).unwrap_err();
        assert!(e.contains("verification failed (3 error(s))"), "{e}");
        assert!(e.contains("--no-verify"), "{e}");
    }

    #[test]
    fn sim_guard_catches_undersupplied_vcs() {
        let spec = paper_spec();
        let opts = SimOptions {
            cycles: 100,
            warmup: 200,
            ..SimOptions::default()
        };
        // The paper policy sizes VCs from the set's priorities, so only
        // the warm-up warning fires — warnings never deny.
        assert!(verify_sim(&spec, &opts).is_ok());
        // Classic FIFO misconfigured with several VCs is an error; force
        // it through the raw config to prove the guard sees S203.
        let cfg = SimConfig::classic();
        assert_eq!(cfg.num_vcs, 1, "classic() is single-VC by definition");
        let mut bad = cfg;
        bad.num_vcs = 4;
        let diags = lint_sim_config(&spec.set, &bad, None);
        assert!(diags.iter().any(|d| d.code == "S203"), "{diags:?}");
    }

    #[test]
    fn simulate_under_each_policy() {
        for policy in [
            Policy::PreemptivePriority,
            Policy::LiPriorityVc,
            Policy::ClassicFifo,
        ] {
            let opts = SimOptions {
                policy,
                cycles: 1_000,
                warmup: 0,
            };
            let out = simulate(&paper_spec(), &opts).unwrap();
            assert!(out.contains("completed"), "{policy:?}");
        }
    }
}
