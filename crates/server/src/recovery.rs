//! Startup recovery: load the snapshot, replay the surviving WAL
//! records through the deterministic admission controller, and audit
//! the result against a fresh offline analysis before the service
//! accepts any traffic.
//!
//! ## Sequence alignment
//!
//! The snapshot records `seq` (accepted ops it captures) and the WAL
//! header records `base_seq` (ops captured before its first record).
//! Normally they are equal. A crash **between** writing a snapshot and
//! resetting the WAL leaves `base_seq < seq`; recovery then skips the
//! leading WAL records the snapshot already covers. `base_seq > seq`
//! means history is missing (a deleted or substituted log) and is
//! refused outright.
//!
//! ## Audit
//!
//! After replay the recovered set is handed to the verifier's
//! [`lint_recovered`] rule pair: `A107` (a cached bound diverges from a
//! fresh `determine_feasibility` run) and `A108` (a recovered bound
//! misses its deadline). A second pass, [`lint_recovery_report`]
//! (`A109`), cross-checks the produced [`RecoveryReport`]'s
//! skip/replay/seq accounting against the raw snapshot and WAL inputs.
//! Any finding aborts recovery — a service that cannot prove its
//! recovered state is the state it acknowledged must not serve.

use crate::faultfs::{RealFile, WalFile};
use crate::service::AcceptedOp;
use crate::snapshot::{load_snapshot, DedupEntry, SnapshotData};
use crate::wal::{FsyncPolicy, Wal, WalRecord, WAL_FILE};
use rtwc_core::{StreamId, StreamSet};
use rtwc_verifier::{lint_recovered, lint_recovery_report, RecoveryArtifact};
use std::io;
use std::path::Path;
use std::sync::Arc;
use wormnet_topology::{Mesh, Routing, XyRouting};

/// The state recovery hands to the service: exactly what a service
/// that never crashed would hold after the same accepted-op history.
#[derive(Debug)]
pub struct RecoveredState {
    /// The rebuilt controller with all cached bounds.
    pub ctl: rtwc_core::AdmissionController,
    /// Stable ids, parallel to the controller's dense ids.
    pub handles: Vec<u64>,
    /// The next stable handle to assign.
    pub next_handle: u64,
    /// The op journal: synthesized admits for snapshot streams followed
    /// by the replayed WAL records.
    pub log: Vec<Arc<AcceptedOp>>,
    /// The idempotency window, oldest first (snapshot entries, then
    /// WAL-derived ones).
    pub dedup: Vec<DedupEntry>,
    /// Total accepted operations in the recovered history.
    pub seq: u64,
}

/// What recovery did, for the startup banner and the chaos harness.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot, if one was loaded.
    pub snapshot_seq: Option<u64>,
    /// Streams restored directly from the snapshot.
    pub snapshot_streams: usize,
    /// WAL records replayed (after skipping snapshot-covered ones).
    pub wal_records: usize,
    /// WAL records skipped because the snapshot already covered them.
    pub wal_skipped: usize,
    /// Torn-tail bytes the WAL open discarded.
    pub truncated_bytes: u64,
    /// Streams admitted in the recovered state.
    pub streams: usize,
    /// Bounds re-derived and cross-checked by the verifier audit.
    pub audited: usize,
}

impl RecoveryReport {
    /// One-line human summary for the startup banner.
    pub fn render(&self) -> String {
        let snap = match self.snapshot_seq {
            Some(seq) => format!("snapshot@{seq} ({} stream(s))", self.snapshot_streams),
            None => "no snapshot".to_string(),
        };
        format!(
            "recovered {}: {snap} + {} WAL record(s) ({} skipped, {} torn byte(s) discarded); \
             audit re-derived {} bound(s)",
            self.streams, self.wal_records, self.wal_skipped, self.truncated_bytes, self.audited
        )
    }
}

fn data_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Recovers from `dir` using a plain on-disk WAL file. See
/// [`recover_with_file`].
pub fn recover(
    mesh: &Mesh,
    dir: &Path,
    policy: FsyncPolicy,
) -> io::Result<(RecoveredState, Wal, RecoveryReport)> {
    let file = Box::new(RealFile::open(&dir.join(WAL_FILE))?);
    recover_with_file(mesh, dir, policy, file)
}

/// Recovers from `dir`, reading the WAL through `file` (the chaos
/// harness passes a fault-injecting file here). On success the returned
/// [`Wal`] is open, torn-tail-truncated, and ready to append.
pub fn recover_with_file(
    mesh: &Mesh,
    dir: &Path,
    policy: FsyncPolicy,
    file: Box<dyn WalFile>,
) -> io::Result<(RecoveredState, Wal, RecoveryReport)> {
    let snapshot = load_snapshot(dir)?;
    let (wal, opened) = Wal::open(file, policy)?;
    let snap_seq = snapshot.as_ref().map_or(0, |s| s.seq);
    if opened.base_seq > snap_seq {
        return Err(data_err(format!(
            "WAL starts at seq {} but the snapshot only covers {snap_seq}: history is missing",
            opened.base_seq
        )));
    }
    let skip = (snap_seq - opened.base_seq) as usize;
    let replayable: &[WalRecord] = opened.records.get(skip..).unwrap_or(&[]);

    let mut ctl = rtwc_core::AdmissionController::new();
    let mut handles: Vec<u64> = Vec::new();
    let mut log: Vec<Arc<AcceptedOp>> = Vec::new();
    let mut dedup: Vec<DedupEntry> = Vec::new();
    let mut next_handle = 0u64;
    let (snapshot_seq, snapshot_streams) = match &snapshot {
        Some(snap) => {
            restore_snapshot(mesh, snap, &mut ctl, &mut handles, &mut log)?;
            next_handle = snap.next_handle;
            dedup.extend_from_slice(&snap.dedup);
            (Some(snap.seq), snap.streams.len())
        }
        None => (None, 0),
    };

    // Replay the WAL tail. Every record was accepted live against
    // exactly this state, so the deterministic controller must accept
    // it again; a refusal means the log and the analysis disagree.
    for rec in replayable {
        match &rec.op {
            AcceptedOp::Admit { handle, spec } => {
                let path = XyRouting.route(mesh, spec.source, spec.dest).map_err(|e| {
                    data_err(format!("recovery: admit {handle} no longer routes: {e}"))
                })?;
                let id = ctl
                    .admit(spec.clone(), path)
                    .map_err(|e| data_err(format!("recovery: admit {handle} refused: {e}")))?;
                handles.push(*handle);
                next_handle = next_handle.max(handle + 1);
                if rec.req_id != 0 {
                    let bound = ctl.bound(id).value().ok_or_else(|| {
                        data_err(format!("recovery: admit {handle} has no bound"))
                    })?;
                    dedup.push(DedupEntry {
                        req_id: rec.req_id,
                        admit: true,
                        handle: *handle,
                        bound,
                        deadline: spec.deadline,
                    });
                }
            }
            AcceptedOp::Remove { handle } => {
                let idx = handles.iter().position(|h| h == handle).ok_or_else(|| {
                    data_err(format!("recovery: remove {handle}: unknown handle"))
                })?;
                ctl.remove(StreamId(idx as u32));
                handles.remove(idx);
                if rec.req_id != 0 {
                    dedup.push(DedupEntry {
                        req_id: rec.req_id,
                        admit: false,
                        handle: *handle,
                        bound: 0,
                        deadline: 0,
                    });
                }
            }
        }
        log.push(Arc::new(rec.op.clone()));
    }

    // Verifier audit: the recovered cached bounds must equal a fresh
    // offline analysis, and every recovered stream must still meet its
    // deadline. Anything else is refused before traffic is accepted.
    let audited = if ctl.is_empty() {
        0
    } else {
        let set = StreamSet::from_parts(ctl.parts().to_vec())
            .map_err(|e| data_err(format!("recovery: admitted set no longer resolves: {e}")))?;
        let findings = lint_recovered(&set, ctl.bounds());
        if let Some(d) = findings.first() {
            return Err(data_err(format!(
                "recovery audit failed [{}]: {}",
                d.code, d.message
            )));
        }
        set.len()
    };

    let report = RecoveryReport {
        snapshot_seq,
        snapshot_streams,
        wal_records: replayable.len(),
        wal_skipped: skip.min(opened.records.len()),
        truncated_bytes: opened.truncated_bytes,
        streams: ctl.len(),
        audited,
    };
    let seq = wal.seq().max(snap_seq);

    // Second audit, on the accounting rather than the bounds: the
    // report's skip/replay/seq arithmetic must reproduce exactly from
    // the raw snapshot+WAL inputs (verifier rule `A109`). This guards
    // the recovery code itself — a future refactor that miscounts the
    // overlap fails here, before the state serves.
    let artifact = RecoveryArtifact {
        snapshot_seq,
        wal_base_seq: opened.base_seq,
        wal_records: opened.records.len() as u64,
        reported_replayed: report.wal_records as u64,
        reported_skipped: report.wal_skipped as u64,
        reported_seq: seq,
    };
    if let Some(d) = lint_recovery_report(&artifact).first() {
        return Err(data_err(format!(
            "recovery audit failed [{}]: {}",
            d.code, d.message
        )));
    }
    let state = RecoveredState {
        ctl,
        handles,
        next_handle,
        log,
        dedup,
        seq,
    };
    Ok((state, wal, report))
}

/// Re-admits the snapshot's streams in dense order. Any subset of a
/// feasible set is feasible (removing streams only removes
/// interference), so every admission must succeed and reproduce the
/// exact bounds the live service cached.
fn restore_snapshot(
    mesh: &Mesh,
    snap: &SnapshotData,
    ctl: &mut rtwc_core::AdmissionController,
    handles: &mut Vec<u64>,
    log: &mut Vec<Arc<AcceptedOp>>,
) -> io::Result<()> {
    for (handle, spec) in &snap.streams {
        let path = XyRouting.route(mesh, spec.source, spec.dest).map_err(|e| {
            data_err(format!(
                "recovery: snapshot stream {handle} no longer routes: {e}"
            ))
        })?;
        ctl.admit(spec.clone(), path)
            .map_err(|e| data_err(format!("recovery: snapshot stream {handle} refused: {e}")))?;
        handles.push(*handle);
        log.push(Arc::new(AcceptedOp::Admit {
            handle: *handle,
            spec: spec.clone(),
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;
    use rtwc_core::StreamSpec;
    use wormnet_topology::Topology;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rtwc-recov-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mesh() -> Mesh {
        Mesh::mesh2d(10, 10)
    }

    fn spec(m: &Mesh, row: u32) -> StreamSpec {
        let src = m.node_at(&[0, row]).unwrap();
        let dst = m.node_at(&[5, row]).unwrap();
        StreamSpec::new(src, dst, 2, 50 + u64::from(row), 4, 50 + u64::from(row))
    }

    fn open_wal(dir: &Path) -> Wal {
        let file = Box::new(RealFile::open(&dir.join(WAL_FILE)).unwrap());
        Wal::open(file, FsyncPolicy::Always).unwrap().0
    }

    #[test]
    fn empty_dir_recovers_to_an_empty_service() {
        let dir = tmpdir("empty");
        let m = mesh();
        let (state, wal, report) = recover(&m, &dir, FsyncPolicy::Always).unwrap();
        assert_eq!(state.ctl.len(), 0);
        assert_eq!(state.seq, 0);
        assert_eq!(wal.records(), 0);
        assert_eq!(report.streams, 0);
        assert!(
            report.render().contains("no snapshot"),
            "{}",
            report.render()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_only_recovery_replays_admits_and_removes() {
        let dir = tmpdir("wal-only");
        let m = mesh();
        {
            let mut wal = open_wal(&dir);
            for (h, row) in [(0u64, 0u32), (1, 1), (2, 2)] {
                wal.append(
                    h + 10,
                    &AcceptedOp::Admit {
                        handle: h,
                        spec: spec(&m, row),
                    },
                )
                .unwrap();
            }
            wal.append(0, &AcceptedOp::Remove { handle: 1 }).unwrap();
        }
        let (state, wal, report) = recover(&m, &dir, FsyncPolicy::Always).unwrap();
        assert_eq!(state.ctl.len(), 2);
        assert_eq!(state.handles, vec![0, 2]);
        assert_eq!(state.next_handle, 3);
        assert_eq!(state.seq, 4);
        assert_eq!(wal.seq(), 4);
        assert_eq!(report.wal_records, 4);
        assert_eq!(report.audited, 2);
        // The three admits carried request ids; the remove did not.
        assert_eq!(state.dedup.len(), 3);
        assert!(state.dedup.iter().all(|e| e.admit && e.bound > 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_plus_wal_tail_recovers_and_skips_covered_records() {
        let dir = tmpdir("snap-wal");
        let m = mesh();
        // WAL holds the full history (snapshot written, reset crashed).
        {
            let mut wal = open_wal(&dir);
            for (h, row) in [(0u64, 0u32), (1, 1)] {
                wal.append(
                    0,
                    &AcceptedOp::Admit {
                        handle: h,
                        spec: spec(&m, row),
                    },
                )
                .unwrap();
            }
            wal.append(
                7,
                &AcceptedOp::Admit {
                    handle: 2,
                    spec: spec(&m, 2),
                },
            )
            .unwrap();
        }
        // Snapshot covers the first two ops only.
        write_snapshot(
            &dir,
            &SnapshotData {
                seq: 2,
                next_handle: 2,
                streams: vec![(0, spec(&m, 0)), (1, spec(&m, 1))],
                dedup: vec![],
            },
        )
        .unwrap();
        let (state, _, report) = recover(&m, &dir, FsyncPolicy::Always).unwrap();
        assert_eq!(report.snapshot_seq, Some(2));
        assert_eq!(report.wal_skipped, 2);
        assert_eq!(report.wal_records, 1);
        assert_eq!(state.ctl.len(), 3);
        assert_eq!(state.handles, vec![0, 1, 2]);
        assert_eq!(state.next_handle, 3);
        assert_eq!(state.seq, 3);
        assert_eq!(state.dedup.len(), 1);
        assert_eq!(state.dedup[0].req_id, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_history_is_refused() {
        let dir = tmpdir("missing");
        let m = mesh();
        {
            let mut wal = open_wal(&dir);
            // A WAL that claims to continue from seq 5 with no snapshot.
            wal.reset(5).unwrap();
        }
        let err = recover(&m, &dir, FsyncPolicy::Always).unwrap_err();
        assert!(err.to_string().contains("history is missing"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_bounds_match_a_fresh_service_bit_for_bit() {
        use crate::service::replay;
        let dir = tmpdir("bitident");
        let m = mesh();
        let ops: Vec<AcceptedOp> = (0..4u64)
            .map(|h| AcceptedOp::Admit {
                handle: h,
                spec: spec(&m, h as u32),
            })
            .collect();
        {
            let mut wal = open_wal(&dir);
            for op in &ops {
                wal.append(0, op).unwrap();
            }
        }
        let (state, _, _) = recover(&m, &dir, FsyncPolicy::Always).unwrap();
        let arcs: Vec<Arc<AcceptedOp>> = ops.into_iter().map(Arc::new).collect();
        let serial = replay(&m, &arcs).unwrap();
        assert_eq!(serial.len(), state.ctl.len());
        for i in 0..serial.len() {
            assert_eq!(
                serial.bound(StreamId(i as u32)),
                state.ctl.bound(StreamId(i as u32)),
                "stream {i}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
