//! The server-side sharded admission plane: the core's
//! [`RegionShard`]s behind per-shard locks.
//!
//! [`rtwc_core::ShardedController`] composes the region shards
//! single-threadedly; this module is the concurrent wrapper the service
//! uses instead. Each shard sits behind its own [`TrackedRwLock`]
//! registered under the ordered `service.shard` lock class, with the
//! shard id as the lock *instance* — the sentinel then enforces the
//! canonical cross-shard order (ascending shard id) that makes the
//! two-phase commit deadlock-free, and rejects any acquisition while a
//! higher-ranked lock (the service's `inner`, the WAL) is held.
//!
//! The plane itself is deliberately dumb: it hands out ascending guard
//! sets and keeps the cross-shard telemetry counters. All decision
//! logic lives in `rtwc_core::shard` (`scan_neighborhood`,
//! `plan_admit`, `plan_remove`), and all bookkeeping order — shard
//! guards held *across* the service's journal append, so journal order
//! equals analysis order for every pair of conflicting operations —
//! lives in [`crate::service`].

use crate::lock_order::{classes, TrackedRwLock, TrackedRwLockWriteGuard};
use crate::sync::atomic::{AtomicU64, Ordering};
use rtwc_core::{RegionShard, ShardGauges, ShardId, ShardMap};

/// The concurrent sharded admission plane.
#[derive(Debug)]
pub struct ShardPlane {
    map: ShardMap,
    shards: Vec<TrackedRwLock<RegionShard>>,
    cross_admits: AtomicU64,
    cross_aborts: AtomicU64,
    recomputations: AtomicU64,
}

impl ShardPlane {
    /// An empty plane over the given channel → shard map.
    pub fn new(map: ShardMap) -> Self {
        let shards = (0..map.len())
            .map(|sid| TrackedRwLock::new_instance(&classes::SHARD, sid as u64, RegionShard::new()))
            .collect();
        ShardPlane {
            map,
            shards,
            cross_admits: AtomicU64::new(0),
            cross_aborts: AtomicU64::new(0),
            recomputations: AtomicU64::new(0),
        }
    }

    /// The channel → shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Write-locks the given shards in the canonical (ascending) order.
    /// `ids` must already be sorted ascending and deduplicated — which
    /// is exactly what [`ShardMap::shards_of`] returns.
    pub fn write_set(&self, ids: &[ShardId]) -> Vec<TrackedRwLockWriteGuard<'_, RegionShard>> {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids sorted + deduped");
        ids.iter().map(|s| self.shards[s.index()].write()).collect()
    }

    /// Per-shard gauges, by shard id. Takes each shard's read lock
    /// briefly in turn (never nested), so it must not be called with
    /// any shard or higher-ranked lock held.
    pub fn gauges(&self) -> Vec<ShardGauges> {
        self.shards.iter().map(|s| s.read().gauges()).collect()
    }

    /// Counts a committed cross-shard (two-phase) admission.
    pub fn count_cross_admit(&self) {
        self.cross_admits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a cross-shard admission the analysis rejected.
    pub fn count_cross_abort(&self) {
        self.cross_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `Cal_U` invocations performed by plane-side planning.
    pub fn add_recomputations(&self, n: u64) {
        self.recomputations.fetch_add(n, Ordering::Relaxed);
    }

    /// Committed cross-shard admissions.
    pub fn cross_admits(&self) -> u64 {
        self.cross_admits.load(Ordering::Relaxed)
    }

    /// Cross-shard admissions rejected by the analysis.
    pub fn cross_aborts(&self) -> u64 {
        self.cross_aborts.load(Ordering::Relaxed)
    }

    /// Total `Cal_U` invocations across all plane-side planning.
    pub fn recomputations(&self) -> u64 {
        self.recomputations.load(Ordering::Relaxed)
    }
}
